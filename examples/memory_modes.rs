//! The three accumulator memory layouts on one workload: footprint,
//! speed, and what discretization does to the calls (a miniature of paper
//! Table III).
//!
//! ```sh
//! cargo run --release --example memory_modes
//! ```

use gnumap_snp::core::accum::AccumulatorMode;
use gnumap_snp::core::footprint::{human_bytes, FootprintModel, HUMAN_GENOME_BASES};
use gnumap_snp::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let reference = simulate::generate_genome(
        &simulate::GenomeConfig {
            length: 25_000,
            ..Default::default()
        },
        &mut rng,
    );
    let snps = simulate::generate_snp_catalog(
        &reference,
        &simulate::SnpCatalogConfig {
            count: 8,
            ..Default::default()
        },
        &mut rng,
    );
    let individual = simulate::apply_snps_monoploid(&reference, &snps);
    let read_cfg = ReadSimConfig {
        coverage: 12.0,
        ..Default::default()
    };
    let reads: Vec<_> = simulate_reads(
        &ReadSource::Monoploid(&individual),
        read_cfg.read_count(reference.len()),
        &read_cfg,
        &mut rng,
    )
    .into_iter()
    .map(|r| r.read)
    .collect();
    let truth: Vec<_> = snps.iter().map(|s| (s.pos, s.alt)).collect();

    println!(
        "{:>9} {:>12} {:>8} {:>4} {:>4} {:>10} {:>22}",
        "mode", "acc bytes", "time", "TP", "FP", "precision", "model @ human genome"
    );
    for mode in [
        AccumulatorMode::Norm,
        AccumulatorMode::CharDisc,
        AccumulatorMode::CentDisc,
    ] {
        let config = GnumapConfig {
            accumulator: mode,
            ..Default::default()
        };
        let report = run_pipeline(&reference, &reads, &config);
        let accuracy = score_snp_calls(&report.calls, &truth);
        let projected = FootprintModel::for_mode(mode).project(HUMAN_GENOME_BASES);
        println!(
            "{:>9} {:>12} {:>7.2}s {:>4} {:>4} {:>9.1}% {:>22}",
            mode.name(),
            report.accumulator_bytes,
            report.elapsed_secs,
            accuracy.true_positives,
            accuracy.false_positives,
            100.0 * accuracy.precision(),
            human_bytes(projected),
        );
    }
    println!(
        "\nCHARDISC halves the accumulator at minimal accuracy cost;\n\
         CENTDISC shrinks it 4x but its equal-weight codeword additions\n\
         forget history exponentially — do not use it in production\n\
         (the paper reaches the same conclusion in Table III)."
    );
}
