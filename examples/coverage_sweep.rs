//! Sensitivity vs read coverage — the paper's motivating regime.
//!
//! The introduction stresses that "SNPs must often be called from as few
//! as 5-20 overlapping reads". This example sweeps coverage over that
//! range on one fixed genome + SNP catalogue and reports GNUMAP-SNP's
//! sensitivity/precision alongside the MAQ-style baseline's, showing where
//! the statistical machinery starts to pay off.
//!
//! ```sh
//! cargo run --release --example coverage_sweep
//! ```

use gnumap_snp::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};
use std::collections::HashSet;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2019);
    let reference = simulate::generate_genome(
        &simulate::GenomeConfig {
            length: 30_000,
            repeat_families: 1,
            ..Default::default()
        },
        &mut rng,
    );
    let catalog = simulate::generate_snp_catalog(
        &reference,
        &simulate::SnpCatalogConfig {
            count: 20,
            ..Default::default()
        },
        &mut rng,
    );
    let individual = simulate::apply_snps_monoploid(&reference, &catalog);
    let truth: Vec<_> = catalog.iter().map(|s| (s.pos, s.alt)).collect();
    let truth_positions: HashSet<usize> = truth.iter().map(|&(p, _)| p).collect();

    println!(
        "{:>9}  {:>7}  {:>18}  {:>18}",
        "coverage", "reads", "GNUMAP sens/prec", "MAQ-style sens/prec"
    );
    for coverage in [3.0f64, 5.0, 8.0, 12.0, 16.0, 20.0] {
        let cfg = ReadSimConfig {
            coverage,
            ..Default::default()
        };
        let mut read_rng = ChaCha8Rng::seed_from_u64(coverage.to_bits());
        let reads: Vec<_> = simulate_reads(
            &ReadSource::Monoploid(&individual),
            cfg.read_count(reference.len()),
            &cfg,
            &mut read_rng,
        )
        .into_iter()
        .map(|r| r.read)
        .collect();

        let gnumap = run_pipeline(&reference, &reads, &GnumapConfig::default());
        let g = score_snp_calls(&gnumap.calls, &truth);

        let maq = run_baseline(
            &reference,
            &reads,
            &BaselineConfig::default(),
            &mut read_rng,
        );
        let m = gnumap_snp::core::report::score_positions(
            maq.snps.iter().map(|s| s.pos),
            &truth_positions,
        );

        println!(
            "{:>8.0}x  {:>7}  {:>7.0}% / {:>5.0}%  {:>8.0}% / {:>5.0}%",
            coverage,
            reads.len(),
            100.0 * g.sensitivity(),
            100.0 * g.precision(),
            100.0 * m.sensitivity(),
            100.0 * m.precision(),
        );
    }
    println!(
        "\nsensitivity climbs with depth; the marginal-evidence caller keeps\n\
         precision high even at the 5x low end, where hard-call pileups get\n\
         thin (the paper's low-coverage motivation)."
    );
}
