//! Diploid SNP calling with FDR control: heterozygous and homozygous
//! planted variants, called with the paper's Equation 2 LRT under
//! Benjamini–Hochberg false-discovery control.
//!
//! ```sh
//! cargo run --release --example diploid_fdr
//! ```

use gnumap_snp::core::snpcall::{Cutoff, SnpCallConfig};
use gnumap_snp::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};
use simulate::Zygosity;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2012);

    // Repeat-free reference: diverged repeat copies cross-map reads and
    // deposit minor-allele evidence at their paralogous sites, which the
    // diploid LRT then (correctly, given the evidence) flags as
    // heterozygous — the classic paralog-induced false-het problem every
    // diploid caller shares. This demo isolates the genotyping behaviour;
    // see tests/baseline_comparison.rs for the repeat-region experiments.
    let reference = simulate::generate_genome(
        &simulate::GenomeConfig {
            length: 15_000,
            repeat_families: 0,
            ..Default::default()
        },
        &mut rng,
    );
    // Half the planted SNPs heterozygous — the case the diploid LRT's
    // second alternative hypothesis exists for.
    let snps = simulate::generate_snp_catalog(
        &reference,
        &simulate::SnpCatalogConfig {
            count: 12,
            heterozygous_fraction: 0.5,
            ..Default::default()
        },
        &mut rng,
    );
    let individual = simulate::apply_snps_diploid(&reference, &snps, &mut rng);

    // Diploid sites need more depth: each haplotype gets half the reads.
    let read_cfg = ReadSimConfig {
        coverage: 20.0,
        ..Default::default()
    };
    let reads: Vec<_> = simulate_reads(
        &ReadSource::Diploid(&individual),
        read_cfg.read_count(reference.len()),
        &read_cfg,
        &mut rng,
    )
    .into_iter()
    .map(|r| r.read)
    .collect();

    let config = GnumapConfig {
        calling: SnpCallConfig {
            ploidy: Ploidy::Diploid,
            cutoff: Cutoff::Fdr(0.05), // "a false discovery control"
            min_total: 6.0,
        },
        ..Default::default()
    };
    let report = run_pipeline(&reference, &reads, &config);

    println!(
        "diploid run: {} reads, {} calls under BH FDR q=0.05\n",
        reads.len(),
        report.calls.len()
    );
    println!(
        "{:>9}  {:>3}  {:>8}  {:>9}  truth",
        "pos", "ref", "genotype", "p(adj)"
    );
    for call in &report.calls {
        let genotype = match call.second_allele {
            Some(second) => format!("{}/{}", call.allele, second),
            None => format!("{}/{}", call.allele, call.allele),
        };
        let truth =
            snps.iter()
                .find(|s| s.pos == call.pos)
                .map_or("false positive".to_string(), |s| {
                    let zygo = match s.zygosity {
                        Zygosity::Heterozygous => "het",
                        Zygosity::Homozygous => "hom",
                    };
                    format!("planted {} {}→{}", zygo, s.reference, s.alt)
                });
        println!(
            "{:>9}  {:>3}  {:>8}  {:>9.2e}  {truth}",
            call.pos, call.reference, genotype, call.p_adjusted
        );
    }

    let truth: Vec<_> = snps.iter().map(|s| (s.pos, s.alt)).collect();
    let accuracy = score_snp_calls(&report.calls, &truth);
    let het_called = report
        .calls
        .iter()
        .filter(|c| c.second_allele.is_some())
        .count();
    println!(
        "\nTP {}  FP {}  FN {}  precision {:.1}%   ({} calls reported heterozygous)",
        accuracy.true_positives,
        accuracy.false_positives,
        accuracy.false_negatives,
        100.0 * accuracy.precision(),
        het_called
    );
}
