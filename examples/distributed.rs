//! The two MPI decompositions side by side on the simulated runtime:
//! read-split (shared genome) vs genome-split (spread memory), with call
//! agreement, per-rank memory and communication traffic.
//!
//! ```sh
//! cargo run --release --example distributed
//! ```

use gnumap_snp::core::accum::NormAccumulator;
use gnumap_snp::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let reference = simulate::generate_genome(
        &simulate::GenomeConfig {
            length: 30_000,
            repeat_families: 2,
            ..Default::default()
        },
        &mut rng,
    );
    let snps = simulate::generate_snp_catalog(
        &reference,
        &simulate::SnpCatalogConfig {
            count: 8,
            ..Default::default()
        },
        &mut rng,
    );
    let individual = simulate::apply_snps_monoploid(&reference, &snps);
    let read_cfg = ReadSimConfig {
        coverage: 12.0,
        ..Default::default()
    };
    let reads: Vec<_> = simulate_reads(
        &ReadSource::Monoploid(&individual),
        read_cfg.read_count(reference.len()),
        &read_cfg,
        &mut rng,
    )
    .into_iter()
    .map(|r| r.read)
    .collect();

    let cfg = GnumapConfig::default();
    let ranks = 4;

    println!(
        "workload: {} bp genome, {} reads, {} ranks\n",
        reference.len(),
        reads.len(),
        ranks
    );

    let shared = run_read_split::<NormAccumulator>(&reference, &reads, &cfg, ranks)
        .expect("call wire intact");
    let spread = run_genome_split::<NormAccumulator>(&reference, &reads, &cfg, ranks)
        .expect("call wire intact");

    for (name, report, per_rank_note) in [
        (
            "read-split (shared genome)",
            &shared,
            "full genome accumulator on every rank",
        ),
        (
            "genome-split (spread memory)",
            &spread,
            "≈1/ranks of the accumulator per rank",
        ),
    ] {
        let traffic = report.traffic.unwrap();
        println!("{name}:");
        println!("  calls            : {}", report.calls.len());
        println!(
            "  wall time        : {:.2}s ({:.0} seqs/sec)",
            report.elapsed_secs,
            report.seqs_per_sec()
        );
        println!(
            "  accumulator bytes: {} ({per_rank_note})",
            report.accumulator_bytes
        );
        println!("  traffic          : {traffic}\n");
    }

    let shared_calls: Vec<(usize, Base)> = shared.calls.iter().map(|c| (c.pos, c.allele)).collect();
    let spread_calls: Vec<(usize, Base)> = spread.calls.iter().map(|c| (c.pos, c.allele)).collect();
    println!(
        "decomposition-independence: calls identical = {}",
        shared_calls == spread_calls
    );
    let truth: Vec<_> = snps.iter().map(|s| (s.pos, s.alt)).collect();
    let accuracy = score_snp_calls(&shared.calls, &truth);
    println!(
        "accuracy vs truth: TP {} FP {} FN {}",
        accuracy.true_positives, accuracy.false_positives, accuracy.false_negatives
    );
    println!(
        "\nthe genome-split mode pays {}x more messages for its memory saving —\n\
         the paper's Figure 4 trade-off.",
        spread.traffic.unwrap().messages.max(1) / shared.traffic.unwrap().messages.max(1)
    );
}
