//! Reproduce paper **Figure 3** — "Nucleotide additions from Pair-HMM".
//!
//! One read is aligned against a genome window; for a chosen genome
//! position we print each read base's individual marginal contribution and
//! the summed per-symbol totals, illustrating how "all the nucleotides in
//! the read contribute a certain (if not insubstantial) probability" while
//! "only the closest nucleotides contribute a significant amount".
//!
//! ```sh
//! cargo run --release --example marginal_alignment
//! ```

use genome::alphabet::{Base, BASES};
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use pairhmm::marginal::PosteriorAlignment;
use pairhmm::params::PhmmParams;
use pairhmm::pwm::Pwm;

fn main() {
    // A candidate window containing two C's near each other, as in the
    // figure: the read's *other* C can also plausibly align to the focal
    // position, so it contributes noticeably more than unrelated bases.
    // The window is placement-exact (same length as the read), as produced
    // by the mapping engine's seeding stage.
    let window_text = "AGCACTTGGACC";
    let read_text = "AGCACTTGGACC";
    let genome: DnaSeq = window_text.parse().unwrap();
    // Moderate quality, so alignment uncertainty is visible.
    let read = SequencedRead::with_uniform_quality("fig3", read_text.parse().unwrap(), 18);

    let params = PhmmParams::with_gap_rates(0.04, 0.6, 0.03);
    let pwm = Pwm::from_read(&read);
    let window: Vec<Option<Base>> = genome.iter().collect();
    let post = PosteriorAlignment::compute(&pwm, &window, &params);

    // Focal genome position: the first C of the terminal "CC" pair
    // (window index 10, 1-based column 11).
    let focal = 11usize;
    println!("window : {window_text}");
    println!("read   : {read_text}   (uniform Q18)");
    println!(
        "\nIndividual nucleotide contributions to genome position {} ({}):",
        focal - 1,
        genome.get(focal - 1).unwrap()
    );
    println!("{:>5} {:>5} {:>12}", "i", "base", "P(x_i ◇ y_j)");
    for i in 1..=read.len() {
        let p = post.match_posterior(i, focal);
        let bar = "#".repeat((p * 40.0).round() as usize);
        println!(
            "{:>5} {:>5} {:>12.6}  {bar}",
            i,
            read.base(i - 1).map_or('N', Base::to_char),
            p
        );
    }

    // Total per-symbol probabilities for every genome column (the "Total
    // Nucleotide Probabilities" track of the figure).
    let cols = post.column_posteriors(&pwm);
    println!("\nTotal nucleotide probabilities per genome position:");
    println!(
        "{:>4} {:>4} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "j", "ref", "A", "C", "G", "T", "gap"
    );
    for (j, col) in cols.iter().enumerate() {
        let reference = genome.get(j).map_or('N', Base::to_char);
        print!("{:>4} {:>4}", j, reference);
        for k in 0..5 {
            print!(" {:>7.4}", col.probs[k]);
        }
        // Mark the consensus symbol.
        let best = (0..5)
            .max_by(|&a, &b| col.probs[a].total_cmp(&col.probs[b]))
            .unwrap();
        let label = if best < 4 {
            BASES[best].to_char().to_string()
        } else {
            "-".to_string()
        };
        println!("   -> {label}");
    }
    let own = post.match_posterior(11, focal);
    let other_c = post.match_posterior(12, focal);
    let nearest_non_c = post.match_posterior(10, focal);
    println!(
        "\nThe diagonal read base dominates (P = {own:.6}), but the read's\n\
         *other* C (position 12) contributes {:.0}x more to this column than\n\
         the neighbouring non-C base does ({other_c:.2e} vs {nearest_non_c:.2e}) —\n\
         the marginal alignment spreads evidence over all plausible\n\
         alignments instead of committing to one, exactly the effect of the\n\
         paper's Figure 3.",
        other_c / nearest_non_c.max(1e-300)
    );
}
