//! Quickstart: simulate a small genome with planted SNPs, run GNUMAP-SNP
//! end to end, and print the calls against the truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gnumap_snp::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);

    // 1. A 20 kb reference with a couple of repeat families.
    let reference = simulate::generate_genome(
        &simulate::GenomeConfig {
            length: 20_000,
            repeat_families: 2,
            ..Default::default()
        },
        &mut rng,
    );

    // 2. Plant 10 SNPs (dbSNP-like transition bias) into an individual.
    let snps = simulate::generate_snp_catalog(
        &reference,
        &simulate::SnpCatalogConfig {
            count: 10,
            ..Default::default()
        },
        &mut rng,
    );
    let individual = simulate::apply_snps_monoploid(&reference, &snps);

    // 3. Sequence the individual: 62-bp Illumina-profile reads at 12x.
    let read_cfg = ReadSimConfig {
        coverage: 12.0,
        ..Default::default()
    };
    let reads: Vec<_> = simulate_reads(
        &ReadSource::Monoploid(&individual),
        read_cfg.read_count(reference.len()),
        &read_cfg,
        &mut rng,
    )
    .into_iter()
    .map(|r| r.read)
    .collect();
    println!(
        "simulated {} reads over a {} bp genome ({} planted SNPs)",
        reads.len(),
        reference.len(),
        snps.len()
    );

    // 4. Run the full pipeline: k-mer seeding → Pair-HMM marginal
    //    alignment → LRT SNP calling at α = 0.05.
    let report = run_pipeline(&reference, &reads, &GnumapConfig::default());
    println!(
        "mapped {}/{} reads in {:.2}s ({:.0} seqs/sec)\n",
        report.reads_mapped,
        report.reads_processed,
        report.elapsed_secs,
        report.seqs_per_sec()
    );

    // 5. Print the calls annotated against the truth.
    let truth: Vec<_> = snps.iter().map(|s| (s.pos, s.alt)).collect();
    println!(
        "{:>9}  {:>3}  {:>6}  {:>10}  {:>9}  verdict",
        "pos", "ref", "called", "-2logλ", "p(adj)"
    );
    for call in &report.calls {
        let verdict = match truth.iter().find(|&&(p, _)| p == call.pos) {
            Some(&(_, alt)) if call.carries(alt) => "TRUE POSITIVE",
            Some(_) => "WRONG ALLELE",
            None => "false positive",
        };
        let genotype = match call.second_allele {
            Some(second) => format!("{}/{}", call.allele, second),
            None => call.allele.to_string(),
        };
        println!(
            "{:>9}  {:>3}  {:>6}  {:>10.2}  {:>9.2e}  {verdict}",
            call.pos, call.reference, genotype, call.statistic, call.p_adjusted
        );
    }
    let accuracy = score_snp_calls(&report.calls, &truth);
    println!(
        "\nTP {}  FP {}  FN {}  precision {:.1}%  sensitivity {:.1}%",
        accuracy.true_positives,
        accuracy.false_positives,
        accuracy.false_negatives,
        100.0 * accuracy.precision(),
        100.0 * accuracy.sensitivity()
    );
}
