#!/usr/bin/env bash
# Full local CI gate: formatting, lints-as-errors, then the tier-1
# build + test pass and the remaining workspace tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: build + test"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test -q --workspace

echo "==> conformance gate: gnumap verify --fast"
target/release/gnumap verify --fast

echo "CI gate passed."
