#!/usr/bin/env bash
# Full local CI gate: formatting, lints-as-errors, then the tier-1
# build + test pass and the remaining workspace tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (pairhmm hot-loop lints)"
# The kernel crate additionally forbids indexed hot loops (they defeat
# autovectorization) and large stack arrays.
cargo clippy -p pairhmm --all-targets -- \
    -D clippy::needless_range_loop -D clippy::large_stack_arrays

echo "==> cargo clippy + fmt (engine contract crate)"
# The contract crate is the one surface every caller depends on; hold it
# to warnings-as-errors on its own (fast signal even when the workspace
# pass is skipped) and keep it formatted.
cargo fmt -p engine -- --check
cargo clippy -p engine --all-targets -- -D warnings

echo "==> tier-1: build + test"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test -q --workspace

echo "==> conformance gate: gnumap verify --fast"
target/release/gnumap verify --fast

echo "==> trace smoke: --trace-json through the registry drivers"
trace_dir="target/trace-smoke"
rm -rf "$trace_dir"
mkdir -p "$trace_dir"
target/release/gnumap simulate --out-dir "$trace_dir" \
    --genome-len 8000 --snps 6 --coverage 6 --seed 1109 >/dev/null
target/release/gnumap drivers | grep -q '`serial`' || {
    echo "gnumap drivers does not list the serial driver"; exit 1;
}
for driver in serial rayon stream; do
    target/release/gnumap call --reference "$trace_dir/reference.fa" \
        --reads "$trace_dir/reads.fq" --out "$trace_dir/$driver.vcf" \
        --driver "$driver" --trace-json "$trace_dir/$driver.trace.jsonl" \
        >/dev/null
    target/release/gnumap trace-check --trace "$trace_dir/$driver.trace.jsonl" \
        >/dev/null || {
        echo "trace-check rejected the $driver trace:"
        cat "$trace_dir/$driver.trace.jsonl"
        exit 1
    }
done

echo "==> serve smoke: loopback server round trip + clean drain"
smoke_dir="target/serve-smoke"
rm -rf "$smoke_dir"
mkdir -p "$smoke_dir"
target/release/gnumap simulate --out-dir "$smoke_dir" \
    --genome-len 6000 --snps 5 --coverage 8 --seed 404 >/dev/null
serve_log="$smoke_dir/serve.log"
target/release/gnumap serve --reference "$smoke_dir/reference.fa" \
    --addr 127.0.0.1:0 --workers 2 --port-file "$smoke_dir/port" \
    > "$serve_log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
    [[ -s "$smoke_dir/port" ]] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$serve_log"; exit 1; }
    sleep 0.1
done
addr="$(cat "$smoke_dir/port")"
target/release/gnumap client --addr "$addr" --ping >/dev/null
target/release/gnumap client --addr "$addr" --reads "$smoke_dir/reads.fq" \
    --out "$smoke_dir/served.vcf" >/dev/null
target/release/gnumap client --addr "$addr" --stats >/dev/null
target/release/gnumap client --addr "$addr" --shutdown >/dev/null
wait "$serve_pid"
grep -q "drained:" "$serve_log" || {
    echo "server did not report a clean drain:"; cat "$serve_log"; exit 1;
}
grep -qv "^#" "$smoke_dir/served.vcf" || {
    echo "served VCF has no call records"; exit 1;
}

echo "==> benchmark harness smoke: scripts/bench.sh --quick"
scripts/bench.sh --quick

echo "CI gate passed."
