#!/usr/bin/env bash
# Full local CI gate: formatting, lints-as-errors, then the tier-1
# build + test pass and the remaining workspace tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (pairhmm hot-loop lints)"
# The kernel crate additionally forbids indexed hot loops (they defeat
# autovectorization) and large stack arrays.
cargo clippy -p pairhmm --all-targets -- \
    -D clippy::needless_range_loop -D clippy::large_stack_arrays

echo "==> tier-1: build + test"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test -q --workspace

echo "==> conformance gate: gnumap verify --fast"
target/release/gnumap verify --fast

echo "==> benchmark harness smoke: scripts/bench.sh --quick"
scripts/bench.sh --quick

echo "CI gate passed."
