#!/usr/bin/env bash
# Pair-HMM throughput tracking: builds the bench harness and writes
# BENCH_phmm.json at the repo root.
#
#   scripts/bench.sh          full measurement windows (stable numbers)
#   scripts/bench.sh --quick  CI smoke test: compiles + asserts non-zero
#                             throughput, tiny workload
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --bin bench_phmm

# Quick (CI smoke) runs write under target/ so they never clobber the
# tracked full-measurement numbers at the repo root.
out="BENCH_phmm.json"
for arg in "$@"; do
    [[ "$arg" == "--quick" ]] && out="target/BENCH_phmm_quick.json"
done

exec target/release/bench_phmm "$@" --out "$out"
