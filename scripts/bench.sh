#!/usr/bin/env bash
# Throughput tracking: builds the bench harness and writes
# BENCH_phmm.json (kernel + pipeline) and BENCH_server.json (serving
# layer) at the repo root.
#
#   scripts/bench.sh          full measurement windows (stable numbers)
#   scripts/bench.sh --quick  CI smoke test: compiles + asserts non-zero
#                             throughput, tiny workload
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --bin bench_phmm --bin bench_server

# Quick (CI smoke) runs write under target/ so they never clobber the
# tracked full-measurement numbers at the repo root.
phmm_out="BENCH_phmm.json"
server_out="BENCH_server.json"
for arg in "$@"; do
    if [[ "$arg" == "--quick" ]]; then
        phmm_out="target/BENCH_phmm_quick.json"
        server_out="target/BENCH_server_quick.json"
    fi
done

target/release/bench_phmm "$@" --out "$phmm_out"
target/release/bench_server "$@" --out "$server_out"
