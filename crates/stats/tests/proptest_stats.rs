//! Property tests over the statistical layer.

use gnumap_stats::chi2::ChiSquared;
use gnumap_stats::fdr::{benjamini_hochberg, bh_adjust};
use gnumap_stats::lrt::{diploid_lrt, monoploid_lrt, BaseCounts};
use gnumap_stats::special::{reg_gamma_lower, reg_gamma_upper};
use proptest::prelude::*;

fn counts() -> impl Strategy<Value = BaseCounts> {
    proptest::array::uniform5(0.0f64..50.0)
        .prop_filter("non-zero total", |z| z.iter().sum::<f64>() > 0.1)
        .prop_map(BaseCounts::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lrt_statistic_is_nonnegative_and_p_valid(z in counts()) {
        for outcome in [monoploid_lrt(&z), diploid_lrt(&z)].into_iter().flatten() {
            prop_assert!(outcome.statistic >= 0.0);
            prop_assert!((0.0..=1.0).contains(&outcome.p_raw));
            prop_assert!((0.0..=1.0).contains(&outcome.p_adjusted));
            prop_assert!(outcome.p_adjusted >= outcome.p_raw);
            prop_assert!(outcome.best < 5 && outcome.second < 5);
            prop_assert!(outcome.best != outcome.second);
        }
    }

    #[test]
    fn diploid_statistic_dominates_monoploid(z in counts()) {
        let m = monoploid_lrt(&z).unwrap().statistic;
        let d = diploid_lrt(&z).unwrap().statistic;
        prop_assert!(d >= m - 1e-9, "diploid {d} < monoploid {m}");
    }

    #[test]
    fn concentrating_mass_increases_significance(z in counts()) {
        // Moving one unit of mass from the weakest to the strongest symbol
        // can only sharpen the monoploid test.
        let before = monoploid_lrt(&z).unwrap();
        let order = z.order_desc();
        let mut sharper = z.0;
        let moved = sharper[order[4]].min(1.0);
        sharper[order[4]] -= moved;
        sharper[order[0]] += moved;
        let after = monoploid_lrt(&BaseCounts::new(sharper)).unwrap();
        prop_assert!(
            after.statistic >= before.statistic - 1e-9,
            "before {} after {}",
            before.statistic,
            after.statistic
        );
    }

    #[test]
    fn scaling_counts_scales_statistic_up(z in counts(), factor in 1.1f64..5.0) {
        // More of identical evidence is more significant (LRT grows
        // linearly in n at fixed proportions).
        let base = monoploid_lrt(&z).unwrap().statistic;
        prop_assume!(base > 1e-6);
        let scaled: [f64; 5] = std::array::from_fn(|k| z.0[k] * factor);
        let grown = monoploid_lrt(&BaseCounts::new(scaled)).unwrap().statistic;
        prop_assert!((grown - base * factor).abs() < 1e-6 * grown.max(1.0));
    }

    #[test]
    fn chi2_cdf_is_monotone_and_quantile_inverts(
        k in 1.0f64..20.0,
        x in 0.0f64..100.0,
        p in 0.0001f64..0.9999,
    ) {
        let d = ChiSquared::new(k);
        prop_assert!(d.cdf(x) <= d.cdf(x + 0.5) + 1e-12);
        prop_assert!((d.cdf(x) + d.sf(x) - 1.0).abs() < 1e-10);
        let q = d.quantile(p);
        prop_assert!((d.cdf(q) - p).abs() < 1e-8, "cdf(quantile({p})) = {}", d.cdf(q));
    }

    #[test]
    fn incomplete_gamma_complement(a in 0.1f64..30.0, x in 0.0f64..80.0) {
        prop_assert!((reg_gamma_lower(a, x) + reg_gamma_upper(a, x) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn bh_rejections_are_prefix_of_sorted_pvalues(
        mut pvals in proptest::collection::vec(0.0f64..1.0, 1..60),
        q in 0.01f64..0.3,
    ) {
        let rejected = benjamini_hochberg(&pvals, q);
        // Every rejected p-value must be <= every accepted p-value.
        let rejected_set: std::collections::HashSet<usize> = rejected.iter().copied().collect();
        let max_rej = rejected.iter().map(|&i| pvals[i]).fold(f64::NEG_INFINITY, f64::max);
        for (i, &p) in pvals.iter().enumerate() {
            if !rejected_set.contains(&i) {
                prop_assert!(p >= max_rej || rejected.is_empty());
            }
        }
        // Adjusted p-values are a monotone transform.
        let adj = bh_adjust(&pvals);
        pvals.sort_by(f64::total_cmp);
        let mut adj_sorted = adj.clone();
        adj_sorted.sort_by(f64::total_cmp);
        for w in adj_sorted.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn het_gate_p_is_valid_and_only_diploid(z in counts()) {
        let mono = monoploid_lrt(&z).unwrap();
        prop_assert!(mono.p_het_adjusted.is_none());
        let dip = diploid_lrt(&z).unwrap();
        let p_het = dip.p_het_adjusted.expect("diploid carries the het gate");
        prop_assert!((0.0..=1.0).contains(&p_het));
    }
}

/// A p-value in `(1e-12, 1 - 1e-12)` with deliberate tail coverage: the
/// `tail` selector picks the bulk, the low tail (log-uniform down to
/// 1e-12) or the matching high tail.
fn quantile_p() -> impl Strategy<Value = f64> {
    (1e-9f64..1.0, 0u8..3).prop_map(|(u, tail)| match tail {
        0 => (u * (1.0 - 2e-12) + 1e-12).min(1.0 - 1e-12),
        1 => 10f64.powf(-12.0 + 11.9 * u),
        _ => 1.0 - 10f64.powf(-12.0 + 11.9 * u),
    })
}

// Quantile/CDF inversion and BH behaviour under ties.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quantile_inverts_cdf_and_sf(p in quantile_p(), d in 0usize..3) {
        let dist = ChiSquared::new([1.0, 2.0, 5.0][d]);
        let x = dist.quantile(p);
        prop_assert!(x.is_finite() && x >= 0.0);
        let round = dist.cdf(x);
        // Relative in the low tail (where p itself is tiny), absolute
        // elsewhere; quantile is documented to ~1e-12 relative.
        prop_assert!(
            (round - p).abs() <= 1e-9 * p.max(1e-3),
            "cdf(quantile({p})) = {round} (dof {})", dist.dof()
        );
        prop_assert!(
            (dist.sf(x) - (1.0 - p)).abs() <= 1e-9,
            "sf(quantile({p})) = {} (dof {})", dist.sf(x), dist.dof()
        );
    }

    #[test]
    fn quantile_is_monotone(p1 in quantile_p(), p2 in quantile_p(), d in 0usize..3) {
        let dist = ChiSquared::new([1.0, 2.0, 5.0][d]);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(dist.quantile(lo) <= dist.quantile(hi) + 1e-12);
    }

    #[test]
    fn bh_adjust_respects_order_under_ties(
        picks in proptest::collection::vec(0usize..6, 1..40),
    ) {
        // Draw from a coarse grid so repeated (tied) p-values are common.
        const GRID: [f64; 6] = [0.0, 0.001, 0.02, 0.3, 0.5, 1.0];
        let pvals: Vec<f64> = picks.iter().map(|&i| GRID[i]).collect();
        let adj = bh_adjust(&pvals);
        prop_assert_eq!(adj.len(), pvals.len());
        for (&p, &a) in pvals.iter().zip(&adj) {
            prop_assert!((0.0..=1.0).contains(&a));
            prop_assert!(a >= p - 1e-12, "adjusted {a} below raw {p}");
        }
        // Monotone: a smaller raw p never gets a larger adjusted p, and
        // exact ties get exactly equal adjusted values.
        for (i, &pi) in pvals.iter().enumerate() {
            for (j, &pj) in pvals.iter().enumerate() {
                if pi < pj {
                    prop_assert!(adj[i] <= adj[j] + 1e-12);
                } else if pi == pj {
                    prop_assert!(
                        adj[i] == adj[j],
                        "tied p = {pi} adjusted to {} vs {} (indices {i}, {j})",
                        adj[i], adj[j]
                    );
                }
            }
        }
    }
}
