//! Benjamini–Hochberg false-discovery-rate control.
//!
//! The paper offers "a p-value cutoff or a false discovery control" as the
//! SNP-calling decision rule; this module is the latter. Given the p-values
//! of every testable genome position, BH at level `q` finds the largest k
//! such that `p_(k) <= (k/m)·q` and rejects the k smallest p-values.

/// The BH rejection threshold for p-values `pvals` at FDR level `q`.
///
/// Returns `None` when nothing can be rejected. The threshold is the
/// largest order statistic satisfying the BH condition; callers reject every
/// p-value `<=` the returned threshold.
pub fn bh_threshold(pvals: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "FDR level must be in [0,1]");
    if pvals.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = pvals.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("p-values must not be NaN"));
    let m = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .rev()
        .find(|(i, &p)| p <= ((i + 1) as f64 / m) * q)
        .map(|(_, &p)| p)
}

/// Indices of the hypotheses rejected by BH at level `q`, in input order.
pub fn benjamini_hochberg(pvals: &[f64], q: f64) -> Vec<usize> {
    match bh_threshold(pvals, q) {
        None => Vec::new(),
        Some(thresh) => pvals
            .iter()
            .enumerate()
            .filter(|(_, &p)| p <= thresh)
            .map(|(i, _)| i)
            .collect(),
    }
}

/// BH-adjusted p-values ("q-values"): `p_adj_(i) = min over j >= i of
/// (m / j) · p_(j)`, clipped at 1. Rejecting `p_adj <= q` is equivalent to
/// [`benjamini_hochberg`] at level `q`.
pub fn bh_adjust(pvals: &[f64]) -> Vec<f64> {
    let m = pvals.len();
    if m == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| pvals[a].partial_cmp(&pvals[b]).expect("NaN p-value"));
    let mut adjusted = vec![0.0; m];
    let mut running_min = 1.0f64;
    for rank in (0..m).rev() {
        let idx = order[rank];
        let scaled = pvals[idx] * m as f64 / (rank + 1) as f64;
        running_min = running_min.min(scaled);
        adjusted[idx] = running_min.min(1.0);
    }
    adjusted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_example() {
        // Classic BH worked example at q = 0.05.
        let p = [0.01, 0.04, 0.03, 0.005, 0.55, 0.3];
        // sorted: 0.005, 0.01, 0.03, 0.04, 0.3, 0.55; thresholds k/6*0.05:
        // 0.0083, 0.0167, 0.025, 0.033, 0.0417, 0.05 → largest k with
        // p_(k) <= thr is k=2 (0.01 <= 0.0167).
        assert_eq!(bh_threshold(&p, 0.05), Some(0.01));
        assert_eq!(benjamini_hochberg(&p, 0.05), vec![0, 3]);
    }

    #[test]
    fn rejects_nothing_when_all_large() {
        let p = [0.9, 0.5, 0.7];
        assert_eq!(bh_threshold(&p, 0.05), None);
        assert!(benjamini_hochberg(&p, 0.05).is_empty());
    }

    #[test]
    fn rejects_everything_when_all_tiny() {
        let p = [1e-8, 1e-9, 1e-7];
        assert_eq!(benjamini_hochberg(&p, 0.05), vec![0, 1, 2]);
    }

    #[test]
    fn empty_input() {
        assert_eq!(bh_threshold(&[], 0.1), None);
        assert!(benjamini_hochberg(&[], 0.1).is_empty());
        assert!(bh_adjust(&[]).is_empty());
    }

    #[test]
    fn adjusted_p_equivalence() {
        // Rejecting adj <= q must equal the direct BH rejection set.
        let p = [
            0.001, 0.008, 0.039, 0.041, 0.042, 0.06, 0.074, 0.205, 0.5, 0.99,
        ];
        for &q in &[0.01, 0.05, 0.1, 0.25] {
            let direct: Vec<usize> = benjamini_hochberg(&p, q);
            let adj = bh_adjust(&p);
            let via_adj: Vec<usize> = (0..p.len()).filter(|&i| adj[i] <= q).collect();
            assert_eq!(direct, via_adj, "mismatch at q={q}");
        }
    }

    #[test]
    fn adjusted_ps_are_monotone_in_raw_order() {
        let p = [0.04, 0.001, 0.2, 0.03];
        let adj = bh_adjust(&p);
        // Sorting raw ps must sort adjusted ps identically.
        let mut idx: Vec<usize> = (0..4).collect();
        idx.sort_by(|&a, &b| p[a].partial_cmp(&p[b]).unwrap());
        for w in idx.windows(2) {
            assert!(adj[w[0]] <= adj[w[1]]);
        }
        assert!(adj.iter().all(|&a| (0.0..=1.0).contains(&a)));
    }

    #[test]
    fn never_rejects_above_threshold_property() {
        // The DESIGN.md invariant: every rejected p-value is <= the BH
        // threshold, every kept one above it.
        let p = [0.002, 0.009, 0.012, 0.021, 0.033, 0.26, 0.44, 0.71];
        let q = 0.05;
        if let Some(t) = bh_threshold(&p, q) {
            let rejected = benjamini_hochberg(&p, q);
            for (i, &pi) in p.iter().enumerate() {
                assert_eq!(rejected.contains(&i), pi <= t);
            }
        }
    }

    #[test]
    #[should_panic]
    fn bad_q_rejected() {
        let _ = bh_threshold(&[0.5], 1.5);
    }
}
