//! The chi-squared distribution.
//!
//! The paper's asymptotic result `-2 log λ(z) → χ²₁` converts LRT statistics
//! to p-values, and SNP cutoffs compare the statistic to the `(1 - α/5)`
//! quantile of `χ²₁` (the α/5 correction accounts for testing each of the
//! five symbols against the background).

use crate::special::{reg_gamma_lower, reg_gamma_upper};

/// Chi-squared distribution with `k` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    k: f64,
}

impl ChiSquared {
    /// Construct with `k` degrees of freedom (`k > 0`, need not be integer).
    pub fn new(k: f64) -> ChiSquared {
        assert!(k > 0.0 && k.is_finite(), "degrees of freedom must be > 0");
        ChiSquared { k }
    }

    /// The paper's workhorse: one degree of freedom.
    pub fn one() -> ChiSquared {
        ChiSquared { k: 1.0 }
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> f64 {
        self.k
    }

    /// `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            reg_gamma_lower(self.k / 2.0, x / 2.0)
        }
    }

    /// Survival function `P(X > x)` — the p-value of an observed LRT
    /// statistic. Computed through the upper incomplete gamma so extreme
    /// tails keep relative precision.
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            reg_gamma_upper(self.k / 2.0, x / 2.0)
        }
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 || (x == 0.0 && self.k < 2.0) {
            return if x == 0.0 && self.k < 2.0 {
                f64::INFINITY
            } else {
                0.0
            };
        }
        if x == 0.0 {
            return if self.k == 2.0 { 0.5 } else { 0.0 };
        }
        let half_k = self.k / 2.0;
        ((half_k - 1.0) * x.ln() - x / 2.0 - half_k * 2f64.ln() - crate::special::ln_gamma(half_k))
            .exp()
    }

    /// Quantile (inverse CDF): the smallest `x` with `cdf(x) >= p`.
    ///
    /// Solved by bisection refined with Newton steps; accurate to ~1e-12
    /// relative. `p` must lie in `[0, 1)`; `p = 0` returns 0.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1), got {p}");
        if p == 0.0 {
            return 0.0;
        }
        // Bracket: mean + enough standard deviations, grown until it covers p.
        let mut lo = 0.0f64;
        let mut hi = self.k + 10.0 * (2.0 * self.k).sqrt() + 10.0;
        while self.cdf(hi) < p {
            hi *= 2.0;
        }
        // Bisection to a rough root, then Newton polish.
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo <= 1e-15 * hi {
                break;
            }
        }
        let mut x = 0.5 * (lo + hi);
        for _ in 0..4 {
            let f = self.cdf(x) - p;
            let d = self.pdf(x);
            if d > 0.0 && d.is_finite() {
                let step = f / d;
                let next = x - step;
                if next > 0.0 && next.is_finite() {
                    x = next;
                }
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "{a} != {b} (tol {tol})"
        );
    }

    #[test]
    fn chi2_1_reference_values() {
        // Reference values from R: pchisq(x, df = 1).
        let d = ChiSquared::one();
        close(d.cdf(1.0), 0.682_689_492_137_086, 1e-12);
        close(d.cdf(3.841_458_820_694_124), 0.95, 1e-12);
        close(d.cdf(6.634_896_601_021_213), 0.99, 1e-12);
        close(d.sf(10.827_566_170_662_733), 1e-3, 1e-9);
    }

    #[test]
    fn chi2_2_is_exponential() {
        // χ²₂ is Exp(1/2): CDF = 1 - e^{-x/2}.
        let d = ChiSquared::new(2.0);
        for &x in &[0.3, 1.0, 4.0, 12.0] {
            close(d.cdf(x), 1.0 - (-x / 2.0).exp(), 1e-13);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &k in &[1.0, 2.0, 5.0, 17.0] {
            let d = ChiSquared::new(k);
            for &p in &[0.001, 0.05, 0.5, 0.95, 0.999, 0.999_999] {
                close(d.cdf(d.quantile(p)), p, 1e-10);
            }
        }
    }

    #[test]
    fn paper_cutoff_alpha_over_five() {
        // The paper compares -2 log λ with the (1 - α/5) quantile of χ²₁.
        // For α = 0.05 that is the 0.99 quantile ≈ 6.6349.
        let d = ChiSquared::one();
        close(d.quantile(1.0 - 0.05 / 5.0), 6.634_896_601_021_213, 1e-10);
    }

    #[test]
    fn sf_complements_cdf() {
        let d = ChiSquared::new(3.0);
        for &x in &[0.1, 1.0, 5.0, 25.0] {
            close(d.cdf(x) + d.sf(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        // Trapezoid integral of the pdf matches the CDF increment.
        let d = ChiSquared::new(4.0);
        let (a, b) = (1.0, 6.0);
        let n = 20_000;
        let h = (b - a) / n as f64;
        let mut integral = 0.5 * (d.pdf(a) + d.pdf(b));
        for i in 1..n {
            integral += d.pdf(a + i as f64 * h);
        }
        integral *= h;
        close(integral, d.cdf(b) - d.cdf(a), 1e-8);
    }

    #[test]
    fn negative_arguments() {
        let d = ChiSquared::one();
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.sf(-1.0), 1.0);
        assert_eq!(d.pdf(-1.0), 0.0);
    }

    #[test]
    fn extreme_tail_quantile() {
        let d = ChiSquared::one();
        // qchisq(1 - 1e-10, 1) ≈ 41.8214628
        close(d.quantile(1.0 - 1e-10), 41.821_462_8, 1e-6);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_p_one() {
        let _ = ChiSquared::one().quantile(1.0);
    }
}
