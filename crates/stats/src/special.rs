//! Gamma-family special functions.
//!
//! Implemented from scratch so the workspace has no external math
//! dependency: a Lanczos approximation for `ln Γ(x)` and the standard
//! series / continued-fraction pair for the regularized incomplete gamma
//! functions (Numerical Recipes §6.1–6.2 structure, rederived). Accuracy is
//! ~1e-12 over the ranges the SNP caller touches (half-integer shapes,
//! moderate arguments), verified against high-precision reference values in
//! the tests.

/// Lanczos coefficients for g = 7, n = 9 (Godfrey's table); gives ~15
/// significant digits for real x > 0.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Panics on non-positive or non-finite input — the SNP caller only ever
/// evaluates positive shapes, so a bad argument is a programming error.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(
        x > 0.0 && x.is_finite(),
        "ln_gamma requires finite x > 0, got {x}"
    );
    if x < 0.5 {
        // Reflection formula keeps the Lanczos argument in its sweet spot.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Maximum iterations for the series/continued-fraction loops. Both
/// converge in tens of iterations for reasonable arguments; hitting the cap
/// means the argument was extreme, and we return the best estimate.
const MAX_ITER: usize = 500;
const EPS: f64 = 1e-15;

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0`, `P(a, ∞) = 1`, monotone increasing in `x`.
pub fn reg_gamma_lower(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive, got {a}");
    assert!(x >= 0.0, "argument must be non-negative, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
///
/// Computed directly via the continued fraction when `x` is large so tiny
/// tail probabilities keep full relative precision (important for the
/// extreme p-values strong SNPs produce).
pub fn reg_gamma_upper(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive, got {a}");
    assert!(x >= 0.0, "argument must be non-negative, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cont_fraction(a, x)
    }
}

/// Series expansion of `P(a, x)`, accurate for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut term = 1.0 / a;
    let mut sum = term;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Lentz's continued fraction for `Q(a, x)`, accurate for `x >= a + 1`.
fn gamma_cont_fraction(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "{a} != {b} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_integers_match_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..=20u32 {
            close(ln_gamma(n as f64), fact.ln(), 1e-13);
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π, Γ(3/2) = √π/2
        let sqrt_pi = std::f64::consts::PI.sqrt();
        close(ln_gamma(0.5), sqrt_pi.ln(), 1e-13);
        close(ln_gamma(1.5), (sqrt_pi / 2.0).ln(), 1e-13);
        close(ln_gamma(2.5), (3.0 * sqrt_pi / 4.0).ln(), 1e-13);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x·Γ(x)
        for &x in &[0.1, 0.7, 1.3, 4.6, 11.25, 101.5] {
            close(ln_gamma(x + 1.0), ln_gamma(x) + x.ln(), 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_non_positive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn incomplete_gamma_boundaries() {
        for &a in &[0.5, 1.0, 2.5, 10.0] {
            assert_eq!(reg_gamma_lower(a, 0.0), 0.0);
            assert_eq!(reg_gamma_upper(a, 0.0), 1.0);
            close(reg_gamma_lower(a, 1e6), 1.0, 1e-12);
        }
    }

    #[test]
    fn p_plus_q_is_one() {
        for &a in &[0.5, 1.0, 3.7, 25.0] {
            for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 50.0] {
                close(reg_gamma_lower(a, x) + reg_gamma_upper(a, x), 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn exponential_special_case() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 1.0, 2.5, 8.0] {
            close(reg_gamma_lower(1.0, x), 1.0 - (-x).exp(), 1e-13);
        }
    }

    #[test]
    fn erf_special_case() {
        // P(1/2, x) = erf(√x); reference erf values from mpmath.
        close(reg_gamma_lower(0.5, 1.0), 0.842_700_792_949_714_9, 1e-12); // erf(1)
        close(reg_gamma_lower(0.5, 4.0), 0.995_322_265_018_952_7, 1e-12); // erf(2)
        close(reg_gamma_lower(0.5, 0.25), 0.520_499_877_813_046_5, 1e-12); // erf(0.5)
    }

    #[test]
    fn monotone_in_x() {
        let a = 2.3;
        let mut last = -1.0;
        for i in 0..200 {
            let x = i as f64 * 0.25;
            let p = reg_gamma_lower(a, x);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn deep_tail_keeps_relative_precision() {
        // Q(0.5, 50) = erfc(√50) ≈ 1.5417e-23; computed directly via the
        // continued fraction so it should carry many correct digits.
        let q = reg_gamma_upper(0.5, 50.0);
        close(q, 1.541_725_790_028_002e-23, 1e-9);
    }
}
