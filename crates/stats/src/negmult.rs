//! The (continuous) negative multinomial distribution.
//!
//! The paper models the per-position evidence vector `z` as "a continuous
//! negative multinomial distribution with read base proportions p_A, p_C,
//! p_G, p_T and p_gap". This module provides that distribution explicitly:
//! the log-density with the continuous extension (factorials → gamma
//! functions), moments, and exact sampling via the gamma–Poisson mixture
//! representation — used by tests to verify the LRT's behaviour on data
//! actually drawn from the model.
//!
//! Parameterisation: `NM(r; q, p_1..p_k)` counts outcomes of each of `k`
//! categories (probability `p_i` each) observed before the `r`-th stop
//! event (probability `q = 1 − Σ p_i` per trial):
//!
//! ```text
//! f(z) = Γ(r + Σz) / (Γ(r) ∏ Γ(z_i + 1)) · q^r ∏ p_i^{z_i}
//! ```

use crate::special::ln_gamma;

/// Negative multinomial distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct NegativeMultinomial {
    /// Stop count `r > 0` (need not be integer).
    r: f64,
    /// Per-category probabilities; `q = 1 − Σp` must be positive.
    p: Vec<f64>,
}

impl NegativeMultinomial {
    /// Construct; validates `r > 0`, `p_i ≥ 0`, `Σp < 1`.
    pub fn new(r: f64, p: Vec<f64>) -> Result<NegativeMultinomial, String> {
        if !(r > 0.0 && r.is_finite()) {
            return Err(format!("r must be positive, got {r}"));
        }
        let sum: f64 = p.iter().sum();
        if p.iter().any(|&x| x < 0.0 || !x.is_finite()) {
            return Err("category probabilities must be non-negative".into());
        }
        if sum >= 1.0 {
            return Err(format!("category probabilities sum to {sum} >= 1"));
        }
        Ok(NegativeMultinomial { r, p })
    }

    /// Stop probability `q = 1 − Σ p_i`.
    pub fn stop_prob(&self) -> f64 {
        1.0 - self.p.iter().sum::<f64>()
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.p.len()
    }

    /// Log-density at a (possibly fractional) count vector `z`.
    pub fn log_pmf(&self, z: &[f64]) -> f64 {
        assert_eq!(z.len(), self.p.len(), "dimension mismatch");
        assert!(z.iter().all(|&x| x >= 0.0), "counts must be non-negative");
        let total: f64 = z.iter().sum();
        let q = self.stop_prob();
        let mut acc = ln_gamma(self.r + total) - ln_gamma(self.r) + self.r * q.ln();
        for (zi, pi) in z.iter().zip(&self.p) {
            acc -= ln_gamma(zi + 1.0);
            if *zi > 0.0 {
                acc += zi * pi.ln(); // 0·ln 0 = 0 convention
            } else if *pi == 0.0 {
                // z_i = 0 with p_i = 0 contributes nothing.
            }
        }
        acc
    }

    /// Mean vector: `E[z_i] = r · p_i / q`.
    pub fn mean(&self) -> Vec<f64> {
        let q = self.stop_prob();
        self.p.iter().map(|pi| self.r * pi / q).collect()
    }

    /// Variance of each component: `Var[z_i] = r p_i (p_i + q) / q²`.
    pub fn variance(&self) -> Vec<f64> {
        let q = self.stop_prob();
        self.p
            .iter()
            .map(|pi| self.r * pi * (pi + q) / (q * q))
            .collect()
    }

    /// Draw one sample via the gamma–Poisson mixture: `G ~ Gamma(r, (1−q)/q
    /// scale …)` then `z_i ~ Poisson(G · p_i / (1 − q))` — equivalently
    /// `z_i ~ Poisson(λ p_i / q)` with `λ ~ Gamma(r, 1)`.
    pub fn sample<R: rand::Rng>(&self, rng: &mut R) -> Vec<f64> {
        let q = self.stop_prob();
        let lambda = sample_gamma(self.r, rng);
        self.p
            .iter()
            .map(|pi| sample_poisson(lambda * pi / q, rng) as f64)
            .collect()
    }
}

/// Marsaglia–Tsang gamma sampler, shape `a > 0`, scale 1.
pub fn sample_gamma<R: rand::Rng>(a: f64, rng: &mut R) -> f64 {
    assert!(a > 0.0, "shape must be positive");
    if a < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) · U^{1/a}.
        let u: f64 = rng.random();
        return sample_gamma(a + 1.0, rng) * u.powf(1.0 / a);
    }
    let d = a - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let (u1, u2): (f64, f64) = (rng.random(), rng.random());
        let x = (-2.0 * u1.max(1e-300).ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Poisson sampler: Knuth's product method for small means, normal
/// approximation with continuity correction for large ones.
pub fn sample_poisson<R: rand::Rng>(lambda: f64, rng: &mut R) -> u64 {
    assert!(lambda >= 0.0, "mean must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.random();
        let mut count = 0u64;
        while product > limit {
            let u: f64 = rng.random();
            product *= u;
            count += 1;
        }
        count
    } else {
        // Normal approximation (adequate for tests and simulators).
        let (u1, u2): (f64, f64) = (rng.random(), rng.random());
        let z = (-2.0 * u1.max(1e-300).ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let x = lambda + lambda.sqrt() * z + 0.5;
        if x < 0.0 {
            0
        } else {
            x as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> impl rand::Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn construction_validates() {
        assert!(NegativeMultinomial::new(2.0, vec![0.2, 0.3]).is_ok());
        assert!(NegativeMultinomial::new(0.0, vec![0.2]).is_err());
        assert!(NegativeMultinomial::new(1.0, vec![0.6, 0.5]).is_err());
        assert!(NegativeMultinomial::new(1.0, vec![-0.1]).is_err());
    }

    #[test]
    fn negative_binomial_special_case() {
        // k = 1 reduces to the negative binomial NB(r, p): for integer
        // counts the pmf is C(z + r − 1, z) q^r p^z.
        let nm = NegativeMultinomial::new(3.0, vec![0.4]).unwrap();
        // z = 2: C(4, 2) · 0.6³ · 0.4² = 6 · 0.216 · 0.16 = 0.20736.
        let pmf = nm.log_pmf(&[2.0]).exp();
        assert!((pmf - 0.20736).abs() < 1e-10, "pmf {pmf}");
    }

    #[test]
    fn pmf_sums_to_one_over_small_grid() {
        // Two categories: summing the pmf over a generous integer grid
        // should approach 1.
        let nm = NegativeMultinomial::new(2.0, vec![0.25, 0.15]).unwrap();
        let mut total = 0.0;
        for a in 0..60 {
            for b in 0..60 {
                total += nm.log_pmf(&[a as f64, b as f64]).exp();
            }
        }
        assert!((total - 1.0).abs() < 1e-6, "grid mass {total}");
    }

    #[test]
    fn sample_moments_match_theory() {
        let nm = NegativeMultinomial::new(4.0, vec![0.3, 0.2, 0.1]).unwrap();
        let mut r = rng(11);
        let n = 20_000;
        let mut sums = [0.0; 3];
        for _ in 0..n {
            let z = nm.sample(&mut r);
            for (s, zi) in sums.iter_mut().zip(&z) {
                *s += zi;
            }
        }
        let mean_hat: Vec<f64> = sums.iter().map(|s| s / n as f64).collect();
        for (m_hat, m) in mean_hat.iter().zip(nm.mean()) {
            assert!(
                (m_hat - m).abs() / m < 0.05,
                "sample mean {m_hat} vs theory {m}"
            );
        }
    }

    #[test]
    fn gamma_sampler_moments() {
        let mut r = rng(12);
        for &shape in &[0.5f64, 1.0, 3.7, 12.0] {
            let n = 30_000;
            let mut sum = 0.0;
            let mut sum2 = 0.0;
            for _ in 0..n {
                let x = sample_gamma(shape, &mut r);
                sum += x;
                sum2 += x * x;
            }
            let mean = sum / n as f64;
            let var = sum2 / n as f64 - mean * mean;
            assert!(
                (mean - shape).abs() / shape < 0.05,
                "shape {shape}: mean {mean}"
            );
            assert!(
                (var - shape).abs() / shape < 0.12,
                "shape {shape}: var {var}"
            );
        }
    }

    #[test]
    fn poisson_sampler_moments() {
        let mut r = rng(13);
        for &lambda in &[0.5f64, 4.0, 25.0, 200.0] {
            let n = 30_000;
            let mut sum = 0.0;
            for _ in 0..n {
                sum += sample_poisson(lambda, &mut r) as f64;
            }
            let mean = sum / n as f64;
            assert!(
                (mean - lambda).abs() / lambda < 0.05,
                "λ {lambda}: mean {mean}"
            );
        }
        assert_eq!(sample_poisson(0.0, &mut r), 0);
    }

    #[test]
    fn lrt_on_model_draws_controls_type_one_error() {
        // Draw counts from a *uniform* negative multinomial (the LRT's
        // null) and check the monoploid test's false-positive rate is at
        // or below its nominal α. This ties the distribution module to
        // the paper's testing framework.
        use crate::lrt::{monoploid_lrt, BaseCounts};
        let nm = NegativeMultinomial::new(6.0, vec![0.16; 5]).unwrap();
        let mut r = rng(14);
        let alpha = 0.05;
        let trials = 4_000;
        let mut rejections = 0;
        for _ in 0..trials {
            let z = nm.sample(&mut r);
            let counts = BaseCounts::new([z[0], z[1], z[2], z[3], z[4]]);
            if let Some(outcome) = monoploid_lrt(&counts) {
                if outcome.significant(alpha) {
                    rejections += 1;
                }
            }
        }
        let rate = rejections as f64 / trials as f64;
        assert!(
            rate <= alpha * 1.5,
            "type-I error {rate} should not exceed α = {alpha} by much"
        );
    }

    #[test]
    fn continuous_counts_are_accepted() {
        let nm = NegativeMultinomial::new(2.5, vec![0.3, 0.3]).unwrap();
        let lp = nm.log_pmf(&[1.5, 0.25]);
        assert!(lp.is_finite());
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let nm = NegativeMultinomial::new(1.0, vec![0.5]).unwrap();
        let _ = nm.log_pmf(&[1.0, 2.0]);
    }
}
