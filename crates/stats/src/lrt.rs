//! The paper's likelihood ratio tests (Section V-C / VI Step 3).
//!
//! At each genome position the mapper accumulates a continuous count vector
//! `z = (z_A, z_C, z_G, z_T, z_gap)`. Under the null every symbol is equally
//! likely (`p_k = 0.2` — pure background noise); the alternatives say one
//! (monoploid, Equation 1) or one-or-two (diploid, Equation 2) symbols stand
//! above the background. The LRT statistic is
//!
//! ```text
//! λ(z) = 0.2^n / max over H1 MLEs of ∏ p̂_k^{z_k},   -2 log λ → χ²₁
//! ```
//!
//! and significance uses the `(1 - α/5)` χ²₁ quantile — equivalently an
//! adjusted p-value of `5 · SF(-2 log λ)` — because each of the five symbols
//! is implicitly tested against the background.

use crate::chi2::ChiSquared;

/// Number of tracked symbols (A, C, G, T, gap).
pub const NUM_SYMBOLS: usize = 5;

/// The continuous per-position count vector `z`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BaseCounts(pub [f64; NUM_SYMBOLS]);

impl BaseCounts {
    /// Construct from raw counts; panics on negative or non-finite entries.
    pub fn new(z: [f64; NUM_SYMBOLS]) -> BaseCounts {
        for (i, &v) in z.iter().enumerate() {
            assert!(
                v >= 0.0 && v.is_finite(),
                "count {i} must be finite and non-negative, got {v}"
            );
        }
        BaseCounts(z)
    }

    /// Total mass `n = Σ z_k`.
    pub fn total(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Symbol indices sorted by decreasing count (ties broken by index, so
    /// the ordering is deterministic).
    pub fn order_desc(&self) -> [usize; NUM_SYMBOLS] {
        let mut idx = [0usize, 1, 2, 3, 4];
        idx.sort_by(|&a, &b| self.0[b].partial_cmp(&self.0[a]).unwrap().then(a.cmp(&b)));
        idx
    }

    /// Index of the largest count.
    pub fn argmax(&self) -> usize {
        self.order_desc()[0]
    }
}

/// Which alternative hypothesis maximised the diploid likelihood.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alternative {
    /// One symbol above background (homozygous in the diploid test).
    OneBase,
    /// Two symbols above background (heterozygous); only produced by
    /// [`diploid_lrt`].
    TwoBases,
}

/// Ploidy model selecting which LRT to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ploidy {
    #[default]
    Monoploid,
    Diploid,
}

/// Result of a likelihood ratio test at one position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrtOutcome {
    /// `-2 log λ(z)`, the asymptotically χ²₁ statistic.
    pub statistic: f64,
    /// Raw tail probability `SF(statistic)` under χ²₁.
    pub p_raw: f64,
    /// Multiplicity-adjusted p-value `min(1, 5 · p_raw)`, the quantity the
    /// paper compares with α.
    pub p_adjusted: f64,
    /// Symbol index (0=A .. 4=gap) with the highest count.
    pub best: usize,
    /// Symbol index with the second-highest count.
    pub second: usize,
    /// Which alternative won (always `OneBase` for monoploid).
    pub alternative: Alternative,
    /// Diploid only: adjusted p-value of the *secondary* LRT between the
    /// heterozygous and homozygous alternatives (`2·(ℓ_het − ℓ_mono)` vs
    /// χ²₁, ×5 multiplicity). This is the evidence that the second allele
    /// is real — a caller claiming a site is heterozygous-reference must
    /// gate on this, not on the (trivially tiny) test against the uniform
    /// background. `None` for monoploid tests.
    pub p_het_adjusted: Option<f64>,
}

impl LrtOutcome {
    /// Whether the position is significant at SNP-wise false-positive
    /// rate `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_adjusted <= alpha
    }
}

/// χ²₁ 95% quantile: the model-selection cutoff deciding whether the
/// heterozygous alternative's extra free parameter is justified.
const HET_SELECTION_CUTOFF: f64 = 3.841_458_820_694_124;

/// `x · ln(p)` with the continuous-count convention `0 · ln 0 = 0`.
#[inline]
fn xlnp(x: f64, p: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else {
        x * p.ln()
    }
}

/// Log-likelihood of `z` under symbol probabilities that put `top` mass on
/// the leading symbols and spread the rest evenly: the shared core of both
/// alternatives' MLE likelihoods.
fn log_lik_uniform(n: f64) -> f64 {
    xlnp(n, 0.2)
}

/// Monoploid LRT (paper Equation 1): `H1: p_(5) > p_(4) = ... = p_(1)`.
///
/// Returns `None` when `n` is too small to test (zero total mass).
pub fn monoploid_lrt(z: &BaseCounts) -> Option<LrtOutcome> {
    let n = z.total();
    if n <= 0.0 {
        return None;
    }
    let order = z.order_desc();
    let z5 = z.0[order[0]];
    let rest = n - z5;

    // H1 MLEs: p̂(5) = z(5)/n, remaining four split (n - z(5))/(4n).
    let log_h1 = xlnp(z5, z5 / n) + xlnp(rest, rest / (4.0 * n));
    let log_lambda = log_lik_uniform(n) - log_h1;
    let statistic = (-2.0 * log_lambda).max(0.0);

    Some(outcome(statistic, order, Alternative::OneBase, None))
}

/// Diploid LRT (paper Equation 2): the alternative is the better of
/// "one base above background" (homozygous) and "two bases above
/// background" (heterozygous).
pub fn diploid_lrt(z: &BaseCounts) -> Option<LrtOutcome> {
    let n = z.total();
    if n <= 0.0 {
        return None;
    }
    let order = z.order_desc();
    let z5 = z.0[order[0]];
    let z4 = z.0[order[1]];

    let rest1 = n - z5;
    let log_h1_mono = xlnp(z5, z5 / n) + xlnp(rest1, rest1 / (4.0 * n));

    let rest2 = n - z5 - z4;
    let log_h1_het = xlnp(z5, z5 / n) + xlnp(z4, z4 / n) + xlnp(rest2, rest2 / (3.0 * n));

    // The paper's statistic uses the better-fitting alternative. Note the
    // heterozygous model nests the homozygous one, so by Gibbs' inequality
    // log_h1_het >= log_h1_mono always; `max` keeps the intent explicit.
    let log_h1 = log_h1_het.max(log_h1_mono);

    // Genotype labelling, however, cannot use the raw maximum (the nested
    // het model wins trivially). We label the site heterozygous only when
    // the extra parameter earns its keep: a secondary LRT between the two
    // alternatives, 2·(ℓ_het − ℓ_mono) compared with the χ²₁ 95% point.
    let het_gain = (2.0 * (log_h1_het - log_h1_mono)).max(0.0);
    let alt = if het_gain > HET_SELECTION_CUTOFF {
        Alternative::TwoBases
    } else {
        Alternative::OneBase
    };
    let log_lambda = log_lik_uniform(n) - log_h1;
    let statistic = (-2.0 * log_lambda).max(0.0);

    let p_het = ChiSquared::one().sf(het_gain);
    Some(outcome(statistic, order, alt, Some((5.0 * p_het).min(1.0))))
}

/// Run the LRT selected by `ploidy`.
pub fn lrt(z: &BaseCounts, ploidy: Ploidy) -> Option<LrtOutcome> {
    match ploidy {
        Ploidy::Monoploid => monoploid_lrt(z),
        Ploidy::Diploid => diploid_lrt(z),
    }
}

fn outcome(
    statistic: f64,
    order: [usize; NUM_SYMBOLS],
    alternative: Alternative,
    p_het_adjusted: Option<f64>,
) -> LrtOutcome {
    let p_raw = ChiSquared::one().sf(statistic);
    LrtOutcome {
        statistic,
        p_raw,
        p_adjusted: (5.0 * p_raw).min(1.0),
        best: order[0],
        second: order[1],
        alternative,
        p_het_adjusted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * b.abs().max(1.0), "{a} != {b}");
    }

    /// Hand-computed statistic for the paper's running example
    /// z = (14, 1, 3, 2, 0):  n = 20, z(5) = 14,
    /// λ = 0.2^20 / (0.7^14 · 0.075^6), -2 log λ = hand value below.
    #[test]
    fn monoploid_matches_hand_computation() {
        let z = BaseCounts::new([14.0, 1.0, 3.0, 2.0, 0.0]);
        let out = monoploid_lrt(&z).unwrap();
        let expected = -2.0 * (20.0 * 0.2f64.ln() - (14.0 * 0.7f64.ln() + 6.0 * 0.075f64.ln()));
        close(out.statistic, expected, 1e-12);
        assert_eq!(out.best, 0); // A dominates
        assert_eq!(out.second, 2); // then G
        assert!(out.significant(0.05));
    }

    #[test]
    fn uniform_counts_give_zero_statistic() {
        let z = BaseCounts::new([4.0; 5]);
        let out = monoploid_lrt(&z).unwrap();
        close(out.statistic, 0.0, 1e-12);
        assert_eq!(out.p_adjusted, 1.0);
        assert!(!out.significant(0.05));
        let out = diploid_lrt(&z).unwrap();
        close(out.statistic, 0.0, 1e-12);
    }

    #[test]
    fn pure_single_base_is_highly_significant() {
        let z = BaseCounts::new([30.0, 0.0, 0.0, 0.0, 0.0]);
        let out = monoploid_lrt(&z).unwrap();
        // λ = 0.2^30 / 1 → stat = -2·30·ln 0.2 ≈ 96.6
        close(out.statistic, -60.0 * 0.2f64.ln(), 1e-12);
        assert!(out.p_adjusted < 1e-20);
        assert_eq!(out.alternative, Alternative::OneBase);
    }

    #[test]
    fn zero_mass_is_untestable() {
        assert!(monoploid_lrt(&BaseCounts::default()).is_none());
        assert!(diploid_lrt(&BaseCounts::default()).is_none());
    }

    #[test]
    fn heterozygous_pattern_prefers_two_base_alternative() {
        // Half the reads say A, half say G — classic het site.
        let z = BaseCounts::new([10.0, 0.0, 10.0, 0.0, 0.0]);
        let out = diploid_lrt(&z).unwrap();
        assert_eq!(out.alternative, Alternative::TwoBases);
        assert_eq!(out.best, 0);
        assert_eq!(out.second, 2);
        assert!(out.significant(0.01));
        // And the diploid statistic must beat the monoploid one, because the
        // het MLE fits this data better.
        let mono = monoploid_lrt(&z).unwrap();
        assert!(out.statistic > mono.statistic);
    }

    #[test]
    fn homozygous_pattern_prefers_one_base_alternative() {
        let z = BaseCounts::new([19.0, 1.0, 0.5, 0.0, 0.0]);
        let out = diploid_lrt(&z).unwrap();
        assert_eq!(out.alternative, Alternative::OneBase);
    }

    #[test]
    fn diploid_statistic_never_below_monoploid() {
        // The diploid alternative is a superset, so its max-likelihood can
        // only be larger → statistic >= monoploid statistic.
        let cases = [
            [5.0, 3.0, 2.0, 1.0, 0.0],
            [10.0, 10.0, 0.0, 0.0, 0.0],
            [7.0, 0.1, 0.1, 0.1, 0.1],
            [1.0, 1.0, 1.0, 1.0, 1.0],
        ];
        for c in cases {
            let z = BaseCounts::new(c);
            let m = monoploid_lrt(&z).unwrap().statistic;
            let d = diploid_lrt(&z).unwrap().statistic;
            assert!(d >= m - 1e-12, "diploid {d} < monoploid {m} for {c:?}");
        }
    }

    #[test]
    fn continuous_counts_are_fine() {
        let z = BaseCounts::new([3.7, 0.21, 0.14, 0.09, 0.02]);
        let out = monoploid_lrt(&z).unwrap();
        assert!(out.statistic > 0.0);
        assert!(out.p_raw > 0.0 && out.p_raw < 1.0);
    }

    #[test]
    fn adjusted_p_is_five_times_raw_capped() {
        let z = BaseCounts::new([6.0, 1.0, 1.0, 1.0, 1.0]);
        let out = monoploid_lrt(&z).unwrap();
        close(out.p_adjusted, (5.0 * out.p_raw).min(1.0), 1e-15);
    }

    #[test]
    fn order_desc_is_deterministic_under_ties() {
        let z = BaseCounts::new([2.0, 2.0, 2.0, 2.0, 2.0]);
        assert_eq!(z.order_desc(), [0, 1, 2, 3, 4]);
        let z = BaseCounts::new([1.0, 3.0, 3.0, 0.0, 0.0]);
        assert_eq!(z.order_desc()[0], 1);
        assert_eq!(z.order_desc()[1], 2);
    }

    #[test]
    #[should_panic]
    fn negative_counts_rejected() {
        let _ = BaseCounts::new([1.0, -0.5, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn ploidy_dispatch() {
        let z = BaseCounts::new([10.0, 10.0, 0.0, 0.0, 0.0]);
        assert_eq!(
            lrt(&z, Ploidy::Monoploid).unwrap().alternative,
            Alternative::OneBase
        );
        assert_eq!(
            lrt(&z, Ploidy::Diploid).unwrap().alternative,
            Alternative::TwoBases
        );
    }

    #[test]
    fn gap_can_be_the_winning_symbol() {
        let z = BaseCounts::new([0.5, 0.0, 0.0, 0.0, 12.0]);
        let out = monoploid_lrt(&z).unwrap();
        assert_eq!(out.best, 4);
        assert!(out.significant(0.05));
    }
}
