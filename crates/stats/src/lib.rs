//! Statistical substrate for GNUMAP-SNP.
//!
//! The paper's SNP caller rests on three statistical pieces, all implemented
//! here from scratch (no external math crates):
//!
//! * gamma-family special functions ([`special`]) — Lanczos log-gamma and
//!   the regularized incomplete gamma functions `P(a, x)` / `Q(a, x)`;
//! * the chi-squared distribution ([`chi2`]) — CDF, survival function and
//!   quantile, used to turn `-2 log λ` into p-values and cutoffs;
//! * the likelihood ratio tests themselves ([`lrt`]) — monoploid
//!   (Equation 1) and diploid (Equation 2) hypotheses over the continuous
//!   negative-multinomial base-count vector `z`;
//! * Benjamini–Hochberg false-discovery-rate control ([`fdr`]), the "FDR
//!   control" cutoff the paper offers alongside raw p-values.

pub mod chi2;
pub mod fdr;
pub mod lrt;
pub mod negmult;
pub mod special;

pub use chi2::ChiSquared;
pub use fdr::{benjamini_hochberg, bh_threshold};
pub use lrt::{diploid_lrt, monoploid_lrt, BaseCounts, LrtOutcome, Ploidy};
pub use negmult::NegativeMultinomial;
pub use special::{ln_gamma, reg_gamma_lower, reg_gamma_upper};
