//! Session lifecycle and registry.
//!
//! A session is the unit of isolation: each one owns a
//! [`ShardedAccumulator`] over the server's reference genome, so reads
//! from many sessions can share micro-batches and workers while their
//! evidence never mixes. `FixedAccumulator` deposits commute bit-exactly,
//! which is what lets batch composition, worker count, and scheduling
//! order vary without changing a session's final digest.
//!
//! Lifecycle: `Open` (accepting submits) → `Finalizing` (closed to new
//! reads, waiting for in-flight reads to drain) → removed (calls
//! returned, or aborted on client disconnect). A finalize that times out
//! leaves the session closed but registered, so the client can retry.

use exec::ShardedAccumulator;
use gnumap_core::accum::FixedAccumulator;
use gnumap_core::snpcall::SnpCallConfig;
use pairhmm::marginal::ColumnPosterior;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

struct Pending {
    in_flight: u64,
    closed: bool,
}

/// One live session: its accumulator, calling config, and drain state.
pub struct SessionState {
    /// Wire-visible session id.
    pub id: u64,
    /// How this session's evidence will be tested at finalize.
    pub calling: SnpCallConfig,
    // `None` once the accumulator has been taken (finalize) or dropped
    // (abort). Deposits through a read lock keep workers concurrent.
    acc: RwLock<Option<ShardedAccumulator<FixedAccumulator>>>,
    pending: Mutex<Pending>,
    drained: Condvar,
    reads_submitted: AtomicU64,
    reads_processed: AtomicU64,
    reads_mapped: AtomicU64,
}

impl SessionState {
    fn new(id: u64, calling: SnpCallConfig, genome_len: usize, shards: usize) -> SessionState {
        SessionState {
            id,
            calling,
            acc: RwLock::new(Some(ShardedAccumulator::new(genome_len, shards))),
            pending: Mutex::new(Pending {
                in_flight: 0,
                closed: false,
            }),
            drained: Condvar::new(),
            reads_submitted: AtomicU64::new(0),
            reads_processed: AtomicU64::new(0),
            reads_mapped: AtomicU64::new(0),
        }
    }

    /// Reserve `n` in-flight reads. Returns `false` if the session is
    /// closed (finalizing or aborted) — the caller must not enqueue.
    pub fn begin_submit(&self, n: u64) -> bool {
        let mut p = self.pending.lock().unwrap();
        if p.closed {
            return false;
        }
        p.in_flight += n;
        self.reads_submitted.fetch_add(n, Ordering::Relaxed);
        true
    }

    /// Roll back a reservation whose chunk was shed before enqueueing.
    pub fn cancel_submit(&self, n: u64) {
        let mut p = self.pending.lock().unwrap();
        p.in_flight -= n;
        self.reads_submitted.fetch_sub(n, Ordering::Relaxed);
        if p.in_flight == 0 {
            self.drained.notify_all();
        }
    }

    /// Deposit one alignment's weighted columns. A no-op after abort
    /// (the in-flight read still completes, its evidence just lands
    /// nowhere).
    pub fn deposit(&self, window_start: usize, weight: f64, columns: &[ColumnPosterior]) {
        if let Some(acc) = self.acc.read().unwrap().as_ref() {
            acc.deposit(window_start, weight, columns);
        }
    }

    /// Mark one read fully processed.
    pub fn complete_read(&self, mapped: bool) {
        self.reads_processed.fetch_add(1, Ordering::Relaxed);
        if mapped {
            self.reads_mapped.fetch_add(1, Ordering::Relaxed);
        }
        let mut p = self.pending.lock().unwrap();
        p.in_flight -= 1;
        if p.in_flight == 0 {
            self.drained.notify_all();
        }
    }

    /// Close the session to new submits (idempotent).
    pub fn close(&self) {
        self.pending.lock().unwrap().closed = true;
    }

    /// Wait until every in-flight read has completed, up to `deadline`.
    /// Returns `false` on deadline expiry.
    pub fn wait_drained(&self, deadline: Duration) -> bool {
        let end = Instant::now() + deadline;
        let mut p = self.pending.lock().unwrap();
        while p.in_flight > 0 {
            let now = Instant::now();
            if now >= end {
                return false;
            }
            let (guard, _) = self.drained.wait_timeout(p, end - now).unwrap();
            p = guard;
        }
        true
    }

    /// Take the accumulator for calling. `None` if already taken or
    /// aborted.
    pub fn take_accumulator(&self) -> Option<ShardedAccumulator<FixedAccumulator>> {
        self.acc.write().unwrap().take()
    }

    /// Tear the session down without producing calls: close it and free
    /// the accumulator immediately. Returns `true` if the accumulator was
    /// still held (i.e. this abort actually reclaimed memory).
    pub fn abort(&self) -> bool {
        self.close();
        self.acc.write().unwrap().take().is_some()
    }

    /// Reads submitted so far (admitted past ingress).
    pub fn reads_submitted(&self) -> u64 {
        self.reads_submitted.load(Ordering::Relaxed)
    }

    /// Reads fully processed so far.
    pub fn reads_processed(&self) -> u64 {
        self.reads_processed.load(Ordering::Relaxed)
    }

    /// Processed reads that mapped.
    pub fn reads_mapped(&self) -> u64 {
        self.reads_mapped.load(Ordering::Relaxed)
    }
}

/// The table of live sessions.
pub struct Registry {
    sessions: Mutex<HashMap<u64, Arc<SessionState>>>,
    next_id: AtomicU64,
    genome_len: usize,
    shards: usize,
}

impl Registry {
    /// A registry for sessions over a genome of `genome_len` positions,
    /// each with a `shards`-way sharded accumulator.
    pub fn new(genome_len: usize, shards: usize) -> Registry {
        Registry {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            genome_len,
            shards,
        }
    }

    /// Open a new session.
    pub fn open(&self, calling: SnpCallConfig) -> Arc<SessionState> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(SessionState::new(id, calling, self.genome_len, self.shards));
        self.sessions
            .lock()
            .unwrap()
            .insert(id, Arc::clone(&session));
        session
    }

    /// Look up a live session.
    pub fn get(&self, id: u64) -> Option<Arc<SessionState>> {
        self.sessions.lock().unwrap().get(&id).cloned()
    }

    /// Remove a session from the table (its `Arc` may outlive this while
    /// in-flight reads finish).
    pub fn remove(&self, id: u64) -> Option<Arc<SessionState>> {
        self.sessions.lock().unwrap().remove(&id)
    }

    /// Number of registered sessions.
    pub fn len(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// Whether no sessions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn registry() -> Registry {
        Registry::new(100, 4)
    }

    #[test]
    fn lifecycle_open_submit_drain_take() {
        let reg = registry();
        let s = reg.open(SnpCallConfig::default());
        assert!(s.begin_submit(3));
        assert!(!s.wait_drained(Duration::from_millis(10)));
        s.complete_read(true);
        s.complete_read(false);
        s.complete_read(true);
        assert!(s.wait_drained(Duration::from_millis(10)));
        assert_eq!(s.reads_processed(), 3);
        assert_eq!(s.reads_mapped(), 2);
        s.close();
        assert!(!s.begin_submit(1), "closed session must refuse submits");
        assert!(s.take_accumulator().is_some());
        assert!(s.take_accumulator().is_none(), "second take must fail");
    }

    #[test]
    fn deposit_after_abort_is_a_noop() {
        let reg = registry();
        let s = reg.open(SnpCallConfig::default());
        assert!(s.begin_submit(1));
        assert!(s.abort());
        // A worker still holding the read finishes harmlessly.
        let col = ColumnPosterior {
            probs: [1.0, 0.0, 0.0, 0.0, 0.0],
        };
        s.deposit(0, 1.0, &[col]);
        s.complete_read(true);
        assert!(s.wait_drained(Duration::from_millis(10)));
        assert!(!s.abort(), "second abort reclaims nothing");
    }

    #[test]
    fn drain_wakes_blocked_waiter() {
        let reg = registry();
        let s = reg.open(SnpCallConfig::default());
        assert!(s.begin_submit(1));
        let s2 = Arc::clone(&s);
        let waiter = thread::spawn(move || s2.wait_drained(Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        s.complete_read(true);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn registry_tracks_sessions() {
        let reg = registry();
        let a = reg.open(SnpCallConfig::default());
        let b = reg.open(SnpCallConfig::default());
        assert_ne!(a.id, b.id);
        assert_eq!(reg.len(), 2);
        assert!(reg.get(a.id).is_some());
        assert!(reg.remove(a.id).is_some());
        assert!(reg.get(a.id).is_none());
        assert_eq!(reg.len(), 1);
        assert!(reg.remove(a.id).is_none());
    }
}
