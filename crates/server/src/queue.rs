//! A std-only bounded MPMC queue (mutex + condvars).
//!
//! This is the admission-control primitive: both the ingress queue
//! (client chunks → batcher) and the dispatch queue (batches → workers)
//! are instances, so no stage of the server can grow without bound. A
//! full queue pushes back with [`PushError::Full`] after the caller's
//! timeout — the connection handler translates that into a typed `Busy`
//! response rather than buffering.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push did not enqueue; the rejected item is handed back.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue stayed at capacity for the whole timeout.
    Full(T),
    /// The queue was closed; no further items are accepted.
    Closed(T),
}

/// What a pop produced.
#[derive(Debug)]
pub enum PopOutcome<T> {
    /// An item.
    Item(T),
    /// The queue stayed empty for the whole timeout (still open).
    Empty,
    /// The queue is closed and fully drained.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity MPMC queue with timed blocking push/pop and close.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Create a queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Current depth (racy; for metrics only).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty (racy; for metrics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue, waiting up to `timeout` for space.
    pub fn push_timeout(&self, item: T, timeout: Duration) -> Result<(), PushError<T>> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.closed {
                return Err(PushError::Closed(item));
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PushError::Full(item));
            }
            let (guard, _timed_out) = self.not_full.wait_timeout(inner, deadline - now).unwrap();
            inner = guard;
        }
    }

    /// Dequeue, waiting up to `timeout` for an item. A closed queue
    /// drains its remaining items before reporting [`PopOutcome::Closed`].
    pub fn pop_timeout(&self, timeout: Duration) -> PopOutcome<T> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return PopOutcome::Item(item);
            }
            if inner.closed {
                return PopOutcome::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return PopOutcome::Empty;
            }
            let (guard, _timed_out) = self.not_empty.wait_timeout(inner, deadline - now).unwrap();
            inner = guard;
        }
    }

    /// Dequeue immediately if an item is available.
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        let item = inner.items.pop_front();
        if item.is_some() {
            drop(inner);
            self.not_full.notify_one();
        }
        item
    }

    /// Close the queue: pending pushes fail with `Closed`, pops drain the
    /// backlog then report `Closed`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push_timeout(i, Duration::from_millis(10)).unwrap();
        }
        for i in 0..4 {
            match q.pop_timeout(Duration::from_millis(10)) {
                PopOutcome::Item(v) => assert_eq!(v, i),
                other => panic!("expected item, got {other:?}"),
            }
        }
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(5)),
            PopOutcome::Empty
        ));
    }

    #[test]
    fn full_queue_sheds_after_timeout() {
        let q = BoundedQueue::new(1);
        q.push_timeout(1, Duration::from_millis(5)).unwrap();
        match q.push_timeout(2, Duration::from_millis(20)) {
            Err(PushError::Full(2)) => {}
            other => panic!("expected Full(2), got {other:?}"),
        }
    }

    #[test]
    fn blocked_push_wakes_on_pop() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push_timeout(1, Duration::from_millis(5)).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = thread::spawn(move || q2.push_timeout(2, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(100)),
            PopOutcome::Item(1)
        ));
        pusher.join().unwrap().unwrap();
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(100)),
            PopOutcome::Item(2)
        ));
    }

    #[test]
    fn close_drains_backlog_then_reports_closed() {
        let q = BoundedQueue::new(4);
        q.push_timeout("a", Duration::from_millis(5)).unwrap();
        q.close();
        assert!(matches!(
            q.push_timeout("b", Duration::from_millis(5)),
            Err(PushError::Closed("b"))
        ));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(5)),
            PopOutcome::Item("a")
        ));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(5)),
            PopOutcome::Closed
        ));
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let popper = thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(matches!(popper.join().unwrap(), PopOutcome::Closed));
    }
}
