//! The length-prefixed binary wire protocol.
//!
//! Every frame is `u32 length (LE) | u8 tag | payload`, where `length`
//! counts the tag byte plus the payload. Requests flow client → server,
//! responses server → client; the session API is
//! `OpenSession → SubmitReads* → Finalize → SnpCalls`, with
//! `Ping`/`Stats`/`Shutdown` control frames usable at any point.
//!
//! Decoding is total: any byte stream either parses into a frame or
//! produces a typed [`ProtocolError`] — oversized length prefixes,
//! truncated payloads, unknown tags and bad UTF-8 are all rejected
//! without panicking, unbounded allocation, or silently mis-parsing
//! (asserted by `tests/proptest_framing.rs`).
//!
//! SNP calls travel in the same flat 11-`f64` stride the MPI drivers use
//! ([`gnumap_core::driver::encode_calls`]), serialised at the bit level,
//! so a loopback round trip preserves calls `f64::to_bits`-exactly.

use crate::metrics::StatsSnapshot;
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use gnumap_core::driver::{decode_calls, encode_calls};
use gnumap_core::snpcall::{Cutoff, SnpCall, SnpCallConfig};
use gnumap_stats::lrt::Ploidy;
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Hard ceiling on one frame's body (tag + payload), protecting the
/// server from hostile length prefixes.
pub const MAX_FRAME: usize = 32 << 20;
/// Most reads one `SubmitReads` frame may carry.
pub const MAX_READS_PER_SUBMIT: usize = 1 << 16;
/// Longest single read accepted on the wire.
pub const MAX_READ_LEN: usize = 1 << 20;

// Request tags (client → server).
const TAG_OPEN_SESSION: u8 = 0x01;
const TAG_SUBMIT_READS: u8 = 0x02;
const TAG_FINALIZE: u8 = 0x03;
const TAG_PING: u8 = 0x04;
const TAG_STATS: u8 = 0x05;
const TAG_SHUTDOWN: u8 = 0x06;

// Response tags (server → client).
const TAG_SESSION_OPENED: u8 = 0x81;
const TAG_READS_ACCEPTED: u8 = 0x82;
const TAG_SNP_CALLS: u8 = 0x83;
const TAG_PONG: u8 = 0x84;
const TAG_STATS_REPORT: u8 = 0x85;
const TAG_SHUTTING_DOWN: u8 = 0x86;
const TAG_ERROR: u8 = 0x8F;

/// Why a frame failed to decode (or a stream failed to yield one).
#[derive(Debug)]
pub enum ProtocolError {
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The declared body length.
        len: usize,
    },
    /// The stream ended (or the payload ran out) before the named field.
    Truncated(&'static str),
    /// The frame tag is not part of the protocol.
    UnknownTag(u8),
    /// A string field held invalid UTF-8.
    BadUtf8(&'static str),
    /// A structurally valid frame carried semantically invalid content.
    Malformed(String),
    /// The peer stopped sending mid-frame for longer than the stall cap.
    Stalled,
    /// Transport failure.
    Io(io::Error),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte cap")
            }
            ProtocolError::Truncated(what) => write!(f, "frame truncated before {what}"),
            ProtocolError::UnknownTag(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            ProtocolError::BadUtf8(what) => write!(f, "invalid UTF-8 in {what}"),
            ProtocolError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            ProtocolError::Stalled => write!(f, "peer stalled mid-frame"),
            ProtocolError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Typed reason carried by an error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Admission control shed the request (bounded queue full).
    Busy,
    /// A deadline expired before the work drained.
    Timeout,
    /// The request failed to decode or carried invalid content.
    Malformed,
    /// The session id is not (or no longer) registered.
    UnknownSession,
    /// The session no longer accepts this operation (finalizing/aborted).
    SessionClosed,
    /// The server is draining and takes no new work.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorKind {
    fn to_u8(self) -> u8 {
        match self {
            ErrorKind::Busy => 0,
            ErrorKind::Timeout => 1,
            ErrorKind::Malformed => 2,
            ErrorKind::UnknownSession => 3,
            ErrorKind::SessionClosed => 4,
            ErrorKind::ShuttingDown => 5,
            ErrorKind::Internal => 6,
        }
    }

    fn from_u8(v: u8) -> Option<ErrorKind> {
        Some(match v {
            0 => ErrorKind::Busy,
            1 => ErrorKind::Timeout,
            2 => ErrorKind::Malformed,
            3 => ErrorKind::UnknownSession,
            4 => ErrorKind::SessionClosed,
            5 => ErrorKind::ShuttingDown,
            6 => ErrorKind::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorKind::Busy => "busy",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Malformed => "malformed",
            ErrorKind::UnknownSession => "unknown-session",
            ErrorKind::SessionClosed => "session-closed",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::Internal => "internal",
        };
        f.write_str(name)
    }
}

/// Per-session calling configuration carried by `OpenSession`. The
/// reference genome and mapping parameters are server-side state; a
/// session only chooses how its accumulated evidence is tested.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Monoploid or diploid LRT hypotheses.
    pub ploidy: Ploidy,
    /// p-value or FDR significance rule.
    pub cutoff: Cutoff,
    /// Minimum accumulated evidence mass to test a position.
    pub min_total: f64,
}

impl SessionConfig {
    /// Lift into the core caller configuration.
    pub fn to_call_config(self) -> SnpCallConfig {
        SnpCallConfig {
            ploidy: self.ploidy,
            cutoff: self.cutoff,
            min_total: self.min_total,
        }
    }
}

impl From<SnpCallConfig> for SessionConfig {
    fn from(c: SnpCallConfig) -> Self {
        SessionConfig {
            ploidy: c.ploidy,
            cutoff: c.cutoff,
            min_total: c.min_total,
        }
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        SnpCallConfig::default().into()
    }
}

/// A client → server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session with the given calling configuration.
    OpenSession(SessionConfig),
    /// Append a chunk of reads to a session's evidence.
    SubmitReads {
        /// Target session id.
        session: u64,
        /// The reads; at most [`MAX_READS_PER_SUBMIT`].
        reads: Vec<SequencedRead>,
    },
    /// Close the session, wait for its reads to drain (up to
    /// `deadline_ms`; 0 selects the server default) and return calls.
    Finalize {
        /// Target session id.
        session: u64,
        /// Per-request deadline in milliseconds (0 = server default).
        deadline_ms: u32,
    },
    /// Liveness probe; echoed back in `Pong`.
    Ping {
        /// Arbitrary value the server echoes.
        nonce: u64,
    },
    /// Fetch the server's per-stage counters.
    Stats,
    /// Ask the server to drain and stop.
    Shutdown,
}

/// Everything a finalized session returns.
#[derive(Debug, Clone, PartialEq)]
pub struct CallResult {
    /// The session the calls belong to.
    pub session: u64,
    /// Order-independent fingerprint of the session's final
    /// `FixedAccumulator` (bit-identical to a serial run's digest).
    pub digest: u64,
    /// Reads deposited into the session.
    pub reads_processed: u64,
    /// Reads that produced at least one alignment.
    pub reads_mapped: u64,
    /// The SNP calls.
    pub calls: Vec<SnpCall>,
}

/// A server → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A session was opened with this id.
    SessionOpened {
        /// The new session id.
        session: u64,
    },
    /// A `SubmitReads` chunk was admitted.
    ReadsAccepted {
        /// The session the reads joined.
        session: u64,
        /// Number of reads admitted (the whole chunk).
        accepted: u32,
    },
    /// A finalized session's calls.
    SnpCalls(CallResult),
    /// `Ping` echo.
    Pong {
        /// The request's nonce.
        nonce: u64,
    },
    /// Current per-stage counters.
    StatsReport(StatsSnapshot),
    /// Acknowledgement that the server is draining and will stop.
    ShuttingDown,
    /// A typed failure.
    Error {
        /// What class of failure.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

// ---------------------------------------------------------------------
// Payload reader/writer
// ---------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked cursor over one frame's payload.
struct Payload<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Payload<'a> {
    fn new(buf: &'a [u8]) -> Payload<'a> {
        Payload { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ProtocolError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtocolError::Truncated(what));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ProtocolError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, ProtocolError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn finish(self, what: &'static str) -> Result<(), ProtocolError> {
        if self.pos != self.buf.len() {
            return Err(ProtocolError::Malformed(format!(
                "{what}: {} trailing byte(s) after the payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Field codecs
// ---------------------------------------------------------------------

fn put_session_config(buf: &mut Vec<u8>, cfg: &SessionConfig) {
    buf.push(match cfg.ploidy {
        Ploidy::Monoploid => 0,
        Ploidy::Diploid => 1,
    });
    let (kind, value) = match cfg.cutoff {
        Cutoff::PValue(a) => (0u8, a),
        Cutoff::Fdr(q) => (1u8, q),
    };
    buf.push(kind);
    put_f64(buf, value);
    put_f64(buf, cfg.min_total);
}

fn get_session_config(p: &mut Payload<'_>) -> Result<SessionConfig, ProtocolError> {
    let ploidy = match p.u8("ploidy")? {
        0 => Ploidy::Monoploid,
        1 => Ploidy::Diploid,
        other => {
            return Err(ProtocolError::Malformed(format!(
                "unknown ploidy code {other}"
            )))
        }
    };
    let kind = p.u8("cutoff kind")?;
    let value = p.f64("cutoff value")?;
    let cutoff = match kind {
        0 => Cutoff::PValue(value),
        1 => Cutoff::Fdr(value),
        other => {
            return Err(ProtocolError::Malformed(format!(
                "unknown cutoff code {other}"
            )))
        }
    };
    let min_total = p.f64("min_total")?;
    if !min_total.is_finite() || min_total < 0.0 {
        return Err(ProtocolError::Malformed(format!(
            "min_total {min_total} is not a finite non-negative number"
        )));
    }
    Ok(SessionConfig {
        ploidy,
        cutoff,
        min_total,
    })
}

fn put_reads(buf: &mut Vec<u8>, reads: &[SequencedRead]) {
    put_u32(buf, reads.len() as u32);
    for read in reads {
        put_u16(buf, read.id.len() as u16);
        buf.extend_from_slice(read.id.as_bytes());
        put_u32(buf, read.len() as u32);
        for base in read.seq.iter() {
            buf.push(base.map_or(b'N', |b| b.to_ascii()));
        }
        buf.extend_from_slice(&read.quals);
    }
}

fn get_reads(p: &mut Payload<'_>) -> Result<Vec<SequencedRead>, ProtocolError> {
    let count = p.u32("read count")? as usize;
    if count > MAX_READS_PER_SUBMIT {
        return Err(ProtocolError::Malformed(format!(
            "{count} reads in one frame exceeds the {MAX_READS_PER_SUBMIT} cap"
        )));
    }
    let mut reads = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let id_len = p.u16("read id length")? as usize;
        let id = std::str::from_utf8(p.take(id_len, "read id")?)
            .map_err(|_| ProtocolError::BadUtf8("read id"))?
            .to_string();
        let len = p.u32("read length")? as usize;
        if len > MAX_READ_LEN {
            return Err(ProtocolError::Malformed(format!(
                "read {id:?}: length {len} exceeds the {MAX_READ_LEN} cap"
            )));
        }
        let seq = DnaSeq::from_ascii(p.take(len, "read bases")?)
            .map_err(|e| ProtocolError::Malformed(format!("read {id:?}: {e}")))?;
        let quals = p.take(len, "read qualities")?.to_vec();
        let read = SequencedRead::new(id, seq, quals)
            .map_err(|e| ProtocolError::Malformed(e.to_string()))?;
        reads.push(read);
    }
    Ok(reads)
}

fn put_calls(buf: &mut Vec<u8>, calls: &[SnpCall]) {
    let wire = encode_calls(calls);
    put_u32(buf, calls.len() as u32);
    for v in &wire {
        put_f64(buf, *v);
    }
}

fn get_calls(p: &mut Payload<'_>) -> Result<Vec<SnpCall>, ProtocolError> {
    let count = p.u32("call count")? as usize;
    // CALL_STRIDE is 11 f64s; cap implied by MAX_FRAME either way.
    let mut wire = Vec::with_capacity((count * 11).min(1 << 20));
    for _ in 0..count * 11 {
        wire.push(p.f64("call payload")?);
    }
    decode_calls(&wire).map_err(|e| ProtocolError::Malformed(e.to_string()))
}

fn put_stats(buf: &mut Vec<u8>, s: &StatsSnapshot) {
    put_u64(buf, s.sessions_open);
    put_u64(buf, s.sessions_opened);
    put_u64(buf, s.sessions_aborted);
    put_u64(buf, s.reads_accepted);
    put_u64(buf, s.reads_processed);
    put_u64(buf, s.reads_mapped);
    put_u64(buf, s.candidates_evaluated);
    put_u64(buf, s.deposit_columns);
    put_u64(buf, s.batches_dispatched);
    put_u64(buf, s.cross_session_batches);
    put_u64(buf, s.busy_rejections);
    put_u64(buf, s.timeouts);
    put_u64(buf, s.ingress_depth);
    put_u64(buf, s.max_ingress_depth);
    put_f64(buf, s.mean_batch_occupancy);
    put_f64(buf, s.mean_sessions_per_batch);
    put_u64(buf, s.p50_service_micros);
    put_u64(buf, s.p99_service_micros);
    put_f64(buf, s.worker_cpu_secs);
    put_f64(buf, s.max_worker_cpu_secs);
}

fn get_stats(p: &mut Payload<'_>) -> Result<StatsSnapshot, ProtocolError> {
    Ok(StatsSnapshot {
        sessions_open: p.u64("sessions_open")?,
        sessions_opened: p.u64("sessions_opened")?,
        sessions_aborted: p.u64("sessions_aborted")?,
        reads_accepted: p.u64("reads_accepted")?,
        reads_processed: p.u64("reads_processed")?,
        reads_mapped: p.u64("reads_mapped")?,
        candidates_evaluated: p.u64("candidates_evaluated")?,
        deposit_columns: p.u64("deposit_columns")?,
        batches_dispatched: p.u64("batches_dispatched")?,
        cross_session_batches: p.u64("cross_session_batches")?,
        busy_rejections: p.u64("busy_rejections")?,
        timeouts: p.u64("timeouts")?,
        ingress_depth: p.u64("ingress_depth")?,
        max_ingress_depth: p.u64("max_ingress_depth")?,
        mean_batch_occupancy: p.f64("mean_batch_occupancy")?,
        mean_sessions_per_batch: p.f64("mean_sessions_per_batch")?,
        p50_service_micros: p.u64("p50_service_micros")?,
        p99_service_micros: p.u64("p99_service_micros")?,
        worker_cpu_secs: p.f64("worker_cpu_secs")?,
        max_worker_cpu_secs: p.f64("max_worker_cpu_secs")?,
    })
}

// ---------------------------------------------------------------------
// Frame encode
// ---------------------------------------------------------------------

fn frame(tag: u8, payload: Vec<u8>) -> Vec<u8> {
    let body_len = 1 + payload.len();
    debug_assert!(body_len <= MAX_FRAME);
    let mut out = Vec::with_capacity(4 + body_len);
    put_u32(&mut out, body_len as u32);
    out.push(tag);
    out.extend_from_slice(&payload);
    out
}

impl Request {
    /// Serialise into one complete frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        let tag = match self {
            Request::OpenSession(cfg) => {
                put_session_config(&mut p, cfg);
                TAG_OPEN_SESSION
            }
            Request::SubmitReads { session, reads } => {
                put_u64(&mut p, *session);
                put_reads(&mut p, reads);
                TAG_SUBMIT_READS
            }
            Request::Finalize {
                session,
                deadline_ms,
            } => {
                put_u64(&mut p, *session);
                put_u32(&mut p, *deadline_ms);
                TAG_FINALIZE
            }
            Request::Ping { nonce } => {
                put_u64(&mut p, *nonce);
                TAG_PING
            }
            Request::Stats => TAG_STATS,
            Request::Shutdown => TAG_SHUTDOWN,
        };
        frame(tag, p)
    }

    /// Parse one request body (`tag` byte already split off).
    fn decode(tag: u8, payload: &[u8]) -> Result<Request, ProtocolError> {
        let mut p = Payload::new(payload);
        let req = match tag {
            TAG_OPEN_SESSION => Request::OpenSession(get_session_config(&mut p)?),
            TAG_SUBMIT_READS => Request::SubmitReads {
                session: p.u64("session id")?,
                reads: get_reads(&mut p)?,
            },
            TAG_FINALIZE => Request::Finalize {
                session: p.u64("session id")?,
                deadline_ms: p.u32("deadline")?,
            },
            TAG_PING => Request::Ping {
                nonce: p.u64("nonce")?,
            },
            TAG_STATS => Request::Stats,
            TAG_SHUTDOWN => Request::Shutdown,
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        p.finish("request")?;
        Ok(req)
    }
}

impl Response {
    /// Serialise into one complete frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        let tag = match self {
            Response::SessionOpened { session } => {
                put_u64(&mut p, *session);
                TAG_SESSION_OPENED
            }
            Response::ReadsAccepted { session, accepted } => {
                put_u64(&mut p, *session);
                put_u32(&mut p, *accepted);
                TAG_READS_ACCEPTED
            }
            Response::SnpCalls(result) => {
                put_u64(&mut p, result.session);
                put_u64(&mut p, result.digest);
                put_u64(&mut p, result.reads_processed);
                put_u64(&mut p, result.reads_mapped);
                put_calls(&mut p, &result.calls);
                TAG_SNP_CALLS
            }
            Response::Pong { nonce } => {
                put_u64(&mut p, *nonce);
                TAG_PONG
            }
            Response::StatsReport(s) => {
                put_stats(&mut p, s);
                TAG_STATS_REPORT
            }
            Response::ShuttingDown => TAG_SHUTTING_DOWN,
            Response::Error { kind, message } => {
                p.push(kind.to_u8());
                put_u32(&mut p, message.len() as u32);
                p.extend_from_slice(message.as_bytes());
                TAG_ERROR
            }
        };
        frame(tag, p)
    }

    /// Parse one response body (`tag` byte already split off).
    fn decode(tag: u8, payload: &[u8]) -> Result<Response, ProtocolError> {
        let mut p = Payload::new(payload);
        let resp = match tag {
            TAG_SESSION_OPENED => Response::SessionOpened {
                session: p.u64("session id")?,
            },
            TAG_READS_ACCEPTED => Response::ReadsAccepted {
                session: p.u64("session id")?,
                accepted: p.u32("accepted count")?,
            },
            TAG_SNP_CALLS => Response::SnpCalls(CallResult {
                session: p.u64("session id")?,
                digest: p.u64("digest")?,
                reads_processed: p.u64("reads processed")?,
                reads_mapped: p.u64("reads mapped")?,
                calls: get_calls(&mut p)?,
            }),
            TAG_PONG => Response::Pong {
                nonce: p.u64("nonce")?,
            },
            TAG_STATS_REPORT => Response::StatsReport(get_stats(&mut p)?),
            TAG_SHUTTING_DOWN => Response::ShuttingDown,
            TAG_ERROR => {
                let kind = p.u8("error kind")?;
                let kind = ErrorKind::from_u8(kind)
                    .ok_or_else(|| ProtocolError::Malformed(format!("error kind {kind}")))?;
                let len = p.u32("error message length")? as usize;
                let message = std::str::from_utf8(p.take(len, "error message")?)
                    .map_err(|_| ProtocolError::BadUtf8("error message"))?
                    .to_string();
                Response::Error { kind, message }
            }
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        p.finish("response")?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Frame transport
// ---------------------------------------------------------------------

/// What one attempt to read a frame produced.
#[derive(Debug)]
pub enum Incoming<T> {
    /// A complete frame.
    Frame(T),
    /// Clean end of stream (peer closed between frames).
    Eof,
    /// The read timed out before the first byte of a frame (only with a
    /// socket read timeout set); no bytes were consumed.
    Idle,
}

/// Read one raw frame. `stall_cap` bounds how long the peer may sit
/// mid-frame without sending a byte (requires a socket read timeout to
/// fire); `None` waits forever.
fn read_frame_raw(
    r: &mut dyn Read,
    stall_cap: Option<Duration>,
) -> Result<Incoming<(u8, Vec<u8>)>, ProtocolError> {
    let mut prefix = [0u8; 4];
    let mut got = 0usize;
    let mut stalled_since: Option<Instant> = None;
    let check_stall = |stalled_since: &mut Option<Instant>| -> Result<(), ProtocolError> {
        match stall_cap {
            None => Ok(()),
            Some(cap) => {
                let since = stalled_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= cap {
                    Err(ProtocolError::Stalled)
                } else {
                    Ok(())
                }
            }
        }
    };
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(Incoming::Eof),
            Ok(0) => return Err(ProtocolError::Truncated("length prefix")),
            Ok(n) => {
                got += n;
                stalled_since = None;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if got == 0 {
                    return Ok(Incoming::Idle);
                }
                check_stall(&mut stalled_since)?;
            }
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len == 0 {
        return Err(ProtocolError::Truncated("frame tag"));
    }
    if len > MAX_FRAME {
        return Err(ProtocolError::Oversized { len });
    }
    // Read the body incrementally so a hostile length prefix never forces
    // a large up-front allocation.
    let mut body = Vec::with_capacity(len.min(1 << 16));
    let mut chunk = [0u8; 8192];
    let mut stalled_since: Option<Instant> = None;
    while body.len() < len {
        let want = (len - body.len()).min(chunk.len());
        match r.read(&mut chunk[..want]) {
            Ok(0) => return Err(ProtocolError::Truncated("frame body")),
            Ok(n) => {
                body.extend_from_slice(&chunk[..n]);
                stalled_since = None;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                check_stall(&mut stalled_since)?;
            }
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    let tag = body[0];
    body.drain(..1);
    Ok(Incoming::Frame((tag, body)))
}

/// Read one request frame (server side).
pub fn read_request(
    r: &mut dyn Read,
    stall_cap: Option<Duration>,
) -> Result<Incoming<Request>, ProtocolError> {
    Ok(match read_frame_raw(r, stall_cap)? {
        Incoming::Frame((tag, body)) => Incoming::Frame(Request::decode(tag, &body)?),
        Incoming::Eof => Incoming::Eof,
        Incoming::Idle => Incoming::Idle,
    })
}

/// Read one response frame (client side).
pub fn read_response(
    r: &mut dyn Read,
    stall_cap: Option<Duration>,
) -> Result<Incoming<Response>, ProtocolError> {
    Ok(match read_frame_raw(r, stall_cap)? {
        Incoming::Frame((tag, body)) => Incoming::Frame(Response::decode(tag, &body)?),
        Incoming::Eof => Incoming::Eof,
        Incoming::Idle => Incoming::Idle,
    })
}

/// Write one request frame.
pub fn write_request(w: &mut dyn Write, req: &Request) -> io::Result<()> {
    w.write_all(&req.encode())?;
    w.flush()
}

/// Write one response frame.
pub fn write_response(w: &mut dyn Write, resp: &Response) -> io::Result<()> {
    w.write_all(&resp.encode())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read(id: &str, seq: &str, q: u8) -> SequencedRead {
        SequencedRead::with_uniform_quality(id, seq.parse().unwrap(), q)
    }

    fn round_trip_request(req: Request) {
        let bytes = req.encode();
        match read_request(&mut Cursor::new(&bytes), None).unwrap() {
            Incoming::Frame(got) => assert_eq!(got, req),
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    fn round_trip_response(resp: Response) {
        let bytes = resp.encode();
        match read_response(&mut Cursor::new(&bytes), None).unwrap() {
            Incoming::Frame(got) => assert_eq!(got, resp),
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn every_request_round_trips() {
        round_trip_request(Request::OpenSession(SessionConfig::default()));
        round_trip_request(Request::OpenSession(SessionConfig {
            ploidy: Ploidy::Diploid,
            cutoff: Cutoff::Fdr(0.01),
            min_total: 5.5,
        }));
        round_trip_request(Request::SubmitReads {
            session: 7,
            reads: vec![read("a", "ACGTN", 30), read("b", "TT", 12)],
        });
        round_trip_request(Request::SubmitReads {
            session: 1,
            reads: Vec::new(),
        });
        round_trip_request(Request::Finalize {
            session: 9,
            deadline_ms: 1234,
        });
        round_trip_request(Request::Ping { nonce: u64::MAX });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn every_response_round_trips() {
        use genome::alphabet::Base;
        round_trip_response(Response::SessionOpened { session: 3 });
        round_trip_response(Response::ReadsAccepted {
            session: 3,
            accepted: 128,
        });
        round_trip_response(Response::SnpCalls(CallResult {
            session: 3,
            digest: 0xdead_beef,
            reads_processed: 100,
            reads_mapped: 99,
            calls: vec![SnpCall {
                pos: 42,
                reference: Base::A,
                allele: Base::G,
                second_allele: Some(Base::T),
                statistic: 17.25,
                p_adjusted: 1e-8,
                counts: [0.5, 0.0, 11.0, 3.0, 0.25],
            }],
        }));
        round_trip_response(Response::Pong { nonce: 0 });
        round_trip_response(Response::StatsReport(StatsSnapshot {
            sessions_open: 1,
            reads_accepted: 500,
            mean_batch_occupancy: 0.75,
            ..StatsSnapshot::default()
        }));
        round_trip_response(Response::ShuttingDown);
        round_trip_response(Response::Error {
            kind: ErrorKind::Busy,
            message: "ingress full".into(),
        });
    }

    #[test]
    fn oversized_length_prefix_is_typed() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, (MAX_FRAME + 1) as u32);
        bytes.push(TAG_PING);
        match read_request(&mut Cursor::new(&bytes), None) {
            Err(ProtocolError::Oversized { len }) => assert_eq!(len, MAX_FRAME + 1),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_is_typed() {
        let full = Request::Ping { nonce: 77 }.encode();
        for cut in 1..full.len() {
            match read_request(&mut Cursor::new(&full[..cut]), None) {
                Err(ProtocolError::Truncated(_)) => {}
                other => panic!("cut {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_tag_is_typed() {
        let bytes = frame(0x7E, Vec::new());
        match read_request(&mut Cursor::new(&bytes), None) {
            Err(ProtocolError::UnknownTag(0x7E)) => {}
            other => panic!("expected UnknownTag, got {other:?}"),
        }
    }

    #[test]
    fn bad_utf8_read_id_is_typed() {
        let mut p = Vec::new();
        put_u64(&mut p, 1); // session
        put_u32(&mut p, 1); // one read
        put_u16(&mut p, 2);
        p.extend_from_slice(&[0xFF, 0xFE]); // invalid UTF-8 id
        put_u32(&mut p, 0);
        let bytes = frame(TAG_SUBMIT_READS, p);
        match read_request(&mut Cursor::new(&bytes), None) {
            Err(ProtocolError::BadUtf8("read id")) => {}
            other => panic!("expected BadUtf8, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut p = Vec::new();
        put_u64(&mut p, 5);
        put_u64(&mut p, 6); // extra 8 bytes after the Ping nonce
        let bytes = frame(TAG_PING, p);
        match read_request(&mut Cursor::new(&bytes), None) {
            Err(ProtocolError::Malformed(msg)) => assert!(msg.contains("trailing"), "{msg}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn eof_between_frames_is_clean() {
        assert!(matches!(
            read_request(&mut Cursor::new(&[]), None).unwrap(),
            Incoming::Eof
        ));
    }

    #[test]
    fn zero_length_frame_is_rejected() {
        let bytes = 0u32.to_le_bytes();
        assert!(matches!(
            read_request(&mut Cursor::new(&bytes), None),
            Err(ProtocolError::Truncated("frame tag"))
        ));
    }

    #[test]
    fn read_cap_is_enforced() {
        let mut p = Vec::new();
        put_u64(&mut p, 1);
        put_u32(&mut p, (MAX_READS_PER_SUBMIT + 1) as u32);
        let bytes = frame(TAG_SUBMIT_READS, p);
        match read_request(&mut Cursor::new(&bytes), None) {
            Err(ProtocolError::Malformed(msg)) => assert!(msg.contains("cap"), "{msg}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
}
