//! Blocking client for the gnumap serving protocol.

use crate::metrics::StatsSnapshot;
use crate::protocol::{
    read_response, write_request, CallResult, ErrorKind, Incoming, ProtocolError, Request,
    Response, SessionConfig,
};
use genome::read::SequencedRead;
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The wire protocol broke down (decode failure, unexpected EOF).
    Protocol(ProtocolError),
    /// Transport failure.
    Io(io::Error),
    /// The server answered with a typed error frame.
    Server {
        /// The error class (`Busy`, `Timeout`, ...).
        kind: ErrorKind,
        /// Server-provided detail.
        message: String,
    },
    /// The server answered with a frame that does not fit the request.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Server { kind, message } => write!(f, "server error ({kind}): {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        match e {
            ProtocolError::Io(io_err) => ClientError::Io(io_err),
            other => ClientError::Protocol(other),
        }
    }
}

impl ClientError {
    /// Whether this is a typed server error of the given kind.
    pub fn is_kind(&self, k: ErrorKind) -> bool {
        matches!(self, ClientError::Server { kind, .. } if *kind == k)
    }
}

/// A blocking connection to a gnumap server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_request(&mut self.writer, request)?;
        match read_response(&mut self.reader, None)? {
            Incoming::Frame(Response::Error { kind, message }) => {
                Err(ClientError::Server { kind, message })
            }
            Incoming::Frame(resp) => Ok(resp),
            Incoming::Eof => Err(ClientError::Unexpected(
                "connection closed mid-request".into(),
            )),
            Incoming::Idle => unreachable!("no read timeout set on client socket"),
        }
    }

    /// Open a session; returns its id.
    pub fn open_session(&mut self, config: SessionConfig) -> Result<u64, ClientError> {
        match self.call(&Request::OpenSession(config))? {
            Response::SessionOpened { session } => Ok(session),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Submit a chunk of reads; returns how many were admitted. A `Busy`
    /// rejection surfaces as `ClientError::Server { kind: Busy, .. }` —
    /// retry after a pause.
    pub fn submit_reads(
        &mut self,
        session: u64,
        reads: &[SequencedRead],
    ) -> Result<u32, ClientError> {
        let request = Request::SubmitReads {
            session,
            reads: reads.to_vec(),
        };
        match self.call(&request)? {
            Response::ReadsAccepted { accepted, .. } => Ok(accepted),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Finalize the session: wait (server-side, up to `deadline_ms`; 0 =
    /// server default) for its reads to drain, then fetch calls.
    pub fn finalize(&mut self, session: u64, deadline_ms: u32) -> Result<CallResult, ClientError> {
        let request = Request::Finalize {
            session,
            deadline_ms,
        };
        match self.call(&request)? {
            Response::SnpCalls(result) => Ok(result),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self, nonce: u64) -> Result<(), ClientError> {
        match self.call(&Request::Ping { nonce })? {
            Response::Pong { nonce: echoed } if echoed == nonce => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetch the server's per-stage counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.call(&Request::Stats)? {
            Response::StatsReport(s) => Ok(s),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Ask the server to drain and stop.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
