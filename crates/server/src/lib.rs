//! Batching SNP-calling service.
//!
//! A std-only TCP daemon that serves the paper's pipeline as a sessioned
//! request/response API: clients open a session, stream read chunks, and
//! finalize to receive SNP calls. Internally the server coalesces reads
//! from *all* live sessions into length-sorted micro-batches (the same
//! scheduling idea as the `exec` streaming driver) served by a worker
//! pool with per-worker scratch arenas; per-session
//! `ShardedAccumulator<FixedAccumulator>`s keep evidence isolated while
//! deposits commute bit-exactly, so every session's digest and calls are
//! bit-identical to a serial run over the same reads regardless of batch
//! composition or worker count.
//!
//! Module map:
//! - [`protocol`] — length-prefixed binary framing with typed errors
//! - [`queue`] — bounded MPMC queue (the admission-control primitive)
//! - [`session`] — session lifecycle, registry, per-session accumulator
//! - [`metrics`] — per-stage counters behind the `Stats` frame
//! - [`server`] — acceptor, batcher, worker pool, graceful drain
//! - [`client`] — blocking client used by `gnumap client` and tests

pub mod client;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod session;

pub use client::{Client, ClientError};
pub use metrics::StatsSnapshot;
pub use protocol::{CallResult, ErrorKind, ProtocolError, Request, Response, SessionConfig};
pub use server::{start, ServerConfig, ServerHandle};
