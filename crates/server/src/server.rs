//! The daemon: acceptor, connection handlers, batcher, and worker pool.
//!
//! ```text
//!  clients ──► connection threads ──► ingress queue (bounded)
//!                                          │
//!                                      batcher: coalesce + length-sort
//!                                          │
//!                                     dispatch queue (bounded)
//!                                          │
//!                                   worker pool (AlignScratch each)
//!                                          │
//!                              per-session ShardedAccumulators
//! ```
//!
//! Backpressure is a chain of bounded queues: a full dispatch queue
//! blocks the batcher, the ingress queue then fills, and further submits
//! are shed with a typed `Busy` after the admission timeout — memory use
//! is bounded at every stage and the server stays live under overload.
//!
//! The batcher reuses the exec scheduler's idea: a stable sort of
//! buffered reads by length, cut into fixed-size micro-batches, so
//! adjacent Pair-HMM problems have similar dynamic-program shapes.
//! Because every session's `FixedAccumulator` deposit commutes
//! bit-exactly, coalescing reads across sessions changes nothing about
//! each session's final digest.

use crate::metrics::{Metrics, StatsSnapshot};
use crate::protocol::{
    read_request, write_response, CallResult, ErrorKind, Incoming, ProtocolError, Request, Response,
};
use crate::queue::{BoundedQueue, PopOutcome, PushError};
use crate::session::{Registry, SessionState};
use genome::index::KmerIndex;
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use gnumap_core::accum::GenomeAccumulator;
use gnumap_core::config::GnumapConfig;
use gnumap_core::mapping::{AlignScratch, MappingEngine};
use gnumap_core::snpcall::call_snps;
use mpisim::ThreadCpuTimer;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads mapping reads.
    pub workers: usize,
    /// Reads per micro-batch.
    pub batch_size: usize,
    /// Ingress queue capacity, in submitted chunks.
    pub ingress_capacity: usize,
    /// Dispatch queue capacity, in micro-batches.
    pub dispatch_capacity: usize,
    /// Stripes per session accumulator.
    pub shards: usize,
    /// How long a submit may wait for ingress space before `Busy`.
    pub submit_timeout: Duration,
    /// Finalize deadline when the frame says 0.
    pub default_deadline: Duration,
    /// How long a peer may stall mid-frame before the connection drops.
    pub frame_stall: Duration,
    /// Test hook: sleep this long per batch in every worker.
    pub worker_delay: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            batch_size: 32,
            ingress_capacity: 64,
            dispatch_capacity: 8,
            shards: 16,
            submit_timeout: Duration::from_secs(2),
            default_deadline: Duration::from_secs(30),
            frame_stall: Duration::from_secs(10),
            worker_delay: None,
        }
    }
}

/// One admitted `SubmitReads` chunk.
struct Chunk {
    session: Arc<SessionState>,
    reads: Vec<SequencedRead>,
    enqueued: Instant,
}

/// One read queued for mapping, remembering its session and admit time.
struct WorkItem {
    session: Arc<SessionState>,
    read: SequencedRead,
    enqueued: Instant,
}

/// One length-sorted micro-batch.
struct Batch {
    items: Vec<WorkItem>,
}

/// State shared by every server thread.
struct Shared {
    reference: DnaSeq,
    index: KmerIndex,
    base: GnumapConfig,
    cfg: ServerConfig,
    registry: Registry,
    metrics: Metrics,
    ingress: BoundedQueue<Chunk>,
    dispatch: BoundedQueue<Batch>,
    shutting_down: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        self.metrics
            .snapshot(self.registry.len(), self.ingress.len())
    }
}

/// A running server; dropping the handle does NOT stop it — call
/// [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Current counters, as a `Stats` frame would report them.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Begin a graceful drain: stop accepting connections and new work.
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Wake the acceptor out of `accept()` with a throwaway connection.
        let _ = TcpStream::connect(self.shared.addr);
    }

    /// Wait for the drain to finish: connections close, the batcher
    /// flushes its buffer, workers finish every dispatched batch.
    pub fn join(mut self) -> StatsSnapshot {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        loop {
            let handle = self.connections.lock().unwrap().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        // All producers are gone: close ingress, let the batcher drain it
        // into dispatch, then let the workers drain dispatch.
        self.shared.ingress.close();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.snapshot()
    }
}

/// Bind `addr` and start the daemon over `reference` with mapping
/// parameters from `base` (per-session frames choose calling parameters).
pub fn start(
    reference: DnaSeq,
    base: GnumapConfig,
    cfg: ServerConfig,
    addr: &str,
) -> io::Result<ServerHandle> {
    assert!(cfg.workers > 0, "need at least one worker");
    assert!(cfg.batch_size > 0, "batch size must be positive");
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let index = KmerIndex::build(&reference, base.mapping.index)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let genome_len = reference.len();
    let shared = Arc::new(Shared {
        reference,
        index,
        base,
        registry: Registry::new(genome_len, cfg.shards),
        metrics: Metrics::new(cfg.workers),
        ingress: BoundedQueue::new(cfg.ingress_capacity),
        dispatch: BoundedQueue::new(cfg.dispatch_capacity),
        shutting_down: AtomicBool::new(false),
        addr: bound,
        cfg,
    });

    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let batcher = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("gnumap-batcher".into())
            .spawn(move || batcher_loop(&shared))?
    };

    let workers = (0..shared.cfg.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("gnumap-worker-{i}"))
                .spawn(move || worker_loop(&shared, i))
        })
        .collect::<io::Result<Vec<_>>>()?;

    let acceptor = {
        let shared = Arc::clone(&shared);
        let connections = Arc::clone(&connections);
        thread::Builder::new()
            .name("gnumap-acceptor".into())
            .spawn(move || acceptor_loop(listener, &shared, &connections))?
    };

    Ok(ServerHandle {
        shared,
        acceptor: Some(acceptor),
        batcher: Some(batcher),
        workers,
        connections,
    })
}

fn acceptor_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    // The wake-up connection (or a late client): refuse.
                    let mut s = stream;
                    let _ = write_response(
                        &mut s,
                        &Response::Error {
                            kind: ErrorKind::ShuttingDown,
                            message: "server is draining".into(),
                        },
                    );
                    break;
                }
                let shared = Arc::clone(shared);
                let handle = thread::Builder::new()
                    .name("gnumap-conn".into())
                    .spawn(move || connection_loop(stream, &shared));
                if let Ok(h) = handle {
                    connections.lock().unwrap().push(h);
                }
            }
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
}

/// Serve one client connection until EOF, protocol error, or shutdown.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    // A read timeout lets the loop poll the shutdown flag between frames
    // and bound mid-frame stalls.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = stream.try_clone().expect("clone connection stream");
    let mut writer = stream;
    // Sessions opened on this connection; aborted if the client vanishes.
    let mut owned: Vec<u64> = Vec::new();

    loop {
        match read_request(&mut reader, Some(shared.cfg.frame_stall)) {
            Ok(Incoming::Idle) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    let _ = write_response(&mut writer, &Response::ShuttingDown);
                    break;
                }
            }
            Ok(Incoming::Eof) => break,
            Ok(Incoming::Frame(request)) => {
                let is_shutdown = matches!(request, Request::Shutdown);
                let response = handle_request(request, shared, &mut owned);
                if write_response(&mut writer, &response).is_err() {
                    break;
                }
                if is_shutdown {
                    break;
                }
            }
            Err(ProtocolError::Io(_)) => break,
            Err(err) => {
                // Typed decode failure: tell the client, then drop the
                // connection (framing is lost).
                let _ = write_response(
                    &mut writer,
                    &Response::Error {
                        kind: ErrorKind::Malformed,
                        message: err.to_string(),
                    },
                );
                break;
            }
        }
    }

    // Abort any session this connection still owns: un-finalized evidence
    // must not outlive its client (no accumulator leak).
    for id in owned {
        if let Some(session) = shared.registry.remove(id) {
            if session.abort() {
                shared
                    .metrics
                    .sessions_aborted
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
    Response::Error {
        kind,
        message: message.into(),
    }
}

fn handle_request(request: Request, shared: &Arc<Shared>, owned: &mut Vec<u64>) -> Response {
    match request {
        Request::OpenSession(cfg) => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return error(ErrorKind::ShuttingDown, "server is draining");
            }
            let session = shared.registry.open(cfg.to_call_config());
            shared
                .metrics
                .sessions_opened
                .fetch_add(1, Ordering::Relaxed);
            owned.push(session.id);
            Response::SessionOpened {
                session: session.id,
            }
        }
        Request::SubmitReads { session, reads } => {
            let Some(state) = shared.registry.get(session) else {
                return error(ErrorKind::UnknownSession, format!("session {session}"));
            };
            let n = reads.len() as u64;
            if n == 0 {
                return Response::ReadsAccepted {
                    session,
                    accepted: 0,
                };
            }
            if !state.begin_submit(n) {
                return error(
                    ErrorKind::SessionClosed,
                    format!("session {session} is finalizing"),
                );
            }
            let chunk = Chunk {
                session: Arc::clone(&state),
                reads,
                enqueued: Instant::now(),
            };
            match shared
                .ingress
                .push_timeout(chunk, shared.cfg.submit_timeout)
            {
                Ok(()) => {
                    shared
                        .metrics
                        .reads_accepted
                        .fetch_add(n, Ordering::Relaxed);
                    shared.metrics.observe_ingress_depth(shared.ingress.len());
                    Response::ReadsAccepted {
                        session,
                        accepted: n as u32,
                    }
                }
                Err(PushError::Full(chunk)) => {
                    chunk.session.cancel_submit(n);
                    shared
                        .metrics
                        .busy_rejections
                        .fetch_add(1, Ordering::Relaxed);
                    error(
                        ErrorKind::Busy,
                        format!(
                            "ingress queue full ({} chunks); retry later",
                            shared.cfg.ingress_capacity
                        ),
                    )
                }
                Err(PushError::Closed(chunk)) => {
                    chunk.session.cancel_submit(n);
                    error(ErrorKind::ShuttingDown, "server is draining")
                }
            }
        }
        Request::Finalize {
            session,
            deadline_ms,
        } => {
            let Some(state) = shared.registry.get(session) else {
                return error(ErrorKind::UnknownSession, format!("session {session}"));
            };
            state.close();
            let deadline = if deadline_ms == 0 {
                shared.cfg.default_deadline
            } else {
                Duration::from_millis(u64::from(deadline_ms))
            };
            if !state.wait_drained(deadline) {
                // The session stays registered (and closed): once its
                // in-flight reads drain, the client may retry finalize.
                shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                return error(
                    ErrorKind::Timeout,
                    format!(
                        "session {session}: {} of {} reads still in flight after {deadline:?}",
                        state.reads_submitted() - state.reads_processed(),
                        state.reads_submitted()
                    ),
                );
            }
            let Some(sharded) = state.take_accumulator() else {
                return error(
                    ErrorKind::SessionClosed,
                    format!("session {session} already finalized"),
                );
            };
            let full = sharded.into_full();
            let digest = full.digest();
            let calls = call_snps(&full, &shared.reference, &state.calling);
            shared.registry.remove(session);
            owned.retain(|&id| id != session);
            Response::SnpCalls(CallResult {
                session,
                digest,
                reads_processed: state.reads_processed(),
                reads_mapped: state.reads_mapped(),
                calls,
            })
        }
        Request::Ping { nonce } => Response::Pong { nonce },
        Request::Stats => Response::StatsReport(shared.snapshot()),
        Request::Shutdown => {
            shared.shutting_down.store(true, Ordering::SeqCst);
            // Wake the acceptor so it observes the flag.
            let _ = TcpStream::connect(shared.addr);
            Response::ShuttingDown
        }
    }
}

/// Coalesce ingress chunks into length-sorted micro-batches.
fn batcher_loop(shared: &Arc<Shared>) {
    let batch_size = shared.cfg.batch_size;
    // Buffer enough to keep the pool busy without hoarding the backlog.
    let max_buffer = batch_size * shared.cfg.workers.max(1) * 4;
    let mut buffer: Vec<WorkItem> = Vec::new();
    let mut closed = false;

    loop {
        // Fill the buffer: block briefly for the first chunk, then take
        // whatever else is already queued (opportunistic coalescing).
        if !closed && buffer.len() < max_buffer {
            match shared.ingress.pop_timeout(Duration::from_millis(50)) {
                PopOutcome::Item(chunk) => {
                    absorb(&mut buffer, chunk);
                    while buffer.len() < max_buffer {
                        match shared.ingress.try_pop() {
                            Some(chunk) => absorb(&mut buffer, chunk),
                            None => break,
                        }
                    }
                }
                PopOutcome::Empty => {}
                PopOutcome::Closed => closed = true,
            }
        }

        if buffer.is_empty() {
            if closed {
                break;
            }
            continue;
        }

        // The exec scheduler's trick: stable length sort so each batch
        // holds similarly-sized Pair-HMM problems.
        buffer.sort_by_key(|item| item.read.len());
        let take = buffer.len().min(batch_size * shared.cfg.workers.max(1));
        let rest = buffer.split_off(take);
        let mut sorted = std::mem::replace(&mut buffer, rest);
        while !sorted.is_empty() {
            let tail = sorted.split_off(sorted.len().min(batch_size));
            let batch = Batch { items: sorted };
            sorted = tail;
            publish_batch_metrics(shared, &batch);
            // Blocking push: a full dispatch queue is the backpressure
            // that ultimately surfaces as `Busy` at admission.
            let mut pending = batch;
            loop {
                match shared
                    .dispatch
                    .push_timeout(pending, Duration::from_secs(3600))
                {
                    Ok(()) => break,
                    Err(PushError::Full(b)) => pending = b,
                    Err(PushError::Closed(b)) => {
                        // Dispatch never closes before the batcher exits;
                        // complete the reads defensively anyway.
                        for item in b.items {
                            item.session.complete_read(false);
                        }
                        return;
                    }
                }
            }
        }
    }
    shared.dispatch.close();
}

fn absorb(buffer: &mut Vec<WorkItem>, chunk: Chunk) {
    let Chunk {
        session,
        reads,
        enqueued,
    } = chunk;
    for read in reads {
        buffer.push(WorkItem {
            session: Arc::clone(&session),
            read,
            enqueued,
        });
    }
}

fn publish_batch_metrics(shared: &Arc<Shared>, batch: &Batch) {
    let mut session_ids: Vec<u64> = batch.items.iter().map(|i| i.session.id).collect();
    session_ids.sort_unstable();
    session_ids.dedup();
    shared
        .metrics
        .batches_dispatched
        .fetch_add(1, Ordering::Relaxed);
    shared
        .metrics
        .batch_reads
        .fetch_add(batch.items.len() as u64, Ordering::Relaxed);
    shared
        .metrics
        .batch_sessions
        .fetch_add(session_ids.len() as u64, Ordering::Relaxed);
    if session_ids.len() > 1 {
        shared
            .metrics
            .cross_session_batches
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Map batches and deposit evidence into each read's session.
fn worker_loop(shared: &Arc<Shared>, worker_id: usize) {
    let engine =
        MappingEngine::with_index(&shared.reference, shared.index.clone(), shared.base.mapping);
    let mut scratch = AlignScratch::new();
    let timer = ThreadCpuTimer::start();

    loop {
        let batch = match shared.dispatch.pop_timeout(Duration::from_millis(100)) {
            PopOutcome::Item(batch) => batch,
            PopOutcome::Empty => continue,
            PopOutcome::Closed => break,
        };
        if let Some(delay) = shared.cfg.worker_delay {
            thread::sleep(delay);
        }
        let (mut candidates, mut columns) = (0u64, 0u64);
        for item in batch.items {
            engine.map_read_with(&item.read, &mut scratch);
            let mapped = !scratch.is_empty();
            for aln in scratch.alignments() {
                candidates += 1;
                columns += aln.columns.len() as u64;
                item.session
                    .deposit(aln.window_start, aln.score, aln.columns);
            }
            item.session.complete_read(mapped);
            shared
                .metrics
                .reads_processed
                .fetch_add(1, Ordering::Relaxed);
            if mapped {
                shared.metrics.reads_mapped.fetch_add(1, Ordering::Relaxed);
            }
            shared
                .metrics
                .observe_latency_micros(item.enqueued.elapsed().as_micros() as u64);
        }
        shared
            .metrics
            .candidates_evaluated
            .fetch_add(candidates, Ordering::Relaxed);
        shared
            .metrics
            .deposit_columns
            .fetch_add(columns, Ordering::Relaxed);
        shared
            .metrics
            .publish_worker_cpu(worker_id, timer.elapsed());
    }
    shared
        .metrics
        .publish_worker_cpu(worker_id, timer.elapsed());
}
