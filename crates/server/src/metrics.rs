//! Per-stage counters surfaced through the `Stats` frame.
//!
//! Everything is lock-free atomics except the service-latency reservoir,
//! which takes a short mutex per processed read. Worker CPU time is
//! published by each worker after every batch so `Stats` can report both
//! aggregate CPU spend and the critical-path (busiest-worker) time that
//! the repo's simulated-parallel throughput convention divides by.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Capacity of the latency reservoir.
const RESERVOIR_CAP: usize = 4096;

/// Point-in-time copy of every counter, as serialised in `StatsReport`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Sessions currently registered.
    pub sessions_open: u64,
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Sessions torn down by client disconnect instead of finalize.
    pub sessions_aborted: u64,
    /// Reads admitted past the ingress queue.
    pub reads_accepted: u64,
    /// Reads fully processed by workers.
    pub reads_processed: u64,
    /// Processed reads that produced at least one alignment.
    pub reads_mapped: u64,
    /// Candidate alignments scored by the Pair-HMM.
    pub candidates_evaluated: u64,
    /// Posterior columns deposited into session accumulators.
    pub deposit_columns: u64,
    /// Micro-batches handed to the worker pool.
    pub batches_dispatched: u64,
    /// Batches that mixed reads from more than one session.
    pub cross_session_batches: u64,
    /// Submits shed with a typed `Busy` response.
    pub busy_rejections: u64,
    /// Finalizes that expired with a typed `Timeout` response.
    pub timeouts: u64,
    /// Ingress queue depth at snapshot time.
    pub ingress_depth: u64,
    /// Highest ingress depth observed.
    pub max_ingress_depth: u64,
    /// Mean reads per dispatched batch.
    pub mean_batch_occupancy: f64,
    /// Mean distinct sessions per dispatched batch (>1 means
    /// cross-request coalescing is happening).
    pub mean_sessions_per_batch: f64,
    /// Median submit→processed latency, microseconds.
    pub p50_service_micros: u64,
    /// 99th-percentile submit→processed latency, microseconds.
    pub p99_service_micros: u64,
    /// Total CPU seconds across all workers.
    pub worker_cpu_secs: f64,
    /// CPU seconds of the busiest worker (the critical path).
    pub max_worker_cpu_secs: f64,
}

struct Reservoir {
    samples: Vec<u64>,
    seen: u64,
}

/// Live counter block shared by every server thread.
pub struct Metrics {
    pub(crate) sessions_opened: AtomicU64,
    pub(crate) sessions_aborted: AtomicU64,
    pub(crate) reads_accepted: AtomicU64,
    pub(crate) reads_processed: AtomicU64,
    pub(crate) reads_mapped: AtomicU64,
    pub(crate) candidates_evaluated: AtomicU64,
    pub(crate) deposit_columns: AtomicU64,
    pub(crate) batches_dispatched: AtomicU64,
    pub(crate) batch_reads: AtomicU64,
    pub(crate) batch_sessions: AtomicU64,
    pub(crate) cross_session_batches: AtomicU64,
    pub(crate) busy_rejections: AtomicU64,
    pub(crate) timeouts: AtomicU64,
    pub(crate) max_ingress_depth: AtomicU64,
    worker_cpu_nanos: Vec<AtomicU64>,
    latency: Mutex<Reservoir>,
}

impl Metrics {
    /// Counter block for a pool of `workers` workers.
    pub fn new(workers: usize) -> Metrics {
        Metrics {
            sessions_opened: AtomicU64::new(0),
            sessions_aborted: AtomicU64::new(0),
            reads_accepted: AtomicU64::new(0),
            reads_processed: AtomicU64::new(0),
            reads_mapped: AtomicU64::new(0),
            candidates_evaluated: AtomicU64::new(0),
            deposit_columns: AtomicU64::new(0),
            batches_dispatched: AtomicU64::new(0),
            batch_reads: AtomicU64::new(0),
            batch_sessions: AtomicU64::new(0),
            cross_session_batches: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            max_ingress_depth: AtomicU64::new(0),
            worker_cpu_nanos: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            latency: Mutex::new(Reservoir {
                samples: Vec::with_capacity(RESERVOIR_CAP),
                seen: 0,
            }),
        }
    }

    /// Record that the ingress queue reached `depth`.
    pub fn observe_ingress_depth(&self, depth: usize) {
        self.max_ingress_depth
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Record one read's submit→processed latency.
    pub fn observe_latency_micros(&self, micros: u64) {
        let mut r = self.latency.lock().unwrap();
        r.seen += 1;
        if r.samples.len() < RESERVOIR_CAP {
            r.samples.push(micros);
        } else {
            // Deterministic pseudo-random replacement (Knuth hash of the
            // sample counter) — keeps the reservoir representative without
            // an RNG dependency.
            let idx = (r.seen.wrapping_mul(2_654_435_761) % RESERVOIR_CAP as u64) as usize;
            r.samples[idx] = micros;
        }
    }

    /// Worker `i` publishes its cumulative CPU time.
    pub fn publish_worker_cpu(&self, worker: usize, cpu_secs: f64) {
        let nanos = (cpu_secs * 1e9) as u64;
        self.worker_cpu_nanos[worker].store(nanos, Ordering::Relaxed);
    }

    /// Snapshot every counter. `sessions_open` and `ingress_depth` are
    /// owned by other structures, so the caller passes them in.
    pub fn snapshot(&self, sessions_open: usize, ingress_depth: usize) -> StatsSnapshot {
        let batches = self.batches_dispatched.load(Ordering::Relaxed);
        let (p50, p99) = {
            let r = self.latency.lock().unwrap();
            if r.samples.is_empty() {
                (0, 0)
            } else {
                let mut sorted = r.samples.clone();
                sorted.sort_unstable();
                let pick = |q: f64| sorted[((sorted.len() - 1) as f64 * q).ceil() as usize];
                (pick(0.50), pick(0.99))
            }
        };
        let cpu: Vec<f64> = self
            .worker_cpu_nanos
            .iter()
            .map(|n| n.load(Ordering::Relaxed) as f64 / 1e9)
            .collect();
        StatsSnapshot {
            sessions_open: sessions_open as u64,
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_aborted: self.sessions_aborted.load(Ordering::Relaxed),
            reads_accepted: self.reads_accepted.load(Ordering::Relaxed),
            reads_processed: self.reads_processed.load(Ordering::Relaxed),
            reads_mapped: self.reads_mapped.load(Ordering::Relaxed),
            candidates_evaluated: self.candidates_evaluated.load(Ordering::Relaxed),
            deposit_columns: self.deposit_columns.load(Ordering::Relaxed),
            batches_dispatched: batches,
            cross_session_batches: self.cross_session_batches.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            ingress_depth: ingress_depth as u64,
            max_ingress_depth: self.max_ingress_depth.load(Ordering::Relaxed),
            mean_batch_occupancy: if batches == 0 {
                0.0
            } else {
                self.batch_reads.load(Ordering::Relaxed) as f64 / batches as f64
            },
            mean_sessions_per_batch: if batches == 0 {
                0.0
            } else {
                self.batch_sessions.load(Ordering::Relaxed) as f64 / batches as f64
            },
            p50_service_micros: p50,
            p99_service_micros: p99,
            worker_cpu_secs: cpu.iter().sum(),
            max_worker_cpu_secs: cpu.iter().fold(0.0, |a, &b| a.max(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_means_and_percentiles() {
        let m = Metrics::new(2);
        m.batches_dispatched.store(2, Ordering::Relaxed);
        m.batch_reads.store(48, Ordering::Relaxed);
        m.batch_sessions.store(5, Ordering::Relaxed);
        for micros in [100, 200, 300, 400, 10_000] {
            m.observe_latency_micros(micros);
        }
        m.publish_worker_cpu(0, 1.5);
        m.publish_worker_cpu(1, 0.5);
        let s = m.snapshot(3, 7);
        assert_eq!(s.sessions_open, 3);
        assert_eq!(s.ingress_depth, 7);
        assert!((s.mean_batch_occupancy - 24.0).abs() < 1e-9);
        assert!((s.mean_sessions_per_batch - 2.5).abs() < 1e-9);
        assert_eq!(s.p50_service_micros, 300);
        assert_eq!(s.p99_service_micros, 10_000);
        assert!((s.worker_cpu_secs - 2.0).abs() < 1e-6);
        assert!((s.max_worker_cpu_secs - 1.5).abs() < 1e-6);
    }

    #[test]
    fn reservoir_stays_bounded() {
        let m = Metrics::new(1);
        for i in 0..(RESERVOIR_CAP as u64 * 3) {
            m.observe_latency_micros(i);
        }
        assert_eq!(m.latency.lock().unwrap().samples.len(), RESERVOIR_CAP);
    }
}
