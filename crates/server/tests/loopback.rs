//! End-to-end loopback tests: real TCP, concurrent clients, interleaved
//! sessions, bit-identical conformance against the serial driver, and
//! disconnect cleanup.

use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use gnumap_core::accum::FixedAccumulator;
use gnumap_core::config::GnumapConfig;
use gnumap_core::driver::encode_calls;
use gnumap_core::pipeline::run_serial_with;
use gnumap_core::report::RunReport;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use server::{start, Client, ServerConfig, SessionConfig};
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};
use simulate::{
    apply_snps_monoploid, generate_genome, generate_snp_catalog, ErrorProfile, GenomeConfig,
    SnpCatalogConfig,
};
use std::thread;
use std::time::{Duration, Instant};

/// Small end-to-end fixture (mirrors the core pipeline test fixture).
fn fixture(
    genome_len: usize,
    snp_count: usize,
    coverage: f64,
    seed: u64,
) -> (DnaSeq, Vec<SequencedRead>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let reference = generate_genome(
        &GenomeConfig {
            length: genome_len,
            repeat_families: 1,
            repeat_length: 120,
            repeat_copies: 2,
            repeat_divergence: 0.02,
            ..GenomeConfig::default()
        },
        &mut rng,
    );
    let snps = generate_snp_catalog(
        &reference,
        &SnpCatalogConfig {
            count: snp_count,
            ..SnpCatalogConfig::default()
        },
        &mut rng,
    );
    let individual = apply_snps_monoploid(&reference, &snps);
    let sim = simulate_reads(
        &ReadSource::Monoploid(&individual),
        ReadSimConfig {
            coverage,
            ..ReadSimConfig::default()
        }
        .read_count(genome_len),
        &ReadSimConfig {
            coverage,
            profile: ErrorProfile::default(),
            ..ReadSimConfig::default()
        },
        &mut rng,
    );
    let reads: Vec<_> = sim.into_iter().map(|r| r.read).collect();
    (reference, reads)
}

fn call_bits(report: &RunReport) -> Vec<u64> {
    encode_calls(&report.calls)
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// N concurrent clients, each with its own session over its own read
/// partition: every session's digest, calls, and mapped count must be
/// bit-identical to the serial driver over the same partition.
#[test]
fn concurrent_sessions_match_serial_driver() {
    let (reference, reads) = fixture(4_000, 5, 10.0, 417);
    let config = GnumapConfig::default();
    let clients = 3usize;
    let handle = start(
        reference.clone(),
        config,
        ServerConfig {
            workers: 2,
            batch_size: 16,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("server starts");
    let addr = handle.addr();

    // Partition reads round-robin so every client works concurrently.
    let partitions: Vec<Vec<SequencedRead>> = (0..clients)
        .map(|c| {
            reads
                .iter()
                .enumerate()
                .filter(|(i, _)| i % clients == c)
                .map(|(_, r)| r.clone())
                .collect()
        })
        .collect();

    let threads: Vec<_> = partitions
        .iter()
        .cloned()
        .map(|part| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let session = client
                    .open_session(SessionConfig::default())
                    .expect("open session");
                // Interleave small chunks to exercise cross-session batching.
                for chunk in part.chunks(7) {
                    let accepted = client.submit_reads(session, chunk).expect("submit");
                    assert_eq!(accepted as usize, chunk.len());
                }
                let result = client.finalize(session, 60_000).expect("finalize");
                (part, result)
            })
        })
        .collect();

    for t in threads {
        let (part, result) = t.join().expect("client thread");
        let serial = run_serial_with::<FixedAccumulator>(&reference, &part, &config);
        assert_eq!(
            Some(result.digest),
            serial.accumulator_digest,
            "accumulator digest must be bit-identical to the serial driver"
        );
        let server_bits: Vec<u64> = encode_calls(&result.calls)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(
            server_bits,
            call_bits(&serial),
            "call wire must be bit-identical"
        );
        assert_eq!(result.reads_processed as usize, part.len());
        assert_eq!(result.reads_mapped as usize, serial.reads_mapped);
    }

    let stats = handle.stats();
    assert_eq!(stats.sessions_open, 0, "finalized sessions must be removed");
    assert!(
        stats.mean_batch_occupancy > 1.0,
        "batches must coalesce reads: occupancy {}",
        stats.mean_batch_occupancy
    );
    assert!(
        stats.cross_session_batches > 0,
        "concurrent sessions must share batches"
    );
    assert!(
        stats.candidates_evaluated >= stats.reads_mapped,
        "every mapped read scores at least one candidate: {} < {}",
        stats.candidates_evaluated,
        stats.reads_mapped
    );
    assert!(
        stats.deposit_columns > 0,
        "mapped reads must deposit posterior columns"
    );

    handle.shutdown();
    let last = handle.join();
    assert_eq!(last.reads_processed, reads.len() as u64);
}

/// One connection may interleave several sessions; each keeps isolated
/// evidence.
#[test]
fn interleaved_sessions_on_one_connection_stay_isolated() {
    let (reference, reads) = fixture(3_000, 4, 8.0, 99);
    let config = GnumapConfig::default();
    let handle = start(
        reference.clone(),
        config,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("server starts");

    let (left, right) = reads.split_at(reads.len() / 2);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let a = client
        .open_session(SessionConfig::default())
        .expect("open a");
    let b = client
        .open_session(SessionConfig::default())
        .expect("open b");
    // Alternate chunks between the two sessions.
    let mut l = left.chunks(5);
    let mut r = right.chunks(5);
    loop {
        let lc = l.next();
        let rc = r.next();
        if lc.is_none() && rc.is_none() {
            break;
        }
        if let Some(chunk) = lc {
            client.submit_reads(a, chunk).expect("submit a");
        }
        if let Some(chunk) = rc {
            client.submit_reads(b, chunk).expect("submit b");
        }
    }
    let result_a = client.finalize(a, 60_000).expect("finalize a");
    let result_b = client.finalize(b, 60_000).expect("finalize b");

    let serial_a = run_serial_with::<FixedAccumulator>(&reference, left, &config);
    let serial_b = run_serial_with::<FixedAccumulator>(&reference, right, &config);
    assert_eq!(Some(result_a.digest), serial_a.accumulator_digest);
    assert_eq!(Some(result_b.digest), serial_b.accumulator_digest);
    assert_ne!(
        result_a.digest, result_b.digest,
        "different partitions should not collide"
    );

    handle.shutdown();
    handle.join();
}

/// A client that vanishes mid-session must not leak its accumulator: the
/// server aborts the session and stays fully usable.
#[test]
fn disconnect_mid_session_cleans_up() {
    let (reference, reads) = fixture(3_000, 4, 6.0, 7);
    let config = GnumapConfig::default();
    let handle = start(
        reference.clone(),
        config,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("server starts");
    let addr = handle.addr();

    {
        let mut doomed = Client::connect(addr).expect("connect");
        let session = doomed.open_session(SessionConfig::default()).expect("open");
        doomed
            .submit_reads(session, &reads[..20.min(reads.len())])
            .expect("submit");
        // Drop without finalize: connection closes, session must be aborted.
    }

    // Poll until the abort lands (connection teardown is asynchronous).
    let mut probe = Client::connect(addr).expect("connect probe");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = probe.stats().expect("stats");
        if stats.sessions_open == 0 && stats.sessions_aborted == 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "session not cleaned up: {stats:?}"
        );
        thread::sleep(Duration::from_millis(50));
    }

    // The server remains fully functional afterwards.
    let session = probe.open_session(SessionConfig::default()).expect("open");
    probe.submit_reads(session, &reads[..10]).expect("submit");
    let result = probe.finalize(session, 60_000).expect("finalize");
    let serial = run_serial_with::<FixedAccumulator>(&reference, &reads[..10], &config);
    assert_eq!(Some(result.digest), serial.accumulator_digest);

    handle.shutdown();
    handle.join();
}

/// Control frames work and a Shutdown frame drains the server cleanly.
#[test]
fn control_frames_and_wire_shutdown() {
    let (reference, reads) = fixture(2_000, 2, 5.0, 23);
    let handle = start(
        reference,
        GnumapConfig::default(),
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("server starts");

    let mut client = Client::connect(handle.addr()).expect("connect");
    client.ping(0xfeed).expect("ping");
    let session = client.open_session(SessionConfig::default()).expect("open");
    client.submit_reads(session, &reads[..8]).expect("submit");
    let result = client.finalize(session, 60_000).expect("finalize");
    assert_eq!(result.reads_processed, 8);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.reads_accepted, 8);
    assert_eq!(stats.reads_processed, 8);

    client.shutdown_server().expect("shutdown frame");
    // join() must return: acceptor, connections, batcher, workers all exit.
    let last = handle.join();
    assert_eq!(last.reads_processed, 8);
    assert_eq!(last.sessions_open, 0);
}
