//! Overload behaviour: bounded queues shed with typed `Busy`, slow
//! workers surface `Timeout` on finalize, a stalled client cannot wedge
//! the batcher — and the server stays correct and live throughout.

use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use gnumap_core::accum::FixedAccumulator;
use gnumap_core::config::GnumapConfig;
use gnumap_core::pipeline::run_serial_with;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use server::protocol::Request;
use server::{start, Client, ClientError, ErrorKind, ServerConfig, SessionConfig};
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};
use simulate::{generate_genome, GenomeConfig};
use std::io::Write;
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

fn fixture(genome_len: usize, coverage: f64, seed: u64) -> (DnaSeq, Vec<SequencedRead>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let reference = generate_genome(
        &GenomeConfig {
            length: genome_len,
            repeat_families: 0,
            ..GenomeConfig::default()
        },
        &mut rng,
    );
    let sim = simulate_reads(
        &ReadSource::Monoploid(&reference),
        ReadSimConfig {
            coverage,
            ..ReadSimConfig::default()
        }
        .read_count(genome_len),
        &ReadSimConfig {
            coverage,
            ..ReadSimConfig::default()
        },
        &mut rng,
    );
    let reads: Vec<_> = sim.into_iter().map(|r| r.read).collect();
    (reference, reads)
}

/// With a tiny ingress queue, a short admission timeout, and slowed
/// workers, submits get shed with typed `Busy`; the server stays live
/// (ping works), accepts retries, and the finalized session is still
/// bit-identical to a serial run over exactly the accepted reads.
#[test]
fn full_ingress_sheds_busy_and_recovers() {
    let (reference, reads) = fixture(2_000, 8.0, 11);
    let config = GnumapConfig::default();
    let handle = start(
        reference.clone(),
        config,
        ServerConfig {
            workers: 1,
            batch_size: 4,
            ingress_capacity: 1,
            dispatch_capacity: 1,
            submit_timeout: Duration::from_millis(30),
            worker_delay: Some(Duration::from_millis(80)),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("server starts");

    let mut client = Client::connect(handle.addr()).expect("connect");
    let session = client.open_session(SessionConfig::default()).expect("open");

    let mut accepted: Vec<SequencedRead> = Vec::new();
    let mut busy_seen = 0usize;
    for chunk in reads.chunks(4).take(12) {
        loop {
            match client.submit_reads(session, chunk) {
                Ok(n) => {
                    assert_eq!(n as usize, chunk.len());
                    accepted.extend_from_slice(chunk);
                    break;
                }
                Err(err) if err.is_kind(ErrorKind::Busy) => {
                    busy_seen += 1;
                    // The server must stay live under overload.
                    client.ping(busy_seen as u64).expect("ping during overload");
                    thread::sleep(Duration::from_millis(40));
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }
    assert!(
        busy_seen > 0,
        "a 1-chunk ingress queue with slowed workers must shed at least once"
    );
    let stats = client.stats().expect("stats");
    assert_eq!(stats.busy_rejections as usize, busy_seen);

    let result = client.finalize(session, 60_000).expect("finalize");
    let serial = run_serial_with::<FixedAccumulator>(&reference, &accepted, &config);
    assert_eq!(
        Some(result.digest),
        serial.accumulator_digest,
        "shedding must never corrupt accepted evidence"
    );

    handle.shutdown();
    handle.join();
}

/// A finalize whose deadline is shorter than the worker backlog gets a
/// typed `Timeout`; the session survives, and a retried finalize after
/// the drain returns the full, correct result.
#[test]
fn slow_worker_triggers_finalize_timeout_then_retry_succeeds() {
    let (reference, reads) = fixture(2_000, 6.0, 29);
    let config = GnumapConfig::default();
    let handle = start(
        reference.clone(),
        config,
        ServerConfig {
            workers: 1,
            batch_size: 2,
            worker_delay: Some(Duration::from_millis(150)),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("server starts");

    let mut client = Client::connect(handle.addr()).expect("connect");
    let session = client.open_session(SessionConfig::default()).expect("open");
    let take = 12.min(reads.len());
    client
        .submit_reads(session, &reads[..take])
        .expect("submit");

    // 6 batches × 150 ms of injected delay cannot drain in 10 ms.
    match client.finalize(session, 10) {
        Err(err) if err.is_kind(ErrorKind::Timeout) => {}
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert_eq!(client.stats().expect("stats").timeouts, 1);

    // Retry with a generous deadline: the session is closed but intact.
    let result = client.finalize(session, 60_000).expect("retried finalize");
    let serial = run_serial_with::<FixedAccumulator>(&reference, &reads[..take], &config);
    assert_eq!(Some(result.digest), serial.accumulator_digest);
    assert_eq!(result.reads_processed as usize, take);

    // After a successful finalize the session is gone.
    match client.finalize(session, 1000) {
        Err(err) if err.is_kind(ErrorKind::UnknownSession) => {}
        other => panic!("expected UnknownSession, got {other:?}"),
    }

    handle.shutdown();
    handle.join();
}

/// A client that opens a frame and then stalls forever only wedges its
/// own connection: other clients keep full service, and the stalled
/// connection is eventually dropped by the frame-stall cap.
#[test]
fn stalled_client_does_not_wedge_the_batcher() {
    let (reference, reads) = fixture(2_000, 5.0, 43);
    let config = GnumapConfig::default();
    let handle = start(
        reference.clone(),
        config,
        ServerConfig {
            frame_stall: Duration::from_millis(500),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("server starts");
    let addr = handle.addr();

    // The staller: send half of a valid SubmitReads frame, then nothing.
    let frame = Request::SubmitReads {
        session: 1,
        reads: reads[..4].to_vec(),
    }
    .encode();
    let mut staller = TcpStream::connect(addr).expect("staller connects");
    staller
        .write_all(&frame[..frame.len() / 2])
        .expect("partial write");
    staller.flush().expect("flush");

    // Meanwhile a healthy client gets complete service.
    let mut client = Client::connect(addr).expect("connect");
    let session = client.open_session(SessionConfig::default()).expect("open");
    let take = 10.min(reads.len());
    client
        .submit_reads(session, &reads[..take])
        .expect("submit");
    let result = client.finalize(session, 60_000).expect("finalize");
    let serial = run_serial_with::<FixedAccumulator>(&reference, &reads[..take], &config);
    assert_eq!(Some(result.digest), serial.accumulator_digest);

    // The stalled connection gets reaped by the frame-stall cap, so
    // shutdown + join cannot hang on it.
    let deadline = Instant::now() + Duration::from_secs(10);
    drop(client);
    handle.shutdown();
    let joined = thread::spawn(move || handle.join());
    while !joined.is_finished() {
        assert!(
            Instant::now() < deadline,
            "join hung on the stalled connection"
        );
        thread::sleep(Duration::from_millis(50));
    }
    joined.join().expect("join thread");
    drop(staller);
}

/// Typed errors for bad session ids.
#[test]
fn unknown_session_is_typed() {
    let (reference, reads) = fixture(1_500, 3.0, 5);
    let handle = start(
        reference,
        GnumapConfig::default(),
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");
    match client.submit_reads(777, &reads[..1]) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::UnknownSession),
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    match client.finalize(777, 100) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::UnknownSession),
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    handle.shutdown();
    handle.join();
}
