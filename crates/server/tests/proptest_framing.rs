//! Framing robustness: decoding is total (never panics, never hangs) and
//! encoding round-trips bit-identically.

use genome::alphabet::Base;
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use gnumap_core::snpcall::{Cutoff, SnpCall};
use gnumap_stats::lrt::Ploidy;
use proptest::prelude::*;
use server::metrics::StatsSnapshot;
use server::protocol::{
    read_request, read_response, CallResult, ErrorKind, Incoming, ProtocolError, Request, Response,
    SessionConfig,
};
use std::io::Cursor;

fn session_config() -> impl Strategy<Value = SessionConfig> {
    (0u8..2, 0u8..2, 0u64..1000, 0u64..100).prop_map(|(p, c, v, m)| SessionConfig {
        ploidy: if p == 0 {
            Ploidy::Monoploid
        } else {
            Ploidy::Diploid
        },
        cutoff: if c == 0 {
            Cutoff::PValue(v as f64 / 1000.0)
        } else {
            Cutoff::Fdr(v as f64 / 1000.0)
        },
        min_total: m as f64 / 10.0,
    })
}

fn reads() -> impl Strategy<Value = Vec<SequencedRead>> {
    proptest::collection::vec(
        (proptest::collection::vec(0u8..5, 1..40), 2u8..60).prop_map(|(codes, q)| {
            let seq: DnaSeq = codes
                .into_iter()
                .map(|c| (c < 4).then(|| Base::from_index(c as usize)))
                .collect();
            SequencedRead::with_uniform_quality("read/1", seq, q)
        }),
        0..8,
    )
}

fn requests() -> impl Strategy<Value = Request> {
    (0u8..6, session_config(), reads(), 0u64..u64::MAX).prop_map(|(tag, cfg, reads, n)| match tag {
        0 => Request::OpenSession(cfg),
        1 => Request::SubmitReads { session: n, reads },
        2 => Request::Finalize {
            session: n,
            deadline_ms: (n % u64::from(u32::MAX)) as u32,
        },
        3 => Request::Ping { nonce: n },
        4 => Request::Stats,
        _ => Request::Shutdown,
    })
}

fn calls() -> impl Strategy<Value = Vec<SnpCall>> {
    proptest::collection::vec(
        (0u64..100_000, 0u8..4, 0u8..4, 0u64..1_000_000).prop_map(|(pos, r, a, stat)| SnpCall {
            pos: pos as usize,
            reference: Base::from_index(r as usize),
            allele: Base::from_index(a as usize),
            second_allele: (stat % 3 == 0).then(|| Base::from_index(((a + 1) % 4) as usize)),
            statistic: stat as f64 / 7.0,
            p_adjusted: 1.0 / (1.0 + stat as f64),
            counts: [stat as f64, 0.5, 0.0, 2.0, 0.25],
        }),
        0..5,
    )
}

fn responses() -> impl Strategy<Value = Response> {
    (
        0u8..7,
        0u64..u64::MAX,
        calls(),
        proptest::collection::vec(0u64..u64::MAX, 4),
    )
        .prop_map(|(tag, n, calls, extra)| match tag {
            0 => Response::SessionOpened { session: n },
            1 => Response::ReadsAccepted {
                session: n,
                accepted: (n % 1000) as u32,
            },
            2 => Response::SnpCalls(CallResult {
                session: n,
                digest: extra[0],
                reads_processed: extra[1],
                reads_mapped: extra[2],
                calls,
            }),
            3 => Response::Pong { nonce: n },
            4 => Response::StatsReport(StatsSnapshot {
                sessions_open: extra[0],
                reads_accepted: extra[1],
                batches_dispatched: extra[2],
                p99_service_micros: extra[3],
                mean_batch_occupancy: (n % 100) as f64 / 3.0,
                worker_cpu_secs: (n % 7) as f64,
                ..StatsSnapshot::default()
            }),
            5 => Response::ShuttingDown,
            _ => Response::Error {
                kind: ErrorKind::Busy,
                message: format!("busy #{n}"),
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity on every request frame.
    #[test]
    fn request_round_trip(req in requests()) {
        let bytes = req.encode();
        match read_request(&mut Cursor::new(&bytes), None) {
            Ok(Incoming::Frame(got)) => prop_assert_eq!(got, req),
            other => prop_assert!(false, "decode failed: {:?}", other),
        }
    }

    /// encode → decode is the identity on every response frame.
    #[test]
    fn response_round_trip(resp in responses()) {
        let bytes = resp.encode();
        match read_response(&mut Cursor::new(&bytes), None) {
            Ok(Incoming::Frame(got)) => prop_assert_eq!(got, resp),
            other => prop_assert!(false, "decode failed: {:?}", other),
        }
    }

    /// Arbitrary byte soup never panics or hangs the decoder — every
    /// stream yields frames until a typed error or clean EOF.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255u8, 0..2048)) {
        let mut cursor = Cursor::new(&bytes[..]);
        for _ in 0..64 {
            match read_request(&mut cursor, None) {
                Ok(Incoming::Frame(_)) => continue,
                Ok(Incoming::Eof) | Ok(Incoming::Idle) => break,
                Err(_) => break, // typed error, fine
            }
        }
        let mut cursor = Cursor::new(&bytes[..]);
        for _ in 0..64 {
            match read_response(&mut cursor, None) {
                Ok(Incoming::Frame(_)) => continue,
                Ok(Incoming::Eof) | Ok(Incoming::Idle) => break,
                Err(_) => break,
            }
        }
    }

    /// A truncation of any valid frame yields a typed error (or clean
    /// EOF at the zero cut), never a panic or a bogus frame.
    #[test]
    fn truncations_yield_typed_errors(req in requests(), keep_permille in 0u32..1000) {
        let bytes = req.encode();
        let cut = (bytes.len() * keep_permille as usize) / 1000;
        prop_assume!(cut < bytes.len());
        match read_request(&mut Cursor::new(&bytes[..cut]), None) {
            Ok(Incoming::Eof) => prop_assert_eq!(cut, 0),
            Err(ProtocolError::Truncated(_)) => {}
            other => prop_assert!(false, "cut {} gave {:?}", cut, other),
        }
    }

    /// Flipping the tag byte of a valid frame can never be mistaken for
    /// the original frame.
    #[test]
    fn tag_corruption_is_detected(req in requests(), new_tag in 0x07u8..0x81) {
        let mut bytes = req.encode();
        bytes[4] = new_tag; // tag byte sits right after the length prefix
        if let Ok(Incoming::Frame(got)) = read_request(&mut Cursor::new(&bytes), None) {
            prop_assert!(got != req, "corrupted tag decoded as the original");
        }
    }
}
