//! Property tests for sequence storage, k-mer machinery and I/O.

use genome::alphabet::Base;
use genome::fasta::{read_fasta, write_fasta, FastaRecord};
use genome::fastq::{read_fastq, write_fastq};
use genome::index::{IndexConfig, KmerIndex};
use genome::kmer::KmerIter;
use genome::packed::PackedSeq;
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use proptest::prelude::*;

/// Random DNA sequence with occasional Ns.
fn dna(max_len: usize) -> impl Strategy<Value = DnaSeq> {
    proptest::collection::vec(0u8..5, 0..max_len).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| (c < 4).then(|| Base::from_index(c as usize)))
            .collect()
    })
}

/// Random DNA with no Ns (for k-mer tests).
fn dna_concrete(min_len: usize, max_len: usize) -> impl Strategy<Value = DnaSeq> {
    proptest::collection::vec(0u8..4, min_len..max_len).prop_map(|codes| {
        DnaSeq::from_bases(codes.into_iter().map(|c| Base::from_index(c as usize)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn packed_round_trip(seq in dna(300)) {
        let packed = PackedSeq::from_dna(&seq);
        prop_assert_eq!(packed.to_dna(), seq);
    }

    #[test]
    fn reverse_complement_involution(seq in dna(200)) {
        prop_assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn ascii_round_trip(seq in dna(200)) {
        let text = seq.to_ascii();
        prop_assert_eq!(DnaSeq::from_ascii(&text).unwrap(), seq);
    }

    #[test]
    fn fasta_round_trip(seq in dna(500), width in 1usize..120) {
        let records = vec![FastaRecord { id: "x".into(), seq }];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, width).unwrap();
        let back = read_fasta(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, records);
    }

    #[test]
    fn fastq_round_trip(
        seq in dna_concrete(1, 150),
        q in 0u8..90,
    ) {
        let read = SequencedRead::with_uniform_quality("r/1", seq, q);
        let mut buf = Vec::new();
        write_fastq(&mut buf, std::slice::from_ref(&read)).unwrap();
        let back = read_fastq(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, vec![read]);
    }

    #[test]
    fn rolling_kmers_match_naive_windows(seq in dna(150), k in 1usize..12) {
        let rolled: Vec<(usize, u64)> = KmerIter::new(&seq, k)
            .unwrap()
            .map(|(p, km)| (p, km.packed()))
            .collect();
        // Naive: every window of k concrete bases.
        let mut naive = Vec::new();
        if seq.len() >= k {
            'outer: for p in 0..=seq.len() - k {
                let mut packed = 0u64;
                for i in 0..k {
                    match seq.get(p + i) {
                        Some(b) => packed = (packed << 2) | b.code() as u64,
                        None => continue 'outer,
                    }
                }
                naive.push((p, packed));
            }
        }
        prop_assert_eq!(rolled, naive);
    }

    #[test]
    fn index_lookup_positions_are_real_occurrences(
        seq in dna_concrete(20, 200),
        k in 4usize..9,
    ) {
        let index = KmerIndex::build(
            &seq,
            IndexConfig { k, max_occurrences: 1_000, stride: 1 },
        ).unwrap();
        // Every stored position must reproduce its k-mer.
        for (pos, kmer) in KmerIter::new(&seq, k).unwrap() {
            let hits = index.lookup(kmer.packed());
            prop_assert!(hits.contains(&(pos as u32)),
                "position {pos} missing from its own k-mer's hit list");
        }
        // And lookups never point at non-occurrences.
        for (_, kmer) in KmerIter::new(&seq, k).unwrap() {
            for &hit in index.lookup(kmer.packed()) {
                let window = seq.window(hit as usize, hit as usize + k);
                let mut packed = 0u64;
                for b in window.iter() {
                    packed = (packed << 2) | b.unwrap().code() as u64;
                }
                prop_assert_eq!(packed, kmer.packed());
            }
        }
    }

    #[test]
    fn hamming_triangle_inequality(
        a in dna_concrete(10, 40),
    ) {
        // Mutate two copies independently and check d(a,b) <= d(a,c) + d(c,b).
        let b: DnaSeq = a.iter().map(|x| x.map(Base::transition)).collect();
        let c: DnaSeq = a
            .iter()
            .enumerate()
            .map(|(i, x)| if i % 2 == 0 { x } else { x.map(Base::transition) })
            .collect();
        let d_ab = a.hamming(&b);
        let d_ac = a.hamming(&c);
        let d_cb = c.hamming(&b);
        prop_assert!(d_ab <= d_ac + d_cb);
    }
}

/// Render one four-line FASTQ record for `seq` with an all-`I` quality
/// line of length `qual_len`.
fn fastq_record(seq: &DnaSeq, qual_len: usize) -> String {
    format!("@r0\n{seq}\n+\n{}\n", "I".repeat(qual_len))
}

/// Characters that are neither nucleotides, `N`, nor whitespace — invalid
/// in any sequence line.
const BAD_SEQ_CHARS: &[u8] = b"%1#=Z@;?x";

// Malformed-input properties: every corruption must surface as `Err`,
// never a panic and never a silently parsed read.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fastq_quality_length_mismatch_is_rejected(
        seq in dna_concrete(1, 60),
        delta in 1usize..6,
        shorter in 0u8..2,
    ) {
        let qual_len = if shorter == 0 {
            seq.len() + delta
        } else {
            seq.len().saturating_sub(delta)
        };
        prop_assume!(qual_len != seq.len());
        let text = fastq_record(&seq, qual_len);
        prop_assert!(read_fastq(std::io::Cursor::new(text)).is_err());
    }

    #[test]
    fn fastq_truncated_record_is_rejected(
        seq in dna_concrete(1, 60),
        keep_lines in 1usize..4,
    ) {
        let full = fastq_record(&seq, seq.len());
        let truncated: String = full
            .lines()
            .take(keep_lines)
            .flat_map(|l| [l, "\n"])
            .collect();
        prop_assert!(read_fastq(std::io::Cursor::new(truncated)).is_err());
    }

    #[test]
    fn fastq_non_acgt_sequence_is_rejected(
        seq in dna_concrete(1, 60),
        at in 0usize..60,
        bad in 0usize..BAD_SEQ_CHARS.len(),
    ) {
        let mut line: Vec<u8> = seq.to_ascii();
        let at = at % line.len();
        line[at] = BAD_SEQ_CHARS[bad];
        let text = format!(
            "@r0\n{}\n+\n{}\n",
            String::from_utf8(line).unwrap(),
            "I".repeat(seq.len()),
        );
        prop_assert!(read_fastq(std::io::Cursor::new(text)).is_err());
    }

    #[test]
    fn fasta_non_acgt_body_is_rejected(
        seq in dna_concrete(1, 120),
        at in 0usize..120,
        bad in 0usize..BAD_SEQ_CHARS.len(),
    ) {
        let mut body: Vec<u8> = seq.to_ascii();
        let at = at % body.len();
        body[at] = BAD_SEQ_CHARS[bad];
        let text = format!(">contig\n{}\n", String::from_utf8(body).unwrap());
        prop_assert!(read_fasta(std::io::Cursor::new(text)).is_err());
    }

    #[test]
    fn fasta_body_before_header_is_rejected(seq in dna_concrete(1, 120)) {
        let text = format!("{seq}\n>late-header\n");
        prop_assert!(read_fasta(std::io::Cursor::new(text)).is_err());
    }
}
