//! Diploid individuals: two haplotypes over the same coordinate system.
//!
//! The paper's diploid LRT (Equation 2) distinguishes homozygous sites (both
//! alleles differ identically from the reference) from heterozygous sites
//! (the two haplotypes disagree). The simulator produces these individuals;
//! the read sampler draws each fragment from one haplotype uniformly.

use crate::alphabet::Base;
use crate::seq::DnaSeq;

/// Two same-length haplotypes.
#[derive(Debug, Clone, PartialEq)]
pub struct DiploidGenome {
    pub maternal: DnaSeq,
    pub paternal: DnaSeq,
}

/// The genotype of a diploid individual at one site, relative to a
/// reference base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Genotype {
    /// Both haplotypes equal the reference.
    HomRef,
    /// Both haplotypes carry the same non-reference allele.
    HomAlt(Base),
    /// The haplotypes disagree; fields are (maternal, paternal).
    Het(Base, Base),
}

impl DiploidGenome {
    /// Construct; panics when the haplotypes differ in length.
    pub fn new(maternal: DnaSeq, paternal: DnaSeq) -> DiploidGenome {
        assert_eq!(
            maternal.len(),
            paternal.len(),
            "haplotypes must be equal length"
        );
        DiploidGenome { maternal, paternal }
    }

    /// A fully homozygous-reference individual.
    pub fn homozygous(reference: DnaSeq) -> DiploidGenome {
        DiploidGenome {
            paternal: reference.clone(),
            maternal: reference,
        }
    }

    /// Shared coordinate length.
    pub fn len(&self) -> usize {
        self.maternal.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.maternal.is_empty()
    }

    /// Haplotype selector: 0 = maternal, 1 = paternal.
    pub fn haplotype(&self, which: usize) -> &DnaSeq {
        match which {
            0 => &self.maternal,
            1 => &self.paternal,
            other => panic!("haplotype index {other} out of range (0 or 1)"),
        }
    }

    /// Classify the genotype at `pos` against a reference base. Sites where
    /// either haplotype is `N` are treated as matching the reference (no
    /// call possible), consistent with how truth sets exclude no-call sites.
    pub fn genotype_at(&self, pos: usize, reference: Base) -> Genotype {
        match (self.maternal.get(pos), self.paternal.get(pos)) {
            (Some(m), Some(p)) => {
                if m == reference && p == reference {
                    Genotype::HomRef
                } else if m == p {
                    Genotype::HomAlt(m)
                } else {
                    Genotype::Het(m, p)
                }
            }
            _ => Genotype::HomRef,
        }
    }

    /// All positions whose genotype differs from the reference sequence.
    pub fn variant_positions(&self, reference: &DnaSeq) -> Vec<(usize, Genotype)> {
        assert_eq!(self.len(), reference.len());
        (0..self.len())
            .filter_map(|pos| {
                let r = reference.get(pos)?;
                match self.genotype_at(pos, r) {
                    Genotype::HomRef => None,
                    g => Some((pos, g)),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    #[test]
    fn genotype_classification() {
        let d = DiploidGenome::new(seq("ACGT"), seq("AGGA"));
        assert_eq!(d.genotype_at(0, Base::A), Genotype::HomRef);
        assert_eq!(d.genotype_at(1, Base::C), Genotype::Het(Base::C, Base::G));
        assert_eq!(d.genotype_at(2, Base::G), Genotype::HomRef);
        assert_eq!(d.genotype_at(3, Base::C), Genotype::Het(Base::T, Base::A));
        let hom = DiploidGenome::new(seq("AAAA"), seq("AAAA"));
        assert_eq!(hom.genotype_at(2, Base::G), Genotype::HomAlt(Base::A));
    }

    #[test]
    fn n_sites_are_homref() {
        let d = DiploidGenome::new(seq("NA"), seq("AA"));
        assert_eq!(d.genotype_at(0, Base::G), Genotype::HomRef);
    }

    #[test]
    fn variant_positions_against_reference() {
        let reference = seq("AAAA");
        let d = DiploidGenome::new(seq("ACAA"), seq("ACGA"));
        let vars = d.variant_positions(&reference);
        assert_eq!(
            vars,
            vec![
                (1, Genotype::HomAlt(Base::C)),
                (2, Genotype::Het(Base::A, Base::G)),
            ]
        );
    }

    #[test]
    fn homozygous_constructor_duplicates() {
        let d = DiploidGenome::homozygous(seq("ACGT"));
        assert_eq!(d.maternal, d.paternal);
        assert_eq!(d.haplotype(0), d.haplotype(1));
    }

    #[test]
    #[should_panic]
    fn unequal_haplotypes_panic() {
        let _ = DiploidGenome::new(seq("AC"), seq("ACG"));
    }
}
