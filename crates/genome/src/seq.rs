//! Owned, byte-per-base DNA sequences.
//!
//! `DnaSeq` is the ergonomic working representation: one `Option<Base>` per
//! position (`None` = `N`). The memory-lean 2-bit representation used for
//! whole genomes lives in [`crate::packed`]; the two convert losslessly in
//! both directions (up to `N` handling, which `PackedSeq` tracks in a
//! side mask).

use crate::alphabet::Base;
use crate::error::GenomeError;
use std::fmt;

/// An owned DNA sequence with explicit `N` positions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DnaSeq {
    bases: Vec<Option<Base>>,
}

impl DnaSeq {
    /// Empty sequence.
    pub fn new() -> Self {
        DnaSeq { bases: Vec::new() }
    }

    /// Pre-allocated empty sequence.
    pub fn with_capacity(cap: usize) -> Self {
        DnaSeq {
            bases: Vec::with_capacity(cap),
        }
    }

    /// Build from concrete bases (no `N`s).
    pub fn from_bases(bases: impl IntoIterator<Item = Base>) -> Self {
        DnaSeq {
            bases: bases.into_iter().map(Some).collect(),
        }
    }

    /// Parse from ASCII, accepting `ACGTNacgtn`.
    pub fn from_ascii(text: &[u8]) -> Result<Self, GenomeError> {
        let mut bases = Vec::with_capacity(text.len());
        for &c in text {
            match Base::try_from_ascii(c) {
                Ok(b) => bases.push(b),
                Err(found) => {
                    return Err(GenomeError::InvalidCharacter {
                        line: 0,
                        found: found as char,
                    })
                }
            }
        }
        Ok(DnaSeq { bases })
    }

    /// Number of positions (including `N`s).
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// True when the sequence has no positions.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// The base at `pos`, `None` when the position is an `N`.
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, pos: usize) -> Option<Base> {
        self.bases[pos]
    }

    /// Checked access; `None` when out of bounds, `Some(None)` for `N`.
    pub fn try_get(&self, pos: usize) -> Option<Option<Base>> {
        self.bases.get(pos).copied()
    }

    /// Overwrite a position.
    pub fn set(&mut self, pos: usize, base: Option<Base>) {
        self.bases[pos] = base;
    }

    /// Append one position.
    pub fn push(&mut self, base: Option<Base>) {
        self.bases.push(base);
    }

    /// Iterate positions in order.
    pub fn iter(&self) -> impl Iterator<Item = Option<Base>> + '_ {
        self.bases.iter().copied()
    }

    /// Borrow the underlying slice.
    pub fn as_slice(&self) -> &[Option<Base>] {
        &self.bases
    }

    /// Copy out the subsequence `[start, end)` (clamped to the sequence
    /// length, so a window hanging off the end simply comes back shorter).
    pub fn window(&self, start: usize, end: usize) -> DnaSeq {
        let end = end.min(self.bases.len());
        let start = start.min(end);
        DnaSeq {
            bases: self.bases[start..end].to_vec(),
        }
    }

    /// Reverse complement (N stays N).
    pub fn reverse_complement(&self) -> DnaSeq {
        DnaSeq {
            bases: self
                .bases
                .iter()
                .rev()
                .map(|b| b.map(Base::complement))
                .collect(),
        }
    }

    /// Count of `N` positions.
    pub fn n_count(&self) -> usize {
        self.bases.iter().filter(|b| b.is_none()).count()
    }

    /// Fraction of G/C among concrete bases; 0 when there are none.
    pub fn gc_fraction(&self) -> f64 {
        let mut gc = 0usize;
        let mut total = 0usize;
        for b in self.bases.iter().flatten() {
            total += 1;
            if matches!(b, Base::G | Base::C) {
                gc += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            gc as f64 / total as f64
        }
    }

    /// Render to ASCII (`N` for unknown positions).
    pub fn to_ascii(&self) -> Vec<u8> {
        self.bases
            .iter()
            .map(|b| b.map_or(b'N', Base::to_ascii))
            .collect()
    }

    /// Hamming distance between equal-length sequences, counting any
    /// comparison involving an `N` as a mismatch. Panics on length mismatch.
    pub fn hamming(&self, other: &DnaSeq) -> usize {
        assert_eq!(self.len(), other.len(), "hamming requires equal lengths");
        self.bases
            .iter()
            .zip(&other.bases)
            .filter(|(a, b)| match (a, b) {
                (Some(x), Some(y)) => x != y,
                _ => true,
            })
            .count()
    }
}

impl fmt::Display for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bases {
            write!(f, "{}", b.map_or('N', Base::to_char))?;
        }
        Ok(())
    }
}

impl FromIterator<Option<Base>> for DnaSeq {
    fn from_iter<T: IntoIterator<Item = Option<Base>>>(iter: T) -> Self {
        DnaSeq {
            bases: iter.into_iter().collect(),
        }
    }
}

impl std::str::FromStr for DnaSeq {
    type Err = GenomeError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DnaSeq::from_ascii(s.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        let s = seq("ACGTNacgtn");
        assert_eq!(s.to_string(), "ACGTNACGTN");
        assert_eq!(s.len(), 10);
        assert_eq!(s.n_count(), 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(DnaSeq::from_ascii(b"ACGU").is_err());
    }

    #[test]
    fn reverse_complement_round_trip() {
        let s = seq("AACGTN");
        assert_eq!(s.reverse_complement().to_string(), "NACGTT");
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn window_clamps() {
        let s = seq("ACGTACGT");
        assert_eq!(s.window(2, 5).to_string(), "GTA");
        assert_eq!(s.window(6, 100).to_string(), "GT");
        assert_eq!(s.window(100, 200).len(), 0);
    }

    #[test]
    fn gc_fraction_ignores_n() {
        let s = seq("GCGCNN");
        assert!((s.gc_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(seq("NNNN").gc_fraction(), 0.0);
        assert!((seq("ACGT").gc_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hamming_counts_n_as_mismatch() {
        assert_eq!(seq("ACGT").hamming(&seq("ACGT")), 0);
        assert_eq!(seq("ACGT").hamming(&seq("ACGA")), 1);
        assert_eq!(seq("ACGN").hamming(&seq("ACGT")), 1);
        assert_eq!(seq("NNNN").hamming(&seq("NNNN")), 4);
    }

    #[test]
    #[should_panic]
    fn hamming_panics_on_length_mismatch() {
        let _ = seq("ACG").hamming(&seq("ACGT"));
    }

    #[test]
    fn set_and_get() {
        let mut s = seq("AAAA");
        s.set(2, Some(Base::G));
        s.set(3, None);
        assert_eq!(s.to_string(), "AAGN");
        assert_eq!(s.get(2), Some(Base::G));
        assert_eq!(s.try_get(10), None);
    }
}
