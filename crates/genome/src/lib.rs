//! DNA sequence primitives and genome substrates for GNUMAP-SNP.
//!
//! This crate provides the data-layer foundation the paper's mapper is built
//! on: the four-letter DNA alphabet (plus `N`), owned and packed sequence
//! types, FASTA/FASTQ parsing and serialisation, Phred quality handling,
//! 2-bit k-mer encoding, and the genomic k-mer hash index (paper Section V,
//! step 1: "create a genomic hash table of k-mers, default k = 10").
//!
//! Everything here is deliberately free of probability logic — the Pair-HMM
//! lives in the `pairhmm` crate and consumes these types.

pub mod alphabet;
pub mod diploid;
pub mod error;
pub mod fasta;
pub mod fastq;
pub mod index;
pub mod kmer;
pub mod packed;
pub mod quality;
pub mod read;
pub mod region;
pub mod seq;
pub mod vcf;

pub use alphabet::Base;
pub use diploid::DiploidGenome;
pub use error::GenomeError;
pub use index::{IndexConfig, KmerIndex};
pub use kmer::{Kmer, KmerIter};
pub use packed::PackedSeq;
pub use quality::{phred_to_error_prob, phred_to_symbol, symbol_to_phred};
pub use read::SequencedRead;
pub use region::Region;
pub use seq::DnaSeq;
