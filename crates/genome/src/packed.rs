//! 2-bit packed genome storage.
//!
//! The paper stresses memory pressure: the genome itself, the k-mer hash
//! table and the per-base accumulator all have to fit in RAM, and Section
//! VI-B is entirely about shrinking the per-base cost. `PackedSeq` stores
//! four bases per byte plus a bitmask for `N` positions, so a 3.1 Gbp genome
//! costs ~0.97 GB instead of ~3.1 GB — matching how GNUMAP itself keeps the
//! reference resident while mapping.

use crate::alphabet::Base;
use crate::seq::DnaSeq;

/// A DNA sequence packed at 2 bits/base with an `N` side-mask.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PackedSeq {
    /// 2-bit codes, 4 per byte, little-endian within the byte
    /// (position i occupies bits `2*(i%4) .. 2*(i%4)+2` of `words[i/4]`).
    words: Vec<u8>,
    /// One bit per base; set = the position is `N`.
    n_mask: Vec<u8>,
    len: usize,
}

impl PackedSeq {
    /// Empty packed sequence.
    pub fn new() -> Self {
        PackedSeq::default()
    }

    /// Pack an unpacked sequence.
    pub fn from_dna(seq: &DnaSeq) -> Self {
        let mut p = PackedSeq {
            words: vec![0; seq.len().div_ceil(4)],
            n_mask: vec![0; seq.len().div_ceil(8)],
            len: seq.len(),
        };
        for (i, b) in seq.iter().enumerate() {
            p.write(i, b);
        }
        p
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap bytes used by the packed representation (words + N mask). This
    /// feeds the memory-footprint accounting for Table II.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() + self.n_mask.capacity()
    }

    #[inline]
    fn write(&mut self, pos: usize, base: Option<Base>) {
        let (w, shift) = (pos / 4, 2 * (pos % 4));
        match base {
            Some(b) => {
                self.words[w] = (self.words[w] & !(0b11 << shift)) | (b.code() << shift);
                self.n_mask[pos / 8] &= !(1 << (pos % 8));
            }
            None => {
                // Leave word bits zero (A) but set the N flag; readers must
                // consult the flag first.
                self.words[w] &= !(0b11 << shift);
                self.n_mask[pos / 8] |= 1 << (pos % 8);
            }
        }
    }

    /// Append a base.
    pub fn push(&mut self, base: Option<Base>) {
        let pos = self.len;
        if pos / 4 >= self.words.len() {
            self.words.push(0);
        }
        if pos / 8 >= self.n_mask.len() {
            self.n_mask.push(0);
        }
        self.len += 1;
        self.write(pos, base);
    }

    /// The base at `pos` (`None` = `N`). Panics when out of bounds.
    #[inline]
    pub fn get(&self, pos: usize) -> Option<Base> {
        assert!(
            pos < self.len,
            "position {pos} out of bounds ({})",
            self.len
        );
        if self.n_mask[pos / 8] & (1 << (pos % 8)) != 0 {
            None
        } else {
            Some(Base::from_code(self.words[pos / 4] >> (2 * (pos % 4))))
        }
    }

    /// Iterate all positions in order.
    pub fn iter(&self) -> impl Iterator<Item = Option<Base>> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Unpack the window `[start, end)` (clamped) into a `DnaSeq`.
    pub fn window(&self, start: usize, end: usize) -> DnaSeq {
        let end = end.min(self.len);
        let start = start.min(end);
        (start..end).map(|i| self.get(i)).collect()
    }

    /// Unpack the whole sequence.
    pub fn to_dna(&self) -> DnaSeq {
        self.window(0, self.len)
    }
}

impl From<&DnaSeq> for PackedSeq {
    fn from(seq: &DnaSeq) -> Self {
        PackedSeq::from_dna(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    #[test]
    fn round_trip_with_ns() {
        let s = seq("ACGTNNACGTACGTN");
        let p = PackedSeq::from_dna(&s);
        assert_eq!(p.len(), s.len());
        assert_eq!(p.to_dna(), s);
    }

    #[test]
    fn push_matches_bulk_pack() {
        let s = seq("TTGCANGGCAT");
        let mut p = PackedSeq::new();
        for b in s.iter() {
            p.push(b);
        }
        assert_eq!(p, PackedSeq::from_dna(&s));
    }

    #[test]
    fn window_unpacks_correctly() {
        let s = seq("ACGTACGTNNGT");
        let p = PackedSeq::from_dna(&s);
        assert_eq!(p.window(3, 11).to_string(), "TACGTNNG");
        assert_eq!(p.window(10, 99).to_string(), "GT");
    }

    #[test]
    fn packing_is_actually_compact() {
        let s = DnaSeq::from_bases(std::iter::repeat_n(Base::G, 10_000));
        let p = PackedSeq::from_dna(&s);
        // 2 bits/base + 1 bit/base for the N mask = well under 1 byte/base.
        assert!(p.heap_bytes() < 10_000 / 2);
    }

    #[test]
    fn n_write_then_overwrite() {
        let s = seq("AAAA");
        let mut p = PackedSeq::from_dna(&s);
        p.write(1, None);
        assert_eq!(p.get(1), None);
        p.write(1, Some(Base::T));
        assert_eq!(p.get(1), Some(Base::T));
    }

    #[test]
    #[should_panic]
    fn get_out_of_bounds_panics() {
        let p = PackedSeq::from_dna(&seq("ACG"));
        let _ = p.get(3);
    }
}
