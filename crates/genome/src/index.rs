//! The genomic k-mer hash index (paper Section V, step 1).
//!
//! GNUMAP's first stage builds a hash table from every k-mer of the
//! reference to the genome positions where it occurs; read k-mers are then
//! looked up to find candidate mapping regions. Two practical details from
//! real mappers are modelled:
//!
//! * **Repeat masking by occurrence cutoff** — k-mers occurring more than
//!   `max_occurrences` times are dropped from the index (their hit lists
//!   would be enormous and nearly uninformative). This mirrors GNUMAP's
//!   handling of highly repetitive seeds and bounds worst-case query cost.
//! * **Sampling stride** — for memory accounting we optionally index only
//!   every `stride`-th genome position.
//!
//! The index is position-addressed (not canonicalised): strand handling is
//! done by the caller, which queries with both the read and its reverse
//! complement, as GNUMAP does.

use crate::error::GenomeError;
use crate::kmer::KmerIter;
use crate::seq::DnaSeq;
use std::collections::HashMap;

/// Configuration for building a [`KmerIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// Seed length; the paper's default is 10.
    pub k: usize,
    /// k-mers with more than this many genomic occurrences are dropped.
    pub max_occurrences: usize,
    /// Index every `stride`-th position (1 = every position).
    pub stride: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            k: 10,
            max_occurrences: 1024,
            stride: 1,
        }
    }
}

/// Hash index from packed k-mer to the sorted genome positions where it
/// starts.
#[derive(Debug, Clone)]
pub struct KmerIndex {
    config: IndexConfig,
    genome_len: usize,
    map: HashMap<u64, Vec<u32>>,
    /// Number of distinct k-mers dropped by the occurrence cutoff.
    masked_kmers: usize,
}

impl KmerIndex {
    /// Build the index over a reference sequence.
    pub fn build(genome: &DnaSeq, config: IndexConfig) -> Result<KmerIndex, GenomeError> {
        assert!(config.stride >= 1, "stride must be at least 1");
        assert!(
            config.max_occurrences >= 1,
            "max_occurrences must be at least 1"
        );
        assert!(
            genome.len() <= u32::MAX as usize,
            "positions are stored as u32"
        );
        let mut map: HashMap<u64, Vec<u32>> = HashMap::new();
        for (pos, kmer) in KmerIter::new(genome, config.k)? {
            if pos % config.stride != 0 {
                continue;
            }
            map.entry(kmer.packed()).or_default().push(pos as u32);
        }
        let before = map.len();
        map.retain(|_, v| v.len() <= config.max_occurrences);
        let masked_kmers = before - map.len();
        Ok(KmerIndex {
            config,
            genome_len: genome.len(),
            map,
            masked_kmers,
        })
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> IndexConfig {
        self.config
    }

    /// Length of the indexed genome.
    pub fn genome_len(&self) -> usize {
        self.genome_len
    }

    /// Genome start positions of a packed k-mer (empty for unknown or
    /// masked k-mers). Positions are in increasing order.
    pub fn lookup(&self, packed_kmer: u64) -> &[u32] {
        self.map.get(&packed_kmer).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct k-mers retained.
    pub fn distinct_kmers(&self) -> usize {
        self.map.len()
    }

    /// Number of distinct k-mers dropped by the repeat cutoff.
    pub fn masked_kmers(&self) -> usize {
        self.masked_kmers
    }

    /// Total number of stored positions.
    pub fn total_positions(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Approximate heap footprint in bytes: hash-table entries plus the
    /// position vectors. Feeds the Table II memory model.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        // HashMap stores (K, V) pairs plus ~1 byte/bucket of control metadata
        // at <= 7/8 load factor; approximate with capacity * (entry + 1).
        let entry = size_of::<u64>() + size_of::<Vec<u32>>() + 1;
        let table = self.map.capacity() * entry;
        let positions: usize = self
            .map
            .values()
            .map(|v| v.capacity() * size_of::<u32>())
            .sum();
        table + positions
    }

    /// For each k-mer of `query`, look up its genomic hit list and emit
    /// `(query_offset, genome_position)` pairs. The caller converts these
    /// into candidate alignment windows by diagonal (genome_position -
    /// query_offset).
    pub fn seed_hits<'a>(&'a self, query: &'a DnaSeq) -> impl Iterator<Item = (usize, u32)> + 'a {
        KmerIter::new(query, self.config.k)
            .into_iter()
            .flatten()
            .flat_map(move |(qoff, kmer)| {
                self.lookup(kmer.packed())
                    .iter()
                    .map(move |&gpos| (qoff, gpos))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Base;
    use crate::kmer::Kmer;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    fn packed(s: &str) -> u64 {
        let bases: Vec<Base> = s.bytes().map(|c| Base::from_ascii(c).unwrap()).collect();
        Kmer::from_bases(&bases).unwrap().packed()
    }

    fn cfg(k: usize) -> IndexConfig {
        IndexConfig {
            k,
            ..IndexConfig::default()
        }
    }

    #[test]
    fn positions_are_recorded_in_order() {
        let idx = KmerIndex::build(&seq("ACGACGACG"), cfg(3)).unwrap();
        assert_eq!(idx.lookup(packed("ACG")), &[0, 3, 6]);
        assert_eq!(idx.lookup(packed("CGA")), &[1, 4]);
        assert_eq!(idx.lookup(packed("TTT")), &[] as &[u32]);
    }

    #[test]
    fn repeat_cutoff_masks_hot_kmers() {
        let idx = KmerIndex::build(
            &seq("AAAAAAAAAA"),
            IndexConfig {
                k: 3,
                max_occurrences: 4,
                stride: 1,
            },
        )
        .unwrap();
        assert_eq!(idx.lookup(packed("AAA")), &[] as &[u32]);
        assert_eq!(idx.masked_kmers(), 1);
        assert_eq!(idx.distinct_kmers(), 0);
    }

    #[test]
    fn stride_subsamples_positions() {
        let idx = KmerIndex::build(
            &seq("ACGACGACG"),
            IndexConfig {
                k: 3,
                max_occurrences: 100,
                stride: 3,
            },
        )
        .unwrap();
        assert_eq!(idx.lookup(packed("ACG")), &[0, 3, 6]);
        assert_eq!(idx.lookup(packed("CGA")), &[] as &[u32]);
    }

    #[test]
    fn seed_hits_pair_offsets_with_positions() {
        let idx = KmerIndex::build(&seq("ACGTACGT"), cfg(4)).unwrap();
        let hits: Vec<(usize, u32)> = idx.seed_hits(&seq("TACG")).collect();
        assert_eq!(hits, vec![(0, 3)]);
        let hits: Vec<(usize, u32)> = idx.seed_hits(&seq("ACGTA")).collect();
        // ACGT at genome 0 and 4 (query offset 0), CGTA at genome 1 (offset 1).
        assert_eq!(hits, vec![(0, 0), (0, 4), (1, 1)]);
    }

    #[test]
    fn counting_statistics() {
        let idx = KmerIndex::build(&seq("ACGTACGT"), cfg(4)).unwrap();
        assert_eq!(idx.distinct_kmers(), 4); // ACGT, CGTA, GTAC, TACG
        assert_eq!(idx.total_positions(), 5);
        assert!(idx.heap_bytes() > 0);
        assert_eq!(idx.genome_len(), 8);
    }

    #[test]
    fn ns_never_enter_the_index() {
        let idx = KmerIndex::build(&seq("ACNGT"), cfg(2)).unwrap();
        assert_eq!(idx.lookup(packed("AC")), &[0]);
        assert_eq!(idx.lookup(packed("GT")), &[3]);
        assert_eq!(idx.distinct_kmers(), 2);
    }
}
