//! Half-open genomic intervals.

use std::fmt;

/// A half-open interval `[start, end)` on the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Region {
    pub start: usize,
    pub end: usize,
}

impl Region {
    /// Construct; panics when `end < start`.
    pub fn new(start: usize, end: usize) -> Region {
        assert!(end >= start, "region end {end} before start {start}");
        Region { start, end }
    }

    /// Number of positions covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for a zero-length region.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `pos` lies inside the interval.
    pub fn contains(&self, pos: usize) -> bool {
        (self.start..self.end).contains(&pos)
    }

    /// Whether two regions share at least one position.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The intersection, if any.
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then(|| Region::new(start, end))
    }

    /// Grow by `pad` on both sides, clamped to `[0, limit)`.
    pub fn padded(&self, pad: usize, limit: usize) -> Region {
        Region::new(self.start.saturating_sub(pad), (self.end + pad).min(limit))
    }

    /// Split `[0, total)` into `n` near-equal contiguous shards (the
    /// genome-split MPI decomposition). The first `total % n` shards are one
    /// position longer; shards cover the range exactly, without overlap.
    pub fn shards(total: usize, n: usize) -> Vec<Region> {
        assert!(n >= 1, "need at least one shard");
        let base = total / n;
        let extra = total % n;
        let mut out = Vec::with_capacity(n);
        let mut start = 0;
        for i in 0..n {
            let len = base + usize::from(i < extra);
            out.push(Region::new(start, start + len));
            start += len;
        }
        out
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_geometry() {
        let r = Region::new(5, 10);
        assert_eq!(r.len(), 5);
        assert!(r.contains(5));
        assert!(r.contains(9));
        assert!(!r.contains(10));
        assert!(!r.is_empty());
        assert!(Region::new(3, 3).is_empty());
    }

    #[test]
    #[should_panic]
    fn inverted_region_panics() {
        let _ = Region::new(10, 5);
    }

    #[test]
    fn overlap_and_intersection() {
        let a = Region::new(0, 10);
        let b = Region::new(5, 15);
        let c = Region::new(10, 20);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // half-open: touching is not overlapping
        assert_eq!(a.intersect(&b), Some(Region::new(5, 10)));
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn padding_clamps() {
        let r = Region::new(2, 5);
        assert_eq!(r.padded(3, 100), Region::new(0, 8));
        assert_eq!(r.padded(3, 6), Region::new(0, 6));
    }

    #[test]
    fn shards_partition_exactly() {
        for total in [0usize, 1, 7, 100, 101] {
            for n in [1usize, 2, 3, 7, 16] {
                let shards = Region::shards(total, n);
                assert_eq!(shards.len(), n);
                assert_eq!(shards[0].start, 0);
                assert_eq!(shards[n - 1].end, total);
                for w in shards.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                let lens: Vec<usize> = shards.iter().map(Region::len).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "shards should be near-equal: {lens:?}");
            }
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(Region::new(1, 4).to_string(), "[1, 4)");
    }
}
