//! Error types for sequence parsing and genome construction.

use std::fmt;
use std::io;

/// Errors produced while parsing or constructing genomic data.
#[derive(Debug)]
pub enum GenomeError {
    /// An I/O failure while reading or writing sequence files.
    Io(io::Error),
    /// A character that is not a nucleotide, `N`, or legal FASTA/FASTQ syntax.
    InvalidCharacter { line: usize, found: char },
    /// A FASTQ record whose quality string length differs from its sequence.
    QualityLengthMismatch {
        record: String,
        seq_len: usize,
        qual_len: usize,
    },
    /// Malformed FASTA/FASTQ structure (missing header, truncated record...).
    Malformed { line: usize, reason: String },
    /// A request addressed a position outside the genome.
    OutOfBounds { pos: usize, len: usize },
    /// A k-mer length that cannot be 2-bit packed into a u64 (k > 32 or 0).
    BadKmerLength(usize),
}

impl fmt::Display for GenomeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenomeError::Io(e) => write!(f, "I/O error: {e}"),
            GenomeError::InvalidCharacter { line, found } => {
                write!(f, "invalid sequence character {found:?} on line {line}")
            }
            GenomeError::QualityLengthMismatch {
                record,
                seq_len,
                qual_len,
            } => write!(
                f,
                "record {record:?}: sequence length {seq_len} != quality length {qual_len}"
            ),
            GenomeError::Malformed { line, reason } => {
                write!(f, "malformed record on line {line}: {reason}")
            }
            GenomeError::OutOfBounds { pos, len } => {
                write!(f, "position {pos} out of bounds for genome of length {len}")
            }
            GenomeError::BadKmerLength(k) => {
                write!(f, "k-mer length {k} unsupported (must be in 1..=32)")
            }
        }
    }
}

impl std::error::Error for GenomeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GenomeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GenomeError {
    fn from(e: io::Error) -> Self {
        GenomeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GenomeError::InvalidCharacter {
            line: 3,
            found: '!',
        };
        assert!(e.to_string().contains("line 3"));
        let e = GenomeError::BadKmerLength(40);
        assert!(e.to_string().contains("40"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e = GenomeError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
    }
}
