//! The DNA alphabet used throughout GNUMAP-SNP.
//!
//! The paper tracks five symbols per genome position — A, C, G, T and gap —
//! in its accumulator vectors, and reads may additionally contain `N`
//! (unknown) calls. `Base` models the four concrete nucleotides; `N` is
//! handled at the sequence layer as `Option<Base>` so the type system makes
//! "this position is unknown" explicit.

use std::fmt;

/// A concrete DNA nucleotide.
///
/// The discriminants (A=0, C=1, G=2, T=3) are stable and used directly as
/// indices into emission matrices, accumulator vectors and 2-bit packed
/// sequence words, so they must not be reordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Base {
    A = 0,
    C = 1,
    G = 2,
    T = 3,
}

/// All four bases in index order. Handy for iteration in emission loops.
pub const BASES: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

/// Number of symbols tracked per genome position in the paper's
/// accumulators: A, C, G, T and gap.
pub const NUM_SYMBOLS: usize = 5;

/// Index of the gap symbol inside a 5-vector of per-position counts.
pub const GAP_INDEX: usize = 4;

impl Base {
    /// Stable index in `[0, 4)`; matches the discriminant.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Base::index`]. Panics if `idx >= 4`.
    #[inline]
    pub fn from_index(idx: usize) -> Base {
        BASES[idx]
    }

    /// Lossless 2-bit code used by [`crate::packed::PackedSeq`] and
    /// [`crate::kmer::Kmer`].
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Base::code`] for the low two bits of `code`.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        BASES[(code & 0b11) as usize]
    }

    /// Watson–Crick complement.
    #[inline]
    pub fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::T => Base::A,
        }
    }

    /// Whether this base is a purine (A or G).
    #[inline]
    pub fn is_purine(self) -> bool {
        matches!(self, Base::A | Base::G)
    }

    /// Whether this base is a pyrimidine (C or T).
    #[inline]
    pub fn is_pyrimidine(self) -> bool {
        !self.is_purine()
    }

    /// The unique base reachable from `self` by a *transition* mutation
    /// (purine↔purine or pyrimidine↔pyrimidine). Transitions are roughly
    /// twice as common as transversions in real SNP catalogues, a fact the
    /// simulator and the centroid codebook both exploit.
    #[inline]
    pub fn transition(self) -> Base {
        match self {
            Base::A => Base::G,
            Base::G => Base::A,
            Base::C => Base::T,
            Base::T => Base::C,
        }
    }

    /// The two bases reachable from `self` by a *transversion* mutation.
    #[inline]
    pub fn transversions(self) -> [Base; 2] {
        match self {
            Base::A | Base::G => [Base::C, Base::T],
            Base::C | Base::T => [Base::A, Base::G],
        }
    }

    /// Parse an ASCII nucleotide character (case-insensitive).
    /// Returns `None` for `N`/`n` and `Err`-like `None` for anything else;
    /// use [`Base::try_from_ascii`] to distinguish the two.
    #[inline]
    pub fn from_ascii(c: u8) -> Option<Base> {
        match c {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// Parse an ASCII nucleotide distinguishing `N` (unknown but legal)
    /// from genuinely invalid characters.
    pub fn try_from_ascii(c: u8) -> Result<Option<Base>, u8> {
        match c {
            b'N' | b'n' => Ok(None),
            other => Base::from_ascii(other).map(Some).ok_or(other),
        }
    }

    /// Upper-case ASCII representation.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }

    /// As a `char`, for display purposes.
    #[inline]
    pub fn to_char(self) -> char {
        self.to_ascii() as char
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// Classification of a single-nucleotide substitution, used by the SNP
/// simulator and by accuracy reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Substitution {
    /// Purine↔purine or pyrimidine↔pyrimidine.
    Transition,
    /// Purine↔pyrimidine.
    Transversion,
}

/// Classify the substitution `from → to`. Returns `None` when the bases are
/// equal (not a substitution at all).
pub fn classify_substitution(from: Base, to: Base) -> Option<Substitution> {
    if from == to {
        None
    } else if from.is_purine() == to.is_purine() {
        Some(Substitution::Transition)
    } else {
        Some(Substitution::Transversion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for b in BASES {
            assert_eq!(Base::from_index(b.index()), b);
            assert_eq!(Base::from_code(b.code()), b);
        }
    }

    #[test]
    fn complement_is_involution() {
        for b in BASES {
            assert_eq!(b.complement().complement(), b);
            assert_ne!(b.complement(), b);
        }
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
    }

    #[test]
    fn purine_pyrimidine_partition() {
        let purines: Vec<_> = BASES.iter().filter(|b| b.is_purine()).collect();
        assert_eq!(purines, [&Base::A, &Base::G]);
        for b in BASES {
            assert_ne!(b.is_purine(), b.is_pyrimidine());
        }
    }

    #[test]
    fn transition_is_involution_and_preserves_class() {
        for b in BASES {
            assert_eq!(b.transition().transition(), b);
            assert_eq!(b.is_purine(), b.transition().is_purine());
            assert_ne!(b.transition(), b);
        }
    }

    #[test]
    fn transversions_cross_class() {
        for b in BASES {
            for t in b.transversions() {
                assert_ne!(b.is_purine(), t.is_purine());
            }
        }
    }

    #[test]
    fn ascii_round_trip_both_cases() {
        for b in BASES {
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
            assert_eq!(Base::from_ascii(b.to_ascii().to_ascii_lowercase()), Some(b));
        }
    }

    #[test]
    fn n_is_legal_but_unknown() {
        assert_eq!(Base::try_from_ascii(b'N'), Ok(None));
        assert_eq!(Base::try_from_ascii(b'n'), Ok(None));
        assert_eq!(Base::try_from_ascii(b'x'), Err(b'x'));
        assert_eq!(Base::try_from_ascii(b'A'), Ok(Some(Base::A)));
    }

    #[test]
    fn substitution_classes() {
        use Substitution::*;
        assert_eq!(classify_substitution(Base::A, Base::G), Some(Transition));
        assert_eq!(classify_substitution(Base::C, Base::T), Some(Transition));
        assert_eq!(classify_substitution(Base::A, Base::C), Some(Transversion));
        assert_eq!(classify_substitution(Base::G, Base::T), Some(Transversion));
        assert_eq!(classify_substitution(Base::A, Base::A), None);
    }

    #[test]
    fn display_matches_ascii() {
        assert_eq!(Base::G.to_string(), "G");
    }
}
