//! Strict four-line FASTQ reading and writing (Sanger quality encoding).

use crate::error::GenomeError;
use crate::quality::{phred_to_symbol, symbol_to_phred};
use crate::read::SequencedRead;
use crate::seq::DnaSeq;
use std::io::{BufRead, Write};

/// Parse every record from a FASTQ stream. Records must be exactly four
/// lines: `@id`, sequence, `+`, quality.
pub fn read_fastq<R: BufRead>(reader: R) -> Result<Vec<SequencedRead>, GenomeError> {
    let mut reads = Vec::new();
    let mut lines = reader.lines().enumerate();

    while let Some((lineno, header)) = lines.next() {
        let header = header?;
        let header = header.trim_end();
        if header.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let id = header
            .strip_prefix('@')
            .ok_or_else(|| GenomeError::Malformed {
                line: lineno,
                reason: format!("expected '@' header, found {header:?}"),
            })?
            .to_string();

        let mut next_line = |what: &str| -> Result<(usize, String), GenomeError> {
            match lines.next() {
                Some((n, l)) => Ok((n + 1, l?.trim_end().to_string())),
                None => Err(GenomeError::Malformed {
                    line: lineno,
                    reason: format!("record {id:?} truncated before {what}"),
                }),
            }
        };

        let (seq_line_no, seq_text) = next_line("sequence")?;
        let (plus_line_no, plus) = next_line("'+' separator")?;
        if !plus.starts_with('+') {
            return Err(GenomeError::Malformed {
                line: plus_line_no,
                reason: format!("expected '+' separator, found {plus:?}"),
            });
        }
        let (qual_line_no, qual_text) = next_line("quality")?;

        let seq = DnaSeq::from_ascii(seq_text.as_bytes()).map_err(|e| match e {
            GenomeError::InvalidCharacter { found, .. } => GenomeError::InvalidCharacter {
                line: seq_line_no,
                found,
            },
            other => other,
        })?;
        let mut quals = Vec::with_capacity(qual_text.len());
        for &c in qual_text.as_bytes() {
            quals.push(symbol_to_phred(c).ok_or(GenomeError::InvalidCharacter {
                line: qual_line_no,
                found: c as char,
            })?);
        }
        reads.push(SequencedRead::new(id, seq, quals)?);
    }
    Ok(reads)
}

/// Write reads as four-line FASTQ records.
pub fn write_fastq<W: Write>(mut writer: W, reads: &[SequencedRead]) -> Result<(), GenomeError> {
    for r in reads {
        writeln!(writer, "@{}", r.id)?;
        writer.write_all(&r.seq.to_ascii())?;
        writeln!(writer)?;
        writeln!(writer, "+")?;
        let quals: Vec<u8> = r.quals.iter().map(|&q| phred_to_symbol(q)).collect();
        writer.write_all(&quals)?;
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_basic_record() {
        let text = "@r1\nACGT\n+\nIIII\n";
        let reads = read_fastq(Cursor::new(text)).unwrap();
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].id, "r1");
        assert_eq!(reads[0].seq.to_string(), "ACGT");
        assert_eq!(reads[0].quals, vec![40; 4]);
    }

    #[test]
    fn round_trip() {
        let reads = vec![
            SequencedRead::new("a/1", "ACGTN".parse().unwrap(), vec![2, 20, 40, 0, 33]).unwrap(),
            SequencedRead::new("b/1", "TT".parse().unwrap(), vec![17, 5]).unwrap(),
        ];
        let mut buf = Vec::new();
        write_fastq(&mut buf, &reads).unwrap();
        assert_eq!(read_fastq(Cursor::new(buf)).unwrap(), reads);
    }

    #[test]
    fn truncated_record_rejected() {
        let err = read_fastq(Cursor::new("@r1\nACGT\n+\n")).unwrap_err();
        assert!(matches!(err, GenomeError::Malformed { .. }));
    }

    #[test]
    fn missing_at_rejected() {
        let err = read_fastq(Cursor::new("r1\nACGT\n+\nIIII\n")).unwrap_err();
        assert!(matches!(err, GenomeError::Malformed { line: 1, .. }));
    }

    #[test]
    fn quality_length_mismatch_rejected() {
        let err = read_fastq(Cursor::new("@r1\nACGT\n+\nIII\n")).unwrap_err();
        assert!(matches!(err, GenomeError::QualityLengthMismatch { .. }));
    }

    #[test]
    fn bad_quality_symbol_rejected() {
        // \x01 is below the Sanger offset and not trimmable whitespace.
        let err = read_fastq(Cursor::new("@r1\nAC\n+\nI\x01\n")).unwrap_err();
        assert!(matches!(err, GenomeError::InvalidCharacter { line: 4, .. }));
    }
}
