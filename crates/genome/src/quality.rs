//! Phred quality scores.
//!
//! The paper's central extension of the Pair-HMM is that emissions consume
//! *quality-weighted* base probabilities (`r_ik` in Section VI, Step 2).
//! Those weights derive from Phred scores: `Q = -10·log10(p_error)`, encoded
//! in FASTQ as `Q + 33` ASCII ("Sanger" offset).

/// Sanger FASTQ quality offset.
pub const PHRED_OFFSET: u8 = 33;

/// Maximum Phred score we encode (ASCII `~` = Q93).
pub const MAX_PHRED: u8 = 93;

/// Convert a Phred score to the probability the base call is *wrong*.
#[inline]
pub fn phred_to_error_prob(q: u8) -> f64 {
    10f64.powf(-(q as f64) / 10.0)
}

/// Convert an error probability to the (rounded, clamped) Phred score.
#[inline]
pub fn error_prob_to_phred(p: f64) -> u8 {
    if p <= 0.0 {
        return MAX_PHRED;
    }
    let q = -10.0 * p.log10();
    q.round().clamp(0.0, MAX_PHRED as f64) as u8
}

/// FASTQ ASCII symbol for a Phred score.
#[inline]
pub fn phred_to_symbol(q: u8) -> u8 {
    q.min(MAX_PHRED) + PHRED_OFFSET
}

/// Phred score from a FASTQ ASCII symbol. Returns `None` for symbols below
/// the Sanger offset (which cannot appear in well-formed FASTQ).
#[inline]
pub fn symbol_to_phred(c: u8) -> Option<u8> {
    c.checked_sub(PHRED_OFFSET)
}

/// The per-base probability vector `r_i = (r_iA, r_iC, r_iG, r_iT)` used to
/// build a read's position-weight matrix: the called base receives
/// `1 - p_err`, the other three split `p_err` evenly. An `N` call (no base)
/// is maximally uncertain: `0.25` each.
#[inline]
pub fn base_probs(called: Option<crate::alphabet::Base>, q: u8) -> [f64; 4] {
    match called {
        None => [0.25; 4],
        Some(b) => {
            let p_err = phred_to_error_prob(q);
            let mut r = [p_err / 3.0; 4];
            r[b.index()] = 1.0 - p_err;
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Base;

    #[test]
    fn phred_round_trip() {
        for q in 0..=MAX_PHRED {
            assert_eq!(error_prob_to_phred(phred_to_error_prob(q)), q);
            assert_eq!(symbol_to_phred(phred_to_symbol(q)), Some(q));
        }
    }

    #[test]
    fn known_values() {
        assert!((phred_to_error_prob(10) - 0.1).abs() < 1e-12);
        assert!((phred_to_error_prob(20) - 0.01).abs() < 1e-12);
        assert!((phred_to_error_prob(30) - 0.001).abs() < 1e-12);
        assert_eq!(phred_to_symbol(0), b'!');
        assert_eq!(phred_to_symbol(40), b'I');
    }

    #[test]
    fn zero_error_saturates() {
        assert_eq!(error_prob_to_phred(0.0), MAX_PHRED);
        assert_eq!(error_prob_to_phred(1.0), 0);
    }

    #[test]
    fn bad_symbol_rejected() {
        assert_eq!(symbol_to_phred(b' '), None);
        assert_eq!(symbol_to_phred(b'!'), Some(0));
    }

    #[test]
    fn base_probs_sum_to_one_and_favour_call() {
        let r = base_probs(Some(Base::C), 20);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((r[Base::C.index()] - 0.99).abs() < 1e-12);
        assert!((r[Base::A.index()] - 0.01 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn n_call_is_uniform() {
        assert_eq!(base_probs(None, 40), [0.25; 4]);
    }
}
