//! Sequenced reads: a name, a called sequence, and Phred qualities.

use crate::alphabet::Base;
use crate::error::GenomeError;
use crate::quality;
use crate::seq::DnaSeq;

/// A single next-generation sequencing read.
#[derive(Debug, Clone, PartialEq)]
pub struct SequencedRead {
    /// Record identifier (FASTQ header without the leading `@`).
    pub id: String,
    /// Called bases (`None` = `N`).
    pub seq: DnaSeq,
    /// Phred quality per base, same length as `seq`.
    pub quals: Vec<u8>,
}

impl SequencedRead {
    /// Construct, validating that qualities and sequence agree in length.
    pub fn new(id: impl Into<String>, seq: DnaSeq, quals: Vec<u8>) -> Result<Self, GenomeError> {
        let id = id.into();
        if seq.len() != quals.len() {
            return Err(GenomeError::QualityLengthMismatch {
                record: id,
                seq_len: seq.len(),
                qual_len: quals.len(),
            });
        }
        Ok(SequencedRead { id, seq, quals })
    }

    /// Construct with a uniform quality score on every base.
    pub fn with_uniform_quality(id: impl Into<String>, seq: DnaSeq, q: u8) -> Self {
        let quals = vec![q; seq.len()];
        SequencedRead {
            id: id.into(),
            seq,
            quals,
        }
    }

    /// Read length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True for a zero-length read.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// The reverse-complemented read: sequence is reverse-complemented and
    /// the quality string reversed, exactly as a mapper uses when testing the
    /// opposite strand.
    pub fn reverse_complement(&self) -> SequencedRead {
        SequencedRead {
            id: self.id.clone(),
            seq: self.seq.reverse_complement(),
            quals: self.quals.iter().rev().copied().collect(),
        }
    }

    /// Per-position base-probability rows `r_i` (see
    /// [`quality::base_probs`]); this is the position-weight matrix the
    /// Pair-HMM consumes.
    pub fn base_prob_rows(&self) -> Vec<[f64; 4]> {
        self.seq
            .iter()
            .zip(&self.quals)
            .map(|(b, &q)| quality::base_probs(b, q))
            .collect()
    }

    /// Mean Phred quality (0 for an empty read).
    pub fn mean_quality(&self) -> f64 {
        if self.quals.is_empty() {
            return 0.0;
        }
        self.quals.iter().map(|&q| q as f64).sum::<f64>() / self.quals.len() as f64
    }

    /// Expected number of sequencing errors implied by the qualities.
    pub fn expected_errors(&self) -> f64 {
        self.quals
            .iter()
            .map(|&q| quality::phred_to_error_prob(q))
            .sum()
    }

    /// The called base at a position (`None` = `N`).
    pub fn base(&self, i: usize) -> Option<Base> {
        self.seq.get(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(seq: &str, quals: &[u8]) -> SequencedRead {
        SequencedRead::new("r1", seq.parse().unwrap(), quals.to_vec()).unwrap()
    }

    #[test]
    fn length_mismatch_rejected() {
        let r = SequencedRead::new("bad", "ACGT".parse().unwrap(), vec![30; 3]);
        assert!(matches!(
            r,
            Err(GenomeError::QualityLengthMismatch {
                seq_len: 4,
                qual_len: 3,
                ..
            })
        ));
    }

    #[test]
    fn reverse_complement_reverses_quals() {
        let r = read("ACGT", &[10, 20, 30, 40]);
        let rc = r.reverse_complement();
        assert_eq!(rc.seq.to_string(), "ACGT");
        assert_eq!(rc.quals, vec![40, 30, 20, 10]);
        assert_eq!(rc.reverse_complement(), r);
    }

    #[test]
    fn pwm_rows_follow_qualities() {
        let r = read("AN", &[20, 20]);
        let rows = r.base_prob_rows();
        assert!((rows[0][0] - 0.99).abs() < 1e-12);
        assert_eq!(rows[1], [0.25; 4]);
    }

    #[test]
    fn expected_errors_and_mean_quality() {
        let r = read("AAAA", &[10, 10, 20, 20]);
        assert!((r.expected_errors() - 0.22).abs() < 1e-12);
        assert!((r.mean_quality() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_quality_constructor() {
        let r = SequencedRead::with_uniform_quality("u", "ACG".parse().unwrap(), 33);
        assert_eq!(r.quals, vec![33, 33, 33]);
    }
}
