//! 2-bit packed k-mers and rolling k-mer extraction.
//!
//! GNUMAP seeds candidate mapping locations by hashing every k-mer of the
//! genome (paper default k = 10). A k-mer of length ≤ 32 packs into a `u64`
//! (two bits per base, most-significant = first base), which doubles as its
//! hash-table key.

use crate::alphabet::Base;
use crate::error::GenomeError;
use crate::seq::DnaSeq;

/// A fixed-length DNA word packed into a `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Kmer {
    packed: u64,
    k: u8,
}

impl Kmer {
    /// Pack a slice of concrete bases. Errors when `bases` is empty or
    /// longer than 32.
    pub fn from_bases(bases: &[Base]) -> Result<Kmer, GenomeError> {
        if bases.is_empty() || bases.len() > 32 {
            return Err(GenomeError::BadKmerLength(bases.len()));
        }
        let mut packed = 0u64;
        for &b in bases {
            packed = (packed << 2) | b.code() as u64;
        }
        Ok(Kmer {
            packed,
            k: bases.len() as u8,
        })
    }

    /// The packed word (also used as the index key).
    #[inline]
    pub fn packed(self) -> u64 {
        self.packed
    }

    /// Word length.
    #[inline]
    pub fn k(self) -> usize {
        self.k as usize
    }

    /// Unpack to bases, first base first.
    pub fn bases(self) -> Vec<Base> {
        (0..self.k)
            .rev()
            .map(|i| Base::from_code((self.packed >> (2 * i)) as u8))
            .collect()
    }

    /// Reverse complement of this k-mer.
    pub fn reverse_complement(self) -> Kmer {
        let mut packed = 0u64;
        for i in 0..self.k {
            let code = (self.packed >> (2 * i)) & 0b11;
            packed = (packed << 2) | (code ^ 0b11); // XOR 0b11 complements a 2-bit base code.
        }
        Kmer { packed, k: self.k }
    }

    /// The lexicographically smaller of this k-mer and its reverse
    /// complement ("canonical" form).
    pub fn canonical(self) -> Kmer {
        let rc = self.reverse_complement();
        if rc.packed < self.packed {
            rc
        } else {
            self
        }
    }
}

impl std::fmt::Display for Kmer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.bases() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

/// Rolling iterator over the k-mers of a sequence, yielding
/// `(start_position, kmer)` and skipping any window containing an `N`.
pub struct KmerIter<'a> {
    seq: &'a DnaSeq,
    k: usize,
    pos: usize,
    /// Current rolling word; valid when `valid == k`.
    word: u64,
    /// Mask keeping the low 2k bits.
    mask: u64,
    /// How many trailing positions of the window are concrete bases.
    valid: usize,
}

impl<'a> KmerIter<'a> {
    /// Create a rolling iterator. Errors when `k` is 0 or above 32.
    pub fn new(seq: &'a DnaSeq, k: usize) -> Result<Self, GenomeError> {
        if k == 0 || k > 32 {
            return Err(GenomeError::BadKmerLength(k));
        }
        let mask = if k == 32 {
            u64::MAX
        } else {
            (1u64 << (2 * k)) - 1
        };
        Ok(KmerIter {
            seq,
            k,
            pos: 0,
            word: 0,
            mask,
            valid: 0,
        })
    }
}

impl Iterator for KmerIter<'_> {
    type Item = (usize, Kmer);

    fn next(&mut self) -> Option<Self::Item> {
        while self.pos < self.seq.len() {
            let pos = self.pos;
            self.pos += 1;
            match self.seq.get(pos) {
                Some(b) => {
                    self.word = ((self.word << 2) | b.code() as u64) & self.mask;
                    self.valid += 1;
                    if self.valid >= self.k {
                        return Some((
                            pos + 1 - self.k,
                            Kmer {
                                packed: self.word,
                                k: self.k as u8,
                            },
                        ));
                    }
                }
                None => {
                    // An N poisons every window containing it.
                    self.valid = 0;
                    self.word = 0;
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    fn kmer(s: &str) -> Kmer {
        let bases: Vec<Base> = s.bytes().map(|c| Base::from_ascii(c).unwrap()).collect();
        Kmer::from_bases(&bases).unwrap()
    }

    #[test]
    fn pack_unpack_round_trip() {
        for s in [
            "A",
            "ACGT",
            "TTTTTTTTTT",
            "ACGTACGTACGTACGTACGTACGTACGTACGT",
        ] {
            assert_eq!(kmer(s).to_string(), s);
        }
    }

    #[test]
    fn bad_lengths_rejected() {
        assert!(Kmer::from_bases(&[]).is_err());
        assert!(Kmer::from_bases(&[Base::A; 33]).is_err());
        assert!(KmerIter::new(&seq("ACGT"), 0).is_err());
        assert!(KmerIter::new(&seq("ACGT"), 33).is_err());
    }

    #[test]
    fn reverse_complement() {
        assert_eq!(kmer("ACGT").reverse_complement(), kmer("ACGT"));
        assert_eq!(kmer("AAAC").reverse_complement(), kmer("GTTT"));
        assert_eq!(
            kmer("AAAC").reverse_complement().reverse_complement(),
            kmer("AAAC")
        );
    }

    #[test]
    fn canonical_picks_smaller() {
        let a = kmer("TTTT");
        assert_eq!(a.canonical(), kmer("AAAA"));
        assert_eq!(kmer("AAAA").canonical(), kmer("AAAA"));
    }

    #[test]
    fn rolling_iteration_matches_naive() {
        let s = seq("ACGTACGGT");
        let k = 3;
        let rolled: Vec<(usize, String)> = KmerIter::new(&s, k)
            .unwrap()
            .map(|(p, km)| (p, km.to_string()))
            .collect();
        let naive: Vec<(usize, String)> = (0..=s.len() - k)
            .map(|p| (p, s.window(p, p + k).to_string()))
            .collect();
        assert_eq!(rolled, naive);
    }

    #[test]
    fn n_windows_are_skipped() {
        let s = seq("ACNGTA");
        let got: Vec<usize> = KmerIter::new(&s, 2).unwrap().map(|(p, _)| p).collect();
        // Windows [0,2)="AC", [3,5)="GT", [4,6)="TA"; anything touching N skipped.
        assert_eq!(got, vec![0, 3, 4]);
    }

    #[test]
    fn sequence_shorter_than_k_yields_nothing() {
        assert_eq!(KmerIter::new(&seq("AC"), 5).unwrap().count(), 0);
    }

    #[test]
    fn k32_masking_works() {
        let s = seq("ACGTACGTACGTACGTACGTACGTACGTACGTA");
        let kmers: Vec<_> = KmerIter::new(&s, 32).unwrap().collect();
        assert_eq!(kmers.len(), 2);
        assert_eq!(kmers[0].1.to_string(), "ACGTACGTACGTACGTACGTACGTACGTACGT");
        assert_eq!(kmers[1].1.to_string(), "CGTACGTACGTACGTACGTACGTACGTACGTA");
    }
}
