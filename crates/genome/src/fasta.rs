//! Minimal, strict FASTA reading and writing.
//!
//! The evaluation pipeline writes simulated references to disk and reads
//! them back, mirroring the paper's use of the UCSC chrX FASTA. Parsing is
//! line-based and validates characters, reporting 1-based line numbers on
//! error.

use crate::error::GenomeError;
use crate::seq::DnaSeq;
use std::io::{BufRead, Write};

/// One FASTA record.
#[derive(Debug, Clone, PartialEq)]
pub struct FastaRecord {
    /// Header text after `>` (whole line, untrimmed of internal spaces).
    pub id: String,
    /// The sequence.
    pub seq: DnaSeq,
}

/// Parse every record from a FASTA stream.
pub fn read_fasta<R: BufRead>(reader: R) -> Result<Vec<FastaRecord>, GenomeError> {
    let mut records = Vec::new();
    let mut current: Option<(String, DnaSeq)> = None;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim_end();
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some((id, seq)) = current.take() {
                records.push(FastaRecord { id, seq });
            }
            current = Some((header.trim().to_string(), DnaSeq::new()));
        } else {
            let (_, seq) = current.as_mut().ok_or_else(|| GenomeError::Malformed {
                line: lineno,
                reason: "sequence data before any '>' header".into(),
            })?;
            for &c in line.as_bytes() {
                match crate::alphabet::Base::try_from_ascii(c) {
                    Ok(b) => seq.push(b),
                    Err(found) => {
                        return Err(GenomeError::InvalidCharacter {
                            line: lineno,
                            found: found as char,
                        })
                    }
                }
            }
        }
    }
    if let Some((id, seq)) = current.take() {
        records.push(FastaRecord { id, seq });
    }
    Ok(records)
}

/// Write records in FASTA format with lines wrapped at `width` bases.
pub fn write_fasta<W: Write>(
    mut writer: W,
    records: &[FastaRecord],
    width: usize,
) -> Result<(), GenomeError> {
    let width = width.max(1);
    for rec in records {
        writeln!(writer, ">{}", rec.id)?;
        let ascii = rec.seq.to_ascii();
        for chunk in ascii.chunks(width) {
            writer.write_all(chunk)?;
            writeln!(writer)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_two_records() {
        let text = ">chr1 test\nACGT\nACGT\n>chr2\nNNGT\n";
        let recs = read_fasta(Cursor::new(text)).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "chr1 test");
        assert_eq!(recs[0].seq.to_string(), "ACGTACGT");
        assert_eq!(recs[1].seq.to_string(), "NNGT");
    }

    #[test]
    fn write_then_read_round_trip() {
        let recs = vec![
            FastaRecord {
                id: "a".into(),
                seq: "ACGTNACGTACGTACGT".parse().unwrap(),
            },
            FastaRecord {
                id: "b".into(),
                seq: "GG".parse().unwrap(),
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &recs, 7).unwrap();
        let back = read_fasta(Cursor::new(buf)).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn rejects_data_before_header() {
        let err = read_fasta(Cursor::new("ACGT\n")).unwrap_err();
        assert!(matches!(err, GenomeError::Malformed { line: 1, .. }));
    }

    #[test]
    fn rejects_invalid_character_with_line_number() {
        let err = read_fasta(Cursor::new(">x\nACGT\nAXGT\n")).unwrap_err();
        assert!(matches!(
            err,
            GenomeError::InvalidCharacter {
                line: 3,
                found: 'X'
            }
        ));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let recs = read_fasta(Cursor::new(">x\n\nAC\n\nGT\n")).unwrap();
        assert_eq!(recs[0].seq.to_string(), "ACGT");
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(read_fasta(Cursor::new("")).unwrap().is_empty());
    }
}
