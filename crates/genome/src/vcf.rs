//! A minimal VCF 4.2 subset: writing and re-reading SNP call sites.
//!
//! GNUMAP-SNP's final step "will print this location to a file" (paper
//! Figure 1, step D). Modern pipelines expect that file to be VCF, so the
//! library ships a small, strict VCF subset: single-sample, SNVs only,
//! `GT` genotype plus the caller's statistic and adjusted p-value carried
//! in INFO. This is intentionally not a general VCF engine — just enough
//! to interoperate and round-trip our own calls.

use crate::alphabet::Base;
use crate::error::GenomeError;
use std::io::{BufRead, Write};

/// One VCF data row (SNV only).
#[derive(Debug, Clone, PartialEq)]
pub struct VcfRecord {
    /// Chromosome / contig name.
    pub chrom: String,
    /// 0-based position (VCF serialises 1-based).
    pub pos: usize,
    /// Reference allele.
    pub reference: Base,
    /// Alternate allele(s); one for homozygous, possibly two for het calls
    /// where neither allele matches the reference.
    pub alts: Vec<Base>,
    /// Phred-scaled quality (`-10·log10 p`), capped for p = 0.
    pub qual: f64,
    /// The LRT statistic (INFO `LRT=`).
    pub lrt: f64,
    /// Adjusted p-value (INFO `PADJ=`).
    pub p_adjusted: f64,
    /// Genotype string, e.g. `1/1` or `0/1`.
    pub genotype: String,
}

impl VcfRecord {
    /// Serialise one data line.
    fn to_line(&self) -> String {
        let alts: Vec<String> = self.alts.iter().map(|b| b.to_string()).collect();
        format!(
            "{}\t{}\t.\t{}\t{}\t{:.2}\tPASS\tLRT={:.4};PADJ={:.6e}\tGT\t{}",
            self.chrom,
            self.pos + 1,
            self.reference,
            alts.join(","),
            self.qual,
            self.lrt,
            self.p_adjusted,
            self.genotype
        )
    }
}

/// Write a VCF header plus records.
pub fn write_vcf<W: Write>(
    mut w: W,
    sample: &str,
    records: &[VcfRecord],
) -> Result<(), GenomeError> {
    writeln!(w, "##fileformat=VCFv4.2")?;
    writeln!(w, "##source=gnumap-snp")?;
    writeln!(
        w,
        "##INFO=<ID=LRT,Number=1,Type=Float,Description=\"-2 log likelihood ratio\">"
    )?;
    writeln!(
        w,
        "##INFO=<ID=PADJ,Number=1,Type=Float,Description=\"Multiplicity-adjusted p-value\">"
    )?;
    writeln!(
        w,
        "##FORMAT=<ID=GT,Number=1,Type=String,Description=\"Genotype\">"
    )?;
    writeln!(
        w,
        "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\t{sample}"
    )?;
    for r in records {
        writeln!(w, "{}", r.to_line())?;
    }
    Ok(())
}

/// Parse the VCF subset written by [`write_vcf`]. Header lines are
/// validated minimally (must start with `#`).
pub fn read_vcf<R: BufRead>(reader: R) -> Result<Vec<VcfRecord>, GenomeError> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() < 10 {
            return Err(GenomeError::Malformed {
                line: lineno,
                reason: format!("expected ≥10 tab-separated fields, got {}", fields.len()),
            });
        }
        let parse_base = |s: &str| -> Result<Base, GenomeError> {
            s.bytes()
                .next()
                .and_then(Base::from_ascii)
                .filter(|_| s.len() == 1)
                .ok_or(GenomeError::Malformed {
                    line: lineno,
                    reason: format!("not a SNV allele: {s:?}"),
                })
        };
        let pos: usize = fields[1].parse().map_err(|_| GenomeError::Malformed {
            line: lineno,
            reason: format!("bad POS {:?}", fields[1]),
        })?;
        if pos == 0 {
            return Err(GenomeError::Malformed {
                line: lineno,
                reason: "VCF POS is 1-based".into(),
            });
        }
        let mut alts = Vec::new();
        for alt in fields[4].split(',') {
            alts.push(parse_base(alt)?);
        }
        // INFO: LRT=...;PADJ=...
        let mut lrt = f64::NAN;
        let mut p_adjusted = f64::NAN;
        for kv in fields[7].split(';') {
            if let Some(v) = kv.strip_prefix("LRT=") {
                lrt = v.parse().unwrap_or(f64::NAN);
            } else if let Some(v) = kv.strip_prefix("PADJ=") {
                p_adjusted = v.parse().unwrap_or(f64::NAN);
            }
        }
        out.push(VcfRecord {
            chrom: fields[0].to_string(),
            pos: pos - 1,
            reference: parse_base(fields[3])?,
            alts,
            qual: fields[5].parse().unwrap_or(0.0),
            lrt,
            p_adjusted,
            genotype: fields[9].to_string(),
        });
    }
    Ok(out)
}

/// Phred-scale a p-value (capped at 990 for p = 0 / underflow).
pub fn phred_scaled(p: f64) -> f64 {
    if p <= 0.0 {
        990.0
    } else {
        (-10.0 * p.log10()).min(990.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn record(pos: usize) -> VcfRecord {
        VcfRecord {
            chrom: "chrSim".into(),
            pos,
            reference: Base::A,
            alts: vec![Base::G],
            qual: 72.5,
            lrt: 31.4,
            p_adjusted: 1.25e-7,
            genotype: "1/1".into(),
        }
    }

    #[test]
    fn write_read_round_trip() {
        let records = vec![
            record(99),
            VcfRecord {
                alts: vec![Base::C, Base::T],
                genotype: "1/2".into(),
                ..record(1233)
            },
        ];
        let mut buf = Vec::new();
        write_vcf(&mut buf, "sample1", &records).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("##fileformat=VCFv4.2"));
        assert!(text.contains("\t100\t")); // 1-based serialisation
        let back = read_vcf(Cursor::new(buf)).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].pos, 99);
        assert_eq!(back[0].reference, Base::A);
        assert_eq!(back[0].alts, vec![Base::G]);
        assert!((back[0].p_adjusted - 1.25e-7).abs() / 1.25e-7 < 1e-3);
        assert_eq!(back[1].alts, vec![Base::C, Base::T]);
        assert_eq!(back[1].genotype, "1/2");
    }

    #[test]
    fn rejects_zero_pos() {
        let line = "c\t0\t.\tA\tG\t10\tPASS\tLRT=1;PADJ=0.1\tGT\t1/1\n";
        assert!(read_vcf(Cursor::new(line)).is_err());
    }

    #[test]
    fn rejects_non_snv_alleles() {
        let line = "c\t5\t.\tAT\tG\t10\tPASS\tLRT=1;PADJ=0.1\tGT\t1/1\n";
        assert!(read_vcf(Cursor::new(line)).is_err());
        let line = "c\t5\t.\tA\tGTT\t10\tPASS\tLRT=1;PADJ=0.1\tGT\t1/1\n";
        assert!(read_vcf(Cursor::new(line)).is_err());
    }

    #[test]
    fn short_line_rejected_with_line_number() {
        let err = read_vcf(Cursor::new("#h\nc\t5\t.\tA\n")).unwrap_err();
        assert!(matches!(err, GenomeError::Malformed { line: 2, .. }));
    }

    #[test]
    fn phred_scaling() {
        assert!((phred_scaled(0.001) - 30.0).abs() < 1e-9);
        assert_eq!(phred_scaled(0.0), 990.0);
        assert_eq!(phred_scaled(1e-200), 990.0);
    }
}
