//! Property tests: the fused streaming marginal pass of
//! [`pairhmm::PhmmScratch`] must be **bit-identical** (`f64::to_bits`) to
//! the materialized forward/backward implementation — on randomized PWMs,
//! window lengths 1..=64, banded and unbanded, with and without scratch
//! reuse — and the banded DP must collapse to the full DP bitwise when the
//! band covers every cell. The scaled-forward scratch entry must likewise
//! reproduce [`pairhmm::scaling::scaled_forward`] exactly on reads long
//! enough to trigger rescaling.

use genome::alphabet::{Base, BASES};
use pairhmm::marginal::PosteriorAlignment;
use pairhmm::params::PhmmParams;
use pairhmm::pwm::Pwm;
use pairhmm::scaling::scaled_forward;
use pairhmm::PhmmScratch;
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = PhmmParams> {
    (0.001f64..0.2, 0.1f64..0.9, 0.001f64..0.2)
        .prop_map(|(open, close, mismatch)| PhmmParams::with_gap_rates(open, close, mismatch))
}

/// Random normalised PWM of `n` rows.
fn pwm_strategy(n: usize) -> impl Strategy<Value = Pwm> {
    proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, 4), n).prop_map(|rows| {
        let rows: Vec<[f64; 4]> = rows
            .into_iter()
            .map(|r| {
                let sum: f64 = r.iter().sum();
                [r[0] / sum, r[1] / sum, r[2] / sum, r[3] / sum]
            })
            .collect();
        Pwm::from_rows(rows)
    })
}

/// Random genome window of `m` columns with ~5% unknown (`None`) bases.
fn window_strategy(m: usize) -> impl Strategy<Value = Vec<Option<Base>>> {
    proptest::collection::vec(0..80usize, m).prop_map(|draws| {
        draws
            .into_iter()
            .map(|d| if d < 4 { None } else { Some(BASES[d % 4]) })
            .collect()
    })
}

type Case = (Pwm, Vec<Option<Base>>, PhmmParams);

/// Read lengths 1..=24 against window lengths 1..=64 — covers skinny,
/// square and wide tables, including the degenerate 1×1.
fn case_strategy() -> impl Strategy<Value = Case> {
    (1..=24usize, 1..=64usize)
        .prop_flat_map(|(n, m)| (pwm_strategy(n), window_strategy(m), params_strategy()))
}

/// Compare the fused pass against the materialized one, bit for bit.
fn check_bitident(
    pwm: &Pwm,
    window: &[Option<Base>],
    params: &PhmmParams,
    band: Option<usize>,
    scratch: &mut PhmmScratch,
) -> TestCaseResult {
    let emit = pwm.emission_table(window, params);
    let post = match band {
        Some(w) => PosteriorAlignment::from_emissions_banded(emit.view(), params, w),
        None => PosteriorAlignment::from_emissions(emit.view(), params),
    };
    let fused_total = scratch.posterior_columns(pwm, window, params, band);
    prop_assert_eq!(
        fused_total.to_bits(),
        post.total().to_bits(),
        "total diverged: fused {} vs materialized {}",
        fused_total,
        post.total()
    );
    let cols = post.column_posteriors(pwm);
    prop_assert_eq!(cols.len(), scratch.columns().len());
    for (j, (a, b)) in cols.iter().zip(scratch.columns()).enumerate() {
        for k in 0..5 {
            prop_assert_eq!(
                a.probs[k].to_bits(),
                b.probs[k].to_bits(),
                "column {} symbol {}: materialized {} vs fused {}",
                j,
                k,
                a.probs[k],
                b.probs[k]
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn fused_marginals_are_bit_identical_unbanded(case in case_strategy()) {
        let (pwm, window, params) = case;
        let mut scratch = PhmmScratch::new();
        check_bitident(&pwm, &window, &params, None, &mut scratch)?;
    }

    #[test]
    fn fused_marginals_are_bit_identical_banded(
        case in case_strategy(),
        w in 0..=8usize,
    ) {
        let (pwm, window, params) = case;
        let mut scratch = PhmmScratch::new();
        check_bitident(&pwm, &window, &params, Some(w), &mut scratch)?;
    }

    #[test]
    fn full_width_band_collapses_to_unbanded_bitwise(case in case_strategy()) {
        // When the half-width covers the whole table the banded DP must be
        // the full DP — not merely close, the same bits.
        let (pwm, window, params) = case;
        let w = pwm.len().max(window.len());
        let emit = pwm.emission_table(&window, &params);
        let full = PosteriorAlignment::from_emissions(emit.view(), &params);
        let banded = PosteriorAlignment::from_emissions_banded(emit.view(), &params, w);
        prop_assert_eq!(banded.total().to_bits(), full.total().to_bits());
        let fc = full.column_posteriors(&pwm);
        let bc = banded.column_posteriors(&pwm);
        for (a, b) in fc.iter().zip(&bc) {
            for k in 0..5 {
                prop_assert_eq!(a.probs[k].to_bits(), b.probs[k].to_bits());
            }
        }
    }

    #[test]
    fn scaled_scratch_entry_matches_allocating_wrapper(case in case_strategy()) {
        let (pwm, window, params) = case;
        let emit = pwm.emission_table(&window, &params);
        let reference = scaled_forward(emit.view(), &params).log_total;
        let mut scratch = PhmmScratch::new();
        let fused = scratch.scaled_log_total(&pwm, &window, &params);
        prop_assert_eq!(fused.to_bits(), reference.to_bits());
    }
}

/// Scratch reuse across a stream of differently-sized cases must not
/// perturb a single bit: stale plane/roll-buffer contents from earlier
/// (larger) alignments are invisible to later ones.
#[test]
fn reused_scratch_is_bit_identical_across_random_case_stream() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xf0_5ed);
    let mut scratch = PhmmScratch::new();
    for case in 0..300 {
        let n = rng.random_range(1..25usize);
        let m = rng.random_range(1..65usize);
        let rows: Vec<[f64; 4]> = (0..n)
            .map(|_| {
                let mut row = [0.0f64; 4];
                for v in row.iter_mut() {
                    *v = (1 + rng.random_range(0..50u32)) as f64;
                }
                let sum: f64 = row.iter().sum();
                for v in row.iter_mut() {
                    *v /= sum;
                }
                row
            })
            .collect();
        let pwm = Pwm::from_rows(rows);
        let window: Vec<Option<Base>> = (0..m)
            .map(|_| {
                let d = rng.random_range(0..80usize);
                if d < 4 {
                    None
                } else {
                    Some(BASES[d % 4])
                }
            })
            .collect();
        let params = if case % 3 == 0 {
            PhmmParams::with_gap_rates(0.05, 0.4, 0.04)
        } else {
            PhmmParams::default()
        };
        let band = match case % 4 {
            0 => None,
            r => Some(r),
        };

        let emit = pwm.emission_table(&window, &params);
        let post = match band {
            Some(w) => PosteriorAlignment::from_emissions_banded(emit.view(), &params, w),
            None => PosteriorAlignment::from_emissions(emit.view(), &params),
        };
        let fused_total = scratch.posterior_columns(&pwm, &window, &params, band);
        assert_eq!(
            fused_total.to_bits(),
            post.total().to_bits(),
            "case {case}: total diverged under scratch reuse"
        );
        let cols = post.column_posteriors(&pwm);
        assert_eq!(cols.len(), scratch.columns().len());
        for (j, (a, b)) in cols.iter().zip(scratch.columns()).enumerate() {
            for k in 0..5 {
                assert_eq!(
                    a.probs[k].to_bits(),
                    b.probs[k].to_bits(),
                    "case {case} column {j} symbol {k} diverged under reuse"
                );
            }
        }
    }
}

/// Long reads with deliberately tiny emissions drive the plain forward DP
/// into underflow; the scaled scratch entry must keep matching the
/// allocating scaled forward bit-for-bit in that regime, including when
/// the scratch is reused across lengths.
#[test]
fn scaled_bitident_on_scaling_triggering_long_reads() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x5ca1ed);
    let params = PhmmParams::default();
    let mut scratch = PhmmScratch::new();
    for &len in &[560usize, 640, 720] {
        // A low-information PWM (all rows near-uniform) makes every
        // emission ≈ ¼, so the total decays like 4^-len — below
        // f64::MIN_POSITIVE (≈ e^-708) once len exceeds ~550.
        let rows: Vec<[f64; 4]> = (0..len)
            .map(|_| {
                let mut row = [0.0f64; 4];
                for v in row.iter_mut() {
                    *v = (100 + rng.random_range(0..10u32)) as f64;
                }
                let sum: f64 = row.iter().sum();
                for v in row.iter_mut() {
                    *v /= sum;
                }
                row
            })
            .collect();
        let pwm = Pwm::from_rows(rows);
        let window: Vec<Option<Base>> = (0..len)
            .map(|_| Some(BASES[rng.random_range(0..4usize)]))
            .collect();
        let emit = pwm.emission_table(&window, &params);
        assert_eq!(
            pairhmm::forward::forward(emit.view(), &params).total,
            0.0,
            "expected the plain DP to underflow at len {len}"
        );
        let reference = scaled_forward(emit.view(), &params).log_total;
        assert!(reference.is_finite() && reference < -700.0);
        let fused = scratch.scaled_log_total(&pwm, &window, &params);
        assert_eq!(fused.to_bits(), reference.to_bits(), "len {len}");
    }
}
