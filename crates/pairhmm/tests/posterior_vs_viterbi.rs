//! Cross-decoder agreement: on cleanly alignable pairs, the
//! maximum-posterior path recovered from the forward–backward marginals
//! must coincide with the Viterbi path, and both must track the planted
//! alignment.

use genome::alphabet::Base;
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use pairhmm::emission::EmissionTable;
use pairhmm::marginal::PosteriorAlignment;
use pairhmm::params::PhmmParams;
use pairhmm::pwm::Pwm;
use pairhmm::viterbi::{viterbi, AlignOp};

fn emit_for(read_s: &str, genome_s: &str, q: u8, params: &PhmmParams) -> (EmissionTable, Pwm) {
    let read = SequencedRead::with_uniform_quality("r", read_s.parse().unwrap(), q);
    let window: Vec<Option<Base>> = genome_s.parse::<DnaSeq>().unwrap().iter().collect();
    let pwm = Pwm::from_read(&read);
    (pwm.emission_table(&window, params), pwm)
}

#[test]
fn posterior_argmax_matches_viterbi_on_clean_pairs() {
    let params = PhmmParams::default();
    for (r, g) in [
        ("ACGTACGTACGT", "ACGTACGTACGT"),
        ("ACGTACGTACGT", "ACGTACGGACGT"), // one mismatch
        ("TTGACCAGTTCAGG", "TTGACCAGTTCAGG"),
    ] {
        let (emit, _) = emit_for(r, g, 35, &params);
        let v = viterbi(emit.view(), &params);
        assert!(v.ops.iter().all(|&o| o == AlignOp::Match));
        // For each read base, the posterior-argmax genome column must be
        // the diagonal one Viterbi chose.
        let post = PosteriorAlignment::from_emissions(emit.view(), &params);
        for i in 1..=r.len() {
            let best_j = (1..=g.len())
                .max_by(|&a, &b| {
                    post.match_posterior(i, a)
                        .total_cmp(&post.match_posterior(i, b))
                })
                .unwrap();
            assert_eq!(best_j, i, "read base {i} should sit on the diagonal");
            assert!(post.match_posterior(i, i) > 0.9);
        }
    }
}

#[test]
fn posterior_argmax_matches_viterbi_through_an_indel() {
    let params = PhmmParams::with_gap_rates(0.05, 0.5, 0.02);
    // Genome has one extra base at offset 6 (0-based): read skips it.
    let (emit, _) = emit_for("TTGACCAGTTCAGG", "TTGACCGAGTTCAGG", 35, &params);
    let v = viterbi(emit.view(), &params);
    let dels: Vec<usize> = v
        .ops
        .iter()
        .enumerate()
        .filter(|(_, &o)| o == AlignOp::DelGenome)
        .map(|(idx, _)| idx)
        .collect();
    assert_eq!(dels.len(), 1, "exactly one genome deletion: {:?}", v.ops);

    // The posterior must put substantial deletion mass on the same genome
    // column Viterbi skipped. Column = count of non-InsRead ops up to and
    // including the deletion.
    let skipped_col = v.ops[..=dels[0]]
        .iter()
        .filter(|&&o| o != AlignOp::InsRead)
        .count();
    let post = PosteriorAlignment::from_emissions(emit.view(), &params);
    let del_mass: f64 = (1..=14)
        .map(|i| post.deletion_posterior(i, skipped_col))
        .sum();
    assert!(
        del_mass > 0.5,
        "deletion mass at column {skipped_col} should dominate: {del_mass}"
    );
}

#[test]
fn viterbi_probability_is_a_large_share_on_unambiguous_pairs() {
    // When there is a single overwhelmingly best alignment, the Viterbi
    // path should carry most of the total probability mass.
    let params = PhmmParams::default();
    let (emit, _) = emit_for("ACGGTTCAGGCATTGC", "ACGGTTCAGGCATTGC", 40, &params);
    let v = viterbi(emit.view(), &params);
    let total = pairhmm::forward::forward(emit.view(), &params).total;
    assert!(
        v.probability / total > 0.9,
        "share {}",
        v.probability / total
    );
}
