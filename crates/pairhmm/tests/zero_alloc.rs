//! Steady-state allocation audit for the fused scratch kernel.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after one
//! warmup alignment per configuration, repeated `posterior_columns` /
//! `scaled_log_total` calls on a reused [`pairhmm::PhmmScratch`] must
//! perform **zero** heap allocations — the core promise of the
//! scratch-arena design. This lives in its own integration-test binary so
//! the global allocator hook and the single-threaded counter discipline
//! (one `#[test]` only) cannot interfere with other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// Only the measuring thread's allocations are counted: libtest spawns
// helper threads (output capture, timers) that may allocate mid-window,
// and a `Cell<bool>` TLS slot is const-initialized and destructor-free,
// so reading it inside the allocator cannot recurse.
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn on_measuring_thread() -> bool {
    COUNTING.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if on_measuring_thread() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if on_measuring_thread() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if on_measuring_thread() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Read the counter, arming counting for the calling thread — the first
/// call opens the measurement window, the second closes it.
fn allocation_count() -> u64 {
    COUNTING.with(|c| c.set(true));
    ALLOC_CALLS.load(Ordering::Relaxed)
}

#[test]
fn fused_kernel_is_allocation_free_in_steady_state() {
    use genome::alphabet::BASES;
    use pairhmm::params::PhmmParams;
    use pairhmm::pwm::Pwm;
    use pairhmm::PhmmScratch;

    let params = PhmmParams::default();
    // Deterministic 62-bp read/window pair (paper read length), built
    // before any counting so its allocations are irrelevant.
    let n = 62usize;
    let rows: Vec<[f64; 4]> = (0..n)
        .map(|i| {
            let mut row = [0.02f64; 4];
            row[i % 4] = 0.94;
            row
        })
        .collect();
    let pwm = Pwm::from_rows(rows);
    let window: Vec<_> = (0..n).map(|j| Some(BASES[(j * 7 + 3) % 4])).collect();

    let mut scratch = PhmmScratch::new();
    let mut sink = 0.0f64;

    // Warmup: grow every buffer for each configuration exercised below.
    sink += scratch.posterior_columns(&pwm, &window, &params, None);
    sink += scratch.posterior_columns(&pwm, &window, &params, Some(4));
    sink += scratch.scaled_log_total(&pwm, &window, &params);

    let before = allocation_count();
    for _ in 0..100 {
        sink += scratch.posterior_columns(&pwm, &window, &params, None);
        sink += scratch.posterior_columns(&pwm, &window, &params, Some(4));
        sink += scratch.scaled_log_total(&pwm, &window, &params);
        sink += scratch.columns()[0].probs[0];
    }
    let after = allocation_count();

    assert!(sink.is_finite(), "keep the computation observable");
    assert_eq!(
        after - before,
        0,
        "steady-state scratch alignments must not allocate \
         ({} allocations over 300 alignments)",
        after - before
    );
}
