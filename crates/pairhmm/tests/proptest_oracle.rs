//! Property tests: the forward/backward dynamic programs must agree with
//! the exhaustive path-enumeration oracle on random small instances, and
//! their structural invariants must hold on random larger ones.

use pairhmm::backward::backward;
use pairhmm::bruteforce::enumerate;
use pairhmm::emission::EmissionTable;
use pairhmm::forward::forward;
use pairhmm::params::PhmmParams;
use pairhmm::scaling::scaled_forward;
use proptest::prelude::*;

/// Random valid Pair-HMM parameters.
fn params_strategy() -> impl Strategy<Value = PhmmParams> {
    (0.001f64..0.2, 0.1f64..0.9, 0.001f64..0.2).prop_map(|(gap_open, gap_close, mismatch)| {
        PhmmParams::with_gap_rates(gap_open, gap_close, mismatch)
    })
}

/// Random emission table with entries in (0, 1].
fn emit_strategy(max_n: usize, max_m: usize) -> impl Strategy<Value = EmissionTable> {
    (1..=max_n, 1..=max_m)
        .prop_flat_map(|(n, m)| {
            proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, m), n)
        })
        .prop_map(|rows| EmissionTable::from_rows(&rows))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn forward_matches_oracle(
        emit in emit_strategy(5, 5),
        params in params_strategy(),
    ) {
        let oracle = enumerate(emit.view(), &params);
        let f = forward(emit.view(), &params);
        let tol = 1e-12 * oracle.total.max(1e-300);
        prop_assert!((oracle.total - f.total).abs() <= tol,
            "oracle {} vs forward {}", oracle.total, f.total);
    }

    #[test]
    fn marginal_masses_match_oracle(
        emit in emit_strategy(4, 4),
        params in params_strategy(),
    ) {
        let oracle = enumerate(emit.view(), &params);
        let f = forward(emit.view(), &params);
        let b = backward(emit.view(), &params);
        let n = emit.n();
        let m = emit.m();
        let tol = 1e-11 * oracle.total.max(1e-300);
        for i in 1..=n {
            for j in 1..=m {
                let fb = f.tables.m.get(i, j) * b.tables.m.get(i, j);
                prop_assert!((fb - oracle.match_mass[i][j]).abs() <= tol);
                let fb = f.tables.x.get(i, j) * b.tables.x.get(i, j);
                prop_assert!((fb - oracle.ins_mass[i][j]).abs() <= tol);
                let fb = f.tables.y.get(i, j) * b.tables.y.get(i, j);
                prop_assert!((fb - oracle.del_mass[i][j]).abs() <= tol);
            }
        }
    }

    #[test]
    fn forward_backward_totals_agree(
        emit in emit_strategy(12, 12),
        params in params_strategy(),
    ) {
        let f = forward(emit.view(), &params).total;
        let b = backward(emit.view(), &params).total;
        prop_assert!((f - b).abs() <= 1e-11 * f.max(1e-300),
            "fwd {f} vs bwd {b}");
    }

    #[test]
    fn row_and_column_flow_invariants(
        emit in emit_strategy(9, 9),
        params in params_strategy(),
    ) {
        let f = forward(emit.view(), &params);
        let b = backward(emit.view(), &params);
        let n = emit.n();
        let m = emit.m();
        prop_assume!(f.total > 1e-280); // skip degenerate all-but-zero cases
        for i in 1..=n {
            let mut acc = 0.0;
            for j in 1..=m {
                acc += f.tables.m.get(i, j) * b.tables.m.get(i, j)
                    + f.tables.x.get(i, j) * b.tables.x.get(i, j);
            }
            prop_assert!((acc - f.total).abs() <= 1e-9 * f.total,
                "row {i} flow {acc} != {}", f.total);
        }
        for j in 1..=m {
            let mut acc = 0.0;
            for i in 1..=n {
                acc += f.tables.m.get(i, j) * b.tables.m.get(i, j)
                    + f.tables.y.get(i, j) * b.tables.y.get(i, j);
            }
            prop_assert!((acc - f.total).abs() <= 1e-9 * f.total,
                "column {j} flow {acc} != {}", f.total);
        }
    }

    #[test]
    fn scaled_forward_matches_plain_log(
        emit in emit_strategy(15, 15),
        params in params_strategy(),
    ) {
        let plain = forward(emit.view(), &params).total;
        prop_assume!(plain > 0.0);
        let scaled = scaled_forward(emit.view(), &params).log_total;
        prop_assert!((scaled - plain.ln()).abs() < 1e-8,
            "scaled {scaled} vs ln(plain) {}", plain.ln());
    }
}
