//! Position-weight matrices and the blended emission `p*(i, j)`.
//!
//! Paper, Section VI Step 2: "the probability from each nucleotide obtained
//! from base quality scores is used to create a position-weight matrix for
//! each read", and the match emission becomes
//!
//! ```text
//! p*(i, j) = r_iA·p_{A,yj} + r_iC·p_{C,yj} + r_iG·p_{G,yj} + r_iT·p_{T,yj}
//! ```
//!
//! i.e. the read base is integrated out against its quality-derived
//! distribution. A genome `N` is treated as a uniformly uncertain base.

use crate::emission::EmissionTable;
use crate::params::PhmmParams;
use genome::alphabet::Base;
use genome::read::SequencedRead;

/// A read's position-weight matrix: one probability row `r_i` per read
/// position, each summing to 1 over A, C, G, T.
#[derive(Debug, Clone, PartialEq)]
pub struct Pwm {
    rows: Vec<[f64; 4]>,
}

impl Pwm {
    /// Build from a read's called bases and Phred qualities.
    pub fn from_read(read: &SequencedRead) -> Pwm {
        Pwm {
            rows: read.base_prob_rows(),
        }
    }

    /// Build directly from probability rows. Panics when a row is not a
    /// probability distribution (within 1e-6).
    pub fn from_rows(rows: Vec<[f64; 4]>) -> Pwm {
        for (i, r) in rows.iter().enumerate() {
            let s: f64 = r.iter().sum();
            assert!(
                (s - 1.0).abs() < 1e-6 && r.iter().all(|&p| p >= 0.0),
                "row {i} is not a probability distribution: {r:?}"
            );
        }
        Pwm { rows }
    }

    /// A PWM for a perfectly certain sequence (each row a point mass).
    pub fn certain(bases: &[Base]) -> Pwm {
        Pwm {
            rows: bases
                .iter()
                .map(|b| {
                    let mut r = [0.0; 4];
                    r[b.index()] = 1.0;
                    r
                })
                .collect(),
        }
    }

    /// Read length.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True for an empty PWM.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The probability row for read position `i` (0-based).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64; 4] {
        &self.rows[i]
    }

    /// The blended match emission `p*(i, j)` for 0-based read position `i`
    /// against genome base `y` (`None` = `N`, treated as uniform).
    #[inline]
    pub fn blended_emission(&self, i: usize, y: Option<Base>, params: &PhmmParams) -> f64 {
        let r = &self.rows[i];
        match y {
            Some(y) => {
                let yi = y.index();
                let mut acc = 0.0;
                for (k, &rk) in r.iter().enumerate() {
                    acc += rk * params.emission(k, yi);
                }
                acc
            }
            // Against an unknown genome base every read base is equally
            // compatible; each emission row sums to 1, so the blend is 1/4.
            None => 0.25,
        }
    }

    /// Fill a caller-owned flat buffer with `p*(i, j)` for all read
    /// positions against a genome window (row-major, stride = window
    /// length). Clears and refills `out`; when `out`'s capacity already
    /// suffices this performs no allocation — the scratch-arena hot path.
    ///
    /// The blend against each of the four concrete genome bases is
    /// precomputed once per read row (the inner `k` sum is in the same
    /// ascending order as [`blended_emission`](Self::blended_emission), so
    /// the values are bit-identical), then the window is a pure table
    /// lookup.
    pub fn fill_emission(&self, window: &[Option<Base>], params: &PhmmParams, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.len() * window.len());
        for r in &self.rows {
            let mut blend = [0.0f64; 4];
            for (yi, b) in blend.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (k, &rk) in r.iter().enumerate() {
                    acc += rk * params.emission(k, yi);
                }
                *b = acc;
            }
            out.extend(window.iter().map(|&y| match y {
                Some(y) => blend[y.index()],
                // Against an unknown genome base every read base is
                // equally compatible; rows sum to 1, so the blend is 1/4.
                None => 0.25,
            }));
        }
    }

    /// Precompute `p*(i, j)` for all read positions against a genome
    /// window as an owned flat table.
    pub fn emission_table(&self, window: &[Option<Base>], params: &PhmmParams) -> EmissionTable {
        let mut data = Vec::new();
        self.fill_emission(window, params, &mut data);
        EmissionTable::from_flat(data, self.len(), window.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certain_pwm_reduces_to_plain_emission() {
        let p = PhmmParams::default();
        let pwm = Pwm::certain(&[Base::A, Base::G]);
        assert!((pwm.blended_emission(0, Some(Base::A), &p) - p.emission(0, 0)).abs() < 1e-15);
        assert!((pwm.blended_emission(1, Some(Base::T), &p) - p.emission(2, 3)).abs() < 1e-15);
    }

    #[test]
    fn from_read_uses_qualities() {
        let p = PhmmParams::default();
        let read = SequencedRead::new("r", "A".parse().unwrap(), vec![10]).unwrap();
        let pwm = Pwm::from_read(&read);
        // r = (0.9, 0.0333.., 0.0333.., 0.0333..)
        let expected = 0.9 * p.emission(0, 0) + (0.1 / 3.0) * p.emission(1, 0) * 3.0;
        assert!((pwm.blended_emission(0, Some(Base::A), &p) - expected).abs() < 1e-12);
    }

    #[test]
    fn low_quality_blurs_the_emission() {
        let p = PhmmParams::default();
        let hi = SequencedRead::new("hi", "A".parse().unwrap(), vec![40]).unwrap();
        let lo = SequencedRead::new("lo", "A".parse().unwrap(), vec![3]).unwrap();
        let e_hi = Pwm::from_read(&hi).blended_emission(0, Some(Base::A), &p);
        let e_lo = Pwm::from_read(&lo).blended_emission(0, Some(Base::A), &p);
        assert!(e_hi > e_lo, "high quality should match more confidently");
        // And against the *wrong* base the ordering flips.
        let w_hi = Pwm::from_read(&hi).blended_emission(0, Some(Base::C), &p);
        let w_lo = Pwm::from_read(&lo).blended_emission(0, Some(Base::C), &p);
        assert!(w_lo > w_hi);
    }

    #[test]
    fn genome_n_is_uniform() {
        let p = PhmmParams::default();
        let pwm = Pwm::certain(&[Base::C]);
        assert_eq!(pwm.blended_emission(0, None, &p), 0.25);
    }

    #[test]
    fn emission_table_shape() {
        let p = PhmmParams::default();
        let pwm = Pwm::certain(&[Base::A, Base::C, Base::G]);
        let window = [Some(Base::A), None, Some(Base::T), Some(Base::G)];
        let t = pwm.emission_table(&window, &p);
        assert_eq!(t.n(), 3);
        assert_eq!(t.m(), 4);
        assert_eq!(t.at(1, 1), 0.25);
        // Read position 2 is a certain G, window position 3 is G: match.
        assert!((t.at(2, 3) - p.emission(2, 2)).abs() < 1e-15);
        // Read position 2 (G) vs window position 2 (T): mismatch.
        assert!((t.at(2, 2) - p.emission(2, 3)).abs() < 1e-15);
    }

    #[test]
    fn fill_emission_matches_blended_emission() {
        let p = PhmmParams::default();
        let read = SequencedRead::new("r", "ACGT".parse().unwrap(), vec![38, 12, 25, 7]).unwrap();
        let pwm = Pwm::from_read(&read);
        let window = [
            Some(Base::T),
            None,
            Some(Base::A),
            Some(Base::G),
            Some(Base::C),
        ];
        let t = pwm.emission_table(&window, &p);
        for i in 0..pwm.len() {
            for (j, &y) in window.iter().enumerate() {
                assert_eq!(
                    t.at(i, j).to_bits(),
                    pwm.blended_emission(i, y, &p).to_bits(),
                    "cell ({i},{j})"
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn from_rows_rejects_non_distribution() {
        let _ = Pwm::from_rows(vec![[0.5, 0.5, 0.5, 0.0]]);
    }

    #[test]
    fn n_read_base_blends_uniformly() {
        let p = PhmmParams::default();
        let read = SequencedRead::new("r", "N".parse().unwrap(), vec![0]).unwrap();
        let pwm = Pwm::from_read(&read);
        // Uniform read row against any genome base: 0.25·(1−μ) + 0.75·(μ/3)·… = 0.25.
        assert!((pwm.blended_emission(0, Some(Base::G), &p) - 0.25).abs() < 1e-12);
    }
}
