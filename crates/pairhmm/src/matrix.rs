//! Dense row-major `f64` matrices for the DP recursions.
//!
//! The DP tables are `(N+1) × (M+1)` with reads of 36–100 bp against
//! windows of similar size, so a flat `Vec<f64>` with multiply-free row
//! indexing is both the simplest and the fastest layout (the inner loops
//! walk rows contiguously).

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow a whole row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Multiply every element in a row by `factor` (used by the scaled DP).
    pub fn scale_row(&mut self, r: usize, factor: f64) {
        for v in &mut self.data[r * self.cols..(r + 1) * self.cols] {
            *v *= factor;
        }
    }

    /// Largest element in a row (0 for an all-zero row).
    pub fn row_max(&self, r: usize) -> f64 {
        self.row(r).iter().copied().fold(0.0, f64::max)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// The backing storage as one flat row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat access (lets the flat-plane kernels fill a `Matrix`
    /// in place).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip() {
        let mut m = Matrix::zeros(3, 4);
        m.set(2, 3, 1.5);
        m.set(0, 0, -2.0);
        assert_eq!(m.get(2, 3), 1.5);
        assert_eq!(m.get(0, 0), -2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
    }

    #[test]
    fn row_operations() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 0, 2.0);
        m.set(1, 2, 8.0);
        assert_eq!(m.row(1), &[2.0, 0.0, 8.0]);
        assert_eq!(m.row_max(1), 8.0);
        assert_eq!(m.row_max(0), 0.0);
        m.scale_row(1, 0.5);
        assert_eq!(m.row(1), &[1.0, 0.0, 4.0]);
        assert_eq!(m.sum(), 5.0);
    }
}
