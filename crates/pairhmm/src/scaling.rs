//! Row-rescaled forward recursion for numerically extreme inputs.
//!
//! The plain forward values decay geometrically with read length; for the
//! paper's 62-bp reads `f64` has head-room to spare, but long reads (or
//! pathologically small emissions) underflow. The scaled variant
//! renormalises each completed row to a maximum of 1 and accumulates the
//! log of the scale factors, returning `log P(x, y)` directly.
//!
//! The row arithmetic is [`crate::kernel::forward_row`] — the same
//! two-sweep vectorizable schedule as the plain forward — with the
//! renormalisation hook applied between rows. [`scaled_forward_into`] is
//! the allocation-free entry used by [`crate::scratch::PhmmScratch`];
//! [`scaled_forward`] is the self-contained convenience wrapper.

use crate::emission::Emission;
use crate::kernel;
use crate::params::PhmmParams;

/// Result of the scaled forward pass.
#[derive(Debug, Clone)]
pub struct ScaledForwardResult {
    /// `ln` of the total likelihood, or `f64::NEG_INFINITY` when the pair
    /// has zero probability.
    pub log_total: f64,
}

/// Scaled forward algorithm over caller-provided flat planes (each at
/// least `(n+1)·(m+1)` long, may hold stale data) and a per-row log-scale
/// buffer (at least `n + 1` long). Returns `ln P(x, y)`.
pub fn scaled_forward_into(
    emit: Emission<'_>,
    params: &PhmmParams,
    fm: &mut [f64],
    fx: &mut [f64],
    fy: &mut [f64],
    log_scale: &mut [f64],
) -> f64 {
    let (n, m) = (emit.n(), emit.m());
    assert!(n >= 1, "read must be non-empty");
    assert!(m >= 1, "window must be non-empty");
    let stride = m + 1;
    assert!(
        fm.len() >= (n + 1) * stride
            && fx.len() >= (n + 1) * stride
            && fy.len() >= (n + 1) * stride,
        "planes too small for {n}x{m}"
    );
    assert!(log_scale.len() > n, "log-scale buffer too small");

    // Border row 0: f_M(0,0) = 1, zero elsewhere; no scaling applied yet.
    for p in [&mut *fm, &mut *fx, &mut *fy] {
        p[..=m].fill(0.0);
    }
    fm[0] = 1.0;
    log_scale[0] = 0.0;

    for i in 1..=n {
        let base = (i - 1) * stride;
        let (mp, mc) = fm[base..base + 2 * stride].split_at_mut(stride);
        let (xp, xc) = fx[base..base + 2 * stride].split_at_mut(stride);
        let (yp, yc) = fy[base..base + 2 * stride].split_at_mut(stride);
        // Row i-1 has been rescaled by exp(log_scale[i-1] - true); the
        // recursion is homogeneous of degree 1 in the previous row and
        // current row, so the relative values stay correct. The G_Y term
        // references the *current* row (i, j-1), already at this row's
        // scale: both scales agree once the row is normalised, because
        // f_Y(i, j) only feeds from row i and row i-1 values.
        kernel::forward_row(params, emit.row(i - 1), mp, xp, yp, mc, xc, yc, 1, m, m);

        // Renormalise the completed row across all three states.
        let row_max = mc
            .iter()
            .chain(xc.iter())
            .chain(yc.iter())
            .copied()
            .fold(0.0, f64::max);
        if row_max > 0.0 {
            let inv = 1.0 / row_max;
            for row in [mc, xc, yc] {
                for v in row.iter_mut() {
                    *v *= inv;
                }
            }
            log_scale[i] = log_scale[i - 1] + row_max.ln();
        } else {
            // Entire row is zero: the pair is unalignable.
            return f64::NEG_INFINITY;
        }
    }

    let end = n * stride + m;
    let terminal = fm[end] + fx[end] + fy[end];
    if terminal > 0.0 {
        terminal.ln() + log_scale[n]
    } else {
        f64::NEG_INFINITY
    }
}

/// Scaled forward algorithm returning the log-likelihood of the pair.
pub fn scaled_forward(emit: Emission<'_>, params: &PhmmParams) -> ScaledForwardResult {
    let (n, m) = (emit.n(), emit.m());
    assert!(n >= 1, "read must be non-empty");
    assert!(m >= 1, "window must be non-empty");
    let plane = (n + 1) * (m + 1);
    let mut fm = vec![0.0; plane];
    let mut fx = vec![0.0; plane];
    let mut fy = vec![0.0; plane];
    let mut log_scale = vec![0.0; n + 1];
    let log_total = scaled_forward_into(emit, params, &mut fm, &mut fx, &mut fy, &mut log_scale);
    ScaledForwardResult { log_total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emission::EmissionTable;
    use crate::forward::forward;

    fn varied_emit(n: usize, m: usize) -> EmissionTable {
        EmissionTable::from_fn(n, m, |i, j| {
            0.2 + 0.75 * (((i * 29 + j * 13 + 3) % 17) as f64 / 17.0)
        })
    }

    #[test]
    fn agrees_with_unscaled_log() {
        let params = PhmmParams::with_gap_rates(0.04, 0.55, 0.03);
        for (n, m) in [(1, 1), (3, 4), (10, 10), (25, 27), (60, 62)] {
            let emit = varied_emit(n, m);
            let plain = forward(emit.view(), &params).total;
            let scaled = scaled_forward(emit.view(), &params).log_total;
            assert!(
                (scaled - plain.ln()).abs() < 1e-9,
                "{n}x{m}: scaled {scaled} vs ln(plain) {}",
                plain.ln()
            );
        }
    }

    #[test]
    fn survives_inputs_that_underflow_the_plain_dp() {
        // Tiny emissions: even the gap-dominated paths (which avoid all but
        // one emission) fall below f64's range, so the plain forward
        // underflows to exactly 0 while the scaled version still reports a
        // finite log-likelihood.
        let params = PhmmParams::default();
        let emit = EmissionTable::from_fn(40, 40, |_, _| 1e-250);
        let plain = forward(emit.view(), &params).total;
        assert_eq!(plain, 0.0, "expected underflow in the plain DP");
        let scaled = scaled_forward(emit.view(), &params).log_total;
        assert!(scaled.is_finite());
        assert!(
            scaled < -700.0,
            "log-likelihood should be far below ln(f64::MIN_POSITIVE): {scaled}"
        );
    }

    #[test]
    fn zero_probability_pair_reports_neg_infinity() {
        let params = PhmmParams::default();
        let emit = EmissionTable::zeros(3, 3);
        assert_eq!(
            scaled_forward(emit.view(), &params).log_total,
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn monotone_in_emissions() {
        let params = PhmmParams::default();
        let lo = scaled_forward(EmissionTable::from_fn(6, 6, |_, _| 0.3).view(), &params).log_total;
        let hi = scaled_forward(EmissionTable::from_fn(6, 6, |_, _| 0.9).view(), &params).log_total;
        assert!(hi > lo);
    }

    #[test]
    fn reused_stale_planes_give_identical_logs() {
        // scaled_forward_into must tolerate stale plane contents.
        let params = PhmmParams::default();
        let big = varied_emit(12, 14);
        let small = varied_emit(5, 6);
        let fresh = scaled_forward(small.view(), &params).log_total;
        let plane = 13 * 15;
        let (mut fm, mut fx, mut fy) = (vec![0.0; plane], vec![0.0; plane], vec![0.0; plane]);
        let mut ls = vec![0.0; 13];
        let _ = scaled_forward_into(big.view(), &params, &mut fm, &mut fx, &mut fy, &mut ls);
        let reused = scaled_forward_into(small.view(), &params, &mut fm, &mut fx, &mut fy, &mut ls);
        assert_eq!(fresh.to_bits(), reused.to_bits());
    }
}
