//! Row-rescaled forward recursion for numerically extreme inputs.
//!
//! The plain forward values decay geometrically with read length; for the
//! paper's 62-bp reads `f64` has head-room to spare, but long reads (or
//! pathologically small emissions) underflow. The scaled variant
//! renormalises each completed row to a maximum of 1 and accumulates the
//! log of the scale factors, returning `log P(x, y)` directly.

use crate::forward::DpTables;
use crate::params::PhmmParams;

/// Result of the scaled forward pass.
#[derive(Debug, Clone)]
pub struct ScaledForwardResult {
    /// `ln` of the total likelihood, or `f64::NEG_INFINITY` when the pair
    /// has zero probability.
    pub log_total: f64,
}

/// Scaled forward algorithm returning the log-likelihood of the pair.
pub fn scaled_forward(emit: &[Vec<f64>], params: &PhmmParams) -> ScaledForwardResult {
    let n = emit.len();
    assert!(n >= 1, "read must be non-empty");
    let m = emit[0].len();
    assert!(m >= 1, "window must be non-empty");

    let mut t = DpTables::zeros(n, m);
    t.m.set(0, 0, 1.0);
    // log of the product of scale factors applied to rows 0..=i.
    let mut log_scale = vec![0.0f64; n + 1];

    let &PhmmParams {
        t_mm,
        t_mg,
        t_gm,
        t_gg,
        q,
        ..
    } = params;

    for i in 1..=n {
        for j in 1..=m {
            // Row i-1 has been rescaled by exp(log_scale[i-1] - true); the
            // recursion is homogeneous of degree 1 in the previous row and
            // current row, so the relative values stay correct. The G_Y
            // term references the *current* row (i, j-1), already at this
            // row's scale: both scales agree once the row is normalised,
            // because f_Y(i, j) only feeds from row i and row i-1 values.
            let fm = emit[i - 1][j - 1]
                * (t_mm * t.m.get(i - 1, j - 1)
                    + t_gm * (t.x.get(i - 1, j - 1) + t.y.get(i - 1, j - 1)));
            let fx = q * (t_mg * t.m.get(i - 1, j) + t_gg * t.x.get(i - 1, j));
            let fy = q * (t_mg * t.m.get(i, j - 1) + t_gg * t.y.get(i, j - 1));
            t.m.set(i, j, fm);
            t.x.set(i, j, fx);
            t.y.set(i, j, fy);
        }
        // Renormalise the completed row across all three states.
        let row_max = t.m.row_max(i).max(t.x.row_max(i)).max(t.y.row_max(i));
        if row_max > 0.0 {
            let inv = 1.0 / row_max;
            t.m.scale_row(i, inv);
            t.x.scale_row(i, inv);
            t.y.scale_row(i, inv);
            log_scale[i] = log_scale[i - 1] + row_max.ln();
        } else {
            // Entire row is zero: the pair is unalignable.
            return ScaledForwardResult {
                log_total: f64::NEG_INFINITY,
            };
        }
    }

    let terminal = t.m.get(n, m) + t.x.get(n, m) + t.y.get(n, m);
    let log_total = if terminal > 0.0 {
        terminal.ln() + log_scale[n]
    } else {
        f64::NEG_INFINITY
    };
    ScaledForwardResult { log_total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::forward;

    fn varied_emit(n: usize, m: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..m)
                    .map(|j| 0.2 + 0.75 * (((i * 29 + j * 13 + 3) % 17) as f64 / 17.0))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn agrees_with_unscaled_log() {
        let params = PhmmParams::with_gap_rates(0.04, 0.55, 0.03);
        for (n, m) in [(1, 1), (3, 4), (10, 10), (25, 27), (60, 62)] {
            let emit = varied_emit(n, m);
            let plain = forward(&emit, &params).total;
            let scaled = scaled_forward(&emit, &params).log_total;
            assert!(
                (scaled - plain.ln()).abs() < 1e-9,
                "{n}x{m}: scaled {scaled} vs ln(plain) {}",
                plain.ln()
            );
        }
    }

    #[test]
    fn survives_inputs_that_underflow_the_plain_dp() {
        // Tiny emissions: even the gap-dominated paths (which avoid all but
        // one emission) fall below f64's range, so the plain forward
        // underflows to exactly 0 while the scaled version still reports a
        // finite log-likelihood.
        let params = PhmmParams::default();
        let emit = vec![vec![1e-250; 40]; 40];
        let plain = forward(&emit, &params).total;
        assert_eq!(plain, 0.0, "expected underflow in the plain DP");
        let scaled = scaled_forward(&emit, &params).log_total;
        assert!(scaled.is_finite());
        assert!(
            scaled < -700.0,
            "log-likelihood should be far below ln(f64::MIN_POSITIVE): {scaled}"
        );
    }

    #[test]
    fn zero_probability_pair_reports_neg_infinity() {
        let params = PhmmParams::default();
        let emit = vec![vec![0.0; 3]; 3];
        assert_eq!(scaled_forward(&emit, &params).log_total, f64::NEG_INFINITY);
    }

    #[test]
    fn monotone_in_emissions() {
        let params = PhmmParams::default();
        let lo = scaled_forward(&vec![vec![0.3; 6]; 6], &params).log_total;
        let hi = scaled_forward(&vec![vec![0.9; 6]; 6], &params).log_total;
        assert!(hi > lo);
    }
}
