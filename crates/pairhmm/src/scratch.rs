//! Per-thread scratch arena for the alignment hot path.
//!
//! [`PhmmScratch`] owns every buffer one posterior alignment needs — the
//! flat emission table, the three retained forward planes, six rolling
//! backward rows, the per-column `z`-vector accumulator, and a scale
//! vector for the rescaled forward variant. Buffers grow monotonically and
//! are reused across a thread's whole read batch, so after the first few
//! alignments warm them up the steady-state loop performs **zero heap
//! allocations per read × window pair**.
//!
//! The fused pass ([`PhmmScratch::posterior_columns`]) never materialises
//! the backward tables: it streams two rolling backward rows (`i+1` and
//! `i`) from the bottom of the DP upward, and folds each freshly computed
//! row directly into the column posteriors against the retained forward
//! planes. Per-cell arithmetic and per-column summation order are exactly
//! those of the materialised implementation (backward row `i` combined
//! with forward row `i`, for `i = N` down to `1`), so the result is
//! bit-identical — property-tested via `f64::to_bits` in
//! `tests/fused_bitident.rs`.

use crate::emission::Emission;
use crate::kernel::{self, Band};
use crate::marginal::ColumnPosterior;
use crate::params::PhmmParams;
use crate::pwm::Pwm;
use genome::alphabet::Base;

/// Grow-only reusable buffers for one thread's Pair-HMM alignments.
#[derive(Debug, Default)]
pub struct PhmmScratch {
    /// Flat `N × M` emission table `p*(i, j)`.
    emit: Vec<f64>,
    /// Retained forward planes, `(N+1) × (M+1)` row-major.
    fm: Vec<f64>,
    fx: Vec<f64>,
    fy: Vec<f64>,
    /// Rolling backward rows, length `M + 2`; index `M + 1` is a permanent
    /// zero sentinel standing in for the out-of-table column `M + 1`.
    bm_cur: Vec<f64>,
    bm_next: Vec<f64>,
    bx_cur: Vec<f64>,
    bx_next: Vec<f64>,
    by_cur: Vec<f64>,
    by_next: Vec<f64>,
    /// Per-row scale factors for the rescaled forward pass.
    scale: Vec<f64>,
    /// Column posterior accumulator, length `M` after a call.
    cols: Vec<ColumnPosterior>,
}

/// Grow `v` to at least `len` without ever shrinking (keeps capacity hot
/// across differently sized windows).
#[inline]
fn ensure(v: &mut Vec<f64>, len: usize) {
    if v.len() < len {
        v.resize(len, 0.0);
    }
}

impl PhmmScratch {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> PhmmScratch {
        PhmmScratch::default()
    }

    /// The column posteriors computed by the last
    /// [`posterior_columns`](Self::posterior_columns) call (length = that
    /// call's window length).
    #[inline]
    pub fn columns(&self) -> &[ColumnPosterior] {
        &self.cols
    }

    /// Fill the internal flat emission table for `pwm` against `window`
    /// and return a view of it alongside the shape.
    fn fill_emission(&mut self, pwm: &Pwm, window: &[Option<Base>], params: &PhmmParams) {
        pwm.fill_emission(window, params, &mut self.emit);
    }

    /// Full fused posterior alignment of one read (PWM) against one
    /// window: emission build → forward into retained planes → streaming
    /// backward fused with `z`-vector accumulation. Returns the total
    /// likelihood; the per-column evidence vectors are available from
    /// [`columns`](Self::columns) afterwards (all-zero when the total is
    /// zero, matching `PosteriorAlignment::column_posteriors`).
    ///
    /// `band` is the optional diagonal half-width: `Some(w)` restricts
    /// both passes to the band of [`kernel::diagonal_bounds`], exactly
    /// like `PosteriorAlignment::from_emissions_banded`.
    pub fn posterior_columns(
        &mut self,
        pwm: &Pwm,
        window: &[Option<Base>],
        params: &PhmmParams,
        band: Option<usize>,
    ) -> f64 {
        let n = pwm.len();
        let m = window.len();
        assert!(n >= 1, "read must be non-empty");
        assert!(m >= 1, "window must be non-empty");

        self.fill_emission(pwm, window, params);
        let band: Band = band.map(|w| kernel::diagonal_bounds(n, m, w));

        let stride = m + 1;
        let plane = (n + 1) * stride;
        ensure(&mut self.fm, plane);
        ensure(&mut self.fx, plane);
        ensure(&mut self.fy, plane);

        let emit = Emission::new(&self.emit[..n * m], n, m);
        let total =
            kernel::forward_planes(emit, params, &mut self.fm, &mut self.fx, &mut self.fy, band);

        self.cols.clear();
        self.cols.resize(m, ColumnPosterior::default());
        if total == 0.0 {
            return total;
        }

        // Rolling rows carry one extra slot: index m+1 is a permanent zero
        // standing in for reads of the out-of-table column m+1, so the
        // vectorised sweep needs no per-cell bounds gating.
        let roll = m + 2;
        ensure(&mut self.bm_cur, roll);
        ensure(&mut self.bm_next, roll);
        ensure(&mut self.bx_cur, roll);
        ensure(&mut self.bx_next, roll);
        ensure(&mut self.by_cur, roll);
        ensure(&mut self.by_next, roll);
        for r in [
            &mut self.bm_cur,
            &mut self.bm_next,
            &mut self.bx_cur,
            &mut self.bx_next,
            &mut self.by_cur,
            &mut self.by_next,
        ] {
            r[m + 1] = 0.0;
        }

        let &PhmmParams {
            t_mm,
            t_mg,
            t_gm,
            t_gg,
            q,
            ..
        } = params;

        // --- Row N (terminal row): p*(N+1, ·) = 0 and row N+1 is the zero
        // border, so the recursions collapse to pure gap-extension chains
        // seeded by b(N, M) = 1:
        //   b_GY(N, j) = q·T_GG·b_GY(N, j+1)
        //   b_M(N, j)  = q·T_MG·b_GY(N, j+1)
        //   b_GX(N, j) = 0                       (for j < M)
        {
            let (j_min, j_max) = kernel::row_range(band, n, m);
            debug_assert_eq!(j_max, m, "terminal row always reaches column M");
            for r in [&mut self.bm_cur, &mut self.bx_cur, &mut self.by_cur] {
                r[j_min - 1] = 0.0;
            }
            self.bm_cur[m] = 1.0;
            self.bx_cur[m] = 1.0;
            self.by_cur[m] = 1.0;
            let mut carry = 1.0; // b_GY(N, j+1), starting from b_GY(N, M)
            for j in (j_min..m).rev() {
                self.bm_cur[j] = q * t_mg * carry;
                carry *= q * t_gg;
                self.by_cur[j] = carry;
                self.bx_cur[j] = 0.0;
            }
            accumulate_row(
                &mut self.cols,
                pwm.row(n - 1),
                &self.fm[n * stride..],
                &self.fy[n * stride..],
                &self.bm_cur,
                &self.by_cur,
                total,
                j_min,
                j_max,
            );
        }

        // --- Rows N-1 down to 1: swap so `next` holds row i+1, compute
        // row i into `cur` in two sweeps, then fold it into the columns.
        for i in (1..n).rev() {
            std::mem::swap(&mut self.bm_cur, &mut self.bm_next);
            std::mem::swap(&mut self.bx_cur, &mut self.bx_next);
            std::mem::swap(&mut self.by_cur, &mut self.by_next);

            let (j_min, j_max) = kernel::row_range(band, i, m);
            // Zero sentinels one cell beyond the band: everything row i-1
            // (or this row's own j+1 reads) touches outside the freshly
            // computed span is an out-of-band zero.
            for r in [&mut self.bm_cur, &mut self.bx_cur, &mut self.by_cur] {
                r[j_min - 1] = 0.0;
                r[j_max + 1] = 0.0;
            }

            // p*(i+1, j+1) lives in 0-based emission row i.
            let erow = emit.row(i);

            // Sweep 1 (serial carry, descending j): G_Y depends on its own
            // row's j+1 cell.
            //   b_GY(i,j) = p*(i+1,j+1)·T_GM·b_M(i+1,j+1) + q·T_GG·b_GY(i,j+1)
            {
                let mut carry = 0.0; // b_GY(i, j_max+1): out of band/table
                for j in (j_min..=j_max).rev() {
                    let (diag, bm_diag) = if j < m {
                        (erow[j], self.bm_next[j + 1])
                    } else {
                        (0.0, 0.0)
                    };
                    carry = diag * t_gm * bm_diag + q * t_gg * carry;
                    self.by_cur[j] = carry;
                }
            }

            // Sweep 2 (vectorizable, ascending j): M and G_X read only row
            // i+1 plus the already-final G_Y row.
            //   b_M(i,j)  = p*·T_MM·b_M(i+1,j+1) + q·T_MG·[b_GX(i+1,j) + b_GY(i,j+1)]
            //   b_GX(i,j) = p*·T_GM·b_M(i+1,j+1) + q·T_GG·b_GX(i+1,j)
            if j_max == m {
                // Column M: the diagonal term is zero (p*(i+1, M+1) = 0)
                // and b_GY(i, M+1) = 0, exact under IEEE for +0 operands.
                self.bm_cur[m] = q * t_mg * self.bx_next[m];
                self.bx_cur[m] = q * t_gg * self.bx_next[m];
            }
            let hi = j_max.min(m - 1);
            if j_min <= hi {
                let it = self.bm_cur[j_min..=hi]
                    .iter_mut()
                    .zip(self.bx_cur[j_min..=hi].iter_mut())
                    .zip(&erow[j_min..=hi])
                    .zip(&self.bm_next[j_min + 1..=hi + 1])
                    .zip(&self.bx_next[j_min..=hi])
                    .zip(&self.by_cur[j_min + 1..=hi + 1]);
                for (((((mv, xv), &diag), &bmd), &bxn), &byr) in it {
                    *mv = diag * t_mm * bmd + q * t_mg * (bxn + byr);
                    *xv = diag * t_gm * bmd + q * t_gg * bxn;
                }
            }

            accumulate_row(
                &mut self.cols,
                pwm.row(i - 1),
                &self.fm[i * stride..],
                &self.fy[i * stride..],
                &self.bm_cur,
                &self.by_cur,
                total,
                j_min,
                j_max,
            );
        }

        total
    }

    /// Rescaled forward pass (for the long-read regime where the plain
    /// forward underflows): returns `ln P(x, y)`, reusing the arena's
    /// forward planes and scale vector. Full-table only (no band), exactly
    /// mirroring [`crate::scaling::scaled_forward`].
    pub fn scaled_log_total(
        &mut self,
        pwm: &Pwm,
        window: &[Option<Base>],
        params: &PhmmParams,
    ) -> f64 {
        let n = pwm.len();
        let m = window.len();
        assert!(n >= 1, "read must be non-empty");
        assert!(m >= 1, "window must be non-empty");
        self.fill_emission(pwm, window, params);
        let stride = m + 1;
        ensure(&mut self.fm, (n + 1) * stride);
        ensure(&mut self.fx, (n + 1) * stride);
        ensure(&mut self.fy, (n + 1) * stride);
        ensure(&mut self.scale, n + 1);
        let emit = Emission::new(&self.emit[..n * m], n, m);
        crate::scaling::scaled_forward_into(
            emit,
            params,
            &mut self.fm,
            &mut self.fx,
            &mut self.fy,
            &mut self.scale,
        )
    }
}

/// Fold backward row `i` (rolling rows `bm`, `by`) against forward row `i`
/// into the column accumulators, restricted to the band: out-of-band cells
/// contribute exactly zero in the materialised implementation (`p_M = +0`
/// is skipped by the guard, `p_D = +0` is an IEEE no-op addend), so
/// skipping them is bit-identical.
#[allow(clippy::too_many_arguments)]
#[inline]
fn accumulate_row(
    cols: &mut [ColumnPosterior],
    r: &[f64; 4],
    fm_row: &[f64],
    fy_row: &[f64],
    bm: &[f64],
    by: &[f64],
    total: f64,
    j_min: usize,
    j_max: usize,
) {
    for j in j_min..=j_max {
        let col = &mut cols[j - 1];
        let pm = fm_row[j] * bm[j] / total;
        if pm > 0.0 {
            for (p, rk) in col.probs.iter_mut().zip(r) {
                *p += pm * rk;
            }
        }
        let pd = fy_row[j] * by[j] / total;
        col.probs[4] += pd;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::read::SequencedRead;

    fn window(s: &str) -> Vec<Option<Base>> {
        s.bytes()
            .map(|c| Base::try_from_ascii(c).unwrap())
            .collect()
    }

    #[test]
    fn fused_matches_materialized_small() {
        let params = PhmmParams::default();
        let read = SequencedRead::with_uniform_quality("r", "ACGTACGT".parse().unwrap(), 30);
        let pwm = Pwm::from_read(&read);
        let win = window("ACGAACGT");
        let mut scratch = PhmmScratch::new();
        let total = scratch.posterior_columns(&pwm, &win, &params, None);

        let post = crate::marginal::PosteriorAlignment::compute(&pwm, &win, &params);
        assert_eq!(total.to_bits(), post.total().to_bits());
        let reference = post.column_posteriors(&pwm);
        assert_eq!(scratch.columns().len(), reference.len());
        for (a, b) in scratch.columns().iter().zip(&reference) {
            for (x, y) in a.probs.iter().zip(&b.probs) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn scratch_reuse_is_stable_across_shapes() {
        // Reusing the arena across different window/read shapes must not
        // leak stale state into later answers.
        let params = PhmmParams::default();
        let mut scratch = PhmmScratch::new();
        let cases = [
            ("ACGTACGTACGT", "ACGTACGAACGT"),
            ("ACG", "ACGT"),
            ("TTTTTTTT", "TTTTTTT"),
            ("ACGTACGTACGT", "ACGTACGAACGT"),
        ];
        let mut firsts = Vec::new();
        for (r, w) in cases {
            let read = SequencedRead::with_uniform_quality("r", r.parse().unwrap(), 25);
            let pwm = Pwm::from_read(&read);
            let win = window(w);
            let total = scratch.posterior_columns(&pwm, &win, &params, Some(3));
            assert!(total > 0.0);
            assert_eq!(scratch.columns().len(), win.len());
            firsts.push((total, scratch.columns().to_vec()));
        }
        // First and last case are identical inputs: identical bits out.
        assert_eq!(firsts[0].0.to_bits(), firsts[3].0.to_bits());
        for (a, b) in firsts[0].1.iter().zip(&firsts[3].1) {
            for (x, y) in a.probs.iter().zip(&b.probs) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn zero_total_yields_zero_columns() {
        let params = PhmmParams::default();
        // All-zero emissions via a window of length < read with zero
        // match probability is awkward to build from bases; instead use a
        // PWM vs window pair that cannot align: impossible without zero
        // emissions, so check the columns on the degenerate 1x1 mismatch
        // still sum to 1 and the API contract (len == m) holds.
        let read = SequencedRead::with_uniform_quality("r", "A".parse().unwrap(), 40);
        let pwm = Pwm::from_read(&read);
        let win = window("T");
        let mut scratch = PhmmScratch::new();
        let total = scratch.posterior_columns(&pwm, &win, &params, None);
        assert!(total > 0.0);
        assert_eq!(scratch.columns().len(), 1);
        assert!((scratch.columns()[0].mass() - 1.0).abs() < 1e-10);
    }
}
