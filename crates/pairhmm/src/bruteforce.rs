//! Exhaustive alignment enumeration — the test oracle.
//!
//! For tiny sequences every legal state path of the Pair-HMM can be listed
//! explicitly and its probability multiplied out by hand. The total and the
//! per-cell marginals computed this way must agree with the
//! forward–backward dynamic programs to floating-point accuracy; this is
//! the strongest correctness evidence the crate has, because the oracle
//! shares no code with the DP implementations.
//!
//! Path semantics mirror `forward` exactly: every path starts in the match
//! state at `(1, 1)` (contributing `T_MM · p*(1,1)`), each subsequent step
//! pays its transition probability times its emission (`p*` in `M`, `q` in
//! a gap state), and the path ends upon reaching `(N, M)` in any state.

use crate::emission::Emission;
use crate::params::PhmmParams;

/// Marginal accumulators produced by enumeration.
#[derive(Debug, Clone)]
pub struct BruteForceResult {
    /// Total probability over all alignments.
    pub total: f64,
    /// Unnormalised mass ending read base `i` matched to genome base `j`;
    /// index `[i][j]`, 1-based with a zero row/column 0.
    pub match_mass: Vec<Vec<f64>>,
    /// Mass for read base `i` in the insertion state at column `j`.
    pub ins_mass: Vec<Vec<f64>>,
    /// Mass for genome base `j` in the deletion state at row `i`.
    pub del_mass: Vec<Vec<f64>>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    M,
    X,
    Y,
}

/// Enumerate every alignment of an `n × m` emission table. Exponential in
/// `n + m`: keep both below ~8.
pub fn enumerate(emit: Emission<'_>, params: &PhmmParams) -> BruteForceResult {
    let n = emit.n();
    let m = emit.m();
    assert!(n >= 1 && m >= 1);
    assert!(n + m <= 16, "brute force is exponential; keep n + m small");

    let mut res = BruteForceResult {
        total: 0.0,
        match_mass: vec![vec![0.0; m + 1]; n + 1],
        ins_mass: vec![vec![0.0; m + 1]; n + 1],
        del_mass: vec![vec![0.0; m + 1]; n + 1],
    };

    // The path so far is recorded as (i, j, state) triples so marginal mass
    // can be credited to every visited cell once the path completes.
    let mut visited: Vec<(usize, usize, State)> = Vec::new();

    // Start: M at (1, 1).
    let p0 = params.t_mm * emit.at(0, 0);
    if p0 > 0.0 {
        visited.push((1, 1, State::M));
        extend(1, 1, State::M, p0, emit, params, &mut visited, &mut res);
        visited.pop();
    }
    res
}

#[allow(clippy::too_many_arguments)]
fn extend(
    i: usize,
    j: usize,
    state: State,
    prob: f64,
    emit: Emission<'_>,
    params: &PhmmParams,
    visited: &mut Vec<(usize, usize, State)>,
    res: &mut BruteForceResult,
) {
    let n = emit.n();
    let m = emit.m();
    if i == n && j == m {
        // Path complete: credit its probability to every visited cell.
        res.total += prob;
        for &(vi, vj, vs) in visited.iter() {
            match vs {
                State::M => res.match_mass[vi][vj] += prob,
                State::X => res.ins_mass[vi][vj] += prob,
                State::Y => res.del_mass[vi][vj] += prob,
            }
        }
        return;
    }

    let trans = |from: State, to: State| -> f64 {
        match (from, to) {
            (State::M, State::M) => params.t_mm,
            (State::M, State::X) | (State::M, State::Y) => params.t_mg,
            (State::X, State::M) | (State::Y, State::M) => params.t_gm,
            (State::X, State::X) | (State::Y, State::Y) => params.t_gg,
            // X↔Y transitions are disallowed in the model.
            _ => 0.0,
        }
    };

    // Move to M(i+1, j+1).
    if i < n && j < m {
        let p = prob * trans(state, State::M) * emit.at(i, j); // emit.at(i, j) = p*(i+1, j+1)
        if p > 0.0 {
            visited.push((i + 1, j + 1, State::M));
            extend(i + 1, j + 1, State::M, p, emit, params, visited, res);
            visited.pop();
        }
    }
    // Move to X(i+1, j).
    if i < n {
        let p = prob * trans(state, State::X) * params.q;
        if p > 0.0 {
            visited.push((i + 1, j, State::X));
            extend(i + 1, j, State::X, p, emit, params, visited, res);
            visited.pop();
        }
    }
    // Move to Y(i, j+1).
    if j < m {
        let p = prob * trans(state, State::Y) * params.q;
        if p > 0.0 {
            visited.push((i, j + 1, State::Y));
            extend(i, j + 1, State::Y, p, emit, params, visited, res);
            visited.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::backward;
    use crate::emission::EmissionTable;
    use crate::forward::forward;

    fn varied_emit(n: usize, m: usize, seed: usize) -> EmissionTable {
        EmissionTable::from_fn(n, m, |i, j| {
            0.1 + 0.85 * (((i * 37 + j * 23 + seed) % 11) as f64 / 11.0)
        })
    }

    #[test]
    fn oracle_total_matches_forward() {
        let params = PhmmParams::with_gap_rates(0.06, 0.55, 0.04);
        for (n, m, seed) in [
            (1, 1, 0),
            (2, 2, 1),
            (3, 4, 2),
            (4, 3, 3),
            (5, 5, 4),
            (6, 4, 5),
        ] {
            let emit = varied_emit(n, m, seed);
            let oracle = enumerate(emit.view(), &params);
            let f = forward(emit.view(), &params);
            assert!(
                (oracle.total - f.total).abs() <= 1e-13 * oracle.total.max(1e-300),
                "{n}x{m}: oracle {} vs forward {}",
                oracle.total,
                f.total
            );
        }
    }

    #[test]
    fn oracle_marginals_match_forward_backward() {
        let params = PhmmParams::with_gap_rates(0.08, 0.5, 0.05);
        for (n, m, seed) in [(2, 3, 7), (3, 3, 8), (4, 4, 9), (5, 3, 10)] {
            let emit = varied_emit(n, m, seed);
            let oracle = enumerate(emit.view(), &params);
            let f = forward(emit.view(), &params);
            let b = backward(emit.view(), &params);
            for i in 1..=n {
                for j in 1..=m {
                    let fb_match = f.tables.m.get(i, j) * b.tables.m.get(i, j);
                    let fb_ins = f.tables.x.get(i, j) * b.tables.x.get(i, j);
                    let fb_del = f.tables.y.get(i, j) * b.tables.y.get(i, j);
                    let tol = 1e-12 * oracle.total.max(1e-300);
                    assert!(
                        (fb_match - oracle.match_mass[i][j]).abs() <= tol,
                        "match mass mismatch at ({i},{j}) for {n}x{m}"
                    );
                    assert!(
                        (fb_ins - oracle.ins_mass[i][j]).abs() <= tol,
                        "insertion mass mismatch at ({i},{j}) for {n}x{m}"
                    );
                    assert!(
                        (fb_del - oracle.del_mass[i][j]).abs() <= tol,
                        "deletion mass mismatch at ({i},{j}) for {n}x{m}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_cell_has_one_path() {
        let params = PhmmParams::default();
        let emit = EmissionTable::from_rows(&[vec![0.7]]);
        let oracle = enumerate(emit.view(), &params);
        assert!((oracle.total - params.t_mm * 0.7).abs() < 1e-15);
        assert!((oracle.match_mass[1][1] - oracle.total).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn refuses_large_instances() {
        let emit = EmissionTable::from_fn(10, 10, |_, _| 0.5);
        let _ = enumerate(emit.view(), &PhmmParams::default());
    }
}
