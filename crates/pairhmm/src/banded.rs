//! Banded forward/backward recursions.
//!
//! Seed hits pin a read to a diagonal of the genome window, so alignments
//! wandering far off that diagonal carry negligible probability. Restricting
//! the DP to a band `j − i ∈ [Δ − w, Δ + w]` (with `Δ = M − N` absorbing the
//! length difference and `w` the band half-width) turns the `O(N·M)` kernel
//! into `O(N·w)` — the optimisation GNUMAP relies on to keep Pair-HMM
//! mapping tractable at genome scale. Cells outside the band are treated as
//! zero, so the banded total is a lower bound on the full total and
//! converges to it as `w` grows.
//!
//! These are thin wrappers: the banded and full recursions share one
//! implementation in [`crate::kernel`], differing only in the `Band`
//! argument — per-row column ranges from [`kernel::diagonal_bounds`]
//! instead of `[1, m]`.

use crate::backward::BackwardResult;
use crate::emission::Emission;
use crate::forward::{DpTables, ForwardResult};
use crate::kernel;
use crate::params::PhmmParams;

/// Inclusive diagonal bounds for a read of length `n`, window of length
/// `m`, and band half-width `w`: cell `(i, j)` is inside iff
/// `lo <= j - i <= hi`. Re-exported from [`crate::kernel`].
pub use crate::kernel::diagonal_bounds;

/// Banded forward pass; outside-band cells stay zero.
pub fn banded_forward(emit: Emission<'_>, params: &PhmmParams, w: usize) -> ForwardResult {
    let (n, m) = (emit.n(), emit.m());
    let mut t = DpTables::zeros(n, m);
    let band = Some(kernel::diagonal_bounds(n, m, w));
    let total = kernel::forward_planes(
        emit,
        params,
        t.m.as_mut_slice(),
        t.x.as_mut_slice(),
        t.y.as_mut_slice(),
        band,
    );
    ForwardResult { tables: t, total }
}

/// Banded backward pass; outside-band cells stay zero.
pub fn banded_backward(emit: Emission<'_>, params: &PhmmParams, w: usize) -> BackwardResult {
    let (n, m) = (emit.n(), emit.m());
    let mut t = DpTables::zeros(n, m);
    let band = Some(kernel::diagonal_bounds(n, m, w));
    let total = kernel::backward_planes(
        emit,
        params,
        t.m.as_mut_slice(),
        t.x.as_mut_slice(),
        t.y.as_mut_slice(),
        band,
    );
    BackwardResult { tables: t, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::backward;
    use crate::emission::EmissionTable;
    use crate::forward::forward;
    use crate::pwm::Pwm;
    use genome::alphabet::Base;
    use genome::read::SequencedRead;

    fn emit_for(read_s: &str, genome_s: &str, params: &PhmmParams) -> EmissionTable {
        let r = SequencedRead::with_uniform_quality("r", read_s.parse().unwrap(), 30);
        let w: Vec<Option<Base>> = genome_s
            .bytes()
            .map(|c| Base::try_from_ascii(c).unwrap())
            .collect();
        Pwm::from_read(&r).emission_table(&w, params)
    }

    #[test]
    fn wide_band_equals_full_dp() {
        let params = PhmmParams::with_gap_rates(0.05, 0.5, 0.03);
        let emit = emit_for("ACGTACGTAC", "ACGTTCGTACGT", &params);
        let full = forward(emit.view(), &params);
        let banded = banded_forward(emit.view(), &params, 32);
        assert!((full.total - banded.total).abs() <= 1e-14 * full.total);
        let full_b = backward(emit.view(), &params);
        let banded_b = banded_backward(emit.view(), &params, 32);
        assert!((full_b.total - banded_b.total).abs() <= 1e-14 * full_b.total);
    }

    #[test]
    fn banded_is_lower_bound_and_converges() {
        let params = PhmmParams::with_gap_rates(0.05, 0.5, 0.03);
        let emit = emit_for("ACGTACGTACGTACGT", "ACGTACGGACGTACGT", &params);
        let full = forward(emit.view(), &params).total;
        let mut last = 0.0;
        for w in [0usize, 1, 2, 4, 8, 16] {
            let b = banded_forward(emit.view(), &params, w).total;
            assert!(
                b <= full * (1.0 + 1e-12),
                "band {w}: {b} exceeds full {full}"
            );
            assert!(b >= last * (1.0 - 1e-12), "band {w} not monotone");
            last = b;
        }
        assert!((last - full).abs() <= 1e-12 * full);
    }

    #[test]
    fn narrow_band_captures_near_diagonal_mass() {
        // For a clean diagonal alignment even w = 1 captures essentially
        // everything.
        let params = PhmmParams::default();
        let emit = emit_for("ACGTACGTAC", "ACGTACGTAC", &params);
        let full = forward(emit.view(), &params).total;
        let banded = banded_forward(emit.view(), &params, 1).total;
        assert!(banded / full > 0.999, "ratio {}", banded / full);
    }

    #[test]
    fn banded_forward_backward_totals_agree() {
        let params = PhmmParams::with_gap_rates(0.04, 0.6, 0.02);
        let emit = emit_for("ACGGTACTAC", "ACGTACGTACAC", &params);
        for w in [1usize, 2, 4] {
            let f = banded_forward(emit.view(), &params, w).total;
            let b = banded_backward(emit.view(), &params, w).total;
            assert!(
                (f - b).abs() <= 1e-12 * f.max(1e-300),
                "band {w}: fwd {f} vs bwd {b}"
            );
        }
    }

    #[test]
    fn length_difference_is_absorbed_by_delta() {
        // Window much longer than read: the band must still reach (N, M).
        let params = PhmmParams::with_gap_rates(0.05, 0.5, 0.03);
        let emit = emit_for("ACGT", "ACGTACGT", &params);
        let banded = banded_forward(emit.view(), &params, 0);
        assert!(banded.total > 0.0);
    }

    #[test]
    fn full_band_matches_unbanded_bitwise() {
        // A band covering the whole rectangle must be the *same* program:
        // every cell identical to the last bit, not merely close.
        let params = PhmmParams::with_gap_rates(0.05, 0.5, 0.03);
        let emit = emit_for("ACGGTACTAC", "ACGTACGTACAC", &params);
        let full = forward(emit.view(), &params);
        let banded = banded_forward(emit.view(), &params, 64);
        assert_eq!(full.total.to_bits(), banded.total.to_bits());
        for i in 0..=emit.n() {
            for j in 0..=emit.m() {
                assert_eq!(
                    full.tables.m.get(i, j).to_bits(),
                    banded.tables.m.get(i, j).to_bits(),
                    "cell ({i},{j})"
                );
            }
        }
    }
}
