//! Banded forward/backward recursions.
//!
//! Seed hits pin a read to a diagonal of the genome window, so alignments
//! wandering far off that diagonal carry negligible probability. Restricting
//! the DP to a band `j − i ∈ [Δ − w, Δ + w]` (with `Δ = M − N` absorbing the
//! length difference and `w` the band half-width) turns the `O(N·M)` kernel
//! into `O(N·w)` — the optimisation GNUMAP relies on to keep Pair-HMM
//! mapping tractable at genome scale. Cells outside the band are treated as
//! zero, so the banded total is a lower bound on the full total and
//! converges to it as `w` grows.

use crate::backward::BackwardResult;
use crate::forward::{DpTables, ForwardResult};
use crate::params::PhmmParams;

/// Inclusive diagonal bounds for a read of length `n`, window of length
/// `m`, and band half-width `w`: cell `(i, j)` is inside iff
/// `lo <= j - i <= hi`.
fn diagonal_bounds(n: usize, m: usize, w: usize) -> (isize, isize) {
    let delta = m as isize - n as isize;
    (delta.min(0) - w as isize, delta.max(0) + w as isize)
}

#[inline]
fn in_band(i: usize, j: usize, lo: isize, hi: isize) -> bool {
    let d = j as isize - i as isize;
    d >= lo && d <= hi
}

/// Banded forward pass; outside-band cells stay zero.
pub fn banded_forward(emit: &[Vec<f64>], params: &PhmmParams, w: usize) -> ForwardResult {
    let n = emit.len();
    assert!(n >= 1, "read must be non-empty");
    let m = emit[0].len();
    assert!(m >= 1, "window must be non-empty");
    let (lo, hi) = diagonal_bounds(n, m, w);

    let mut t = DpTables::zeros(n, m);
    t.m.set(0, 0, 1.0);

    let &PhmmParams {
        t_mm,
        t_mg,
        t_gm,
        t_gg,
        q,
        ..
    } = params;

    for i in 1..=n {
        // Column range of the band in this row, clamped to [1, m].
        let j_min = ((i as isize + lo).max(1)) as usize;
        let j_max = ((i as isize + hi).min(m as isize)).max(0) as usize;
        for j in j_min..=j_max.max(j_min).min(m) {
            if !in_band(i, j, lo, hi) {
                continue;
            }
            let fm = emit[i - 1][j - 1]
                * (t_mm * t.m.get(i - 1, j - 1)
                    + t_gm * (t.x.get(i - 1, j - 1) + t.y.get(i - 1, j - 1)));
            let fx = q * (t_mg * t.m.get(i - 1, j) + t_gg * t.x.get(i - 1, j));
            let fy = q * (t_mg * t.m.get(i, j - 1) + t_gg * t.y.get(i, j - 1));
            t.m.set(i, j, fm);
            t.x.set(i, j, fx);
            t.y.set(i, j, fy);
        }
    }

    let total = t.m.get(n, m) + t.x.get(n, m) + t.y.get(n, m);
    ForwardResult { tables: t, total }
}

/// Banded backward pass; outside-band cells stay zero.
pub fn banded_backward(emit: &[Vec<f64>], params: &PhmmParams, w: usize) -> BackwardResult {
    let n = emit.len();
    assert!(n >= 1, "read must be non-empty");
    let m = emit[0].len();
    assert!(m >= 1, "window must be non-empty");
    let (lo, hi) = diagonal_bounds(n, m, w);

    let mut t = DpTables::zeros(n, m);
    t.m.set(n, m, 1.0);
    t.x.set(n, m, 1.0);
    t.y.set(n, m, 1.0);

    let &PhmmParams {
        t_mm,
        t_mg,
        t_gm,
        t_gg,
        q,
        ..
    } = params;

    let emit_at = |i: usize, j: usize| -> f64 {
        if i < n && j < m {
            emit[i][j]
        } else {
            0.0
        }
    };
    let get = |mat: &crate::matrix::Matrix, i: usize, j: usize| -> f64 {
        if i <= n && j <= m {
            mat.get(i, j)
        } else {
            0.0
        }
    };

    for i in (1..=n).rev() {
        for j in (1..=m).rev() {
            if (i == n && j == m) || !in_band(i, j, lo, hi) {
                continue;
            }
            let diag = emit_at(i, j);
            let bm_diag = get(&t.m, i + 1, j + 1);
            let bm = diag * t_mm * bm_diag + q * t_mg * (get(&t.x, i + 1, j) + get(&t.y, i, j + 1));
            let bx = diag * t_gm * bm_diag + q * t_gg * get(&t.x, i + 1, j);
            let by = diag * t_gm * bm_diag + q * t_gg * get(&t.y, i, j + 1);
            t.m.set(i, j, bm);
            t.x.set(i, j, bx);
            t.y.set(i, j, by);
        }
    }

    let total = emit[0][0] * params.t_mm * t.m.get(1, 1);
    BackwardResult { tables: t, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::backward;
    use crate::forward::forward;
    use crate::pwm::Pwm;
    use genome::alphabet::Base;
    use genome::read::SequencedRead;

    fn emit_for(read_s: &str, genome_s: &str, params: &PhmmParams) -> Vec<Vec<f64>> {
        let r = SequencedRead::with_uniform_quality("r", read_s.parse().unwrap(), 30);
        let w: Vec<Option<Base>> = genome_s
            .bytes()
            .map(|c| Base::try_from_ascii(c).unwrap())
            .collect();
        Pwm::from_read(&r).emission_table(&w, params)
    }

    #[test]
    fn wide_band_equals_full_dp() {
        let params = PhmmParams::with_gap_rates(0.05, 0.5, 0.03);
        let emit = emit_for("ACGTACGTAC", "ACGTTCGTACGT", &params);
        let full = forward(&emit, &params);
        let banded = banded_forward(&emit, &params, 32);
        assert!((full.total - banded.total).abs() <= 1e-14 * full.total);
        let full_b = backward(&emit, &params);
        let banded_b = banded_backward(&emit, &params, 32);
        assert!((full_b.total - banded_b.total).abs() <= 1e-14 * full_b.total);
    }

    #[test]
    fn banded_is_lower_bound_and_converges() {
        let params = PhmmParams::with_gap_rates(0.05, 0.5, 0.03);
        let emit = emit_for("ACGTACGTACGTACGT", "ACGTACGGACGTACGT", &params);
        let full = forward(&emit, &params).total;
        let mut last = 0.0;
        for w in [0usize, 1, 2, 4, 8, 16] {
            let b = banded_forward(&emit, &params, w).total;
            assert!(
                b <= full * (1.0 + 1e-12),
                "band {w}: {b} exceeds full {full}"
            );
            assert!(b >= last * (1.0 - 1e-12), "band {w} not monotone");
            last = b;
        }
        assert!((last - full).abs() <= 1e-12 * full);
    }

    #[test]
    fn narrow_band_captures_near_diagonal_mass() {
        // For a clean diagonal alignment even w = 1 captures essentially
        // everything.
        let params = PhmmParams::default();
        let emit = emit_for("ACGTACGTAC", "ACGTACGTAC", &params);
        let full = forward(&emit, &params).total;
        let banded = banded_forward(&emit, &params, 1).total;
        assert!(banded / full > 0.999, "ratio {}", banded / full);
    }

    #[test]
    fn banded_forward_backward_totals_agree() {
        let params = PhmmParams::with_gap_rates(0.04, 0.6, 0.02);
        let emit = emit_for("ACGGTACTAC", "ACGTACGTACAC", &params);
        for w in [1usize, 2, 4] {
            let f = banded_forward(&emit, &params, w).total;
            let b = banded_backward(&emit, &params, w).total;
            assert!(
                (f - b).abs() <= 1e-12 * f.max(1e-300),
                "band {w}: fwd {f} vs bwd {b}"
            );
        }
    }

    #[test]
    fn length_difference_is_absorbed_by_delta() {
        // Window much longer than read: the band must still reach (N, M).
        let params = PhmmParams::with_gap_rates(0.05, 0.5, 0.03);
        let emit = emit_for("ACGT", "ACGTACGT", &params);
        let banded = banded_forward(&emit, &params, 0);
        assert!(banded.total > 0.0);
    }
}
