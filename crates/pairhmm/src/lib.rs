//! Quality-extended Pair Hidden Markov Model — the paper's core contribution.
//!
//! A three-state (M, G_X, G_Y) Pair-HMM aligns a sequencing read `x` to a
//! candidate genome window `y`. Unlike a Needleman–Wunsch aligner that
//! commits to one best path, the forward–backward algorithm marginalises
//! over *all* alignments, producing for every `(i, j)` the posterior
//! probability that read base `x_i` aligns to genome base `y_j` (or to a
//! gap). Those posteriors, weighted by the read's quality-derived
//! position-weight matrix, become the per-genome-position base-probability
//! vectors `z` that drive SNP calling.
//!
//! Module map:
//!
//! * [`params`]   — transition/emission parameterisation (`T_MM`, `T_MG`,
//!   `T_GM`, `T_GG`, match emission matrix `p_ab`, gap emission `q`).
//! * [`pwm`]      — position-weight matrix built from read qualities
//!   (`r_ik` in the paper), and the blended emission `p*(i, j)`.
//! * [`emission`] — flat row-major emission storage ([`EmissionTable`] /
//!   borrowed [`Emission`] view) consumed by every kernel.
//! * [`kernel`]   — the flat-plane, vectorization-structured forward and
//!   backward recursions (full-table and banded via one `Band` parameter).
//! * [`scratch`]  — [`PhmmScratch`], the per-thread reusable arena with
//!   the fused backward+marginal streaming pass (zero steady-state
//!   allocations).
//! * [`matrix`]   — dense `f64` DP matrices.
//! * [`mod@forward`] / [`mod@backward`] — the dynamic programs of Section VI Step 2.
//! * [`marginal`] — posterior cell probabilities and per-column `z` vectors.
//! * [`mod@viterbi`]  — single best alignment (for comparison and examples).
//! * [`banded`]   — banded variants of the forward/backward recursions.
//! * [`logspace`] — log-sum-exp forward, a third independent numeric
//!   backend used for cross-validation.
//! * [`scaling`]  — row-rescaled forward/backward for very long reads.
//! * [`bruteforce`] — exhaustive alignment enumeration (test oracle).
//!
//! ### Fidelity notes
//!
//! The paper's printed forward recursion for the match state reads
//! `T_MG·f_GX(i−1, j) + T_MG·f_GY(i, j−1)`; entering M at `(i, j)` must
//! consume both `x_i` and `y_j` from predecessors at `(i−1, j−1)` and pay a
//! gap-to-match transition, so we implement the (cited) Durbin et al. form
//! `T_GM·[f_GX(i−1, j−1) + f_GY(i−1, j−1)]`, which is also the unique form
//! consistent with the paper's own backward recursion. Likewise, the `z`
//! normalisation falls out exactly: for a fixed genome column `j`, every
//! alignment consumes `y_j` in exactly one M or G_Y state, so the match and
//! deletion marginals of a column already sum to one.

pub mod backward;
pub mod banded;
pub mod bruteforce;
pub mod emission;
pub mod forward;
pub mod kernel;
pub mod logspace;
pub mod marginal;
pub mod matrix;
pub mod params;
pub mod pwm;
pub mod scaling;
pub mod scratch;
pub mod viterbi;

pub use backward::backward;
pub use emission::{Emission, EmissionTable};
pub use forward::forward;
pub use marginal::{ColumnPosterior, PosteriorAlignment};
pub use matrix::Matrix;
pub use params::PhmmParams;
pub use pwm::Pwm;
pub use scratch::PhmmScratch;
pub use viterbi::{viterbi, AlignOp, Alignment};
