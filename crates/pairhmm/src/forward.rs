//! The forward dynamic program (paper Section VI Step 2, "Forward
//! Algorithm").
//!
//! `f_M(i, j)` is the total probability of all alignment prefixes that end
//! with read base `i` matched to genome base `j`; `f_GX` / `f_GY` likewise
//! for prefixes ending in a gap state. Indices are 1-based in the maths and
//! in the `(N+1) × (M+1)` tables; row/column 0 is the empty-prefix border.
//!
//! Initialisation follows the paper exactly: `f_M(0,0) = 1`, everything
//! else on the borders zero — alignments are global over the candidate
//! window and must begin by matching `x_1 : y_1`. The match recursion uses
//! the Durbin et al. form (see the crate-level fidelity note):
//!
//! ```text
//! f_M(i,j)  = p*(i,j)·[T_MM·f_M(i−1,j−1) + T_GM·(f_GX(i−1,j−1) + f_GY(i−1,j−1))]
//! f_GX(i,j) = q·[T_MG·f_M(i−1,j) + T_GG·f_GX(i−1,j)]
//! f_GY(i,j) = q·[T_MG·f_M(i,j−1) + T_GG·f_GY(i,j−1)]
//! ```
//!
//! The cell arithmetic lives in [`crate::kernel::forward_planes`], which
//! fills flat row-major planes with a vectorizable two-sweep row schedule;
//! this module wraps it in the materialised-[`DpTables`] API used by
//! marginals, tests, and the conformance oracles.

use crate::emission::Emission;
use crate::kernel;
use crate::matrix::Matrix;
use crate::params::PhmmParams;

/// The three forward (or backward) DP tables.
#[derive(Debug, Clone)]
pub struct DpTables {
    /// Match state `M`.
    pub m: Matrix,
    /// Read-base-vs-genome-gap state `G_X`.
    pub x: Matrix,
    /// Genome-base-vs-read-gap state `G_Y`.
    pub y: Matrix,
}

impl DpTables {
    /// Zero tables of shape `(n + 1) × (m + 1)`.
    pub fn zeros(n: usize, m: usize) -> DpTables {
        DpTables {
            m: Matrix::zeros(n + 1, m + 1),
            x: Matrix::zeros(n + 1, m + 1),
            y: Matrix::zeros(n + 1, m + 1),
        }
    }
}

/// Result of the forward pass.
#[derive(Debug, Clone)]
pub struct ForwardResult {
    /// The filled tables.
    pub tables: DpTables,
    /// Total likelihood of the read–window pair: the sum of the three
    /// states at the terminal cell `(N, M)`.
    pub total: f64,
}

/// Run the forward algorithm over a precomputed flat emission view
/// `emit.at(i-1, j-1) = p*(i, j)` (shape `N × M`, both ≥ 1).
pub fn forward(emit: Emission<'_>, params: &PhmmParams) -> ForwardResult {
    let (n, m) = (emit.n(), emit.m());
    let mut t = DpTables::zeros(n, m);
    let total = kernel::forward_planes(
        emit,
        params,
        t.m.as_mut_slice(),
        t.x.as_mut_slice(),
        t.y.as_mut_slice(),
        None,
    );
    ForwardResult { tables: t, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emission::EmissionTable;

    fn uniform_emit(n: usize, m: usize, p: f64) -> EmissionTable {
        EmissionTable::from_fn(n, m, |_, _| p)
    }

    #[test]
    fn single_cell_alignment() {
        // One read base against one genome base: the only path is
        // start → M(1,1), probability p*·T_MM.
        let params = PhmmParams::default();
        let emit = uniform_emit(1, 1, 0.9);
        let f = forward(emit.view(), &params);
        assert!((f.total - 0.9 * params.t_mm).abs() < 1e-15);
    }

    #[test]
    fn two_by_one_requires_a_gap() {
        // Two read bases, one genome base: M(1,1) then G_X(2,1).
        let params = PhmmParams::default();
        let emit = uniform_emit(2, 1, 0.8);
        let f = forward(emit.view(), &params);
        let expected = 0.8 * params.t_mm * params.q * params.t_mg;
        assert!((f.total - expected).abs() < 1e-15);
        assert_eq!(f.tables.m.get(2, 1), 0.0); // no way to end in M here
    }

    #[test]
    fn diagonal_chain_probability() {
        // Equal lengths, all-match path dominates; exact value for the
        // pure-diagonal path is p^n · T_MM^n, and with gaps disallowed by
        // zero emission elsewhere... here just check the diagonal term is
        // included (total >= that path's mass).
        let params = PhmmParams::default();
        let n = 5;
        let emit = uniform_emit(n, n, 0.95);
        let f = forward(emit.view(), &params);
        let diag = 0.95f64.powi(n as i32) * params.t_mm.powi(n as i32);
        assert!(f.total >= diag);
        // And the total can't exceed 1 for a proper model.
        assert!(f.total <= 1.0);
    }

    #[test]
    fn higher_emission_higher_likelihood() {
        let params = PhmmParams::default();
        let lo = forward(uniform_emit(4, 4, 0.5).view(), &params).total;
        let hi = forward(uniform_emit(4, 4, 0.9).view(), &params).total;
        assert!(hi > lo);
    }

    #[test]
    fn zero_emission_kills_everything() {
        let params = PhmmParams::default();
        let f = forward(uniform_emit(3, 3, 0.0).view(), &params);
        assert_eq!(f.total, 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_read_rejected() {
        let empty = EmissionTable::zeros(0, 3);
        let _ = forward(empty.view(), &PhmmParams::default());
    }
}
