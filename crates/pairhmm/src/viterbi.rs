//! Viterbi decoding: the single most probable alignment.
//!
//! The paper's whole point is that marginalising over all alignments beats
//! committing to one; Viterbi is kept as the comparison decoder (it is what
//! single-alignment mappers like MAQ effectively use) and for rendering
//! human-readable alignments in the examples.

use crate::emission::Emission;
use crate::matrix::Matrix;
use crate::params::PhmmParams;

/// One step of an alignment path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// Read base `i` aligned to genome base `j`.
    Match,
    /// Read base consumed against a genome gap (insertion in the read).
    InsRead,
    /// Genome base consumed against a read gap (deletion from the read).
    DelGenome,
}

/// A decoded best alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Alignment {
    /// Operations from the start of the pair to the end.
    pub ops: Vec<AlignOp>,
    /// Joint probability of the single best path.
    pub probability: f64,
}

impl Alignment {
    /// Number of match operations.
    pub fn matches(&self) -> usize {
        self.ops.iter().filter(|&&o| o == AlignOp::Match).count()
    }

    /// Number of gap operations (either direction).
    pub fn gaps(&self) -> usize {
        self.ops.len() - self.matches()
    }
}

const S_M: u8 = 0;
const S_X: u8 = 1;
const S_Y: u8 = 2;

/// Viterbi decode over an emission view `emit.at(i-1, j-1) = p*(i, j)`.
///
/// Same model and boundary conditions as [`crate::forward::forward`]: the
/// path starts in `M` at `(1, 1)` and ends anywhere at `(N, M)`.
pub fn viterbi(emit: Emission<'_>, params: &PhmmParams) -> Alignment {
    let n = emit.n();
    assert!(n >= 1, "read must be non-empty");
    let m = emit.m();
    assert!(m >= 1, "window must be non-empty");

    let &PhmmParams {
        t_mm,
        t_mg,
        t_gm,
        t_gg,
        q,
        ..
    } = params;

    let mut vm = Matrix::zeros(n + 1, m + 1);
    let mut vx = Matrix::zeros(n + 1, m + 1);
    let mut vy = Matrix::zeros(n + 1, m + 1);
    // Backpointers: which state the maximum came from.
    let mut pm = vec![0u8; (n + 1) * (m + 1)];
    let mut px = vec![0u8; (n + 1) * (m + 1)];
    let mut py = vec![0u8; (n + 1) * (m + 1)];
    let at = |i: usize, j: usize| i * (m + 1) + j;

    vm.set(0, 0, 1.0);

    for i in 1..=n {
        for j in 1..=m {
            // Match: best predecessor at (i-1, j-1).
            let cand_m = [
                t_mm * vm.get(i - 1, j - 1),
                t_gm * vx.get(i - 1, j - 1),
                t_gm * vy.get(i - 1, j - 1),
            ];
            let (best_state, best) = argmax3(cand_m);
            vm.set(i, j, emit.at(i - 1, j - 1) * best);
            pm[at(i, j)] = best_state;

            // Insertion: from (i-1, j), M or X.
            let (sx, bx) = if t_mg * vm.get(i - 1, j) >= t_gg * vx.get(i - 1, j) {
                (S_M, t_mg * vm.get(i - 1, j))
            } else {
                (S_X, t_gg * vx.get(i - 1, j))
            };
            vx.set(i, j, q * bx);
            px[at(i, j)] = sx;

            // Deletion: from (i, j-1), M or Y.
            let (sy, by) = if t_mg * vm.get(i, j - 1) >= t_gg * vy.get(i, j - 1) {
                (S_M, t_mg * vm.get(i, j - 1))
            } else {
                (S_Y, t_gg * vy.get(i, j - 1))
            };
            vy.set(i, j, q * by);
            py[at(i, j)] = sy;
        }
    }

    // Terminal: best of the three states at (N, M).
    let (mut state, probability) = argmax3([vm.get(n, m), vx.get(n, m), vy.get(n, m)]);

    // Traceback.
    let mut ops = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        match state {
            S_M => {
                ops.push(AlignOp::Match);
                state = pm[at(i, j)];
                i -= 1;
                j -= 1;
            }
            S_X => {
                ops.push(AlignOp::InsRead);
                state = px[at(i, j)];
                i -= 1;
            }
            _ => {
                ops.push(AlignOp::DelGenome);
                state = py[at(i, j)];
                j -= 1;
            }
        }
        if i == 0 && j == 0 {
            break;
        }
    }
    ops.reverse();
    Alignment { ops, probability }
}

/// Index and value of the largest of three (ties favour the lower index,
/// i.e. the match state).
#[inline]
fn argmax3(v: [f64; 3]) -> (u8, f64) {
    let mut best = 0u8;
    for k in 1..3u8 {
        if v[k as usize] > v[best as usize] {
            best = k;
        }
    }
    (best, v[best as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emission::EmissionTable;
    use crate::forward::forward;
    use crate::pwm::Pwm;
    use genome::alphabet::Base;
    use genome::read::SequencedRead;

    fn emit_for(read_s: &str, genome_s: &str, q: u8, params: &PhmmParams) -> EmissionTable {
        let r = SequencedRead::with_uniform_quality("r", read_s.parse().unwrap(), q);
        let w: Vec<Option<Base>> = genome_s
            .bytes()
            .map(|c| Base::try_from_ascii(c).unwrap())
            .collect();
        Pwm::from_read(&r).emission_table(&w, params)
    }

    #[test]
    fn equal_sequences_align_diagonally() {
        let params = PhmmParams::default();
        let emit = emit_for("ACGTACGT", "ACGTACGT", 40, &params);
        let a = viterbi(emit.view(), &params);
        assert_eq!(a.ops, vec![AlignOp::Match; 8]);
        assert_eq!(a.matches(), 8);
        assert_eq!(a.gaps(), 0);
    }

    #[test]
    fn deletion_is_decoded() {
        let params = PhmmParams::with_gap_rates(0.05, 0.5, 0.02);
        let emit = emit_for("ACGTA", "ACGGTA", 40, &params);
        let a = viterbi(emit.view(), &params);
        assert_eq!(a.matches(), 5);
        assert_eq!(
            a.ops.iter().filter(|&&o| o == AlignOp::DelGenome).count(),
            1
        );
    }

    #[test]
    fn insertion_is_decoded() {
        let params = PhmmParams::with_gap_rates(0.05, 0.5, 0.02);
        let emit = emit_for("ACGGTA", "ACGTA", 40, &params);
        let a = viterbi(emit.view(), &params);
        assert_eq!(a.matches(), 5);
        assert_eq!(a.ops.iter().filter(|&&o| o == AlignOp::InsRead).count(), 1);
    }

    #[test]
    fn ops_consume_both_sequences_exactly() {
        let params = PhmmParams::with_gap_rates(0.05, 0.5, 0.02);
        for (r, g) in [("ACGT", "ACGT"), ("ACGTT", "ACG"), ("AC", "ACGTT")] {
            let emit = emit_for(r, g, 30, &params);
            let a = viterbi(emit.view(), &params);
            let consumed_read: usize = a.ops.iter().filter(|&&o| o != AlignOp::DelGenome).count();
            let consumed_genome: usize = a.ops.iter().filter(|&&o| o != AlignOp::InsRead).count();
            assert_eq!(consumed_read, r.len());
            assert_eq!(consumed_genome, g.len());
        }
    }

    #[test]
    fn viterbi_never_exceeds_forward_total() {
        // The best single path is a subset of the total probability mass.
        let params = PhmmParams::default();
        for (r, g) in [("ACGT", "ACCT"), ("AAAA", "TTTT"), ("ACGTACG", "ACGTTCG")] {
            let emit = emit_for(r, g, 25, &params);
            let v = viterbi(emit.view(), &params);
            let f = forward(emit.view(), &params);
            assert!(
                v.probability <= f.total * (1.0 + 1e-12),
                "viterbi {} > total {}",
                v.probability,
                f.total
            );
            assert!(v.probability > 0.0);
        }
    }
}
