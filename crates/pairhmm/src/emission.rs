//! Flat row-major emission storage.
//!
//! The blended emission `p*(i, j)` used to be materialised as a
//! `Vec<Vec<f64>>` — one heap allocation per read row, pointer-chasing in
//! every DP inner loop. The kernels now consume an [`Emission`] view: a
//! single contiguous `&[f64]` plus the row stride, cheap to copy and
//! trivially prefetchable. [`EmissionTable`] is the owning variant; scratch
//! arenas ([`crate::scratch::PhmmScratch`]) reuse one flat buffer across a
//! whole read batch and borrow views from it.

/// Owning flat `N × M` emission table (`data[i·m + j] = p*(i+1, j+1)`).
#[derive(Debug, Clone, PartialEq)]
pub struct EmissionTable {
    n: usize,
    m: usize,
    data: Vec<f64>,
}

impl EmissionTable {
    /// Zero-filled `n × m` table.
    pub fn zeros(n: usize, m: usize) -> EmissionTable {
        EmissionTable {
            n,
            m,
            data: vec![0.0; n * m],
        }
    }

    /// Build from nested rows (test/oracle convenience). Panics when rows
    /// are ragged or empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> EmissionTable {
        assert!(!rows.is_empty(), "read must be non-empty");
        let m = rows[0].len();
        assert!(m >= 1, "window must be non-empty");
        assert!(
            rows.iter().all(|r| r.len() == m),
            "emission rows must have equal length"
        );
        let mut data = Vec::with_capacity(rows.len() * m);
        for r in rows {
            data.extend_from_slice(r);
        }
        EmissionTable {
            n: rows.len(),
            m,
            data,
        }
    }

    /// Wrap an already-flat row-major buffer (`data.len()` must be
    /// `n · m`).
    pub fn from_flat(data: Vec<f64>, n: usize, m: usize) -> EmissionTable {
        assert_eq!(data.len(), n * m, "emission buffer/shape mismatch");
        EmissionTable { n, m, data }
    }

    /// Build by filling each cell from `f(i, j)` (0-based).
    pub fn from_fn(n: usize, m: usize, mut f: impl FnMut(usize, usize) -> f64) -> EmissionTable {
        let mut t = EmissionTable::zeros(n, m);
        for i in 0..n {
            for j in 0..m {
                t.data[i * m + j] = f(i, j);
            }
        }
        t
    }

    /// Read length `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Window length `M`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Element access, 0-based.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.m + j]
    }

    /// Mutable element access, 0-based.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        &mut self.data[i * self.m + j]
    }

    /// Borrow as a flat view for the kernels.
    #[inline]
    pub fn view(&self) -> Emission<'_> {
        Emission {
            n: self.n,
            m: self.m,
            data: &self.data,
        }
    }
}

/// Borrowed flat emission view: `&[f64]` of length `n·m` with row stride
/// `m`. All DP kernels take this — copyable, no per-row indirection.
#[derive(Debug, Clone, Copy)]
pub struct Emission<'a> {
    n: usize,
    m: usize,
    data: &'a [f64],
}

impl<'a> Emission<'a> {
    /// Wrap a flat slice; `data.len()` must equal `n · m`.
    #[inline]
    pub fn new(data: &'a [f64], n: usize, m: usize) -> Emission<'a> {
        assert_eq!(data.len(), n * m, "emission slice/shape mismatch");
        Emission { n, m, data }
    }

    /// Read length `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Window length `M`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The full flat slice.
    #[inline]
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }

    /// Row `i` (0-based read position), length `m`.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f64] {
        &self.data[i * self.m..(i + 1) * self.m]
    }

    /// Element access, 0-based: `at(i, j) = p*(i+1, j+1)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.m + j]
    }

    /// `p*(i, j)` in 1-based paper indexing with the out-of-range
    /// convention `p* = 0` (used by the backward recursions, which read
    /// one diagonal past the terminal cell).
    #[inline]
    pub fn paper_at(&self, i: usize, j: usize) -> f64 {
        if i >= 1 && i <= self.n && j >= 1 && j <= self.m {
            self.data[(i - 1) * self.m + (j - 1)]
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trip() {
        let t = EmissionTable::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(t.n(), 2);
        assert_eq!(t.m(), 3);
        assert_eq!(t.at(1, 2), 6.0);
        let v = t.view();
        assert_eq!(v.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(v.at(1, 0), 4.0);
        assert_eq!(v.paper_at(2, 3), 6.0);
        assert_eq!(v.paper_at(3, 1), 0.0);
        assert_eq!(v.paper_at(1, 4), 0.0);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_rejected() {
        let _ = EmissionTable::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    #[should_panic]
    fn empty_rejected() {
        let _ = EmissionTable::from_rows(&[]);
    }

    #[test]
    fn from_fn_fills() {
        let t = EmissionTable::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(t.at(0, 1), 1.0);
        assert_eq!(t.at(1, 0), 10.0);
    }
}
