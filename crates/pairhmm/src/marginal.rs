//! Posterior (marginal) alignment probabilities and per-column `z` vectors.
//!
//! Combining the forward and backward tables gives, for every cell,
//!
//! ```text
//! P(x_i ◇ y_j | x, y)  = f_M(i,j) · b_M(i,j) / total        (match)
//! P(x_i ◇ G_j | x, y)  = f_GX(i,j) · b_GX(i,j) / total      (insertion)
//! P(y_j ◇ G_i | x, y)  = f_GY(i,j) · b_GY(i,j) / total      (deletion)
//! ```
//!
//! (paper Equations 3–4). For SNP calling we then need, per genome column
//! `j`, the probability that the read contributes an A, C, G, T or gap to
//! that position — the vector `z_k` of Section VI Step 2. Every alignment
//! consumes `y_j` in exactly one match or deletion state, so
//!
//! ```text
//! z_k(j)   = Σ_i P(x_i ◇ y_j) · r_ik      for k ∈ {A, C, G, T}
//! z_gap(j) = Σ_i P(y_j ◇ G_i)
//! ```
//!
//! already sums to exactly one per column — each mapped read distributes
//! one unit of evidence to every genome position it covers, apportioned by
//! its quality-weighted base identities (`r_ik` is the read's PWM row; for
//! a certain read this reduces to the paper's indicator sum over
//! `{i : x_i = k}`).

use crate::backward::{backward, BackwardResult};
use crate::emission::Emission;
use crate::forward::{forward, ForwardResult};
use crate::params::PhmmParams;
use crate::pwm::Pwm;

/// Number of per-column symbols: A, C, G, T, gap.
pub const NUM_SYMBOLS: usize = 5;

/// The evidence vector a single read contributes to one genome column.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ColumnPosterior {
    /// `[z_A, z_C, z_G, z_T, z_gap]`; sums to 1 for covered columns of an
    /// alignable pair, and to 0 when the pair has zero total likelihood.
    pub probs: [f64; NUM_SYMBOLS],
}

impl ColumnPosterior {
    /// Total mass in this column (1 or 0, up to floating-point error).
    pub fn mass(&self) -> f64 {
        self.probs.iter().sum()
    }
}

/// A computed posterior alignment of one read (PWM) against one window.
#[derive(Debug, Clone)]
pub struct PosteriorAlignment {
    fwd: ForwardResult,
    bwd: BackwardResult,
    n: usize,
    m: usize,
}

impl PosteriorAlignment {
    /// Run forward and backward over a precomputed emission view.
    pub fn from_emissions(emit: Emission<'_>, params: &PhmmParams) -> PosteriorAlignment {
        let (n, m) = (emit.n(), emit.m());
        let fwd = forward(emit, params);
        let bwd = backward(emit, params);
        PosteriorAlignment { fwd, bwd, n, m }
    }

    /// Banded variant: forward and backward restricted to a diagonal band
    /// of half-width `w` (see [`crate::banded`]). Posteriors outside the
    /// band are zero; within it they are exact for the banded model.
    pub fn from_emissions_banded(
        emit: Emission<'_>,
        params: &PhmmParams,
        w: usize,
    ) -> PosteriorAlignment {
        let (n, m) = (emit.n(), emit.m());
        let fwd = crate::banded::banded_forward(emit, params, w);
        let bwd = crate::banded::banded_backward(emit, params, w);
        PosteriorAlignment { fwd, bwd, n, m }
    }

    /// Convenience: build the emission table from a PWM and window, then
    /// compute.
    pub fn compute(
        pwm: &Pwm,
        window: &[Option<genome::alphabet::Base>],
        params: &PhmmParams,
    ) -> PosteriorAlignment {
        let emit = pwm.emission_table(window, params);
        PosteriorAlignment::from_emissions(emit.view(), params)
    }

    /// Read length `N`.
    pub fn read_len(&self) -> usize {
        self.n
    }

    /// Window length `M`.
    pub fn window_len(&self) -> usize {
        self.m
    }

    /// Total likelihood `P(x, y)` of the pair under the model — the
    /// mapping score used to weigh this window against the read's other
    /// candidate locations.
    pub fn total(&self) -> f64 {
        self.fwd.total
    }

    /// Posterior probability that read base `i` aligns to genome base `j`
    /// (1-based, as in the paper).
    pub fn match_posterior(&self, i: usize, j: usize) -> f64 {
        if self.fwd.total == 0.0 {
            return 0.0;
        }
        self.fwd.tables.m.get(i, j) * self.bwd.tables.m.get(i, j) / self.fwd.total
    }

    /// Posterior probability that read base `i` is inserted (aligned to a
    /// gap) between genome positions `j` and `j+1`.
    pub fn insertion_posterior(&self, i: usize, j: usize) -> f64 {
        if self.fwd.total == 0.0 {
            return 0.0;
        }
        self.fwd.tables.x.get(i, j) * self.bwd.tables.x.get(i, j) / self.fwd.total
    }

    /// Posterior probability that genome base `j` is deleted (aligned to a
    /// gap) after read position `i`.
    pub fn deletion_posterior(&self, i: usize, j: usize) -> f64 {
        if self.fwd.total == 0.0 {
            return 0.0;
        }
        self.fwd.tables.y.get(i, j) * self.bwd.tables.y.get(i, j) / self.fwd.total
    }

    /// The per-column evidence vectors `z` for all `M` genome columns
    /// (0-based output indexing: entry `j` is genome column `j+1` in paper
    /// notation).
    pub fn column_posteriors(&self, pwm: &Pwm) -> Vec<ColumnPosterior> {
        assert_eq!(pwm.len(), self.n, "PWM must match the aligned read");
        let mut cols = vec![ColumnPosterior::default(); self.m];
        if self.fwd.total == 0.0 {
            return cols;
        }
        // Rows are folded in descending i — the canonical summation order,
        // shared bit-for-bit with the fused streaming pass in
        // [`crate::scratch`], which generates backward rows bottom-up.
        for i in (1..=self.n).rev() {
            let r = pwm.row(i - 1);
            for (j, col) in cols.iter_mut().enumerate() {
                let pm = self.match_posterior(i, j + 1);
                if pm > 0.0 {
                    for (p, rk) in col.probs.iter_mut().zip(r) {
                        *p += pm * rk;
                    }
                }
                let pd = self.deletion_posterior(i, j + 1);
                col.probs[4] += pd;
            }
        }
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::alphabet::Base;
    use genome::read::SequencedRead;

    fn window(s: &str) -> Vec<Option<Base>> {
        s.bytes()
            .map(|c| Base::try_from_ascii(c).unwrap())
            .collect()
    }

    fn read(seq: &str, q: u8) -> SequencedRead {
        SequencedRead::with_uniform_quality("r", seq.parse().unwrap(), q)
    }

    #[test]
    fn perfect_match_concentrates_on_diagonal() {
        let params = PhmmParams::default();
        let r = read("ACGT", 40);
        let pwm = Pwm::from_read(&r);
        let post = PosteriorAlignment::compute(&pwm, &window("ACGT"), &params);
        for i in 1..=4 {
            assert!(
                post.match_posterior(i, i) > 0.99,
                "diagonal cell ({i},{i}) should dominate: {}",
                post.match_posterior(i, i)
            );
        }
        assert!(post.match_posterior(1, 2) < 0.01);
    }

    #[test]
    fn columns_sum_to_one() {
        let params = PhmmParams::default();
        let r = read("ACGTACGT", 25);
        let pwm = Pwm::from_read(&r);
        let post = PosteriorAlignment::compute(&pwm, &window("ACGAACGT"), &params);
        for (j, col) in post.column_posteriors(&pwm).iter().enumerate() {
            assert!(
                (col.mass() - 1.0).abs() < 1e-10,
                "column {j} mass {}",
                col.mass()
            );
            assert!(col.probs.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        }
    }

    #[test]
    fn snp_column_reports_the_read_base() {
        // Genome has A where the (high-quality) read says G: the z vector
        // at that column should put nearly all its mass on G.
        let params = PhmmParams::default();
        let r = read("ACGTGTACA", 40);
        let pwm = Pwm::from_read(&r);
        //                 SNP here v (genome A, read G at read pos 5)
        let post = PosteriorAlignment::compute(&pwm, &window("ACGTATACA"), &params);
        let cols = post.column_posteriors(&pwm);
        let snp_col = &cols[4];
        assert!(
            snp_col.probs[Base::G.index()] > 0.95,
            "SNP column probs: {:?}",
            snp_col.probs
        );
        // Neighbouring columns still report the reference base.
        assert!(cols[3].probs[Base::T.index()] > 0.95);
        assert!(cols[5].probs[Base::T.index()] > 0.95);
    }

    #[test]
    fn deletion_shows_up_as_gap_mass() {
        // Read is missing one genome base: ACGTA vs ACGGTA (genome has an
        // extra G). Some column should carry noticeable gap mass.
        let params = PhmmParams::with_gap_rates(0.05, 0.5, 0.02);
        let r = read("ACGTA", 40);
        let pwm = Pwm::from_read(&r);
        let post = PosteriorAlignment::compute(&pwm, &window("ACGGTA"), &params);
        let cols = post.column_posteriors(&pwm);
        let total_gap: f64 = cols.iter().map(|c| c.probs[4]).sum();
        assert!(
            total_gap > 0.5,
            "expected ~1 column of gap mass, got {total_gap}"
        );
        // Every column still sums to 1.
        for col in &cols {
            assert!((col.mass() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn insertion_posterior_row_budget() {
        // Row budget: each read base is matched or inserted, summing to 1.
        let params = PhmmParams::with_gap_rates(0.05, 0.5, 0.02);
        let r = read("ACGGTA", 30);
        let pwm = Pwm::from_read(&r);
        let post = PosteriorAlignment::compute(&pwm, &window("ACGTA"), &params);
        for i in 1..=6usize {
            let mut acc = 0.0;
            for j in 1..=5usize {
                acc += post.match_posterior(i, j) + post.insertion_posterior(i, j);
            }
            assert!((acc - 1.0).abs() < 1e-10, "row {i} budget {acc}");
        }
    }

    #[test]
    fn unalignable_pair_contributes_nothing() {
        // Zero-probability pair via impossible emissions.
        let params = PhmmParams::default();
        let emit = crate::emission::EmissionTable::zeros(3, 3);
        let post = PosteriorAlignment::from_emissions(emit.view(), &params);
        assert_eq!(post.total(), 0.0);
        let pwm = Pwm::certain(&[Base::A, Base::A, Base::A]);
        let cols = post.column_posteriors(&pwm);
        assert!(cols.iter().all(|c| c.mass() == 0.0));
        assert_eq!(post.match_posterior(1, 1), 0.0);
    }

    #[test]
    fn low_quality_read_spreads_column_mass() {
        let params = PhmmParams::default();
        let hi = read("ACGTA", 40);
        let lo = read("ACGTA", 5);
        let pwm_hi = Pwm::from_read(&hi);
        let pwm_lo = Pwm::from_read(&lo);
        let w = window("ACGTA");
        let cols_hi = PosteriorAlignment::compute(&pwm_hi, &w, &params).column_posteriors(&pwm_hi);
        let cols_lo = PosteriorAlignment::compute(&pwm_lo, &w, &params).column_posteriors(&pwm_lo);
        // Middle column: the high-quality read is more certain about G.
        assert!(cols_hi[2].probs[Base::G.index()] > cols_lo[2].probs[Base::G.index()]);
    }
}
