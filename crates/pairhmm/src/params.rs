//! Pair-HMM parameterisation.
//!
//! The model of paper Figure 2: states `M` (match), `G_X` (read base
//! against genome gap) and `G_Y` (genome base against read gap), with
//!
//! * `T_MM` — stay in match;
//! * `T_MG` — open a gap (either direction, so `T_MM + 2·T_MG = 1`);
//! * `T_GM` — close a gap back to match;
//! * `T_GG` — extend a gap (`T_GM + T_GG = 1`);
//! * `p_ab` — match-state emission of the pair `(a, b)`, parameterised by a
//!   single mismatch probability: `p_ab = 1 − μ` when `a = b`, `μ/3`
//!   otherwise;
//! * `q` — gap-state emission (the paper's `q_{x_i} = q_{y_j} = q`).
//!
//! Gap transitions between `G_X` and `G_Y` are disallowed, as in the paper's
//! figure.

/// Transition and emission parameters of the Pair-HMM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhmmParams {
    /// `T_MM`: match → match.
    pub t_mm: f64,
    /// `T_MG`: match → one specific gap state.
    pub t_mg: f64,
    /// `T_GM`: gap → match.
    pub t_gm: f64,
    /// `T_GG`: gap extension.
    pub t_gg: f64,
    /// Mismatch emission probability mass μ; a matching pair emits `1 − μ`,
    /// each of the three mismatching bases emits `μ/3`.
    pub mismatch: f64,
    /// Gap-state emission probability `q` (uniform over bases: 0.25).
    pub q: f64,
}

impl Default for PhmmParams {
    /// Defaults tuned for ~1% sequencing error plus ~0.1% polymorphism on
    /// short Illumina-style reads: rare gap opening, moderately sticky gap
    /// extension.
    fn default() -> Self {
        PhmmParams {
            t_mm: 0.98,
            t_mg: 0.01,
            t_gm: 0.7,
            t_gg: 0.3,
            mismatch: 0.02,
            q: 0.25,
        }
    }
}

impl PhmmParams {
    /// Validate the stochastic constraints. Returns an explanatory error
    /// string on the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let check_prob = |name: &str, v: f64| -> Result<(), String> {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                Err(format!("{name} = {v} is not a probability"))
            } else {
                Ok(())
            }
        };
        check_prob("t_mm", self.t_mm)?;
        check_prob("t_mg", self.t_mg)?;
        check_prob("t_gm", self.t_gm)?;
        check_prob("t_gg", self.t_gg)?;
        check_prob("mismatch", self.mismatch)?;
        check_prob("q", self.q)?;
        if (self.t_mm + 2.0 * self.t_mg - 1.0).abs() > 1e-9 {
            return Err(format!(
                "match-state transitions must sum to 1: t_mm + 2·t_mg = {}",
                self.t_mm + 2.0 * self.t_mg
            ));
        }
        if (self.t_gm + self.t_gg - 1.0).abs() > 1e-9 {
            return Err(format!(
                "gap-state transitions must sum to 1: t_gm + t_gg = {}",
                self.t_gm + self.t_gg
            ));
        }
        Ok(())
    }

    /// Match-state emission `p_ab` for base indices `a, b ∈ [0, 4)`.
    #[inline]
    pub fn emission(&self, a: usize, b: usize) -> f64 {
        if a == b {
            1.0 - self.mismatch
        } else {
            self.mismatch / 3.0
        }
    }

    /// The 4×4 emission matrix, row = read base, column = genome base.
    pub fn emission_matrix(&self) -> [[f64; 4]; 4] {
        let mut m = [[self.mismatch / 3.0; 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = 1.0 - self.mismatch;
        }
        m
    }

    /// A convenience constructor that derives `t_mm` and `t_gg` from the
    /// free parameters, guaranteeing a valid stochastic matrix.
    pub fn with_gap_rates(gap_open: f64, gap_close: f64, mismatch: f64) -> PhmmParams {
        let p = PhmmParams {
            t_mm: 1.0 - 2.0 * gap_open,
            t_mg: gap_open,
            t_gm: gap_close,
            t_gg: 1.0 - gap_close,
            mismatch,
            q: 0.25,
        };
        p.validate().expect("derived parameters must be valid");
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        PhmmParams::default().validate().unwrap();
    }

    #[test]
    fn emission_rows_sum_to_one() {
        let p = PhmmParams::default();
        let m = p.emission_matrix();
        for row in m {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert!(p.emission(0, 0) > p.emission(0, 1));
        assert_eq!(p.emission(2, 2), 1.0 - p.mismatch);
    }

    #[test]
    fn validation_catches_bad_sums() {
        let p = PhmmParams {
            t_mm: 0.5,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        let p = PhmmParams {
            t_gg: 0.9,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_non_probabilities() {
        let mut p = PhmmParams {
            q: 1.5,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        p.q = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn with_gap_rates_constructs_valid_params() {
        let p = PhmmParams::with_gap_rates(0.02, 0.6, 0.01);
        p.validate().unwrap();
        assert!((p.t_mm - 0.96).abs() < 1e-12);
        assert!((p.t_gg - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn with_gap_rates_rejects_nonsense() {
        let _ = PhmmParams::with_gap_rates(0.7, 0.6, 0.01); // t_mm < 0
    }
}
