//! The backward dynamic program (paper Section VI Step 2, "Backward
//! Algorithm").
//!
//! `b_k(i, j)` is the probability of generating the *suffixes*
//! `x_{i+1..N}`, `y_{j+1..M}` given the alignment is currently in state `k`
//! at `(i, j)`. Initialisation per the paper: `b_M(N, M) = b_GX(N, M) =
//! b_GY(N, M) = 1` (any state may end the alignment), with zero beyond the
//! last row/column. Recursion (paper, verbatim):
//!
//! ```text
//! b_M(i,j)  = p*(i+1,j+1)·T_MM·b_M(i+1,j+1) + q·T_MG·[b_GX(i+1,j) + b_GY(i,j+1)]
//! b_GX(i,j) = p*(i+1,j+1)·T_GM·b_M(i+1,j+1) + q·T_GG·b_GX(i+1,j)
//! b_GY(i,j) = p*(i+1,j+1)·T_GM·b_M(i+1,j+1) + q·T_GG·b_GY(i,j+1)
//! ```

use crate::forward::DpTables;
use crate::params::PhmmParams;

/// Result of the backward pass.
#[derive(Debug, Clone)]
pub struct BackwardResult {
    /// The filled tables (same `(N+1) × (M+1)` shape as the forward pass;
    /// row/column 0 is filled too but only cells with `i, j ≥ 1` are
    /// meaningful for marginals).
    pub tables: DpTables,
    /// Total likelihood recovered from the backward direction: since every
    /// alignment starts by matching `x_1 : y_1`,
    /// `total = p*(1,1) · T_MM · b_M(1,1)`.
    pub total: f64,
}

/// Run the backward algorithm over the same emission table as
/// [`crate::forward::forward`].
pub fn backward(emit: &[Vec<f64>], params: &PhmmParams) -> BackwardResult {
    let n = emit.len();
    assert!(n >= 1, "read must be non-empty");
    let m = emit[0].len();
    assert!(m >= 1, "window must be non-empty");
    debug_assert!(emit.iter().all(|r| r.len() == m));

    let mut t = DpTables::zeros(n, m);
    t.m.set(n, m, 1.0);
    t.x.set(n, m, 1.0);
    t.y.set(n, m, 1.0);

    let &PhmmParams {
        t_mm,
        t_mg,
        t_gm,
        t_gg,
        q,
        ..
    } = params;

    // p*(i+1, j+1) with the paper's out-of-range convention p* = 0.
    let emit_at = |i: usize, j: usize| -> f64 {
        if i < n && j < m {
            emit[i][j] // emit is 0-based: emit[i][j] = p*(i+1, j+1)
        } else {
            0.0
        }
    };
    // Table reads beyond (n, m) are the zero border.
    let get = |mat: &crate::matrix::Matrix, i: usize, j: usize| -> f64 {
        if i <= n && j <= m {
            mat.get(i, j)
        } else {
            0.0
        }
    };

    for i in (1..=n).rev() {
        for j in (1..=m).rev() {
            if i == n && j == m {
                continue; // initialised above
            }
            let diag = emit_at(i, j); // p*(i+1, j+1)
            let bm_diag = get(&t.m, i + 1, j + 1);
            let bm = diag * t_mm * bm_diag + q * t_mg * (get(&t.x, i + 1, j) + get(&t.y, i, j + 1));
            let bx = diag * t_gm * bm_diag + q * t_gg * get(&t.x, i + 1, j);
            let by = diag * t_gm * bm_diag + q * t_gg * get(&t.y, i, j + 1);
            t.m.set(i, j, bm);
            t.x.set(i, j, bx);
            t.y.set(i, j, by);
        }
    }

    let total = emit[0][0] * t_mm * t.m.get(1, 1);
    BackwardResult { tables: t, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::forward;

    fn uniform_emit(n: usize, m: usize, p: f64) -> Vec<Vec<f64>> {
        vec![vec![p; m]; n]
    }

    fn varied_emit(n: usize, m: usize) -> Vec<Vec<f64>> {
        // Deterministic but non-uniform emissions in (0, 1).
        (0..n)
            .map(|i| {
                (0..m)
                    .map(|j| 0.15 + 0.8 * (((i * 31 + j * 17 + 7) % 13) as f64 / 13.0))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn forward_and_backward_totals_agree_uniform() {
        let params = PhmmParams::default();
        for (n, m) in [(1, 1), (2, 3), (5, 5), (8, 6), (12, 14)] {
            let emit = uniform_emit(n, m, 0.85);
            let f = forward(&emit, &params).total;
            let b = backward(&emit, &params).total;
            assert!(
                (f - b).abs() <= 1e-12 * f.max(1e-300),
                "totals disagree for {n}x{m}: fwd {f} bwd {b}"
            );
        }
    }

    #[test]
    fn forward_and_backward_totals_agree_varied() {
        let params = PhmmParams::with_gap_rates(0.05, 0.5, 0.03);
        for (n, m) in [(3, 3), (6, 9), (10, 10), (17, 13)] {
            let emit = varied_emit(n, m);
            let f = forward(&emit, &params).total;
            let b = backward(&emit, &params).total;
            assert!(
                (f - b).abs() <= 1e-12 * f.max(1e-300),
                "totals disagree for {n}x{m}: fwd {f} bwd {b}"
            );
        }
    }

    #[test]
    fn row_flow_invariant() {
        // Every alignment consumes read base i in exactly one M or G_X
        // state, so for each fixed i:
        //   Σ_j [ f_M·b_M + f_X·b_X ](i, j) = total.
        let params = PhmmParams::default();
        let emit = varied_emit(7, 9);
        let f = forward(&emit, &params);
        let b = backward(&emit, &params);
        for i in 1..=7usize {
            let mut acc = 0.0;
            for j in 1..=9usize {
                acc += f.tables.m.get(i, j) * b.tables.m.get(i, j)
                    + f.tables.x.get(i, j) * b.tables.x.get(i, j);
            }
            assert!(
                (acc - f.total).abs() <= 1e-12 * f.total,
                "row {i}: flow {acc} != total {}",
                f.total
            );
        }
    }

    #[test]
    fn column_flow_invariant() {
        // Symmetrically, genome base j is consumed in exactly one M or G_Y
        // state: Σ_i [ f_M·b_M + f_Y·b_Y ](i, j) = total for each j.
        let params = PhmmParams::with_gap_rates(0.04, 0.6, 0.02);
        let emit = varied_emit(9, 6);
        let f = forward(&emit, &params);
        let b = backward(&emit, &params);
        for j in 1..=6usize {
            let mut acc = 0.0;
            for i in 1..=9usize {
                acc += f.tables.m.get(i, j) * b.tables.m.get(i, j)
                    + f.tables.y.get(i, j) * b.tables.y.get(i, j);
            }
            assert!(
                (acc - f.total).abs() <= 1e-12 * f.total,
                "column {j}: flow {acc} != total {}",
                f.total
            );
        }
    }

    #[test]
    fn terminal_cell_is_one() {
        let emit = uniform_emit(3, 4, 0.5);
        let b = backward(&emit, &PhmmParams::default());
        assert_eq!(b.tables.m.get(3, 4), 1.0);
        assert_eq!(b.tables.x.get(3, 4), 1.0);
        assert_eq!(b.tables.y.get(3, 4), 1.0);
    }
}
