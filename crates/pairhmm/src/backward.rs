//! The backward dynamic program (paper Section VI Step 2, "Backward
//! Algorithm").
//!
//! `b_k(i, j)` is the probability of generating the *suffixes*
//! `x_{i+1..N}`, `y_{j+1..M}` given the alignment is currently in state `k`
//! at `(i, j)`. Initialisation per the paper: `b_M(N, M) = b_GX(N, M) =
//! b_GY(N, M) = 1` (any state may end the alignment), with zero beyond the
//! last row/column. Recursion (paper, verbatim):
//!
//! ```text
//! b_M(i,j)  = p*(i+1,j+1)·T_MM·b_M(i+1,j+1) + q·T_MG·[b_GX(i+1,j) + b_GY(i,j+1)]
//! b_GX(i,j) = p*(i+1,j+1)·T_GM·b_M(i+1,j+1) + q·T_GG·b_GX(i+1,j)
//! b_GY(i,j) = p*(i+1,j+1)·T_GM·b_M(i+1,j+1) + q·T_GG·b_GY(i,j+1)
//! ```
//!
//! Cell arithmetic lives in [`crate::kernel::backward_planes`]; this
//! module materialises the full tables (needed by the cell-level posterior
//! accessors and the test oracles — the mapping hot path uses the fused
//! streaming pass in [`crate::scratch`] instead and never builds them).

use crate::emission::Emission;
use crate::forward::DpTables;
use crate::kernel;
use crate::params::PhmmParams;

/// Result of the backward pass.
#[derive(Debug, Clone)]
pub struct BackwardResult {
    /// The filled tables (same `(N+1) × (M+1)` shape as the forward pass;
    /// row/column 0 is filled too but only cells with `i, j ≥ 1` are
    /// meaningful for marginals).
    pub tables: DpTables,
    /// Total likelihood recovered from the backward direction: since every
    /// alignment starts by matching `x_1 : y_1`,
    /// `total = p*(1,1) · T_MM · b_M(1,1)`.
    pub total: f64,
}

/// Run the backward algorithm over the same emission view as
/// [`crate::forward::forward`].
pub fn backward(emit: Emission<'_>, params: &PhmmParams) -> BackwardResult {
    let (n, m) = (emit.n(), emit.m());
    let mut t = DpTables::zeros(n, m);
    let total = kernel::backward_planes(
        emit,
        params,
        t.m.as_mut_slice(),
        t.x.as_mut_slice(),
        t.y.as_mut_slice(),
        None,
    );
    BackwardResult { tables: t, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emission::EmissionTable;
    use crate::forward::forward;

    fn uniform_emit(n: usize, m: usize, p: f64) -> EmissionTable {
        EmissionTable::from_fn(n, m, |_, _| p)
    }

    fn varied_emit(n: usize, m: usize) -> EmissionTable {
        // Deterministic but non-uniform emissions in (0, 1).
        EmissionTable::from_fn(n, m, |i, j| {
            0.15 + 0.8 * (((i * 31 + j * 17 + 7) % 13) as f64 / 13.0)
        })
    }

    #[test]
    fn forward_and_backward_totals_agree_uniform() {
        let params = PhmmParams::default();
        for (n, m) in [(1, 1), (2, 3), (5, 5), (8, 6), (12, 14)] {
            let emit = uniform_emit(n, m, 0.85);
            let f = forward(emit.view(), &params).total;
            let b = backward(emit.view(), &params).total;
            assert!(
                (f - b).abs() <= 1e-12 * f.max(1e-300),
                "totals disagree for {n}x{m}: fwd {f} bwd {b}"
            );
        }
    }

    #[test]
    fn forward_and_backward_totals_agree_varied() {
        let params = PhmmParams::with_gap_rates(0.05, 0.5, 0.03);
        for (n, m) in [(3, 3), (6, 9), (10, 10), (17, 13)] {
            let emit = varied_emit(n, m);
            let f = forward(emit.view(), &params).total;
            let b = backward(emit.view(), &params).total;
            assert!(
                (f - b).abs() <= 1e-12 * f.max(1e-300),
                "totals disagree for {n}x{m}: fwd {f} bwd {b}"
            );
        }
    }

    #[test]
    fn row_flow_invariant() {
        // Every alignment consumes read base i in exactly one M or G_X
        // state, so for each fixed i:
        //   Σ_j [ f_M·b_M + f_X·b_X ](i, j) = total.
        let params = PhmmParams::default();
        let emit = varied_emit(7, 9);
        let f = forward(emit.view(), &params);
        let b = backward(emit.view(), &params);
        for i in 1..=7usize {
            let mut acc = 0.0;
            for j in 1..=9usize {
                acc += f.tables.m.get(i, j) * b.tables.m.get(i, j)
                    + f.tables.x.get(i, j) * b.tables.x.get(i, j);
            }
            assert!(
                (acc - f.total).abs() <= 1e-12 * f.total,
                "row {i}: flow {acc} != total {}",
                f.total
            );
        }
    }

    #[test]
    fn column_flow_invariant() {
        // Symmetrically, genome base j is consumed in exactly one M or G_Y
        // state: Σ_i [ f_M·b_M + f_Y·b_Y ](i, j) = total for each j.
        let params = PhmmParams::with_gap_rates(0.04, 0.6, 0.02);
        let emit = varied_emit(9, 6);
        let f = forward(emit.view(), &params);
        let b = backward(emit.view(), &params);
        for j in 1..=6usize {
            let mut acc = 0.0;
            for i in 1..=9usize {
                acc += f.tables.m.get(i, j) * b.tables.m.get(i, j)
                    + f.tables.y.get(i, j) * b.tables.y.get(i, j);
            }
            assert!(
                (acc - f.total).abs() <= 1e-12 * f.total,
                "column {j}: flow {acc} != total {}",
                f.total
            );
        }
    }

    #[test]
    fn terminal_cell_is_one() {
        let emit = uniform_emit(3, 4, 0.5);
        let b = backward(emit.view(), &PhmmParams::default());
        assert_eq!(b.tables.m.get(3, 4), 1.0);
        assert_eq!(b.tables.x.get(3, 4), 1.0);
        assert_eq!(b.tables.y.get(3, 4), 1.0);
    }
}
