//! Flat, vectorization-friendly DP kernels shared by the full and banded
//! forward/backward passes.
//!
//! The recursions are restructured into per-row sweeps (see DESIGN.md §8):
//!
//! * **Forward, sweep 1** — `f_M(i, ·)` and `f_GX(i, ·)` depend only on row
//!   `i−1`, so the whole row is a branch-free elementwise loop over equal
//!   length slices that LLVM autovectorizes.
//! * **Forward, sweep 2** — `f_GY(i, j)` carries a serial dependency on
//!   `f_GY(i, j−1)` within the row; it runs as a separate scalar sweep
//!   reading the `f_M` values sweep 1 just produced.
//! * **Backward, sweep 1** — `b_GY(i, j)` depends on `b_GY(i, j+1)`; a
//!   serial descending-`j` sweep computes it first.
//! * **Backward, sweep 2** — `b_M(i, ·)` and `b_GX(i, ·)` then read only
//!   row `i+1` and the already-finished `b_GY` row: vectorizable.
//!
//! Every per-cell arithmetic expression is kept literally identical to the
//! original interleaved loops, so the restructured kernels are
//! **bit-identical** to the historical implementation — the conformance
//! harness (`gnumap verify`) depends on this.
//!
//! Banding is expressed as per-row column bounds from the diagonal band
//! `j − i ∈ [lo, hi]`. The kernels write zero *sentinels* one cell left and
//! right of each row's band instead of clearing whole planes, so scratch
//! buffers can be reused across alignments without `O(N·M)` memsets: every
//! cell a later row reads is either freshly computed or an explicit zero.

use crate::emission::Emission;
use crate::params::PhmmParams;

/// Diagonal band `lo <= j - i <= hi`; `None` = full table.
pub type Band = Option<(isize, isize)>;

/// Inclusive diagonal bounds for a read of length `n`, window of length
/// `m`, and band half-width `w`: cell `(i, j)` is inside iff
/// `lo <= j - i <= hi` (`Δ = M − N` absorbs the length difference).
pub fn diagonal_bounds(n: usize, m: usize, w: usize) -> (isize, isize) {
    let delta = m as isize - n as isize;
    (delta.min(0) - w as isize, delta.max(0) + w as isize)
}

/// Clamped column range `[j_min, j_max]` of the band in row `i` (1-based).
/// The bounds from [`diagonal_bounds`] always give a non-empty range for
/// `1 <= i <= n`.
#[inline]
pub fn row_range(band: Band, i: usize, m: usize) -> (usize, usize) {
    match band {
        None => (1, m),
        Some((lo, hi)) => {
            let j_min = (i as isize + lo).max(1) as usize;
            let j_max = ((i as isize + hi).min(m as isize)) as usize;
            debug_assert!(1 <= j_min && j_min <= j_max && j_max <= m);
            (j_min, j_max)
        }
    }
}

/// One-time shape validation for a kernel call over `(n+1) × (m+1)`
/// planes. All per-cell asserts live here, outside the hot loops.
#[inline]
fn validate_planes(emit: Emission<'_>, planes: [&[f64]; 3]) -> (usize, usize, usize) {
    let n = emit.n();
    let m = emit.m();
    assert!(n >= 1, "read must be non-empty");
    assert!(m >= 1, "window must be non-empty");
    let stride = m + 1;
    let plane = (n + 1) * stride;
    for p in planes {
        assert!(p.len() >= plane, "DP plane too small for {n}x{m}");
    }
    (n, m, stride)
}

/// Compute one forward row `i` from row `i−1`, two-sweep. `mp`/`xp`/`yp`
/// are row `i−1`; `mc`/`xc`/`yc` are row `i` (each of length `m + 1`);
/// `erow` is the emission row `p*(i, ·)`. Writes zero sentinels one cell
/// left and right of the band so stale buffers need no pre-clearing.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn forward_row(
    params: &PhmmParams,
    erow: &[f64],
    mp: &[f64],
    xp: &[f64],
    yp: &[f64],
    mc: &mut [f64],
    xc: &mut [f64],
    yc: &mut [f64],
    j_min: usize,
    j_max: usize,
    m: usize,
) {
    let &PhmmParams {
        t_mm,
        t_mg,
        t_gm,
        t_gg,
        q,
        ..
    } = params;

    // Zero sentinels bounding the band in the (possibly stale) row.
    for row in [&mut *mc, &mut *xc, &mut *yc] {
        row[j_min - 1] = 0.0;
        if j_max < m {
            row[j_max + 1] = 0.0;
        }
    }

    // Sweep 1 (vectorizable): M and G_X read row i-1 only.
    //   f_M(i,j)  = p*(i,j)·[T_MM·f_M(i−1,j−1) + T_GM·(f_GX + f_GY)(i−1,j−1)]
    //   f_GX(i,j) = q·[T_MG·f_M(i−1,j) + T_GG·f_GX(i−1,j)]
    let it = mc[j_min..=j_max]
        .iter_mut()
        .zip(xc[j_min..=j_max].iter_mut())
        .zip(&erow[j_min - 1..j_max])
        .zip(&mp[j_min - 1..j_max])
        .zip(&xp[j_min - 1..j_max])
        .zip(&yp[j_min - 1..j_max])
        .zip(&mp[j_min..=j_max])
        .zip(&xp[j_min..=j_max]);
    for (((((((mv, xv), &e), &mpd), &xpd), &ypd), &mps), &xps) in it {
        *mv = e * (t_mm * mpd + t_gm * (xpd + ypd));
        *xv = q * (t_mg * mps + t_gg * xps);
    }

    // Sweep 2 (serial carry): G_Y within row i.
    //   f_GY(i,j) = q·[T_MG·f_M(i,j−1) + T_GG·f_GY(i,j−1)]
    let mut carry = yc[j_min - 1];
    for (yv, &mcl) in yc[j_min..=j_max].iter_mut().zip(&mc[j_min - 1..j_max]) {
        carry = q * (t_mg * mcl + t_gg * carry);
        *yv = carry;
    }
}

/// Forward pass into flat `(n+1) × (m+1)` row-major planes (row stride
/// `m + 1`). Returns the total likelihood. The planes may hold stale data
/// from a previous alignment: every cell the recursion reads is freshly
/// written or an explicit zero sentinel, so no pre-clearing is needed.
pub fn forward_planes(
    emit: Emission<'_>,
    params: &PhmmParams,
    fm: &mut [f64],
    fx: &mut [f64],
    fy: &mut [f64],
    band: Band,
) -> f64 {
    let (n, m, stride) = validate_planes(emit, [fm, fx, fy]);

    // Border row 0: zero over the range row 1 reads, with f_M(0,0) = 1.
    let (_, hi0) = row_range(band, 1, m);
    for p in [&mut *fm, &mut *fx, &mut *fy] {
        p[..=hi0].fill(0.0);
    }
    fm[0] = 1.0;

    for i in 1..=n {
        let (j_min, j_max) = row_range(band, i, m);
        let base = (i - 1) * stride;
        let (mp, mc) = fm[base..base + 2 * stride].split_at_mut(stride);
        let (xp, xc) = fx[base..base + 2 * stride].split_at_mut(stride);
        let (yp, yc) = fy[base..base + 2 * stride].split_at_mut(stride);
        forward_row(
            params,
            emit.row(i - 1),
            mp,
            xp,
            yp,
            mc,
            xc,
            yc,
            j_min,
            j_max,
            m,
        );
    }

    let end = n * stride + m;
    fm[end] + fx[end] + fy[end]
}

/// Backward pass into flat `(n+1) × (m+1)` planes. The planes must be
/// zero-filled on entry (unlike [`forward_planes`], the full-table
/// backward is only used on freshly allocated tables; the scratch-arena
/// hot path streams the backward pass through rolling rows instead — see
/// [`crate::scratch`]). Returns the backward total
/// `p*(1,1) · T_MM · b_M(1,1)`.
pub fn backward_planes(
    emit: Emission<'_>,
    params: &PhmmParams,
    bm: &mut [f64],
    bx: &mut [f64],
    by: &mut [f64],
    band: Band,
) -> f64 {
    let (n, m, stride) = validate_planes(emit, [bm, bx, by]);
    let &PhmmParams {
        t_mm,
        t_mg,
        t_gm,
        t_gg,
        q,
        ..
    } = params;

    // Terminal row n: b(N, M) = 1 in all three states; diag emissions are
    // out of range (p* = 0), so the row reduces to gap-extension carries.
    {
        let row = n * stride;
        bm[row + m] = 1.0;
        bx[row + m] = 1.0;
        by[row + m] = 1.0;
        let (j_min, _) = row_range(band, n, m);
        let mut carry = 1.0; // b_GY(n, m)
        for j in (j_min..m).rev() {
            // b_GY(n,j) = q·T_GG·b_GY(n,j+1);  b_M(n,j) = q·T_MG·b_GY(n,j+1)
            bm[row + j] = q * t_mg * carry;
            carry *= q * t_gg;
            by[row + j] = carry;
            // b_GX(n,j) feeds only from row n+1 (zero): stays 0.
        }
    }

    for i in (1..n).rev() {
        let (j_min, j_max) = row_range(band, i, m);
        let base = i * stride;
        let (cur, next) = bm[base..base + 2 * stride].split_at_mut(stride);
        let (bm_cur, bm_next) = (cur, &*next);
        let (cur, next) = bx[base..base + 2 * stride].split_at_mut(stride);
        let (bx_cur, bx_next) = (cur, &*next);
        let by_cur = &mut by[base..base + stride];
        let erow = emit.row(i); // diag for cell (i, j) = p*(i+1, j+1)

        // Sweep 1 (serial, descending): G_Y carries right-to-left.
        //   b_GY(i,j) = p*(i+1,j+1)·T_GM·b_M(i+1,j+1) + q·T_GG·b_GY(i,j+1)
        let mut carry = 0.0; // b_GY(i, j_max+1) is out of band / table: 0
        for j in (j_min..=j_max).rev() {
            let (diag, bm_diag) = if j < m {
                (erow[j], bm_next[j + 1])
            } else {
                (0.0, 0.0)
            };
            carry = diag * t_gm * bm_diag + q * t_gg * carry;
            by_cur[j] = carry;
        }

        // Sweep 2 (vectorizable): M and G_X read row i+1 and the finished
        // G_Y row.
        //   b_M(i,j)  = p*·T_MM·b_M(i+1,j+1) + q·T_MG·[b_GX(i+1,j) + b_GY(i,j+1)]
        //   b_GX(i,j) = p*·T_GM·b_M(i+1,j+1) + q·T_GG·b_GX(i+1,j)
        if j_max == m {
            // Column m reads past the table on the diagonal (p* = 0).
            bm_cur[m] = q * t_mg * (bx_next[m] + 0.0);
            bx_cur[m] = q * t_gg * bx_next[m];
        }
        let hi = j_max.min(m - 1);
        if j_min <= hi {
            let it = bm_cur[j_min..=hi]
                .iter_mut()
                .zip(bx_cur[j_min..=hi].iter_mut())
                .zip(&erow[j_min..=hi])
                .zip(&bm_next[j_min + 1..=hi + 1])
                .zip(&bx_next[j_min..=hi])
                .zip(&by_cur[j_min + 1..=hi + 1]);
            for (((((mv, xv), &diag), &bmd), &bxn), &byr) in it {
                *mv = diag * t_mm * bmd + q * t_mg * (bxn + byr);
                *xv = diag * t_gm * bmd + q * t_gg * bxn;
            }
        }
    }

    emit.at(0, 0) * t_mm * bm[stride + 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_bounds_cover_terminal_cell() {
        for (n, m, w) in [(5usize, 5usize, 0usize), (4, 8, 0), (8, 4, 2), (62, 62, 4)] {
            let (lo, hi) = diagonal_bounds(n, m, w);
            let d = m as isize - n as isize;
            assert!(lo <= 0 && hi >= 0, "band must include the origin diagonal");
            assert!(lo <= d && d <= hi, "band must include the terminal cell");
            for i in 1..=n {
                let (j_min, j_max) = row_range(Some((lo, hi)), i, m);
                assert!(1 <= j_min && j_min <= j_max && j_max <= m, "row {i}");
            }
        }
    }

    #[test]
    fn full_row_range_is_whole_row() {
        assert_eq!(row_range(None, 3, 7), (1, 7));
    }
}
