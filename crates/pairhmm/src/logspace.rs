//! Log-space forward/backward — an independent numeric backend.
//!
//! The linear-space DP ([`crate::forward`]) is exact and fast for short
//! reads; the row-rescaled variant ([`crate::scaling`]) extends its range.
//! This module implements the recursions a third way — every quantity kept
//! as a natural logarithm, sums via the log-sum-exp primitive — which is
//! immune to underflow at any length and serves as one more independent
//! cross-check of the other two implementations (they share no numeric
//! code paths).

use crate::emission::Emission;
use crate::matrix::Matrix;
use crate::params::PhmmParams;

/// Numerically stable `ln(e^a + e^b)`.
#[inline]
pub fn log_add(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// Stable `ln(e^a + e^b + e^c)`.
#[inline]
pub fn log_add3(a: f64, b: f64, c: f64) -> f64 {
    log_add(log_add(a, b), c)
}

/// Log-space tables and total.
#[derive(Debug, Clone)]
pub struct LogForwardResult {
    /// `ln f_M`, `(N+1) × (M+1)`; `NEG_INFINITY` encodes zero.
    pub m: Matrix,
    /// `ln f_GX`.
    pub x: Matrix,
    /// `ln f_GY`.
    pub y: Matrix,
    /// `ln` of the total pair likelihood.
    pub log_total: f64,
}

fn neg_inf_matrix(rows: usize, cols: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            m.set(r, c, f64::NEG_INFINITY);
        }
    }
    m
}

/// Log-space forward pass over `emit.at(i-1, j-1) = p*(i, j)`.
pub fn log_forward(emit: Emission<'_>, params: &PhmmParams) -> LogForwardResult {
    let n = emit.n();
    assert!(n >= 1, "read must be non-empty");
    let m_len = emit.m();
    assert!(m_len >= 1, "window must be non-empty");

    let ln = |v: f64| if v > 0.0 { v.ln() } else { f64::NEG_INFINITY };
    let (lt_mm, lt_mg, lt_gm, lt_gg, lq) = (
        ln(params.t_mm),
        ln(params.t_mg),
        ln(params.t_gm),
        ln(params.t_gg),
        ln(params.q),
    );

    let mut fm = neg_inf_matrix(n + 1, m_len + 1);
    let mut fx = neg_inf_matrix(n + 1, m_len + 1);
    let mut fy = neg_inf_matrix(n + 1, m_len + 1);
    fm.set(0, 0, 0.0); // ln 1

    for i in 1..=n {
        for j in 1..=m_len {
            let le = ln(emit.at(i - 1, j - 1));
            let diag = log_add3(
                lt_mm + fm.get(i - 1, j - 1),
                lt_gm + fx.get(i - 1, j - 1),
                lt_gm + fy.get(i - 1, j - 1),
            );
            fm.set(i, j, le + diag);
            fx.set(
                i,
                j,
                lq + log_add(lt_mg + fm.get(i - 1, j), lt_gg + fx.get(i - 1, j)),
            );
            fy.set(
                i,
                j,
                lq + log_add(lt_mg + fm.get(i, j - 1), lt_gg + fy.get(i, j - 1)),
            );
        }
    }

    let log_total = log_add3(fm.get(n, m_len), fx.get(n, m_len), fy.get(n, m_len));
    LogForwardResult {
        m: fm,
        x: fx,
        y: fy,
        log_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emission::EmissionTable;
    use crate::forward::forward;
    use crate::scaling::scaled_forward;

    fn varied_emit(n: usize, m: usize) -> EmissionTable {
        EmissionTable::from_fn(n, m, |i, j| {
            0.1 + 0.85 * (((i * 41 + j * 19 + 5) % 23) as f64 / 23.0)
        })
    }

    #[test]
    fn log_add_basics() {
        assert!((log_add(0.0, 0.0) - std::f64::consts::LN_2).abs() < 1e-15);
        assert_eq!(log_add(f64::NEG_INFINITY, 3.0), 3.0);
        assert_eq!(log_add(3.0, f64::NEG_INFINITY), 3.0);
        assert_eq!(
            log_add(f64::NEG_INFINITY, f64::NEG_INFINITY),
            f64::NEG_INFINITY
        );
        // ln(e^1 + e^2 + e^3)
        let direct = (1f64.exp() + 2f64.exp() + 3f64.exp()).ln();
        assert!((log_add3(1.0, 2.0, 3.0) - direct).abs() < 1e-12);
    }

    #[test]
    fn matches_linear_space_forward() {
        let params = PhmmParams::with_gap_rates(0.05, 0.55, 0.03);
        for (n, m) in [(1, 1), (3, 4), (10, 10), (25, 27), (62, 62)] {
            let emit = varied_emit(n, m);
            let linear = forward(emit.view(), &params).total;
            let logspace = log_forward(emit.view(), &params).log_total;
            assert!(
                (logspace - linear.ln()).abs() < 1e-9,
                "{n}x{m}: log {logspace} vs ln(linear) {}",
                linear.ln()
            );
        }
    }

    #[test]
    fn matches_scaled_forward_far_below_underflow() {
        let params = PhmmParams::default();
        let emit = EmissionTable::from_fn(30, 30, |_, _| 1e-250);
        let logspace = log_forward(emit.view(), &params).log_total;
        let scaled = scaled_forward(emit.view(), &params).log_total;
        assert!(logspace.is_finite());
        assert!(
            (logspace - scaled).abs() < 1e-6 * scaled.abs(),
            "log {logspace} vs scaled {scaled}"
        );
    }

    #[test]
    fn per_cell_values_match_linear_space() {
        let params = PhmmParams::with_gap_rates(0.08, 0.5, 0.04);
        let emit = varied_emit(6, 7);
        let linear = forward(emit.view(), &params);
        let logspace = log_forward(emit.view(), &params);
        for i in 1..=6 {
            for j in 1..=7 {
                for (lin_m, log_m) in [
                    (&linear.tables.m, &logspace.m),
                    (&linear.tables.x, &logspace.x),
                    (&linear.tables.y, &logspace.y),
                ] {
                    let lin = lin_m.get(i, j);
                    let log = log_m.get(i, j);
                    if lin == 0.0 {
                        assert_eq!(log, f64::NEG_INFINITY, "cell ({i},{j})");
                    } else {
                        assert!(
                            (log - lin.ln()).abs() < 1e-9,
                            "cell ({i},{j}): {log} vs {}",
                            lin.ln()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zero_emissions_give_neg_infinity() {
        let params = PhmmParams::default();
        let emit = EmissionTable::zeros(3, 3);
        assert_eq!(
            log_forward(emit.view(), &params).log_total,
            f64::NEG_INFINITY
        );
    }
}
