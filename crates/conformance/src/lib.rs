//! Driver-matrix conformance harness for the GNUMAP-SNP workspace.
//!
//! The paper's claim is that every parallel decomposition computes *the
//! same* posterior accumulator and LRT calls as the serial Pair-HMM
//! pipeline. This crate is the executable form of that claim, organised
//! into four tiers (each a module, each runnable on its own):
//!
//! * [`oracle`] — independent reference implementations (an O(nm)
//!   log-space Pair-HMM forward/backward, a direct numerical-maximisation
//!   LRT, a quadrature χ² CDF) checked against the production kernels on
//!   randomized inputs within tight tolerances;
//! * [`matrix`] — a differential runner that executes the serial, rayon,
//!   read-split MPI, genome-split MPI and streaming drivers over seeded
//!   randomized workloads and asserts **bit-identical** `FixedAccumulator`
//!   digests, SNP-call wires and mapped counts across the whole matrix;
//! * [`faults`] — deterministic fault injection (failing/stuttering read
//!   streams, checkpoint truncation/bit-flips, corrupt mpisim call wires,
//!   kill-at-window-k/resume sweeps) asserting every fault surfaces as a
//!   typed `Err` — never a panic, never silently wrong calls;
//! * [`truth`] — an end-to-end gate on `simulate`'s planted SNPs with
//!   sensitivity/precision thresholds.
//!
//! [`run_verify`] runs all four with per-tier timing; the `gnumap verify
//! [--fast]` CLI subcommand and `scripts/ci.sh` are thin wrappers over it.

pub mod faults;
pub mod matrix;
pub mod oracle;
pub mod truth;
pub mod workload;

use std::io::{self, Write};
use std::time::Instant;

/// What one tier observed: how many checks ran and which ones failed.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Individual assertions evaluated.
    pub checks: usize,
    /// Human-readable description of each failed assertion.
    pub failures: Vec<String>,
}

impl Outcome {
    /// Record one assertion; `describe` is only rendered on failure.
    pub fn check(&mut self, ok: bool, describe: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.failures.push(describe());
        }
    }

    /// Record an unconditional failure (for faults that should have
    /// produced an error but did not, etc.).
    pub fn fail(&mut self, message: String) {
        self.checks += 1;
        self.failures.push(message);
    }

    /// Fold another outcome into this one.
    pub fn merge(&mut self, other: Outcome) {
        self.checks += other.checks;
        self.failures.extend(other.failures);
    }
}

/// One tier's result with its wall-clock cost.
#[derive(Debug)]
pub struct TierReport {
    /// Tier name as printed (`oracle`, `matrix`, `faults`, `truth`).
    pub name: &'static str,
    /// Assertions evaluated.
    pub checks: usize,
    /// Failed assertions.
    pub failures: Vec<String>,
    /// Wall-clock seconds the tier took.
    pub secs: f64,
}

/// Aggregate over all tiers.
#[derive(Debug)]
pub struct VerifyReport {
    /// Per-tier results in execution order.
    pub tiers: Vec<TierReport>,
}

impl VerifyReport {
    /// True when no tier recorded a failure.
    pub fn passed(&self) -> bool {
        self.tiers.iter().all(|t| t.failures.is_empty())
    }

    /// Total failed assertions across tiers.
    pub fn failure_count(&self) -> usize {
        self.tiers.iter().map(|t| t.failures.len()).sum()
    }
}

/// Run every tier, streaming per-tier timing and failures to `out`.
///
/// `fast` trims the randomized sweeps (fewer seeds, fewer matrix
/// workloads, a sparser kill-point sweep) for use as a CI gate; the full
/// run is the release-grade verification.
pub fn run_verify(fast: bool, out: &mut dyn Write) -> io::Result<VerifyReport> {
    let mode = if fast { "fast" } else { "full" };
    writeln!(out, "verify ({mode}): oracle, matrix, faults, truth")?;

    type TierRunner = fn(bool) -> Outcome;
    let mut tiers = Vec::new();
    let runners: [(&'static str, TierRunner); 4] = [
        ("oracle", oracle::run),
        ("matrix", matrix::run),
        ("faults", faults::run),
        ("truth", truth::run),
    ];
    for (name, tier) in runners {
        let start = Instant::now();
        let outcome = tier(fast);
        let secs = start.elapsed().as_secs_f64();
        let status = if outcome.failures.is_empty() {
            "ok"
        } else {
            "FAILED"
        };
        writeln!(
            out,
            "tier {name:<8} {status:<6} {:>4} checks, {} failure(s)  [{secs:7.2}s]",
            outcome.checks,
            outcome.failures.len(),
        )?;
        for failure in &outcome.failures {
            writeln!(out, "    FAIL: {failure}")?;
        }
        tiers.push(TierReport {
            name,
            checks: outcome.checks,
            failures: outcome.failures,
            secs,
        });
    }

    let report = VerifyReport { tiers };
    if report.passed() {
        writeln!(out, "verify passed")?;
    } else {
        writeln!(out, "verify FAILED: {} failure(s)", report.failure_count())?;
    }
    Ok(report)
}
