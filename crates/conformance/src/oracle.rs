//! Reference oracles for the numerical kernels.
//!
//! Each oracle is an *independent* implementation of the same quantity the
//! production code computes, written in a deliberately different numeric
//! style so shared bugs are unlikely:
//!
//! * the Pair-HMM oracle runs the forward/backward recursions entirely in
//!   log space with `log_add` (the production tables are linear `f64`),
//!   and rebuilds the per-column posterior `z` vectors from the log
//!   tables;
//! * the LRT oracle maximises the constrained multinomial log-likelihoods
//!   numerically by ternary search over the probability simplex instead of
//!   using the closed-form MLEs;
//! * the χ² oracle integrates the density by Simpson quadrature instead of
//!   the regularised-gamma series.
//!
//! Agreement within tight tolerances on randomized inputs is strong
//! evidence both sides implement the model, not each other's bugs.

use crate::Outcome;
use genome::alphabet::{Base, BASES};
use gnumap_stats::lrt::Alternative;
use gnumap_stats::{diploid_lrt, monoploid_lrt, BaseCounts, ChiSquared};
use pairhmm::{PhmmParams, PosteriorAlignment, Pwm};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Run the oracle tier. `fast` trims the number of random cases.
pub fn run(fast: bool) -> Outcome {
    let mut out = Outcome::default();
    phmm_tier(&mut out, if fast { 12 } else { 48 });
    lrt_tier(&mut out, if fast { 120 } else { 600 });
    chi2_tier(&mut out);
    out
}

// ---------------------------------------------------------------------------
// Log-space Pair-HMM forward/backward oracle
// ---------------------------------------------------------------------------

const NEG_INF: f64 = f64::NEG_INFINITY;

fn log_add(a: f64, b: f64) -> f64 {
    if a == NEG_INF {
        b
    } else if b == NEG_INF {
        a
    } else if a >= b {
        a + (b - a).exp().ln_1p()
    } else {
        b + (a - b).exp().ln_1p()
    }
}

/// Log-space DP tables, `(n + 2) × (m + 2)` so the backward recursion can
/// read one past the terminal cell without bounds checks (those cells stay
/// at `-inf`, matching the production convention that reads beyond
/// `(N, M)` contribute zero).
struct LogTables {
    m: Vec<Vec<f64>>,
    x: Vec<Vec<f64>>,
    y: Vec<Vec<f64>>,
}

impl LogTables {
    fn new(n: usize, m: usize) -> LogTables {
        let make = || vec![vec![NEG_INF; m + 2]; n + 2];
        LogTables {
            m: make(),
            x: make(),
            y: make(),
        }
    }
}

struct LogPhmm {
    ln_emit: Vec<Vec<f64>>,
    ln_tmm: f64,
    ln_tmg: f64,
    ln_tgm: f64,
    ln_tgg: f64,
    ln_q: f64,
    n: usize,
    m: usize,
}

impl LogPhmm {
    fn new(emit: pairhmm::Emission<'_>, params: &PhmmParams) -> LogPhmm {
        LogPhmm {
            ln_emit: (0..emit.n())
                .map(|i| emit.row(i).iter().map(|&p| p.ln()).collect())
                .collect(),
            ln_tmm: params.t_mm.ln(),
            ln_tmg: params.t_mg.ln(),
            ln_tgm: params.t_gm.ln(),
            ln_tgg: params.t_gg.ln(),
            ln_q: params.q.ln(),
            n: emit.n(),
            m: emit.m(),
        }
    }

    /// `ln p*(i, j)` in 1-based paper indexing; `-inf` out of range.
    fn ln_emit_at(&self, i: usize, j: usize) -> f64 {
        if i >= 1 && i <= self.n && j >= 1 && j <= self.m {
            self.ln_emit[i - 1][j - 1]
        } else {
            NEG_INF
        }
    }

    fn forward(&self) -> (LogTables, f64) {
        let mut t = LogTables::new(self.n, self.m);
        t.m[0][0] = 0.0;
        // Alignments are global and must open with `x_1 : y_1`, so the
        // border gap cells stay at -inf — only interior cells are filled,
        // exactly like the production loop.
        for i in 1..=self.n {
            for j in 1..=self.m {
                t.m[i][j] = self.ln_emit_at(i, j)
                    + log_add(
                        self.ln_tmm + t.m[i - 1][j - 1],
                        self.ln_tgm + log_add(t.x[i - 1][j - 1], t.y[i - 1][j - 1]),
                    );
                t.x[i][j] =
                    self.ln_q + log_add(self.ln_tmg + t.m[i - 1][j], self.ln_tgg + t.x[i - 1][j]);
                t.y[i][j] =
                    self.ln_q + log_add(self.ln_tmg + t.m[i][j - 1], self.ln_tgg + t.y[i][j - 1]);
            }
        }
        let total = log_add(
            t.m[self.n][self.m],
            log_add(t.x[self.n][self.m], t.y[self.n][self.m]),
        );
        (t, total)
    }

    fn backward(&self) -> (LogTables, f64) {
        let mut t = LogTables::new(self.n, self.m);
        t.m[self.n][self.m] = 0.0;
        t.x[self.n][self.m] = 0.0;
        t.y[self.n][self.m] = 0.0;
        for i in (0..=self.n).rev() {
            for j in (0..=self.m).rev() {
                if i == self.n && j == self.m {
                    continue;
                }
                let diag = self.ln_emit_at(i + 1, j + 1);
                let gaps = log_add(t.x[i + 1][j], t.y[i][j + 1]);
                t.m[i][j] = log_add(
                    diag + self.ln_tmm + t.m[i + 1][j + 1],
                    self.ln_q + self.ln_tmg + gaps,
                );
                t.x[i][j] = log_add(
                    diag + self.ln_tgm + t.m[i + 1][j + 1],
                    self.ln_q + self.ln_tgg + t.x[i + 1][j],
                );
                t.y[i][j] = log_add(
                    diag + self.ln_tgm + t.m[i + 1][j + 1],
                    self.ln_q + self.ln_tgg + t.y[i][j + 1],
                );
            }
        }
        let total = self.ln_emit_at(1, 1) + self.ln_tmm + t.m[1][1];
        (t, total)
    }
}

/// Per-column `z` vectors from the log tables: match mass blended through
/// the PWM rows plus genome-deletion (`G_Y`) mass, all via
/// `exp(f + b - total)`.
fn oracle_column_posteriors(
    phmm: &LogPhmm,
    fwd: &LogTables,
    bwd: &LogTables,
    total: f64,
    pwm: &Pwm,
) -> Vec<[f64; 5]> {
    let mut cols = vec![[0.0f64; 5]; phmm.m];
    if total == NEG_INF {
        return cols;
    }
    for i in 1..=phmm.n {
        let r = pwm.row(i - 1);
        for (j0, col) in cols.iter_mut().enumerate() {
            let j = j0 + 1;
            let pm = (fwd.m[i][j] + bwd.m[i][j] - total).exp();
            for (slot, rk) in col.iter_mut().zip(r) {
                *slot += pm * rk;
            }
            col[4] += (fwd.y[i][j] + bwd.y[i][j] - total).exp();
        }
    }
    cols
}

/// One random PWM/window pair: read length `n`, window length `m`, rows
/// drawn from a normalized positive simplex, windows with occasional
/// unknown (`None`) bases.
fn random_case(rng: &mut ChaCha8Rng) -> (Pwm, Vec<Option<Base>>) {
    let n = rng.random_range(3..11usize);
    let m = n + rng.random_range(0..4usize);
    let rows: Vec<[f64; 4]> = (0..n)
        .map(|_| {
            let mut row = [0.0f64; 4];
            // One plausibly-dominant base plus noise, like a real
            // quality-derived PWM; integer draws keep the shim RNG surface
            // minimal.
            for v in row.iter_mut() {
                *v = (1 + rng.random_range(0..20u32)) as f64;
            }
            row[rng.random_range(0..4usize)] += rng.random_range(20..200u32) as f64;
            let sum: f64 = row.iter().sum();
            for v in row.iter_mut() {
                *v /= sum;
            }
            row
        })
        .collect();
    let window: Vec<Option<Base>> = (0..m)
        .map(|_| {
            if rng.random_bool(0.05) {
                None
            } else {
                Some(BASES[rng.random_range(0..4usize)])
            }
        })
        .collect();
    (Pwm::from_rows(rows), window)
}

fn phmm_tier(out: &mut Outcome, cases: usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0a_c1e);
    let default = PhmmParams::default();
    let gappy = PhmmParams::with_gap_rates(0.05, 0.4, 0.04);
    for case in 0..cases {
        let (pwm, window) = random_case(&mut rng);
        let params = if case % 3 == 2 { &gappy } else { &default };
        let emit = pwm.emission_table(&window, params);
        let phmm = LogPhmm::new(emit.view(), params);
        let (lf, lf_total) = phmm.forward();
        let (lb, lb_total) = phmm.backward();

        // Oracle self-consistency: both sweep directions recover the same
        // total likelihood.
        out.check((lf_total - lb_total).abs() < 1e-9, || {
            format!("oracle fwd/bwd totals disagree on case {case}: {lf_total} vs {lb_total}")
        });

        let prod = PosteriorAlignment::from_emissions(emit.view(), params);
        let prod_ln_total = prod.total().ln();
        out.check((lf_total - prod_ln_total).abs() < 1e-9, || {
            format!(
                "case {case}: production ln(total) {prod_ln_total} vs log-space oracle {lf_total}"
            )
        });

        let oracle_cols = oracle_column_posteriors(&phmm, &lf, &lb, lf_total, &pwm);
        let prod_cols = prod.column_posteriors(&pwm);
        for (j, (oracle, prod_col)) in oracle_cols.iter().zip(&prod_cols).enumerate() {
            let max_delta = oracle
                .iter()
                .zip(&prod_col.probs)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            out.check(max_delta < 1e-9, || {
                format!(
                    "case {case} column {j}: posterior delta {max_delta:.3e} \
                     (oracle {oracle:?} vs production {:?})",
                    prod_col.probs
                )
            });
        }
    }
}

// ---------------------------------------------------------------------------
// LRT oracle: numeric maximisation of the constrained log-likelihoods
// ---------------------------------------------------------------------------

fn xlnp(x: f64, p: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else {
        x * p.ln()
    }
}

/// Maximise a concave `f` over `[lo, hi]` by ternary search.
fn ternary_max(mut lo: f64, mut hi: f64, f: impl Fn(f64) -> f64) -> f64 {
    for _ in 0..200 {
        let m1 = lo + (hi - lo) / 3.0;
        let m2 = hi - (hi - lo) / 3.0;
        if f(m1) < f(m2) {
            lo = m1;
        } else {
            hi = m2;
        }
    }
    f(0.5 * (lo + hi))
}

/// H1 log-likelihood for the monoploid model maximised numerically over
/// the dominant-base probability `p`.
fn oracle_monoploid_h1(z5: f64, rest: f64) -> f64 {
    ternary_max(0.0, 1.0, |p| xlnp(z5, p) + xlnp(rest, (1.0 - p) / 4.0))
}

/// Heterozygous H1 log-likelihood maximised over `(p1, p2)` on the
/// simplex by nested ternary search (jointly concave).
fn oracle_diploid_het_h1(z5: f64, z4: f64, rest: f64) -> f64 {
    ternary_max(0.0, 1.0, |p1| {
        ternary_max(0.0, 1.0 - p1, |p2| {
            xlnp(z5, p1) + xlnp(z4, p2) + xlnp(rest, (1.0 - p1 - p2) / 3.0)
        })
    })
}

/// Random per-position base counts: uniform background noise plus zero,
/// one or two boosted alleles, mirroring hom-ref / hom-alt / het columns.
fn random_counts(rng: &mut ChaCha8Rng) -> BaseCounts {
    let mut z = [0.0f64; 5];
    for v in z.iter_mut() {
        *v = rng.random_range(0..12u32) as f64 / 4.0;
    }
    z[rng.random_range(0..5usize)] += rng.random_range(1..25u32) as f64;
    if rng.random_bool(0.5) {
        z[rng.random_range(0..5usize)] += rng.random_range(1..20u32) as f64;
    }
    BaseCounts(z)
}

/// Chi-square critical value at p = 0.05 with 1 dof — the het/hom model
/// selection cutoff used by the production LRT.
const HET_CUTOFF: f64 = 3.841_458_820_694_124;

fn lrt_tier(out: &mut Outcome, cases: usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(0x17_2a_6e);
    for case in 0..cases {
        let z = random_counts(&mut rng);
        let n = z.total();
        if n <= 0.0 {
            continue;
        }
        let log_h0 = xlnp(n, 0.2);
        let mut sorted = z.0;
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let (z5, z4) = (sorted[0], sorted[1]);

        // Monoploid: closed-form statistic vs numeric maximisation.
        // (`n > 0` was checked above, so the tests are defined.)
        let mono = monoploid_lrt(&z).expect("n > 0");
        let mono_h1 = oracle_monoploid_h1(z5, n - z5);
        let oracle_stat = (-2.0 * (log_h0 - mono_h1)).max(0.0);
        let tol = 1e-6 * oracle_stat.abs().max(1.0);
        out.check((mono.statistic - oracle_stat).abs() < tol, || {
            format!(
                "case {case}: monoploid statistic {} vs oracle {oracle_stat} for z = {:?}",
                mono.statistic, z.0
            )
        });

        // Diploid: the statistic uses the better of the hom/het models;
        // model selection is by the het-gain against the χ² cutoff.
        let dip = diploid_lrt(&z).expect("n > 0");
        let het_h1 = oracle_diploid_het_h1(z5, z4, n - z5 - z4);
        let best_h1 = het_h1.max(mono_h1);
        let oracle_dip_stat = (-2.0 * (log_h0 - best_h1)).max(0.0);
        let dip_tol = 1e-6 * oracle_dip_stat.abs().max(1.0);
        out.check((dip.statistic - oracle_dip_stat).abs() < dip_tol, || {
            format!(
                "case {case}: diploid statistic {} vs oracle {oracle_dip_stat} for z = {:?}",
                dip.statistic, z.0
            )
        });

        // Model selection: the production code declares a heterozygote
        // when the het-gain beats the χ²₁ 95% point. Skip cases landing
        // within ±0.1 of the cutoff, where a legitimate `1e-6`-level
        // maximisation error could flip the decision without either side
        // being wrong.
        let het_gain = (2.0 * (het_h1 - mono_h1)).max(0.0);
        if (het_gain - HET_CUTOFF).abs() > 0.1 {
            let oracle_het = het_gain > HET_CUTOFF;
            let prod_het = dip.alternative == Alternative::TwoBases;
            out.check(prod_het == oracle_het, || {
                format!(
                    "case {case}: het selection {:?} but oracle het-gain {het_gain} \
                     vs cutoff {HET_CUTOFF} for z = {:?}",
                    dip.alternative, z.0
                )
            });
        }
    }
}

// ---------------------------------------------------------------------------
// χ² CDF oracle: Simpson quadrature of the density
// ---------------------------------------------------------------------------

/// Simpson's rule over `[a, b]` with `2k` panels.
fn simpson(a: f64, b: f64, k: usize, f: impl Fn(f64) -> f64) -> f64 {
    let steps = 2 * k;
    let h = (b - a) / steps as f64;
    let mut sum = f(a) + f(b);
    for s in 1..steps {
        let w = if s % 2 == 1 { 4.0 } else { 2.0 };
        sum += w * f(a + s as f64 * h);
    }
    sum * h / 3.0
}

/// `P(X ≤ x)` for χ²(dof) by quadrature. For dof 1 the density has an
/// integrable singularity at 0, removed by the substitution `u = t²`
/// (then `∫ pdf(u) du = ∫ pdf(t²)·2t dt`, a smooth integrand).
fn chi2_cdf_quadrature(dist: &ChiSquared, dof: f64, x: f64) -> f64 {
    if dof < 2.0 {
        // At t = 0 the transformed integrand is 0·∞ numerically; its true
        // limit for dof 1 is 2·e⁰/(√2·Γ(½)) = √(2/π).
        let at_zero = (2.0 / std::f64::consts::PI).sqrt();
        simpson(0.0, x.sqrt(), 4000, |t| {
            if t == 0.0 {
                at_zero
            } else {
                dist.pdf(t * t) * 2.0 * t
            }
        })
    } else {
        simpson(0.0, x, 4000, |t| dist.pdf(t))
    }
}

fn chi2_tier(out: &mut Outcome) {
    for &dof in &[1.0f64, 2.0, 5.0] {
        let dist = ChiSquared::new(dof);
        for &x in &[0.05f64, 0.2, 0.5, 1.0, 2.0, 3.84, 5.0, 9.0, 15.0] {
            let quad = chi2_cdf_quadrature(&dist, dof, x);
            let cdf = dist.cdf(x);
            out.check((cdf - quad).abs() < 1e-8, || {
                format!("chi2(dof {dof}).cdf({x}) = {cdf} vs quadrature {quad}")
            });
            let sf = dist.sf(x);
            out.check((sf - (1.0 - cdf)).abs() < 1e-12, || {
                format!("chi2(dof {dof}).sf({x}) = {sf} inconsistent with cdf {cdf}")
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_tier_passes_fast() {
        let out = run(true);
        assert!(out.checks > 50, "expected a real sweep, got {}", out.checks);
        assert!(out.failures.is_empty(), "failures: {:#?}", out.failures);
    }

    #[test]
    fn log_add_handles_neg_inf() {
        assert_eq!(log_add(NEG_INF, NEG_INF), NEG_INF);
        assert!((log_add(0.0, 0.0) - std::f64::consts::LN_2).abs() < 1e-15);
    }

    #[test]
    fn ternary_search_finds_binomial_mle() {
        // max of 3 ln p + 7 ln(1-p) is at p = 0.3.
        let best = ternary_max(0.0, 1.0, |p| xlnp(3.0, p) + xlnp(7.0, 1.0 - p));
        let exact = xlnp(3.0, 0.3) + xlnp(7.0, 0.7);
        assert!((best - exact).abs() < 1e-10);
    }
}
