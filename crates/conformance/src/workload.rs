//! Seeded randomized workloads shared by the matrix, fault and truth
//! tiers.
//!
//! Everything is derived from a single `u64` seed through `ChaCha8Rng`, so
//! a failing workload can be reproduced from its printed spec alone.

use genome::alphabet::Base;
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use gnumap_core::GnumapConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};
use simulate::{
    apply_snps_monoploid, generate_genome, generate_snp_catalog, GenomeConfig, SnpCatalogConfig,
};

/// Everything needed to build one reproducible workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// RNG seed for genome, SNP catalog and reads.
    pub seed: u64,
    /// Reference genome length in bases.
    pub genome_len: usize,
    /// Planted SNP count.
    pub snp_count: usize,
    /// Mean read coverage.
    pub coverage: f64,
    /// Read length in bases.
    pub read_length: usize,
    /// Repeat families planted into the genome. The driver matrix keeps
    /// this at 0 so every driver sees identical candidate sets; the truth
    /// tier raises it to exercise repeat handling.
    pub repeat_families: usize,
}

impl WorkloadSpec {
    /// The `i`-th spec of the differential matrix: seeds and shapes vary
    /// together so the sweep covers genome size × read length × coverage.
    pub fn matrix(i: usize) -> WorkloadSpec {
        WorkloadSpec {
            seed: 0x5e_ed + 97 * i as u64,
            genome_len: 1_500 + 450 * (i % 5),
            snp_count: 3 + i % 5,
            coverage: 4.0 + (i % 4) as f64,
            read_length: [48, 62, 62, 75][i % 4],
            repeat_families: 0,
        }
    }
}

/// A materialised workload.
pub struct Workload {
    /// The spec it was built from.
    pub spec: WorkloadSpec,
    /// Reference genome.
    pub reference: DnaSeq,
    /// Planted `(position, alternate allele)` truth set.
    pub truth: Vec<(usize, Base)>,
    /// Simulated reads from the SNP-carrying individual.
    pub reads: Vec<SequencedRead>,
    /// Pipeline configuration (defaults; callers may override).
    pub config: GnumapConfig,
}

/// Build the workload for `spec`.
pub fn build(spec: &WorkloadSpec) -> Workload {
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let reference = generate_genome(
        &GenomeConfig {
            length: spec.genome_len,
            repeat_families: spec.repeat_families,
            repeat_length: 120,
            repeat_copies: 2,
            repeat_divergence: 0.02,
            ..GenomeConfig::default()
        },
        &mut rng,
    );
    let snps = generate_snp_catalog(
        &reference,
        &SnpCatalogConfig {
            count: spec.snp_count,
            ..SnpCatalogConfig::default()
        },
        &mut rng,
    );
    let individual = apply_snps_monoploid(&reference, &snps);
    let sim_cfg = ReadSimConfig {
        coverage: spec.coverage,
        read_length: spec.read_length,
        ..ReadSimConfig::default()
    };
    let reads: Vec<SequencedRead> = simulate_reads(
        &ReadSource::Monoploid(&individual),
        sim_cfg.read_count(spec.genome_len),
        &sim_cfg,
        &mut rng,
    )
    .into_iter()
    .map(|r| r.read)
    .collect();
    let truth = snps.iter().map(|s| (s.pos, s.alt)).collect();
    Workload {
        spec: *spec,
        reference,
        truth,
        reads,
        config: GnumapConfig::default(),
    }
}
