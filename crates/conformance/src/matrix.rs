//! The driver-matrix differential runner.
//!
//! One seeded workload at a time, the serial pipeline is the reference and
//! every parallel decomposition — rayon, read-split MPI, genome-split MPI,
//! read-split ring, the streaming engine, and the loopback batching
//! server — must reproduce it *exactly*:
//!
//! * the same `FixedAccumulator` digest (an XOR of per-position avalanche
//!   hashes over the raw count bits, so one flipped ULP anywhere in the
//!   genome changes it);
//! * bit-identical SNP-call wires (`encode_calls` compared at the
//!   `f64::to_bits` level, stricter than `PartialEq` on floats);
//! * the same mapped-read count.
//!
//! Bit-identity is achievable because every driver funnels deposits
//! through the fixed-point accumulator, whose integer adds commute; the
//! matrix exists to catch any driver that re-orders *float* arithmetic
//! (normalisation, margin hand-off, reduction trees) instead.

use crate::workload::{build, Workload, WorkloadSpec};
use crate::Outcome;
use gnumap_core::accum::{FixedAccumulator, NormAccumulator};
use gnumap_core::driver::encode_calls;
use gnumap_core::driver::genome_split::run_genome_split;
use gnumap_core::driver::rayon_driver::run_rayon;
use gnumap_core::driver::read_split::{run_read_split, run_read_split_ring};
use gnumap_core::pipeline::run_serial_with;
use gnumap_core::report::RunReport;

use exec::driver::{run_stream, StreamConfig};
use exec::stream::MemoryStream;

/// Workloads in the sweep (the acceptance floor is 20).
const FULL_WORKLOADS: usize = 20;
const FAST_WORKLOADS: usize = 6;

/// Run the matrix tier.
pub fn run(fast: bool) -> Outcome {
    let mut out = Outcome::default();
    let workloads = if fast { FAST_WORKLOADS } else { FULL_WORKLOADS };
    for i in 0..workloads {
        let spec = WorkloadSpec::matrix(i);
        let wl = build(&spec);
        let reference = run_serial_with::<FixedAccumulator>(&wl.reference, &wl.reads, &wl.config);
        out.check(reference.accumulator_digest.is_some(), || {
            format!("workload {i}: serial driver produced no accumulator digest")
        });
        compare_drivers(&mut out, i, &wl, &reference, fast);
    }
    out
}

/// Wire form of a report's calls, compared bit-for-bit.
fn call_bits(report: &RunReport) -> Vec<u64> {
    encode_calls(&report.calls)
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// Assert `candidate` reproduces `reference` exactly.
fn assert_identical(
    out: &mut Outcome,
    workload: usize,
    driver: &str,
    reference: &RunReport,
    candidate: &RunReport,
) {
    out.check(
        candidate.accumulator_digest == reference.accumulator_digest,
        || {
            format!(
                "workload {workload}: {driver} accumulator digest {:?} != serial {:?}",
                candidate.accumulator_digest, reference.accumulator_digest
            )
        },
    );
    out.check(call_bits(candidate) == call_bits(reference), || {
        format!(
            "workload {workload}: {driver} calls differ from serial \
             ({} vs {} calls)",
            candidate.calls.len(),
            reference.calls.len()
        )
    });
    out.check(candidate.reads_mapped == reference.reads_mapped, || {
        format!(
            "workload {workload}: {driver} mapped {} reads, serial mapped {}",
            candidate.reads_mapped, reference.reads_mapped
        )
    });
}

/// Compare two call lists up to float reordering: matched positions must
/// agree on alleles and statistics (relative 1e-6); a position present on
/// one side only is excused iff its evidence total sits on the `min_total`
/// testing threshold, where summation order legitimately decides whether
/// the position is tested at all. Returns `None` on success, or a
/// description of the first divergence.
fn semantically_equal(
    a: &[gnumap_core::SnpCall],
    b: &[gnumap_core::SnpCall],
    min_total: f64,
) -> Option<String> {
    let (mut ia, mut ib) = (a.iter().peekable(), b.iter().peekable());
    loop {
        match (ia.peek(), ib.peek()) {
            (None, None) => return None,
            (Some(ca), Some(cb)) if ca.pos == cb.pos => {
                if ca.allele != cb.allele
                    || ca.second_allele != cb.second_allele
                    || (ca.statistic - cb.statistic).abs() > 1e-6 * cb.statistic.abs().max(1.0)
                {
                    return Some(format!(
                        "position {}: alleles/statistic differ ({} vs {})",
                        ca.pos, ca.statistic, cb.statistic
                    ));
                }
                ia.next();
                ib.next();
            }
            // One-sided call: pick whichever side is behind (or the only
            // one left) and check it is a threshold-edge site.
            (sa, sb) => {
                let lone = match (sa, sb) {
                    (Some(ca), Some(cb)) if ca.pos < cb.pos => ia.next().unwrap(),
                    (Some(_), Some(_)) | (None, Some(_)) => ib.next().unwrap(),
                    (Some(_), None) => ia.next().unwrap(),
                    (None, None) => unreachable!(),
                };
                let total: f64 = lone.counts.iter().sum();
                if (total - min_total).abs() > 1e-6 {
                    return Some(format!(
                        "position {} called on one side only with evidence total {total} \
                         (not a min_total = {min_total} edge)",
                        lone.pos
                    ));
                }
            }
        }
    }
}

fn compare_drivers(
    out: &mut Outcome,
    workload: usize,
    wl: &Workload,
    reference: &RunReport,
    fast: bool,
) {
    // Vary the parallel shape with the workload index so the sweep covers
    // worker/rank/batch-size combinations without a full cross product.
    let threads = [2, 3, 4][workload % 3];
    let ranks = [2, 3, 5][workload % 3];

    let rayon = run_rayon::<FixedAccumulator>(&wl.reference, &wl.reads, &wl.config, threads);
    assert_identical(
        out,
        workload,
        &format!("rayon(threads {threads})"),
        reference,
        &rayon,
    );

    match run_read_split::<FixedAccumulator>(&wl.reference, &wl.reads, &wl.config, ranks) {
        Ok(r) => assert_identical(
            out,
            workload,
            &format!("read-split(ranks {ranks})"),
            reference,
            &r,
        ),
        Err(e) => out.fail(format!("workload {workload}: read-split failed: {e}")),
    }

    match run_genome_split::<FixedAccumulator>(&wl.reference, &wl.reads, &wl.config, ranks) {
        Ok(r) => assert_identical(
            out,
            workload,
            &format!("genome-split(ranks {ranks})"),
            reference,
            &r,
        ),
        Err(e) => out.fail(format!("workload {workload}: genome-split failed: {e}")),
    }

    // The ring variant is pinned to the float norm accumulator internally,
    // so it lives in a different numeric domain: positions whose total
    // mass sits exactly on the `min_total` testing threshold can be
    // included or excluded depending on quantization, and summation order
    // perturbs low bits. Its contract is therefore semantic agreement with
    // a *serial norm-accumulator* run: the same sites and alleles, with
    // statistics equal up to float reordering.
    if !fast {
        let norm_ref = run_serial_with::<NormAccumulator>(&wl.reference, &wl.reads, &wl.config);
        match run_read_split_ring(&wl.reference, &wl.reads, &wl.config, ranks) {
            Ok(r) => {
                let verdict =
                    semantically_equal(&r.calls, &norm_ref.calls, wl.config.calling.min_total);
                out.check(verdict.is_none(), || {
                    format!(
                        "workload {workload}: read-split-ring(ranks {ranks}) calls \
                         diverge from the serial norm run: {}",
                        verdict.unwrap_or_default()
                    )
                });
            }
            Err(e) => out.fail(format!("workload {workload}: read-split-ring failed: {e}")),
        }
    }

    let sc = StreamConfig {
        workers: [1, 2, 4][workload % 3],
        batch_size: [16, 32, 64][workload % 3],
        chunk_size: [64, 128][workload % 2],
        batches_per_worker: 1 + workload % 3,
        shards: [4, 16, 32][workload % 3],
        ..StreamConfig::default()
    };
    let mut stream = MemoryStream::new(wl.reads.clone());
    match run_stream::<FixedAccumulator>(&wl.reference, &mut stream, &wl.config, &sc) {
        Ok(r) => assert_identical(
            out,
            workload,
            &format!(
                "stream(workers {}, batch {}, shards {})",
                sc.workers, sc.batch_size, sc.shards
            ),
            reference,
            &r,
        ),
        Err(e) => out.fail(format!("workload {workload}: stream driver failed: {e}")),
    }

    // The serving layer: a loopback TCP round trip through the batching
    // daemon must also be bit-identical. One workload suffices — the
    // server reuses the per-session sharded fixed-point accumulator, so
    // this row guards the wire + session plumbing, not the arithmetic.
    if workload == 0 {
        compare_server(out, workload, wl, reference);
    }
}

/// The `server` row: run the workload through a real loopback daemon.
fn compare_server(out: &mut Outcome, workload: usize, wl: &Workload, reference: &RunReport) {
    let cfg = server::ServerConfig {
        workers: 2,
        batch_size: 16,
        ..Default::default()
    };
    let handle = match server::start(wl.reference.clone(), wl.config, cfg, "127.0.0.1:0") {
        Ok(h) => h,
        Err(e) => {
            out.fail(format!("workload {workload}: server failed to start: {e}"));
            return;
        }
    };
    let result = (|| -> Result<server::CallResult, String> {
        let mut client = server::Client::connect(handle.addr()).map_err(|e| e.to_string())?;
        let session = client
            .open_session(wl.config.calling.into())
            .map_err(|e| e.to_string())?;
        for chunk in wl.reads.chunks(32) {
            client
                .submit_reads(session, chunk)
                .map_err(|e| e.to_string())?;
        }
        client.finalize(session, 120_000).map_err(|e| e.to_string())
    })();
    handle.shutdown();
    handle.join();
    match result {
        Ok(r) => {
            let report = RunReport {
                calls: r.calls,
                reads_processed: r.reads_processed as usize,
                reads_mapped: r.reads_mapped as usize,
                elapsed_secs: 0.0,
                accumulator_bytes: 0,
                traffic: None,
                rank_cpu_secs: Vec::new(),
                stream: None,
                accumulator_digest: Some(r.digest),
            };
            assert_identical(
                out,
                workload,
                "server(loopback, workers 2, batch 16)",
                reference,
                &report,
            );
        }
        Err(e) => out.fail(format!(
            "workload {workload}: server round trip failed: {e}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_tier_passes_fast() {
        let out = run(true);
        assert!(out.checks > 30, "expected a real sweep, got {}", out.checks);
        assert!(out.failures.is_empty(), "failures: {:#?}", out.failures);
    }
}
