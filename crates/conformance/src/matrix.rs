//! The driver-matrix differential runner.
//!
//! One seeded workload at a time, the serial pipeline is the reference and
//! **every driver in the [`engine::DriverRegistry`]** must reproduce it.
//! The rows are not hand-listed: the matrix iterates the registry, so a
//! newly registered execution mode is pulled into the differential sweep
//! automatically — and a driver the matrix does not know how to shape
//! fails the tier outright rather than silently escaping coverage.
//!
//! Bit-exact rows (everything funnelling through `FixedAccumulator`) must
//! match the serial run on:
//!
//! * the same `FixedAccumulator` digest (an XOR of per-position avalanche
//!   hashes over the raw count bits, so one flipped ULP anywhere in the
//!   genome changes it);
//! * bit-identical SNP-call wires (`encode_calls` compared at the
//!   `f64::to_bits` level, stricter than `PartialEq` on floats);
//! * the same mapped-read count.
//!
//! Bit-identity is achievable because every such driver funnels deposits
//! through the fixed-point accumulator, whose integer adds commute; the
//! matrix exists to catch any driver that re-orders *float* arithmetic
//! (normalisation, margin hand-off, reduction trees) instead. The one
//! float-pinned driver (`read-split-ring`) is held to semantic agreement
//! with a serial norm-accumulator run instead.

use crate::workload::{build, Workload, WorkloadSpec};
use crate::Outcome;
use engine::{Driver, DriverRegistry, EngineError, NullSink, ReadSource, RunContext};
use gnumap_core::accum::AccumulatorMode;
use gnumap_core::driver::encode_calls;
use gnumap_core::report::RunReport;

/// Workloads in the sweep (the acceptance floor is 20).
const FULL_WORKLOADS: usize = 20;
const FAST_WORKLOADS: usize = 6;

/// Run the matrix tier.
pub fn run(fast: bool) -> Outcome {
    let mut out = Outcome::default();
    let registry = DriverRegistry::standard();
    let workloads = if fast { FAST_WORKLOADS } else { FULL_WORKLOADS };
    for i in 0..workloads {
        let spec = WorkloadSpec::matrix(i);
        let wl = build(&spec);
        let mut ctx = RunContext::new(&wl.reference);
        ctx.config = wl.config;
        ctx.config.accumulator = AccumulatorMode::Fixed;
        ctx.seed = spec.seed;
        let reference = match run_driver(&registry, "serial", &ctx, &wl) {
            Ok(r) => r,
            Err(e) => {
                out.fail(format!("workload {i}: serial reference failed: {e}"));
                continue;
            }
        };
        out.check(reference.accumulator_digest.is_some(), || {
            format!("workload {i}: serial driver produced no accumulator digest")
        });
        compare_drivers(&mut out, i, &registry, &wl, &reference, fast);
    }
    out
}

/// Resolve `name` in the registry and run it over the workload's reads.
fn run_driver(
    registry: &DriverRegistry,
    name: &str,
    ctx: &RunContext<'_>,
    wl: &Workload,
) -> Result<RunReport, EngineError> {
    registry
        .get(name)?
        .run(ctx, ReadSource::Slice(&wl.reads), &mut NullSink)
}

/// Wire form of a report's calls, compared bit-for-bit.
fn call_bits(report: &RunReport) -> Vec<u64> {
    encode_calls(&report.calls)
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// Assert `candidate` reproduces `reference` exactly.
fn assert_identical(
    out: &mut Outcome,
    workload: usize,
    driver: &str,
    reference: &RunReport,
    candidate: &RunReport,
) {
    out.check(
        candidate.accumulator_digest == reference.accumulator_digest,
        || {
            format!(
                "workload {workload}: {driver} accumulator digest {:?} != serial {:?}",
                candidate.accumulator_digest, reference.accumulator_digest
            )
        },
    );
    out.check(call_bits(candidate) == call_bits(reference), || {
        format!(
            "workload {workload}: {driver} calls differ from serial \
             ({} vs {} calls)",
            candidate.calls.len(),
            reference.calls.len()
        )
    });
    out.check(candidate.reads_mapped == reference.reads_mapped, || {
        format!(
            "workload {workload}: {driver} mapped {} reads, serial mapped {}",
            candidate.reads_mapped, reference.reads_mapped
        )
    });
}

/// Compare two call lists up to float reordering: matched positions must
/// agree on alleles and statistics (relative 1e-6); a position present on
/// one side only is excused iff its evidence total sits on the `min_total`
/// testing threshold, where summation order legitimately decides whether
/// the position is tested at all. Returns `None` on success, or a
/// description of the first divergence.
fn semantically_equal(
    a: &[gnumap_core::SnpCall],
    b: &[gnumap_core::SnpCall],
    min_total: f64,
) -> Option<String> {
    let (mut ia, mut ib) = (a.iter().peekable(), b.iter().peekable());
    loop {
        match (ia.peek(), ib.peek()) {
            (None, None) => return None,
            (Some(ca), Some(cb)) if ca.pos == cb.pos => {
                if ca.allele != cb.allele
                    || ca.second_allele != cb.second_allele
                    || (ca.statistic - cb.statistic).abs() > 1e-6 * cb.statistic.abs().max(1.0)
                {
                    return Some(format!(
                        "position {}: alleles/statistic differ ({} vs {})",
                        ca.pos, ca.statistic, cb.statistic
                    ));
                }
                ia.next();
                ib.next();
            }
            // One-sided call: pick whichever side is behind (or the only
            // one left) and check it is a threshold-edge site.
            (sa, sb) => {
                let lone = match (sa, sb) {
                    (Some(ca), Some(cb)) if ca.pos < cb.pos => ia.next().unwrap(),
                    (Some(_), Some(_)) | (None, Some(_)) => ib.next().unwrap(),
                    (Some(_), None) => ia.next().unwrap(),
                    (None, None) => unreachable!(),
                };
                let total: f64 = lone.counts.iter().sum();
                if (total - min_total).abs() > 1e-6 {
                    return Some(format!(
                        "position {} called on one side only with evidence total {total} \
                         (not a min_total = {min_total} edge)",
                        lone.pos
                    ));
                }
            }
        }
    }
}

/// How one registry driver is shaped and judged for workload `i`.
///
/// Every driver the registry knows must resolve to a row here; an
/// unmatched name is recorded as a tier failure so that registering a new
/// execution mode without extending the matrix cannot pass verification.
fn compare_drivers(
    out: &mut Outcome,
    workload: usize,
    registry: &DriverRegistry,
    wl: &Workload,
    reference: &RunReport,
    fast: bool,
) {
    // Vary the parallel shape with the workload index so the sweep covers
    // worker/rank/batch-size combinations without a full cross product.
    let threads = [2, 3, 4][workload % 3];
    let ranks = [2, 3, 5][workload % 3];

    for driver in registry.all() {
        let mut ctx = RunContext::new(&wl.reference);
        ctx.config = wl.config;
        ctx.config.accumulator = AccumulatorMode::Fixed;
        ctx.seed = WorkloadSpec::matrix(workload).seed;

        match driver.name() {
            // The reference row itself.
            "serial" => {}
            "rayon" => {
                ctx.threads = threads;
                run_and_assert(
                    out,
                    workload,
                    driver,
                    &format!("rayon(threads {threads})"),
                    &ctx,
                    wl,
                    reference,
                );
            }
            "read-split" | "genome-split" => {
                ctx.threads = ranks;
                run_and_assert(
                    out,
                    workload,
                    driver,
                    &format!("{}(ranks {ranks})", driver.name()),
                    &ctx,
                    wl,
                    reference,
                );
            }
            // The ring variant is pinned to the float norm accumulator
            // internally, so it lives in a different numeric domain:
            // positions whose total mass sits exactly on the `min_total`
            // testing threshold can be included or excluded depending on
            // quantization, and summation order perturbs low bits. Its
            // contract is therefore semantic agreement with a *serial
            // norm-accumulator* run: the same sites and alleles, with
            // statistics equal up to float reordering.
            "read-split-ring" => {
                if fast {
                    continue;
                }
                ctx.config.accumulator = AccumulatorMode::Norm;
                ctx.threads = ranks;
                let norm_ref = match run_driver(registry, "serial", &ctx, wl) {
                    Ok(r) => r,
                    Err(e) => {
                        out.fail(format!("workload {workload}: serial norm run failed: {e}"));
                        continue;
                    }
                };
                match driver.run(&ctx, ReadSource::Slice(&wl.reads), &mut NullSink) {
                    Ok(r) => {
                        let verdict = semantically_equal(
                            &r.calls,
                            &norm_ref.calls,
                            wl.config.calling.min_total,
                        );
                        out.check(verdict.is_none(), || {
                            format!(
                                "workload {workload}: read-split-ring(ranks {ranks}) calls \
                                 diverge from the serial norm run: {}",
                                verdict.unwrap_or_default()
                            )
                        });
                    }
                    Err(e) => out.fail(format!("workload {workload}: read-split-ring failed: {e}")),
                }
            }
            "stream" => {
                ctx.threads = [1, 2, 4][workload % 3];
                ctx.batch_size = [16, 32, 64][workload % 3];
                ctx.chunk_size = [64, 128][workload % 2];
                ctx.batches_per_worker = 1 + workload % 3;
                ctx.shards = [4, 16, 32][workload % 3];
                run_and_assert(
                    out,
                    workload,
                    driver,
                    &format!(
                        "stream(workers {}, batch {}, shards {})",
                        ctx.threads, ctx.batch_size, ctx.shards
                    ),
                    &ctx,
                    wl,
                    reference,
                );
            }
            // The serving layer: a loopback TCP round trip through the
            // batching daemon must also be bit-identical. One workload
            // suffices — the server reuses the per-session sharded
            // fixed-point accumulator, so this row guards the wire +
            // session plumbing, not the arithmetic.
            "server" => {
                if workload != 0 {
                    continue;
                }
                ctx.threads = 2;
                ctx.batch_size = 16;
                ctx.chunk_size = 32;
                run_and_assert(
                    out,
                    workload,
                    driver,
                    "server(loopback, workers 2, batch 16)",
                    &ctx,
                    wl,
                    reference,
                );
            }
            other => out.fail(format!(
                "workload {workload}: registry driver {other:?} has no matrix row — \
                 extend compare_drivers before registering new execution modes"
            )),
        }
    }
}

fn run_and_assert(
    out: &mut Outcome,
    workload: usize,
    driver: &dyn Driver,
    label: &str,
    ctx: &RunContext<'_>,
    wl: &Workload,
    reference: &RunReport,
) {
    match driver.run(ctx, ReadSource::Slice(&wl.reads), &mut NullSink) {
        Ok(r) => assert_identical(out, workload, label, reference, &r),
        Err(e) => out.fail(format!("workload {workload}: {label} failed: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_tier_passes_fast() {
        let out = run(true);
        assert!(out.checks > 30, "expected a real sweep, got {}", out.checks);
        assert!(out.failures.is_empty(), "failures: {:#?}", out.failures);
    }

    /// Registering a driver the matrix does not know fails the tier
    /// instead of silently escaping differential coverage.
    #[test]
    fn unknown_registry_drivers_fail_the_matrix() {
        struct Rogue;
        impl Driver for Rogue {
            fn name(&self) -> &'static str {
                "rogue"
            }
            fn description(&self) -> &'static str {
                "a driver without a matrix row"
            }
            fn capabilities(&self) -> engine::Capabilities {
                engine::Capabilities {
                    accumulators: &[AccumulatorMode::Fixed],
                    parallel: false,
                    streaming: false,
                    checkpointing: false,
                    bit_exact_parallel: true,
                }
            }
            fn run(
                &self,
                _ctx: &RunContext<'_>,
                _source: ReadSource<'_>,
                _sink: &mut dyn engine::CallSink,
            ) -> Result<RunReport, EngineError> {
                unreachable!("the matrix must fail before running a rowless driver")
            }
        }

        let mut registry = DriverRegistry::standard();
        registry.register(Box::new(Rogue));
        let wl = build(&WorkloadSpec::matrix(0));
        let mut ctx = RunContext::new(&wl.reference);
        ctx.config = wl.config;
        ctx.config.accumulator = AccumulatorMode::Fixed;
        let reference = run_driver(&registry, "serial", &ctx, &wl).unwrap();

        let mut out = Outcome::default();
        compare_drivers(&mut out, 0, &registry, &wl, &reference, true);
        assert!(
            out.failures.iter().any(|f| f.contains("no matrix row")),
            "failures: {:#?}",
            out.failures
        );
    }
}
