//! Truth-set gate: end-to-end accuracy on planted SNPs.
//!
//! The other tiers prove the drivers agree with each other and with the
//! oracles; this one proves the agreed-upon answer is *useful*. Reads are
//! simulated from an individual carrying a known SNP catalog (with
//! sequencing errors and repeat families switched on, so mapping is not
//! trivial), and the called SNPs are scored against the catalog with
//! sensitivity and precision floors.

use crate::workload::{build, WorkloadSpec};
use crate::Outcome;
use engine::{DriverRegistry, NullSink, ReadSource, RunContext};
use gnumap_core::accum::AccumulatorMode;
use gnumap_core::report::score_snp_calls;

/// Accuracy floors. The seed corpus holds ≥ 7/8 sensitivity with ≤ 1
/// false positive at coverage 14 (see `pipeline::tests`); these floors
/// leave headroom for the harsher repeat-bearing genomes used here.
const MIN_SENSITIVITY: f64 = 0.75;
const MIN_PRECISION: f64 = 0.80;

fn truth_specs(fast: bool) -> Vec<WorkloadSpec> {
    let seeds: &[u64] = if fast {
        &[0x7d_01, 0x7d_02]
    } else {
        &[0x7d_01, 0x7d_02, 0x7d_03, 0x7d_04, 0x7d_05]
    };
    seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| WorkloadSpec {
            seed,
            genome_len: 3_000 + 500 * i,
            snp_count: 8,
            coverage: 13.0 + i as f64 * 0.5,
            read_length: 62,
            repeat_families: 1,
        })
        .collect()
}

/// Run the truth tier.
pub fn run(fast: bool) -> Outcome {
    let mut out = Outcome::default();
    let registry = DriverRegistry::standard();
    for spec in truth_specs(fast) {
        let wl = build(&spec);
        let mut ctx = RunContext::new(&wl.reference);
        ctx.config = wl.config;
        ctx.config.accumulator = AccumulatorMode::Fixed;
        ctx.seed = spec.seed;
        let report = registry
            .get("serial")
            .expect("serial driver registered")
            .run(&ctx, ReadSource::Slice(&wl.reads), &mut NullSink)
            .expect("serial truth run");
        let accuracy = score_snp_calls(&report.calls, &wl.truth);
        let sensitivity = accuracy.sensitivity();
        let precision = accuracy.precision();
        out.check(sensitivity >= MIN_SENSITIVITY, || {
            format!(
                "seed {:#x}: sensitivity {sensitivity:.3} below {MIN_SENSITIVITY} \
                 ({} of {} planted SNPs found)",
                spec.seed,
                accuracy.true_positives,
                wl.truth.len()
            )
        });
        out.check(precision >= MIN_PRECISION, || {
            format!(
                "seed {:#x}: precision {precision:.3} below {MIN_PRECISION} \
                 ({} false positives)",
                spec.seed, accuracy.false_positives
            )
        });
        out.check(
            report.reads_mapped as f64 >= wl.reads.len() as f64 * 0.9,
            || {
                format!(
                    "seed {:#x}: only {} of {} reads mapped",
                    spec.seed,
                    report.reads_mapped,
                    wl.reads.len()
                )
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tier_passes_fast() {
        let out = run(true);
        assert!(out.checks >= 6, "expected a real sweep, got {}", out.checks);
        assert!(out.failures.is_empty(), "failures: {:#?}", out.failures);
    }
}
