//! Deterministic fault injection.
//!
//! Every injected fault must surface as a *typed* `Err` — never a panic,
//! never a silently wrong result — and every recoverable fault (a kill
//! between scheduling windows) must recover *exactly*: the resumed run
//! reproduces the unfaulted run's accumulator digest and call wire
//! bit-for-bit.
//!
//! All pipeline runs go through [`engine::DriverRegistry`], so the faults
//! exercise the same code path the CLI and benchmarks use; exec-layer
//! faults surface as [`EngineError::Exec`] wrapping the original typed
//! `ExecError`.
//!
//! Faults covered:
//!
//! * a read source that fails mid-stream (`ExecError::Source`);
//! * a read source that stutters (tiny, uneven chunks) — not an error at
//!   all, and the engine must produce identical output;
//! * checkpoint files that are truncated, bit-flipped, foreign, or taken
//!   against a different reference (`ExecError::Checkpoint`);
//! * call wires truncated in MPI transit (`CallWireError`);
//! * a kill at every window barrier `k`, followed by a resume
//!   (`ExecError::Aborted`, then bit-identical recovery).

use crate::workload::{build, Workload, WorkloadSpec};
use crate::Outcome;
use engine::{DriverRegistry, EngineError, NullSink, ReadSource, RunContext};
use exec::driver::CheckpointPolicy;
use exec::stream::{MemoryStream, ReadStream};
use exec::{Checkpoint, ExecError};
use genome::read::SequencedRead;
use gnumap_core::accum::AccumulatorMode;
use gnumap_core::driver::{decode_calls, encode_calls};
use gnumap_core::report::RunReport;
use mpisim::World;
use std::path::PathBuf;

/// Run the fault tier.
pub fn run(fast: bool) -> Outcome {
    let mut out = Outcome::default();
    let registry = DriverRegistry::standard();
    let wl = build(&WorkloadSpec {
        seed: 0xfa_17,
        genome_len: 1_600,
        snp_count: 4,
        coverage: 5.0,
        read_length: 62,
        repeat_families: 0,
    });

    failing_source(&mut out, &registry, &wl);
    stuttering_source(&mut out, &registry, &wl);
    corrupt_checkpoints(&mut out, &registry, &wl);
    corrupt_wire(&mut out, &registry, &wl);
    kill_resume_sweep(&mut out, &registry, &wl, fast);
    out
}

/// A scratch directory unique to this process; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("conformance-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// The streaming shape every fault scenario uses.
fn stream_ctx<'r>(wl: &'r Workload) -> RunContext<'r> {
    let mut ctx = RunContext::new(&wl.reference);
    ctx.config = wl.config;
    ctx.config.accumulator = AccumulatorMode::Fixed;
    ctx.threads = 2;
    ctx.batch_size = 16;
    ctx.chunk_size = 32;
    ctx.batches_per_worker = 2;
    ctx.shards = 8;
    ctx
}

/// Run the registry's stream driver over a (possibly faulty) source.
fn run_stream_via(
    registry: &DriverRegistry,
    ctx: &RunContext<'_>,
    stream: &mut dyn ReadStream,
) -> Result<RunReport, EngineError> {
    registry
        .get("stream")
        .expect("stream driver registered")
        .run(ctx, ReadSource::Stream(stream), &mut NullSink)
}

fn call_bits(report: &RunReport) -> Vec<u64> {
    encode_calls(&report.calls)
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

// ---------------------------------------------------------------------------
// Faulty read sources
// ---------------------------------------------------------------------------

/// Delivers reads normally, then fails with a typed source error after
/// `fail_after` reads have been handed out.
struct FailingStream {
    inner: MemoryStream,
    delivered: usize,
    fail_after: usize,
}

impl ReadStream for FailingStream {
    fn next_chunk(&mut self, max: usize) -> Result<Vec<SequencedRead>, ExecError> {
        if self.delivered >= self.fail_after {
            return Err(ExecError::Source(format!(
                "injected fault after {} reads",
                self.delivered
            )));
        }
        let budget = max.min(self.fail_after - self.delivered);
        let chunk = self.inner.next_chunk(budget)?;
        self.delivered += chunk.len();
        Ok(chunk)
    }

    fn skip(&mut self, n: usize) -> Result<(), ExecError> {
        self.inner.skip(n)
    }
}

/// Delivers reads in tiny uneven chunks (1, 2, 3, 1, 2, 3, …), never an
/// empty chunk before true end of stream. Not a fault per se — the engine
/// must be insensitive to chunk geometry.
struct StutteringStream {
    inner: MemoryStream,
    step: usize,
}

impl ReadStream for StutteringStream {
    fn next_chunk(&mut self, max: usize) -> Result<Vec<SequencedRead>, ExecError> {
        let stutter = 1 + self.step % 3;
        self.step += 1;
        self.inner.next_chunk(max.min(stutter))
    }

    fn skip(&mut self, n: usize) -> Result<(), ExecError> {
        self.inner.skip(n)
    }
}

fn failing_source(out: &mut Outcome, registry: &DriverRegistry, wl: &Workload) {
    let mut stream = FailingStream {
        inner: MemoryStream::new(wl.reads.clone()),
        delivered: 0,
        fail_after: wl.reads.len() / 2,
    };
    match run_stream_via(registry, &stream_ctx(wl), &mut stream) {
        Err(EngineError::Exec(ExecError::Source(msg))) => out
            .check(msg.contains("injected fault"), || {
                format!("source error lost the injected message: {msg}")
            }),
        other => out.fail(format!(
            "mid-stream source failure should be ExecError::Source, got {:?}",
            other.map(|r| r.reads_processed)
        )),
    }
}

fn stuttering_source(out: &mut Outcome, registry: &DriverRegistry, wl: &Workload) {
    let ctx = stream_ctx(wl);
    let mut plain = MemoryStream::new(wl.reads.clone());
    let baseline = run_stream_via(registry, &ctx, &mut plain).expect("baseline stream run");
    let mut stutter = StutteringStream {
        inner: MemoryStream::new(wl.reads.clone()),
        step: 0,
    };
    match run_stream_via(registry, &ctx, &mut stutter) {
        Ok(r) => {
            out.check(
                r.accumulator_digest == baseline.accumulator_digest
                    && call_bits(&r) == call_bits(&baseline)
                    && r.reads_mapped == baseline.reads_mapped,
                || "stuttering source changed the result".to_string(),
            );
        }
        Err(e) => out.fail(format!("stuttering source should not error: {e}")),
    }
}

// ---------------------------------------------------------------------------
// Checkpoint corruption
// ---------------------------------------------------------------------------

/// Resume `wl` from the checkpoint at `path` and classify the outcome.
fn resume_outcome(
    registry: &DriverRegistry,
    wl: &Workload,
    path: PathBuf,
) -> Result<RunReport, EngineError> {
    let mut stream = MemoryStream::new(wl.reads.clone());
    let mut ctx = stream_ctx(wl);
    ctx.checkpoint = Some(CheckpointPolicy {
        path,
        every_batches: 1,
        resume: true,
    });
    run_stream_via(registry, &ctx, &mut stream)
}

fn expect_checkpoint_error(out: &mut Outcome, what: &str, result: Result<RunReport, EngineError>) {
    match result {
        Err(EngineError::Exec(ExecError::Checkpoint(_))) => out.check(true, String::new),
        other => out.fail(format!(
            "{what} should resume with ExecError::Checkpoint, got {:?}",
            other.map(|r| r.reads_processed)
        )),
    }
}

fn corrupt_checkpoints(out: &mut Outcome, registry: &DriverRegistry, wl: &Workload) {
    let scratch = Scratch::new("ckpt");

    // A genuine checkpoint to mutilate: produced by a killed run.
    let genuine = scratch.file("genuine.ckpt");
    let mut ctx = stream_ctx(wl);
    ctx.checkpoint = Some(CheckpointPolicy {
        path: genuine.clone(),
        every_batches: 1,
        resume: false,
    });
    ctx.abort_after_batches = Some(1);
    let killed = run_stream_via(registry, &ctx, &mut MemoryStream::new(wl.reads.clone()));
    out.check(
        matches!(killed, Err(EngineError::Exec(ExecError::Aborted { .. }))),
        || format!("kill hook should yield ExecError::Aborted, got {killed:?}"),
    );
    let bytes = std::fs::read(&genuine).expect("killed run left a checkpoint");

    // Truncation (a torn copy, not a torn write — those are atomic).
    let truncated = scratch.file("truncated.ckpt");
    std::fs::write(&truncated, &bytes[..bytes.len() - 9]).unwrap();
    expect_checkpoint_error(
        out,
        "truncated checkpoint",
        resume_outcome(registry, wl, truncated),
    );

    // A flipped bit deep in the payload.
    let flipped = scratch.file("flipped.ckpt");
    let mut flipped_bytes = bytes.clone();
    let mid = flipped_bytes.len() / 2;
    flipped_bytes[mid] ^= 0x10;
    std::fs::write(&flipped, &flipped_bytes).unwrap();
    expect_checkpoint_error(
        out,
        "bit-flipped checkpoint",
        resume_outcome(registry, wl, flipped),
    );

    // A file that was never a checkpoint.
    let foreign = scratch.file("foreign.ckpt");
    std::fs::write(&foreign, b"-- lock file, do not edit --").unwrap();
    expect_checkpoint_error(out, "foreign file", resume_outcome(registry, wl, foreign));

    // A valid checkpoint for a different reference length.
    let mismatched = scratch.file("mismatched.ckpt");
    exec::checkpoint::save(
        &mismatched,
        &Checkpoint {
            cursor: 0,
            reads_mapped: 0,
            counts: vec![[0.0; 5]; wl.reference.len() + 7],
        },
    )
    .unwrap();
    expect_checkpoint_error(
        out,
        "wrong-reference checkpoint",
        resume_outcome(registry, wl, mismatched),
    );
}

// ---------------------------------------------------------------------------
// Wire corruption in MPI transit
// ---------------------------------------------------------------------------

fn corrupt_wire(out: &mut Outcome, registry: &DriverRegistry, wl: &Workload) {
    let ctx = stream_ctx(wl);
    let serial = registry
        .get("serial")
        .expect("serial driver registered")
        .run(&ctx, ReadSource::Slice(&wl.reads), &mut NullSink)
        .expect("serial reference run");
    let wire = encode_calls(&serial.calls);

    // Ship a truncated wire rank 0 → rank 1 through the simulated
    // transport; the receiver must reject it, typed.
    let world = World::new(2);
    const TAG: u64 = 77;
    let verdicts = world.run(|rank| {
        if rank.id() == 0 {
            let mut bad = wire.clone();
            bad.push(0.125); // one stray f64: length no longer a call multiple
            rank.send(1, TAG, bad);
            None
        } else {
            let received: Vec<f64> = rank.recv(0, TAG);
            Some(decode_calls(&received))
        }
    });
    match &verdicts[1] {
        Some(Err(e)) => out.check(e.len == wire.len() + 1, || {
            format!(
                "wire error reported length {}, sent {}",
                e.len,
                wire.len() + 1
            )
        }),
        other => out.fail(format!(
            "truncated call wire must fail decode, got {other:?}"
        )),
    }

    // An intact wire round-trips: same transport, same decoder.
    let ok = world.run(|rank| {
        if rank.id() == 0 {
            rank.send(1, TAG, wire.clone());
            true
        } else {
            let received: Vec<f64> = rank.recv(0, TAG);
            decode_calls(&received).is_ok()
        }
    });
    out.check(ok[1], || "intact call wire failed to decode".to_string());
}

// ---------------------------------------------------------------------------
// Kill-at-window-k / resume sweep
// ---------------------------------------------------------------------------

fn kill_resume_sweep(out: &mut Outcome, registry: &DriverRegistry, wl: &Workload, fast: bool) {
    let scratch = Scratch::new("kill");
    let ctx = stream_ctx(wl);
    let mut plain = MemoryStream::new(wl.reads.clone());
    let unfaulted = run_stream_via(registry, &ctx, &mut plain).expect("unfaulted run");

    let total_batches = wl.reads.len().div_ceil(ctx.batch_size);
    let step = if fast { 3 } else { 1 };
    for k in (1..=total_batches).step_by(step) {
        let path = scratch.file(&format!("kill-{k}.ckpt"));
        let mut kill_ctx = stream_ctx(wl);
        kill_ctx.checkpoint = Some(CheckpointPolicy {
            path: path.clone(),
            every_batches: 1,
            resume: false,
        });
        kill_ctx.abort_after_batches = Some(k);
        let killed = run_stream_via(
            registry,
            &kill_ctx,
            &mut MemoryStream::new(wl.reads.clone()),
        );
        match killed {
            Err(EngineError::Exec(ExecError::Aborted { cursor })) => {
                out.check(cursor > 0 && cursor <= wl.reads.len(), || {
                    format!("kill at batch {k}: implausible cursor {cursor}")
                });
            }
            Ok(_) if k >= total_batches => {
                // The kill point can land past the last window when the
                // final window is short; the run just completes.
            }
            other => {
                out.fail(format!(
                    "kill at batch {k} should abort, got {:?}",
                    other.map(|r| r.reads_processed)
                ));
                continue;
            }
        }

        let resumed = resume_outcome(registry, wl, path);
        match resumed {
            Ok(r) => out.check(
                r.accumulator_digest == unfaulted.accumulator_digest
                    && call_bits(&r) == call_bits(&unfaulted)
                    && r.reads_mapped == unfaulted.reads_mapped,
                || {
                    format!(
                        "resume after kill at batch {k} diverged from the unfaulted run \
                         (digest {:?} vs {:?}, mapped {} vs {})",
                        r.accumulator_digest,
                        unfaulted.accumulator_digest,
                        r.reads_mapped,
                        unfaulted.reads_mapped
                    )
                },
            ),
            Err(e) => out.fail(format!("resume after kill at batch {k} failed: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_tier_passes_fast() {
        let out = run(true);
        assert!(out.checks > 10, "expected a real sweep, got {}", out.checks);
        assert!(out.failures.is_empty(), "failures: {:#?}", out.failures);
    }
}
