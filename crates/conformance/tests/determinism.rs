//! Seeded determinism: two full pipeline runs with the same RNG seed and
//! configuration must produce byte-identical calls — for every driver.
//!
//! This is subtly different from the matrix tier (drivers vs each other):
//! here each driver is compared against *itself* across process-internal
//! re-runs, catching nondeterminism that happens to be self-consistent
//! across drivers (e.g. a HashMap iteration order that every driver
//! shares).

use conformance::workload::{build, WorkloadSpec};
use exec::driver::{run_stream, StreamConfig};
use exec::stream::MemoryStream;
use gnumap_core::accum::FixedAccumulator;
use gnumap_core::driver::encode_calls;
use gnumap_core::driver::genome_split::run_genome_split;
use gnumap_core::driver::rayon_driver::run_rayon;
use gnumap_core::driver::read_split::run_read_split;
use gnumap_core::pipeline::run_serial_with;
use gnumap_core::report::RunReport;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        seed: 0xde_7e_12,
        genome_len: 1_800,
        snp_count: 4,
        coverage: 5.0,
        read_length: 62,
        repeat_families: 0,
    }
}

fn fingerprint(report: &RunReport) -> (Vec<u64>, Option<u64>, usize) {
    (
        encode_calls(&report.calls)
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        report.accumulator_digest,
        report.reads_mapped,
    )
}

/// The workload builder itself must be deterministic, else every
/// driver-level assertion below would be vacuous.
#[test]
fn workload_build_is_deterministic() {
    let a = build(&spec());
    let b = build(&spec());
    assert_eq!(a.reference.to_string(), b.reference.to_string());
    assert_eq!(a.truth, b.truth);
    assert_eq!(a.reads.len(), b.reads.len());
    for (ra, rb) in a.reads.iter().zip(&b.reads) {
        assert_eq!(ra, rb);
    }
}

#[test]
fn serial_runs_twice_identically() {
    let wl = build(&spec());
    let a = run_serial_with::<FixedAccumulator>(&wl.reference, &wl.reads, &wl.config);
    let b = run_serial_with::<FixedAccumulator>(&wl.reference, &wl.reads, &wl.config);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn rayon_runs_twice_identically() {
    let wl = build(&spec());
    let a = run_rayon::<FixedAccumulator>(&wl.reference, &wl.reads, &wl.config, 4);
    let b = run_rayon::<FixedAccumulator>(&wl.reference, &wl.reads, &wl.config, 4);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn read_split_runs_twice_identically() {
    let wl = build(&spec());
    let a = run_read_split::<FixedAccumulator>(&wl.reference, &wl.reads, &wl.config, 3).unwrap();
    let b = run_read_split::<FixedAccumulator>(&wl.reference, &wl.reads, &wl.config, 3).unwrap();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn genome_split_runs_twice_identically() {
    let wl = build(&spec());
    let a = run_genome_split::<FixedAccumulator>(&wl.reference, &wl.reads, &wl.config, 3).unwrap();
    let b = run_genome_split::<FixedAccumulator>(&wl.reference, &wl.reads, &wl.config, 3).unwrap();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn stream_runs_twice_identically() {
    let wl = build(&spec());
    let sc = StreamConfig {
        workers: 3,
        batch_size: 16,
        chunk_size: 48,
        batches_per_worker: 2,
        shards: 8,
        ..StreamConfig::default()
    };
    let mut sa = MemoryStream::new(wl.reads.clone());
    let a = run_stream::<FixedAccumulator>(&wl.reference, &mut sa, &wl.config, &sc).unwrap();
    let mut sb = MemoryStream::new(wl.reads.clone());
    let b = run_stream::<FixedAccumulator>(&wl.reference, &mut sb, &wl.config, &sc).unwrap();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}
