//! Seeded determinism: two full pipeline runs with the same RNG seed and
//! configuration must produce byte-identical calls — for every driver.
//!
//! This is subtly different from the matrix tier (drivers vs each other):
//! here each driver is compared against *itself* across process-internal
//! re-runs, catching nondeterminism that happens to be self-consistent
//! across drivers (e.g. a HashMap iteration order that every driver
//! shares). The drivers come from [`engine::DriverRegistry`], so a newly
//! registered execution mode is swept automatically.

use conformance::workload::{build, WorkloadSpec};
use engine::{Driver, DriverRegistry, NullSink, ReadSource, RunContext};
use gnumap_core::accum::AccumulatorMode;
use gnumap_core::driver::encode_calls;
use gnumap_core::report::RunReport;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        seed: 0xde_7e_12,
        genome_len: 1_800,
        snp_count: 4,
        coverage: 5.0,
        read_length: 62,
        repeat_families: 0,
    }
}

fn fingerprint(report: &RunReport) -> (Vec<u64>, Option<u64>, usize) {
    (
        encode_calls(&report.calls)
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        report.accumulator_digest,
        report.reads_mapped,
    )
}

/// The workload builder itself must be deterministic, else every
/// driver-level assertion below would be vacuous.
#[test]
fn workload_build_is_deterministic() {
    let a = build(&spec());
    let b = build(&spec());
    assert_eq!(a.reference.to_string(), b.reference.to_string());
    assert_eq!(a.truth, b.truth);
    assert_eq!(a.reads.len(), b.reads.len());
    for (ra, rb) in a.reads.iter().zip(&b.reads) {
        assert_eq!(ra, rb);
    }
}

/// Every registry driver, run twice over the same seeded workload with
/// the same context, reproduces itself bit-for-bit.
#[test]
fn every_registry_driver_runs_twice_identically() {
    let wl = build(&spec());
    let registry = DriverRegistry::standard();
    for driver in registry.all() {
        let mut ctx = RunContext::new(&wl.reference);
        ctx.config = wl.config;
        // Drivers pinned to a single accumulator (the ring reduction) run
        // it; everything else runs fixed point.
        ctx.config.accumulator = if driver.capabilities().supports(AccumulatorMode::Fixed) {
            AccumulatorMode::Fixed
        } else {
            driver.capabilities().accumulators[0]
        };
        ctx.seed = spec().seed;
        ctx.threads = 3;
        ctx.batch_size = 16;
        ctx.chunk_size = 48;
        ctx.batches_per_worker = 2;
        ctx.shards = 8;

        let run = |d: &dyn Driver| {
            d.run(&ctx, ReadSource::Slice(&wl.reads), &mut NullSink)
                .unwrap_or_else(|e| panic!("{} failed: {e}", d.name()))
        };
        let a = run(driver);
        let b = run(driver);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{} is not self-deterministic",
            driver.name()
        );
    }
}
