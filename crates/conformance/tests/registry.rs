//! Registry coverage: every driver the registry exposes runs under every
//! accumulator mode it advertises, on a seeded workload, and agrees with
//! the serial pipeline.
//!
//! The matrix tier checks bit-identity for the fixed-point rows; this
//! sweep is broader but shallower — it guards the *capability table*
//! itself. A driver advertising a mode it cannot run, or producing calls
//! at different sites than serial under an advertised mode, fails here.

use conformance::workload::{build, WorkloadSpec};
use engine::{DriverRegistry, NullSink, ReadSource, RunContext};
use gnumap_core::accum::AccumulatorMode;
use gnumap_core::SnpCall;

fn workload_spec() -> WorkloadSpec {
    WorkloadSpec {
        seed: 0x005e_9157,
        genome_len: 2_000,
        snp_count: 4,
        coverage: 6.0,
        read_length: 62,
        repeat_families: 0,
    }
}

/// Positions and alleles only — statistics differ across accumulator
/// numeric domains (float vs fixed point), sites and alleles must not.
/// A site on one side only is excused iff its evidence total sits on the
/// `min_total` testing threshold, where quantization legitimately decides
/// whether the site is tested at all.
fn same_sites(a: &[SnpCall], b: &[SnpCall], min_total: f64) -> Result<(), String> {
    let site = |c: &SnpCall| (c.pos, c.allele, c.second_allele);
    let on_edge = |c: &SnpCall| {
        let total: f64 = c.counts.iter().sum();
        (total - min_total).abs() <= 1e-6
    };
    let bs: std::collections::BTreeMap<_, _> = b.iter().map(|c| (c.pos, c)).collect();
    for ca in a {
        match bs.get(&ca.pos) {
            Some(cb) if site(ca) == site(cb) => {}
            Some(cb) => {
                return Err(format!(
                    "position {}: alleles differ ({ca:?} vs {cb:?})",
                    ca.pos
                ))
            }
            None if on_edge(ca) => {}
            None => return Err(format!("position {} called on one side only", ca.pos)),
        }
    }
    let as_: std::collections::BTreeSet<_> = a.iter().map(|c| c.pos).collect();
    for cb in b {
        if !as_.contains(&cb.pos) && !on_edge(cb) {
            return Err(format!("position {} called on one side only", cb.pos));
        }
    }
    Ok(())
}

#[test]
fn every_driver_runs_every_advertised_accumulator_mode() {
    let wl = build(&workload_spec());
    let registry = DriverRegistry::standard();
    let serial = registry.get("serial").unwrap();

    for driver in registry.all() {
        let caps = driver.capabilities();
        assert!(
            !caps.accumulators.is_empty(),
            "{} advertises no accumulator at all",
            driver.name()
        );
        for &mode in caps.accumulators {
            let mut ctx = RunContext::new(&wl.reference);
            ctx.config = wl.config;
            ctx.config.accumulator = mode;
            ctx.seed = workload_spec().seed;
            ctx.threads = 2;
            ctx.batch_size = 16;
            ctx.chunk_size = 32;
            ctx.shards = 8;

            let report = driver
                .run(&ctx, ReadSource::Slice(&wl.reads), &mut NullSink)
                .unwrap_or_else(|e| panic!("{} × {mode:?} failed: {e}", driver.name()));
            let reference = serial
                .run(&ctx, ReadSource::Slice(&wl.reads), &mut NullSink)
                .unwrap_or_else(|e| panic!("serial × {mode:?} failed: {e}"));

            // Mapping is independent of the accumulator layout.
            assert_eq!(
                report.reads_mapped,
                reference.reads_mapped,
                "{} × {mode:?}: mapped-read count diverged",
                driver.name()
            );
            if let Err(why) =
                same_sites(&report.calls, &reference.calls, wl.config.calling.min_total)
            {
                panic!("{} × {mode:?}: {why}", driver.name());
            }
            // Fixed point is the bit-exact domain: digests must match, not
            // just sites.
            if mode == AccumulatorMode::Fixed {
                assert_eq!(
                    report.accumulator_digest,
                    reference.accumulator_digest,
                    "{} × Fixed: digest diverged from serial",
                    driver.name()
                );
            }
        }
    }
}
