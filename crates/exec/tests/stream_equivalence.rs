//! Decomposition-independence for the streaming engine: on a ~100 kb
//! genome with planted SNPs, `run_stream::<FixedAccumulator>` must call
//! exactly the same SNPs as the serial pipeline — for any worker count,
//! batch size, and checkpoint/kill/resume split. Integer accumulation
//! makes this bit-exact, not approximately equal.

use exec::{run_stream, CheckpointPolicy, ExecError, FastqStream, MemoryStream, StreamConfig};
use genome::{DnaSeq, SequencedRead};
use gnumap_core::accum::FixedAccumulator;
use gnumap_core::pipeline::run_serial_with;
use gnumap_core::{GnumapConfig, RunReport};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};
use simulate::{GenomeConfig, PlantedSnp, SnpCatalogConfig};
use std::sync::OnceLock;

struct Workload {
    reference: DnaSeq,
    snps: Vec<PlantedSnp>,
    reads: Vec<SequencedRead>,
}

/// ~100 kb reference, 120 planted SNPs, ~5x coverage (~8k reads).
/// Built once and shared across tests — the mapping runs dominate test
/// time, not this.
fn workload() -> &'static Workload {
    static W: OnceLock<Workload> = OnceLock::new();
    W.get_or_init(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(2012);
        let reference = simulate::generate_genome(
            &GenomeConfig {
                length: 100_000,
                repeat_families: 3,
                ..Default::default()
            },
            &mut rng,
        );
        let snps = simulate::generate_snp_catalog(
            &reference,
            &SnpCatalogConfig {
                count: 120,
                ..Default::default()
            },
            &mut rng,
        );
        let individual = simulate::apply_snps_monoploid(&reference, &snps);
        let sim = ReadSimConfig {
            coverage: 5.0,
            ..Default::default()
        };
        let reads = simulate_reads(
            &ReadSource::Monoploid(&individual),
            sim.read_count(reference.len()),
            &sim,
            &mut rng,
        )
        .into_iter()
        .map(|r| r.read)
        .collect();
        Workload {
            reference,
            snps,
            reads,
        }
    })
}

fn serial_reference() -> &'static RunReport {
    static R: OnceLock<RunReport> = OnceLock::new();
    R.get_or_init(|| {
        let w = workload();
        run_serial_with::<FixedAccumulator>(&w.reference, &w.reads, &GnumapConfig::default())
    })
}

/// Small windows so runs span many scheduling windows and barriers.
fn small_windows() -> StreamConfig {
    StreamConfig {
        workers: 2,
        batch_size: 16,
        chunk_size: 32,
        batches_per_worker: 2,
        ..Default::default()
    }
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("exec-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn serial_reference_recovers_planted_snps() {
    let w = workload();
    let serial = serial_reference();
    assert!(!serial.calls.is_empty());
    let called: std::collections::HashSet<usize> = serial.calls.iter().map(|c| c.pos).collect();
    let recovered = w.snps.iter().filter(|s| called.contains(&s.pos)).count();
    assert!(
        recovered * 10 > w.snps.len() * 7,
        "only {recovered}/{} planted SNPs recovered",
        w.snps.len()
    );
}

#[test]
fn stream_calls_match_serial_bit_exactly() {
    let w = workload();
    let serial = serial_reference();
    let config = GnumapConfig::default();
    for (workers, batch_size, chunk_size) in [(1, 64, 256), (2, 32, 64), (4, 128, 100)] {
        let mut stream = MemoryStream::new(w.reads.clone());
        let sc = StreamConfig {
            workers,
            batch_size,
            chunk_size,
            ..Default::default()
        };
        let report = run_stream::<FixedAccumulator>(&w.reference, &mut stream, &config, &sc)
            .unwrap_or_else(|e| panic!("workers={workers}: {e}"));
        assert_eq!(
            report.calls, serial.calls,
            "calls diverged at workers={workers} batch={batch_size} chunk={chunk_size}"
        );
        assert_eq!(report.reads_processed, w.reads.len());
        assert_eq!(report.reads_mapped, serial.reads_mapped);
        assert_eq!(report.accumulator_bytes, serial.accumulator_bytes);
        let stats = report.stream.expect("streaming driver reports stats");
        assert_eq!(stats.workers, workers);
        assert_eq!(report.rank_cpu_secs.len(), workers);
    }
}

#[test]
fn fastq_streamed_run_matches_serial() {
    let w = workload();
    let serial = serial_reference();
    let dir = tmpdir("fastq");
    let path = dir.join("reads.fq");
    {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
        genome::fastq::write_fastq(&mut f, &w.reads).unwrap();
    }
    let mut stream = FastqStream::open(&path).unwrap();
    let report = run_stream::<FixedAccumulator>(
        &w.reference,
        &mut stream,
        &GnumapConfig::default(),
        &small_windows(),
    )
    .unwrap();
    assert_eq!(report.calls, serial.calls);
    assert_eq!(report.reads_processed, w.reads.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_kill_resume_matches_uninterrupted() {
    let w = workload();
    let serial = serial_reference();
    let config = GnumapConfig::default();
    let dir = tmpdir("resume");
    let path = dir.join("run.ckpt");

    // Kill after 12 batches (3 windows of 4 batches); checkpoints land
    // every 8 batches, so the last one on disk is older than the kill
    // point and the resumed run must redo the lost window.
    let killed_cfg = StreamConfig {
        checkpoint: Some(CheckpointPolicy {
            path: path.clone(),
            every_batches: 8,
            resume: false,
        }),
        abort_after_batches: Some(12),
        ..small_windows()
    };
    let mut stream = MemoryStream::new(w.reads.clone());
    let err = run_stream::<FixedAccumulator>(&w.reference, &mut stream, &config, &killed_cfg)
        .unwrap_err();
    let killed_cursor = match err {
        ExecError::Aborted { cursor } => cursor,
        other => panic!("expected kill, got {other}"),
    };
    assert!(killed_cursor > 0 && killed_cursor < w.reads.len());

    let cp = exec::checkpoint::load(&path)
        .unwrap()
        .expect("a checkpoint survives the kill");
    assert!(
        cp.cursor < killed_cursor,
        "checkpoint ({}) must predate the kill point ({killed_cursor}) to prove lost work is redone",
        cp.cursor
    );

    let resume_cfg = StreamConfig {
        checkpoint: Some(CheckpointPolicy {
            path: path.clone(),
            every_batches: 8,
            resume: true,
        }),
        ..small_windows()
    };
    let mut stream = MemoryStream::new(w.reads.clone());
    let resumed =
        run_stream::<FixedAccumulator>(&w.reference, &mut stream, &config, &resume_cfg).unwrap();

    assert_eq!(resumed.calls, serial.calls, "resumed calls diverged");
    assert_eq!(resumed.reads_processed, w.reads.len());
    assert_eq!(resumed.reads_mapped, serial.reads_mapped);
    let stats = resumed.stream.unwrap();
    assert!(stats.resumed_from_checkpoint);
    assert!(stats.checkpoints_written > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_without_checkpoint_file_starts_from_scratch() {
    let w = workload();
    let serial = serial_reference();
    let dir = tmpdir("fresh");
    let resume_cfg = StreamConfig {
        checkpoint: Some(CheckpointPolicy {
            path: dir.join("never-written.ckpt"),
            every_batches: usize::MAX,
            resume: true,
        }),
        ..small_windows()
    };
    let mut stream = MemoryStream::new(w.reads.clone());
    let report = run_stream::<FixedAccumulator>(
        &w.reference,
        &mut stream,
        &GnumapConfig::default(),
        &resume_cfg,
    )
    .unwrap();
    assert_eq!(report.calls, serial.calls);
    let stats = report.stream.unwrap();
    assert!(!stats.resumed_from_checkpoint);
    assert_eq!(stats.checkpoints_written, 0);
    std::fs::remove_dir_all(&dir).ok();
}
