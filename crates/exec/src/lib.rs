//! Streaming execution engine for the GNUMAP-SNP pipeline.
//!
//! The pipeline drivers in `gnumap-core` all start from a `&[SequencedRead]`
//! slice: the whole input must fit in memory before any work begins, and
//! every driver ends with a global merge of per-worker accumulators. This
//! crate runs the same map → accumulate → call algorithm over an
//! **unbounded read source** instead:
//!
//! * [`stream`] — a chunked [`stream::ReadStream`] trait with FASTQ-file,
//!   simulator-backed and in-memory implementations, feeding a bounded
//!   channel so a slow consumer applies backpressure to the source;
//! * [`driver`] — a batch scheduler that groups arriving reads into
//!   length-sorted micro-batches and dispatches them to a work-stealing
//!   worker pool;
//! * [`sharded`] — a striped-lock wrapper over any
//!   [`gnumap_core::accum::GenomeAccumulator`], so workers deposit evidence
//!   concurrently without a global merge barrier;
//! * [`checkpoint`] — periodic atomic snapshots of the accumulator plus the
//!   stream cursor, giving kill/resume semantics.
//!
//! Pair the engine with [`gnumap_core::accum::FixedAccumulator`] and the
//! result is **bit-identical** to a serial run for any worker count, batch
//! size or checkpoint schedule: integer deposits commute, and the scheduler
//! derives batch composition only from stream order, never from timing.

pub mod checkpoint;
pub mod driver;
pub mod error;
pub mod sharded;
pub mod stream;

pub use checkpoint::Checkpoint;
pub use driver::{run_stream, run_stream_observed, CheckpointPolicy, StreamConfig};
pub use error::ExecError;
pub use sharded::ShardedAccumulator;
pub use stream::{FastqStream, MemoryStream, ReadStream, SimReadStream};
