//! Error type for the streaming engine.

use gnumap_core::driver::CallWireError;
use std::fmt;

/// Anything that can stop a streaming run.
#[derive(Debug)]
pub enum ExecError {
    /// Filesystem failure (checkpoint I/O, FASTQ reading).
    Io(std::io::Error),
    /// The read source produced malformed input.
    Source(String),
    /// A checkpoint file failed validation.
    Checkpoint(String),
    /// A call wire failed to decode (kept for API parity with the MPI
    /// drivers; the in-process engine itself never ships call wires).
    Wire(CallWireError),
    /// The run was killed by [`crate::StreamConfig::abort_after_batches`]
    /// after dispatching this many batches (test hook for kill/resume).
    Aborted {
        /// Stream cursor (reads fully processed) at the last barrier.
        cursor: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Io(e) => write!(f, "i/o error: {e}"),
            ExecError::Source(msg) => write!(f, "read source: {msg}"),
            ExecError::Checkpoint(msg) => write!(f, "checkpoint: {msg}"),
            ExecError::Wire(e) => write!(f, "{e}"),
            ExecError::Aborted { cursor } => {
                write!(f, "run aborted by kill hook at stream cursor {cursor}")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Io(e) => Some(e),
            ExecError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ExecError {
    fn from(e: std::io::Error) -> Self {
        ExecError::Io(e)
    }
}

impl From<CallWireError> for ExecError {
    fn from(e: CallWireError) -> Self {
        ExecError::Wire(e)
    }
}
