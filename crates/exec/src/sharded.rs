//! Striped-lock accumulator for concurrent deposits.
//!
//! The genome is cut into `shard_count` contiguous position ranges, each
//! guarded by its own `parking_lot::Mutex` around an ordinary
//! [`GenomeAccumulator`] covering just that range. A deposit locks only
//! the shard(s) its window overlaps — almost always one, occasionally two
//! at a boundary — so workers mapping different genome regions never
//! contend, and there is no end-of-run merge of per-worker replicas: the
//! shards already hold disjoint slices of the final accumulator.

use gnumap_core::accum::{GenomeAccumulator, NUM_SYMBOLS};
use gnumap_core::pipeline::deposit;
use pairhmm::marginal::ColumnPosterior;
use parking_lot::Mutex;

/// A genome-length accumulator striped across independently locked shards.
pub struct ShardedAccumulator<A> {
    shards: Vec<Mutex<A>>,
    /// Start position of each shard; shard `i` covers
    /// `starts[i]..starts[i+1]` (the last runs to `len`).
    starts: Vec<usize>,
    len: usize,
}

impl<A: GenomeAccumulator> ShardedAccumulator<A> {
    /// Stripe `len` positions across `shard_count` shards (clamped to at
    /// least 1 and at most one shard per position).
    pub fn new(len: usize, shard_count: usize) -> Self {
        let n = shard_count.clamp(1, len.max(1));
        let starts: Vec<usize> = (0..n).map(|i| i * len / n).collect();
        let shards = (0..n)
            .map(|i| {
                let end = if i + 1 < n { starts[i + 1] } else { len };
                Mutex::new(A::new(end - starts[i]))
            })
            .collect();
        ShardedAccumulator {
            shards,
            starts,
            len,
        }
    }

    /// Genome positions covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length genome.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_end(&self, i: usize) -> usize {
        if i + 1 < self.starts.len() {
            self.starts[i + 1]
        } else {
            self.len
        }
    }

    /// Index of the shard owning `pos`.
    fn shard_of(&self, pos: usize) -> usize {
        self.starts.partition_point(|&s| s <= pos) - 1
    }

    /// Deposit one alignment's weighted columns, locking each overlapped
    /// shard once. Column order within a shard is preserved; clipping
    /// beyond the genome end matches [`gnumap_core::pipeline::deposit`].
    pub fn deposit(&self, window_start: usize, weight: f64, columns: &[ColumnPosterior]) {
        if window_start >= self.len || columns.is_empty() {
            return;
        }
        let end = (window_start + columns.len()).min(self.len);
        let mut pos = window_start;
        while pos < end {
            let si = self.shard_of(pos);
            let shard_start = self.starts[si];
            let stop = end.min(self.shard_end(si));
            let mut guard = self.shards[si].lock();
            deposit(
                &mut *guard,
                pos - shard_start,
                weight,
                &columns[pos - window_start..stop - window_start],
            );
            drop(guard);
            pos = stop;
        }
    }

    /// Decoded counts for every position, shard by shard (used for
    /// checkpoints). Callers must ensure no concurrent deposits if a
    /// globally consistent snapshot is required.
    pub fn snapshot_counts(&self) -> Vec<[f64; NUM_SYMBOLS]> {
        let mut out = Vec::with_capacity(self.len);
        for (i, shard) in self.shards.iter().enumerate() {
            let guard = shard.lock();
            for local in 0..self.shard_end(i) - self.starts[i] {
                out.push(guard.counts(local));
            }
        }
        out
    }

    /// Load a snapshot back (checkpoint resume). The accumulator must be
    /// freshly created (all zero).
    pub fn load_counts(&self, counts: &[[f64; NUM_SYMBOLS]]) {
        assert_eq!(counts.len(), self.len, "snapshot length mismatch");
        for (i, shard) in self.shards.iter().enumerate() {
            let start = self.starts[i];
            let mut guard = shard.lock();
            for local in 0..self.shard_end(i) - start {
                let c = &counts[start + local];
                if c.iter().sum::<f64>() > 0.0 {
                    guard.add(local, c);
                }
            }
        }
    }

    /// Collapse the stripes into one full-length accumulator for SNP
    /// calling. Shards cover disjoint ranges, so this is a positional
    /// copy, not a sum — for integer-celled accumulators (FIXED) it is
    /// exact.
    pub fn into_full(self) -> A {
        let mut full = A::new(self.len);
        for (i, shard) in self.shards.into_iter().enumerate() {
            let start = self.starts[i];
            let acc = shard.into_inner();
            for local in 0..acc.len() {
                let c = acc.counts(local);
                if c.iter().sum::<f64>() > 0.0 {
                    full.add(start + local, &c);
                }
            }
        }
        full
    }

    /// Total heap bytes across shards.
    pub fn heap_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().heap_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnumap_core::accum::FixedAccumulator;

    fn col(probs: [f64; NUM_SYMBOLS]) -> ColumnPosterior {
        ColumnPosterior { probs }
    }

    #[test]
    fn striping_covers_every_position_once() {
        for (len, shards) in [(10usize, 3usize), (100, 7), (5, 8), (1, 1)] {
            let s = ShardedAccumulator::<FixedAccumulator>::new(len, shards);
            assert_eq!(s.len(), len);
            let mut covered = 0;
            for i in 0..s.shard_count() {
                assert!(s.shard_end(i) > s.starts[i], "empty shard {i}");
                covered += s.shard_end(i) - s.starts[i];
            }
            assert_eq!(covered, len);
            for pos in 0..len {
                let si = s.shard_of(pos);
                assert!(s.starts[si] <= pos && pos < s.shard_end(si));
            }
        }
    }

    #[test]
    fn boundary_spanning_deposit_matches_serial() {
        let cols: Vec<ColumnPosterior> = (0..6)
            .map(|i| col([0.5 + i as f64 * 0.01, 0.2, 0.1, 0.1, 0.1]))
            .collect();

        let mut serial = FixedAccumulator::new(10);
        deposit(&mut serial, 2, 0.8, &cols);

        // 3 shards of [0,3), [3,6), [6,10): the window 2..8 spans all three.
        let sharded = ShardedAccumulator::<FixedAccumulator>::new(10, 3);
        sharded.deposit(2, 0.8, &cols);
        let full = sharded.into_full();
        for pos in 0..10 {
            assert_eq!(full.counts(pos), serial.counts(pos), "pos {pos}");
        }
    }

    #[test]
    fn deposits_clip_at_genome_end() {
        let sharded = ShardedAccumulator::<FixedAccumulator>::new(4, 2);
        let cols = vec![col([1.0, 0.0, 0.0, 0.0, 0.0]); 8];
        sharded.deposit(2, 1.0, &cols);
        sharded.deposit(99, 1.0, &cols); // fully out of range: no-op
        let full = sharded.into_full();
        assert_eq!(full.counts(2)[0], 1.0);
        assert_eq!(full.counts(3)[0], 1.0);
        assert_eq!(full.counts(0), [0.0; 5]);
    }

    #[test]
    fn snapshot_and_load_round_trip() {
        let a = ShardedAccumulator::<FixedAccumulator>::new(9, 4);
        let cols = vec![col([0.25, 0.25, 0.25, 0.125, 0.125]); 5];
        a.deposit(1, 0.9, &cols);
        a.deposit(6, 0.4, &cols);
        let snap = a.snapshot_counts();

        let b = ShardedAccumulator::<FixedAccumulator>::new(9, 2); // different striping
        b.load_counts(&snap);
        let fa = a.into_full();
        let fb = b.into_full();
        for pos in 0..9 {
            assert_eq!(fa.counts(pos), fb.counts(pos), "pos {pos}");
        }
    }

    #[test]
    fn concurrent_deposits_are_exact() {
        use std::sync::Arc;
        let sharded = Arc::new(ShardedAccumulator::<FixedAccumulator>::new(50, 8));
        let cols = vec![col([0.3, 0.3, 0.2, 0.1, 0.1]); 10];
        std::thread::scope(|s| {
            for t in 0..4 {
                let sharded = Arc::clone(&sharded);
                let cols = cols.clone();
                s.spawn(move || {
                    for rep in 0..25 {
                        sharded.deposit((t * 7 + rep) % 45, 0.5, &cols);
                    }
                });
            }
        });
        let mut serial = FixedAccumulator::new(50);
        for t in 0..4 {
            for rep in 0..25 {
                deposit(&mut serial, (t * 7 + rep) % 45, 0.5, &cols);
            }
        }
        let full = Arc::into_inner(sharded).unwrap().into_full();
        for pos in 0..50 {
            assert_eq!(full.counts(pos), serial.counts(pos), "pos {pos}");
        }
    }
}
