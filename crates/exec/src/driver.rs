//! The streaming batch scheduler and worker pool.
//!
//! Topology:
//!
//! ```text
//! source thread ──bounded channel──▶ scheduler ──injector──▶ N workers
//!   (ReadStream)   (backpressure)      │    ▲                 │
//!                                      │    └──batch results──┘
//!                                      └─▶ checkpoint at window barriers
//! ```
//!
//! The **source thread** pulls fixed-size chunks from the [`ReadStream`]
//! and sends them down a bounded channel; when workers fall behind, the
//! channel fills and the source blocks — backpressure, measured as
//! `source_stall_secs`.
//!
//! The **scheduler** (caller's thread) drains chunks into a *window* of
//! `workers × batches_per_worker × batch_size` reads, stable-sorts the
//! window by read length (so a micro-batch holds similar-length reads and
//! its Pair-HMM work is even), splits it into micro-batches and pushes
//! them onto a work-stealing injector. It then waits for every batch of
//! the window to complete — the *window barrier* — advances the stream
//! cursor, and (on schedule) writes a checkpoint. Window composition
//! depends only on stream order and configuration, never on timing, which
//! is what makes runs reproducible.
//!
//! **Workers** steal batches, map each read, and deposit evidence directly
//! into the [`ShardedAccumulator`] — no per-worker replica, no final
//! merge. With [`FixedAccumulator`] deposits commute bit-exactly, so any
//! steal order yields the identical accumulator.
//!
//! [`FixedAccumulator`]: gnumap_core::accum::FixedAccumulator

use crate::checkpoint::{self, Checkpoint};
use crate::error::ExecError;
use crate::sharded::ShardedAccumulator;
use crate::stream::ReadStream;
use crossbeam::channel;
use crossbeam::deque::{Injector, Steal};
use crossbeam::utils::Backoff;
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use gnumap_core::accum::GenomeAccumulator;
use gnumap_core::observe::{Event, Observer, Stage, StageTimer};
use gnumap_core::report::{RunReport, StreamStats};
use gnumap_core::snpcall::call_snps;
use gnumap_core::{GnumapConfig, MappingEngine};
use mpisim::ThreadCpuTimer;
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// When and where to snapshot engine state.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointPolicy {
    /// Checkpoint file path (its parent directory must exist).
    pub path: PathBuf,
    /// Write a checkpoint every `every_batches` dispatched batches
    /// (rounded up to the next window barrier).
    pub every_batches: usize,
    /// On startup, load `path` if present and resume from its cursor.
    pub resume: bool,
}

/// Streaming engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Worker threads mapping reads.
    pub workers: usize,
    /// Reads per micro-batch.
    pub batch_size: usize,
    /// Reads per source chunk (one channel message).
    pub chunk_size: usize,
    /// Bounded channel capacity in chunks; the source blocks when the
    /// scheduler falls this far behind.
    pub channel_capacity: usize,
    /// Micro-batches per worker per scheduling window.
    pub batches_per_worker: usize,
    /// Lock stripes in the shared accumulator.
    pub shards: usize,
    /// Periodic checkpointing; `None` disables it.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Kill hook for tests: abort (as if killed) at the first window
    /// barrier where at least this many batches have been dispatched.
    pub abort_after_batches: Option<usize>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            workers: 1,
            batch_size: 64,
            chunk_size: 256,
            channel_capacity: 4,
            batches_per_worker: 2,
            shards: 16,
            checkpoint: None,
            abort_after_batches: None,
        }
    }
}

/// One unit of worker work.
struct Batch {
    reads: Vec<SequencedRead>,
}

/// Completion message from a worker.
struct BatchDone {
    reads: usize,
    mapped: usize,
}

/// Run the streaming engine over `stream`, calling SNPs at end of input.
///
/// With `A = FixedAccumulator` the returned calls are bit-identical to
/// `run_serial_with::<FixedAccumulator>` on the same reads, for any
/// worker count, batch size, chunking or checkpoint/resume split.
pub fn run_stream<A: GenomeAccumulator>(
    reference: &DnaSeq,
    stream: &mut dyn ReadStream,
    config: &GnumapConfig,
    sc: &StreamConfig,
) -> Result<RunReport, ExecError> {
    run_stream_observed::<A>(reference, stream, config, sc, &Observer::disabled())
}

/// [`run_stream`] with structured observability: one [`Event::Batch`] per
/// stolen micro-batch (tagged with the stealing worker's index), an
/// [`Event::Checkpoint`] for every checkpoint record written, and stage
/// timings taken on the scheduler thread. The disabled-observer path is
/// the exact un-instrumented worker loop.
pub fn run_stream_observed<A: GenomeAccumulator>(
    reference: &DnaSeq,
    stream: &mut dyn ReadStream,
    config: &GnumapConfig,
    sc: &StreamConfig,
    observer: &Observer,
) -> Result<RunReport, ExecError> {
    assert!(sc.workers >= 1, "need at least one worker");
    assert!(sc.batch_size >= 1, "batches must hold at least one read");
    assert!(sc.chunk_size >= 1, "chunks must hold at least one read");
    observer.emit(|| Event::RunStart {
        driver: "stream".into(),
        accumulator: config.accumulator.name().into(),
    });
    let start = Instant::now();

    // ---- resume --------------------------------------------------------
    let sharded = ShardedAccumulator::<A>::new(reference.len(), sc.shards);
    let mut cursor = 0usize;
    let mut mapped_total = 0usize;
    let mut resumed = false;
    if let Some(policy) = &sc.checkpoint {
        if policy.resume {
            if let Some(cp) = checkpoint::load(&policy.path)? {
                if cp.counts.len() != reference.len() {
                    return Err(ExecError::Checkpoint(format!(
                        "{}: snapshot covers {} positions, reference has {}",
                        policy.path.display(),
                        cp.counts.len(),
                        reference.len()
                    )));
                }
                sharded.load_counts(&cp.counts);
                cursor = cp.cursor;
                mapped_total = cp.reads_mapped;
                stream.skip(cursor)?;
                resumed = true;
            }
        }
    }

    let timer = StageTimer::start(observer, Stage::Index);
    let engine = MappingEngine::new(reference, config.mapping);
    timer.finish(observer);
    let window_reads = sc.workers * sc.batches_per_worker * sc.batch_size;

    // ---- plumbing ------------------------------------------------------
    let (chunk_tx, chunk_rx) = channel::bounded::<Vec<SequencedRead>>(sc.channel_capacity);
    let (done_tx, done_rx) = channel::unbounded::<BatchDone>();
    let injector = Injector::<Batch>::new();
    let shutdown = AtomicBool::new(false);
    let source_stall_nanos = AtomicU64::new(0);
    let source_error: Mutex<Option<ExecError>> = Mutex::new(None);

    // ---- stats ---------------------------------------------------------
    let mut batches_dispatched = 0usize;
    let mut reads_dispatched = 0usize;
    let mut max_queue_depth = 0usize;
    let mut queue_depth_sum = 0usize;
    let mut queue_samples = 0usize;
    let mut checkpoints_written = 0usize;
    let mut batches_since_checkpoint = 0usize;
    let mut aborted = false;

    let map_timer = StageTimer::start(observer, Stage::Map);
    let worker_outcomes = std::thread::scope(|scope| -> Result<Vec<(f64, f64)>, ExecError> {
        // Source thread: chunk the stream into the bounded channel. It
        // owns the only sender, so the channel disconnects (and the
        // scheduler sees end of stream) the moment this thread returns.
        let source_error_ref = &source_error;
        let source_stall_ref = &source_stall_nanos;
        scope.spawn(move || {
            let tx = chunk_tx;
            loop {
                let chunk = match stream.next_chunk(sc.chunk_size) {
                    Ok(c) => c,
                    Err(e) => {
                        *source_error_ref.lock() = Some(e);
                        break;
                    }
                };
                if chunk.is_empty() {
                    break; // end of stream
                }
                let blocked = Instant::now();
                if tx.send(chunk).is_err() {
                    break; // scheduler gone (abort): stop producing
                }
                source_stall_ref.fetch_add(blocked.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        });

        // Worker pool: steal batches, map, deposit.
        let workers: Vec<_> = (0..sc.workers)
            .map(|worker_index| {
                let injector = &injector;
                let shutdown = &shutdown;
                let sharded = &sharded;
                let engine = &engine;
                let done_tx = done_tx.clone();
                scope.spawn(move || {
                    let cpu = ThreadCpuTimer::start();
                    let mut stall = Duration::ZERO;
                    let mut backoff = Backoff::new();
                    // Per-worker scratch arena, reused for every stolen
                    // batch this thread ever processes.
                    let mut scratch = gnumap_core::mapping::AlignScratch::new();
                    loop {
                        match injector.steal() {
                            Steal::Success(batch) => {
                                backoff.reset();
                                let mut mapped = 0usize;
                                if observer.is_enabled() {
                                    let (mut candidates, mut columns) = (0u64, 0u64);
                                    for read in &batch.reads {
                                        engine.map_read_with(read, &mut scratch);
                                        if !scratch.is_empty() {
                                            mapped += 1;
                                        }
                                        for aln in scratch.alignments() {
                                            candidates += 1;
                                            columns += aln.columns.len() as u64;
                                            sharded.deposit(
                                                aln.window_start,
                                                aln.score,
                                                aln.columns,
                                            );
                                        }
                                    }
                                    observer.emit(|| Event::Batch {
                                        worker: worker_index as u64,
                                        reads: batch.reads.len() as u64,
                                        mapped: mapped as u64,
                                        candidates,
                                        deposited_columns: columns,
                                    });
                                } else {
                                    for read in &batch.reads {
                                        engine.map_read_with(read, &mut scratch);
                                        if !scratch.is_empty() {
                                            mapped += 1;
                                        }
                                        for aln in scratch.alignments() {
                                            sharded.deposit(
                                                aln.window_start,
                                                aln.score,
                                                aln.columns,
                                            );
                                        }
                                    }
                                }
                                let _ = done_tx.send(BatchDone {
                                    reads: batch.reads.len(),
                                    mapped,
                                });
                            }
                            Steal::Retry => {}
                            Steal::Empty => {
                                if shutdown.load(Ordering::Acquire) {
                                    break;
                                }
                                let idle = Instant::now();
                                backoff.snooze();
                                stall += idle.elapsed();
                            }
                        }
                    }
                    (cpu.elapsed(), stall.as_secs_f64())
                })
            })
            .collect();

        // Scheduler: windows → sorted micro-batches → barrier → checkpoint.
        let mut pending: Vec<SequencedRead> = Vec::with_capacity(window_reads);
        let mut source_done = false;
        'windows: while !source_done || !pending.is_empty() {
            // Fill a window (or take what is left at end of stream).
            while pending.len() < window_reads && !source_done {
                match chunk_rx.recv() {
                    Ok(chunk) => {
                        let depth = chunk_rx.len();
                        max_queue_depth = max_queue_depth.max(depth);
                        queue_depth_sum += depth;
                        queue_samples += 1;
                        pending.extend(chunk);
                    }
                    Err(_) => source_done = true,
                }
            }
            if pending.is_empty() {
                break;
            }
            let window: Vec<SequencedRead> = if pending.len() > window_reads {
                let rest = pending.split_off(window_reads);
                std::mem::replace(&mut pending, rest)
            } else {
                std::mem::take(&mut pending)
            };
            let window_len = window.len();

            // Length-sorted micro-batches: similar-length reads cost
            // similar Pair-HMM time, keeping batch runtimes even. The
            // sort is stable, so composition is deterministic.
            let mut sorted = window;
            sorted.sort_by_key(SequencedRead::len);
            let mut window_batches = 0usize;
            while !sorted.is_empty() {
                let tail = sorted.split_off(sorted.len().min(sc.batch_size));
                let batch = std::mem::replace(&mut sorted, tail);
                reads_dispatched += batch.len();
                injector.push(Batch { reads: batch });
                window_batches += 1;
            }
            batches_dispatched += window_batches;
            batches_since_checkpoint += window_batches;

            // Window barrier: every dispatched batch reports back.
            let mut window_reads_done = 0usize;
            for _ in 0..window_batches {
                let done = done_rx.recv().expect("workers outlive the scheduler");
                mapped_total += done.mapped;
                window_reads_done += done.reads;
            }
            debug_assert_eq!(window_reads_done, window_len);
            cursor += window_len;

            // Periodic checkpoint, at a barrier so the snapshot is
            // consistent with the cursor.
            if let Some(policy) = &sc.checkpoint {
                if batches_since_checkpoint >= policy.every_batches {
                    checkpoint::save(
                        &policy.path,
                        &Checkpoint {
                            cursor,
                            reads_mapped: mapped_total,
                            counts: sharded.snapshot_counts(),
                        },
                    )?;
                    checkpoints_written += 1;
                    batches_since_checkpoint = 0;
                    observer.emit(|| Event::Checkpoint {
                        cursor: cursor as u64,
                        reads_mapped: mapped_total as u64,
                    });
                }
            }

            // Kill hook: die after the barrier, like a SIGKILL between
            // windows — whatever checkpoint exists on disk is all a
            // restart will see.
            if let Some(limit) = sc.abort_after_batches {
                if batches_dispatched >= limit {
                    aborted = true;
                    break 'windows;
                }
            }
        }

        // Drain and stop: workers exit at the next Empty steal.
        shutdown.store(true, Ordering::Release);
        drop(chunk_rx); // unblock a source stuck on a full channel
        let mut outcomes = Vec::with_capacity(sc.workers);
        for w in workers {
            outcomes.push(w.join().expect("worker panicked"));
        }
        Ok(outcomes)
    })?;
    map_timer.finish(observer);

    if let Some(e) = source_error.into_inner() {
        return Err(e);
    }
    if aborted {
        return Err(ExecError::Aborted { cursor });
    }

    let rank_cpu_secs: Vec<f64> = worker_outcomes.iter().map(|&(cpu, _)| cpu).collect();
    let worker_stall_secs: f64 = worker_outcomes.iter().map(|&(_, stall)| stall).sum();
    let stats = StreamStats {
        workers: sc.workers,
        batch_size: sc.batch_size,
        batches_dispatched,
        mean_batch_occupancy: if batches_dispatched == 0 {
            0.0
        } else {
            reads_dispatched as f64 / (batches_dispatched * sc.batch_size) as f64
        },
        max_queue_depth,
        mean_queue_depth: if queue_samples == 0 {
            0.0
        } else {
            queue_depth_sum as f64 / queue_samples as f64
        },
        source_stall_secs: source_stall_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
        worker_stall_secs,
        checkpoints_written,
        resumed_from_checkpoint: resumed,
    };

    let accumulator_bytes = sharded.heap_bytes();
    let full = sharded.into_full();
    let timer = StageTimer::start(observer, Stage::Call);
    let calls = call_snps(&full, reference, &config.calling);
    timer.finish(observer);
    let elapsed_secs = start.elapsed().as_secs_f64();
    observer.emit(|| Event::RunEnd {
        reads_processed: cursor as u64,
        reads_mapped: mapped_total as u64,
        calls: calls.len() as u64,
        wall_secs: elapsed_secs,
    });
    Ok(RunReport {
        calls,
        reads_processed: cursor,
        reads_mapped: mapped_total,
        elapsed_secs,
        accumulator_bytes,
        traffic: None,
        rank_cpu_secs,
        stream: Some(stats),
        accumulator_digest: Some(full.digest()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::MemoryStream;
    use gnumap_core::accum::FixedAccumulator;

    fn tiny_workload() -> (DnaSeq, Vec<SequencedRead>) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        let genome = simulate::generate_genome(
            &simulate::GenomeConfig {
                length: 2_500,
                repeat_families: 0,
                ..Default::default()
            },
            &mut rng,
        );
        let cfg = simulate::reads::ReadSimConfig {
            coverage: 6.0,
            ..Default::default()
        };
        let reads = simulate::reads::simulate_reads(
            &simulate::reads::ReadSource::Monoploid(&genome),
            cfg.read_count(genome.len()),
            &cfg,
            &mut rng,
        )
        .into_iter()
        .map(|r| r.read)
        .collect();
        (genome, reads)
    }

    #[test]
    fn empty_stream_produces_empty_report() {
        let (genome, _) = tiny_workload();
        let mut stream = MemoryStream::new(Vec::new());
        let report = run_stream::<FixedAccumulator>(
            &genome,
            &mut stream,
            &GnumapConfig::default(),
            &StreamConfig::default(),
        )
        .unwrap();
        assert_eq!(report.reads_processed, 0);
        assert_eq!(report.reads_mapped, 0);
        assert!(report.calls.is_empty());
        let stats = report.stream.unwrap();
        assert_eq!(stats.batches_dispatched, 0);
        assert!(!stats.resumed_from_checkpoint);
    }

    #[test]
    fn processes_every_read_and_reports_stats() {
        let (genome, reads) = tiny_workload();
        let n = reads.len();
        let mut stream = MemoryStream::new(reads);
        let sc = StreamConfig {
            workers: 2,
            batch_size: 16,
            chunk_size: 32,
            ..Default::default()
        };
        let report =
            run_stream::<FixedAccumulator>(&genome, &mut stream, &GnumapConfig::default(), &sc)
                .unwrap();
        assert_eq!(report.reads_processed, n);
        assert!(report.reads_mapped > n * 9 / 10);
        assert_eq!(report.rank_cpu_secs.len(), 2);
        let stats = report.stream.unwrap();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.batch_size, 16);
        assert!(stats.batches_dispatched >= n / 16);
        assert!(stats.mean_batch_occupancy > 0.0 && stats.mean_batch_occupancy <= 1.0);
        assert!(
            StreamStats::reads_per_cpu_sec(n, &report.rank_cpu_secs) > 0.0,
            "CPU-time throughput must be measurable"
        );
    }

    #[test]
    fn batch_size_and_worker_count_do_not_change_results() {
        let (genome, reads) = tiny_workload();
        let cfg = GnumapConfig::default();
        let baseline = {
            let mut s = MemoryStream::new(reads.clone());
            run_stream::<FixedAccumulator>(&genome, &mut s, &cfg, &StreamConfig::default()).unwrap()
        };
        for (workers, batch_size, chunk_size) in [(2, 8, 16), (3, 31, 7), (4, 64, 500)] {
            let mut s = MemoryStream::new(reads.clone());
            let sc = StreamConfig {
                workers,
                batch_size,
                chunk_size,
                ..Default::default()
            };
            let r = run_stream::<FixedAccumulator>(&genome, &mut s, &cfg, &sc).unwrap();
            assert_eq!(
                r.calls, baseline.calls,
                "workers={workers} batch={batch_size} chunk={chunk_size}"
            );
            assert_eq!(r.reads_mapped, baseline.reads_mapped);
        }
    }

    #[test]
    fn observed_stream_emits_batches_and_checkpoints() {
        use gnumap_core::observe::MemorySink;
        use std::sync::Arc;
        let (genome, reads) = tiny_workload();
        let cfg = GnumapConfig::default();
        let plain = {
            let mut s = MemoryStream::new(reads.clone());
            run_stream::<FixedAccumulator>(&genome, &mut s, &cfg, &StreamConfig::default()).unwrap()
        };
        let dir = std::env::temp_dir().join(format!("gnumap-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sc = StreamConfig {
            workers: 2,
            batch_size: 16,
            chunk_size: 32,
            checkpoint: Some(CheckpointPolicy {
                path: dir.join("cp.bin"),
                every_batches: 2,
                resume: false,
            }),
            ..Default::default()
        };
        let sink = Arc::new(MemorySink::new());
        let mut s = MemoryStream::new(reads.clone());
        let observed = run_stream_observed::<FixedAccumulator>(
            &genome,
            &mut s,
            &cfg,
            &sc,
            &Observer::new(sink.clone()),
        )
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(observed.accumulator_digest, plain.accumulator_digest);

        let events = sink.take();
        let batch_reads: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::Batch { reads, .. } => Some(*reads),
                _ => None,
            })
            .sum();
        assert_eq!(batch_reads, reads.len() as u64);
        let checkpoints = events
            .iter()
            .filter(|e| matches!(e, Event::Checkpoint { .. }))
            .count();
        assert_eq!(
            checkpoints,
            observed.stream.as_ref().unwrap().checkpoints_written
        );
        assert!(checkpoints > 0, "expected at least one checkpoint event");
        assert!(events.iter().any(|e| matches!(
            e,
            Event::StageEnd {
                stage: Stage::Map,
                ..
            }
        )));
    }

    #[test]
    fn abort_hook_reports_cursor_at_a_barrier() {
        let (genome, reads) = tiny_workload();
        let mut stream = MemoryStream::new(reads);
        let sc = StreamConfig {
            workers: 1,
            batch_size: 8,
            chunk_size: 8,
            abort_after_batches: Some(3),
            ..Default::default()
        };
        let err =
            run_stream::<FixedAccumulator>(&genome, &mut stream, &GnumapConfig::default(), &sc)
                .unwrap_err();
        match err {
            ExecError::Aborted { cursor } => {
                assert!(cursor > 0, "abort fires after at least one window");
            }
            other => panic!("expected Aborted, got {other}"),
        }
    }
}
