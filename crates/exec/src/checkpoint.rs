//! Atomic accumulator + cursor snapshots.
//!
//! A checkpoint pins the engine's state at a scheduling barrier: `cursor`
//! reads fully processed, their mapped count, and the decoded per-position
//! counts of the accumulator at that instant. Files are written to a
//! `.tmp` sibling and renamed into place, so a kill mid-write leaves the
//! previous checkpoint intact — a resumed run either sees the old
//! snapshot or the complete new one, never a torn file.

use crate::error::ExecError;
use gnumap_core::accum::NUM_SYMBOLS;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// File magic (versioned) and trailer.
const MAGIC: &[u8; 8] = b"GMSNPCK2";
const TRAILER: &[u8; 4] = b"END.";

/// FNV-1a over the serialized payload. Without it a flipped bit inside a
/// count would load silently and corrupt every downstream call; with it,
/// any payload damage surfaces as a typed [`ExecError::Checkpoint`].
#[derive(Clone, Copy)]
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// A consistent engine snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Reads fully processed (stream position to resume from).
    pub cursor: usize,
    /// Reads among those that produced at least one alignment.
    pub reads_mapped: usize,
    /// Decoded per-position counts of the accumulator at the barrier.
    pub counts: Vec<[f64; NUM_SYMBOLS]>,
}

/// Write `cp` to `path` atomically (tmp + rename).
pub fn save(path: &Path, cp: &Checkpoint) -> Result<(), ExecError> {
    let tmp = path.with_extension("tmp");
    {
        let mut w = BufWriter::new(File::create(&tmp)?);
        let mut sum = Fnv64::new();
        let put =
            |w: &mut BufWriter<File>, sum: &mut Fnv64, bytes: &[u8]| -> Result<(), ExecError> {
                sum.update(bytes);
                w.write_all(bytes)?;
                Ok(())
            };
        w.write_all(MAGIC)?;
        put(&mut w, &mut sum, &(cp.cursor as u64).to_le_bytes())?;
        put(&mut w, &mut sum, &(cp.reads_mapped as u64).to_le_bytes())?;
        put(&mut w, &mut sum, &(cp.counts.len() as u64).to_le_bytes())?;
        for pos in &cp.counts {
            for &c in pos {
                put(&mut w, &mut sum, &c.to_le_bytes())?;
            }
        }
        w.write_all(&sum.finish().to_le_bytes())?;
        w.write_all(TRAILER)?;
        w.flush()?;
        w.get_ref().sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load a checkpoint; `Ok(None)` when the file does not exist.
pub fn load(path: &Path) -> Result<Option<Checkpoint>, ExecError> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut r = BufReader::new(file);
    let corrupt = |what: &str| ExecError::Checkpoint(format!("{}: {what}", path.display()));

    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|_| corrupt("file too short for header"))?;
    if &magic != MAGIC {
        return Err(corrupt("bad magic (not a checkpoint, or a newer format)"));
    }
    let mut sum = Fnv64::new();
    let mut u64buf = [0u8; 8];
    let mut read_u64 =
        |r: &mut BufReader<File>, sum: &mut Fnv64, what: &str| -> Result<u64, ExecError> {
            r.read_exact(&mut u64buf).map_err(|_| corrupt(what))?;
            sum.update(&u64buf);
            Ok(u64::from_le_bytes(u64buf))
        };
    let cursor = read_u64(&mut r, &mut sum, "truncated cursor")? as usize;
    let reads_mapped = read_u64(&mut r, &mut sum, "truncated mapped count")? as usize;
    let len = read_u64(&mut r, &mut sum, "truncated length")? as usize;

    let mut counts = Vec::with_capacity(len.min(1 << 24));
    let mut f64buf = [0u8; 8];
    for _ in 0..len {
        let mut pos = [0.0; NUM_SYMBOLS];
        for slot in &mut pos {
            r.read_exact(&mut f64buf)
                .map_err(|_| corrupt("truncated counts"))?;
            sum.update(&f64buf);
            *slot = f64::from_le_bytes(f64buf);
        }
        counts.push(pos);
    }
    let mut sumbuf = [0u8; 8];
    r.read_exact(&mut sumbuf)
        .map_err(|_| corrupt("missing checksum"))?;
    if u64::from_le_bytes(sumbuf) != sum.finish() {
        return Err(corrupt("checksum mismatch (corrupt payload)"));
    }
    let mut trailer = [0u8; 4];
    r.read_exact(&mut trailer)
        .map_err(|_| corrupt("missing trailer"))?;
    if &trailer != TRAILER {
        return Err(corrupt("bad trailer (truncated write?)"));
    }
    Ok(Some(Checkpoint {
        cursor,
        reads_mapped,
        counts,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("exec-ckpt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            cursor: 1234,
            reads_mapped: 1200,
            counts: (0..17).map(|i| [i as f64, 0.5, 0.0, 2.25, 1e-9]).collect(),
        }
    }

    #[test]
    fn round_trip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("state.ckpt");
        let cp = sample();
        save(&path, &cp).unwrap();
        assert_eq!(load(&path).unwrap().unwrap(), cp);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_none() {
        let dir = tmpdir("missing");
        assert!(load(&dir.join("nope.ckpt")).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let dir = tmpdir("trunc");
        let path = dir.join("state.ckpt");
        save(&path, &sample()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        assert!(matches!(load(&path), Err(ExecError::Checkpoint(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_payload_byte_is_rejected() {
        let dir = tmpdir("bitflip");
        let path = dir.join("state.ckpt");
        save(&path, &sample()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match load(&path) {
            Err(ExecError::Checkpoint(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected checksum failure, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_file_is_rejected() {
        let dir = tmpdir("foreign");
        let path = dir.join("state.ckpt");
        std::fs::write(&path, b"definitely not a checkpoint file").unwrap();
        assert!(matches!(load(&path), Err(ExecError::Checkpoint(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overwrite_replaces_previous_snapshot() {
        let dir = tmpdir("overwrite");
        let path = dir.join("state.ckpt");
        save(&path, &sample()).unwrap();
        let newer = Checkpoint {
            cursor: 9999,
            ..sample()
        };
        save(&path, &newer).unwrap();
        assert_eq!(load(&path).unwrap().unwrap().cursor, 9999);
        std::fs::remove_dir_all(&dir).ok();
    }
}
