//! Chunked read sources.
//!
//! A [`ReadStream`] hands out reads in chunks rather than as one giant
//! slice, so the engine's memory footprint is bounded by the channel
//! capacity × chunk size, not by the input size. `skip` exists for
//! checkpoint resume: a restarted run fast-forwards the source to the
//! saved cursor, and every implementation guarantees that
//! `skip(n)` + `next_chunk(..)` yields exactly the reads an uninterrupted
//! run would have seen from position `n` on.

use crate::error::ExecError;
use genome::quality::symbol_to_phred;
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// An ordered, possibly unbounded sequence of reads consumed in chunks.
pub trait ReadStream: Send {
    /// Pull up to `max` reads. An empty vector means end of stream.
    fn next_chunk(&mut self, max: usize) -> Result<Vec<SequencedRead>, ExecError>;

    /// Discard the next `n` reads (checkpoint resume). Implementations
    /// must leave the stream in exactly the state reached by pulling and
    /// dropping `n` reads.
    fn skip(&mut self, n: usize) -> Result<(), ExecError>;
}

/// In-memory stream over an owned read vector (tests, small inputs).
pub struct MemoryStream {
    reads: Vec<SequencedRead>,
    cursor: usize,
}

impl MemoryStream {
    /// Stream over `reads` from the beginning.
    pub fn new(reads: Vec<SequencedRead>) -> Self {
        MemoryStream { reads, cursor: 0 }
    }
}

impl ReadStream for MemoryStream {
    fn next_chunk(&mut self, max: usize) -> Result<Vec<SequencedRead>, ExecError> {
        let end = (self.cursor + max).min(self.reads.len());
        let chunk = self.reads[self.cursor..end].to_vec();
        self.cursor = end;
        Ok(chunk)
    }

    fn skip(&mut self, n: usize) -> Result<(), ExecError> {
        self.cursor = (self.cursor + n).min(self.reads.len());
        Ok(())
    }
}

/// Incremental four-line FASTQ reader: parses records on demand instead
/// of loading the whole file like [`genome::fastq::read_fastq`].
pub struct FastqStream<R: BufRead + Send> {
    reader: R,
    /// 1-based line number of the next line, for error messages.
    line: usize,
}

impl FastqStream<BufReader<File>> {
    /// Open a FASTQ file for streaming.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ExecError> {
        let path = path.as_ref();
        let file =
            File::open(path).map_err(|e| ExecError::Source(format!("{}: {e}", path.display())))?;
        Ok(FastqStream::new(BufReader::new(file)))
    }
}

impl<R: BufRead + Send> FastqStream<R> {
    /// Stream records from any buffered reader.
    pub fn new(reader: R) -> Self {
        FastqStream { reader, line: 0 }
    }

    fn read_line(&mut self) -> Result<Option<String>, ExecError> {
        let mut buf = String::new();
        let n = self.reader.read_line(&mut buf)?;
        if n == 0 {
            return Ok(None);
        }
        self.line += 1;
        while buf.ends_with('\n') || buf.ends_with('\r') {
            buf.pop();
        }
        Ok(Some(buf))
    }

    fn malformed(&self, reason: impl Into<String>) -> ExecError {
        ExecError::Source(format!("fastq line {}: {}", self.line, reason.into()))
    }

    /// Parse one record; `None` at end of input.
    fn next_record(&mut self) -> Result<Option<SequencedRead>, ExecError> {
        let header = loop {
            match self.read_line()? {
                None => return Ok(None),
                Some(l) if l.is_empty() => continue,
                Some(l) => break l,
            }
        };
        let id = header
            .strip_prefix('@')
            .ok_or_else(|| self.malformed(format!("expected '@' header, found {header:?}")))?
            .to_string();
        let seq_text = self
            .read_line()?
            .ok_or_else(|| self.malformed(format!("record {id:?} truncated before sequence")))?;
        let plus = self
            .read_line()?
            .ok_or_else(|| self.malformed(format!("record {id:?} truncated before '+'")))?;
        if !plus.starts_with('+') {
            return Err(self.malformed(format!("expected '+' separator, found {plus:?}")));
        }
        let qual_text = self
            .read_line()?
            .ok_or_else(|| self.malformed(format!("record {id:?} truncated before quality")))?;

        let seq =
            DnaSeq::from_ascii(seq_text.as_bytes()).map_err(|e| self.malformed(e.to_string()))?;
        let mut quals = Vec::with_capacity(qual_text.len());
        for &c in qual_text.as_bytes() {
            quals
                .push(symbol_to_phred(c).ok_or_else(|| {
                    self.malformed(format!("bad quality symbol {:?}", c as char))
                })?);
        }
        SequencedRead::new(id, seq, quals)
            .map(Some)
            .map_err(|e| self.malformed(e.to_string()))
    }
}

impl<R: BufRead + Send> ReadStream for FastqStream<R> {
    fn next_chunk(&mut self, max: usize) -> Result<Vec<SequencedRead>, ExecError> {
        let mut chunk = Vec::with_capacity(max.min(1024));
        while chunk.len() < max {
            match self.next_record()? {
                Some(read) => chunk.push(read),
                None => break,
            }
        }
        Ok(chunk)
    }

    fn skip(&mut self, n: usize) -> Result<(), ExecError> {
        for _ in 0..n {
            if self.next_record()?.is_none() {
                return Err(ExecError::Checkpoint(format!(
                    "stream ended while skipping to cursor (wanted {n} more reads)"
                )));
            }
        }
        Ok(())
    }
}

/// Simulator-backed stream: generates reads lazily from an individual's
/// genome, one chunk at a time. Chunking is invisible — the underlying
/// generator draws per read, so any chunk-size schedule (including
/// `skip`-then-read on resume) yields the identical read sequence for the
/// same seed.
pub struct SimReadStream {
    individual: DnaSeq,
    config: ReadSimConfig,
    rng: ChaCha8Rng,
    remaining: usize,
    emitted: usize,
}

impl SimReadStream {
    /// Stream `count` reads simulated from `individual`.
    pub fn new(individual: DnaSeq, config: ReadSimConfig, seed: u64, count: usize) -> Self {
        SimReadStream {
            individual,
            config,
            rng: ChaCha8Rng::seed_from_u64(seed),
            remaining: count,
            emitted: 0,
        }
    }

    fn generate(&mut self, n: usize) -> Vec<SequencedRead> {
        let sim = simulate_reads(
            &ReadSource::Monoploid(&self.individual),
            n,
            &self.config,
            &mut self.rng,
        );
        self.remaining -= n;
        sim.into_iter()
            .map(|r| {
                // Renumber globally so chunked generation matches a single
                // simulate_reads call over the whole count.
                let read = SequencedRead {
                    id: format!("sim_{}", self.emitted),
                    ..r.read
                };
                self.emitted += 1;
                read
            })
            .collect()
    }
}

impl ReadStream for SimReadStream {
    fn next_chunk(&mut self, max: usize) -> Result<Vec<SequencedRead>, ExecError> {
        let n = max.min(self.remaining);
        Ok(self.generate(n))
    }

    fn skip(&mut self, n: usize) -> Result<(), ExecError> {
        if n > self.remaining {
            return Err(ExecError::Checkpoint(format!(
                "cursor {n} beyond simulated stream of {} remaining reads",
                self.remaining
            )));
        }
        // Generating and discarding advances the RNG exactly as an
        // uninterrupted run would have.
        let _ = self.generate(n);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_reads(n: usize) -> Vec<SequencedRead> {
        (0..n)
            .map(|i| {
                SequencedRead::with_uniform_quality(
                    format!("r{i}"),
                    "ACGTACGT".parse().unwrap(),
                    30,
                )
            })
            .collect()
    }

    #[test]
    fn memory_stream_chunks_and_skips() {
        let mut s = MemoryStream::new(sample_reads(10));
        s.skip(3).unwrap();
        let c = s.next_chunk(4).unwrap();
        assert_eq!(
            c.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
            ["r3", "r4", "r5", "r6"]
        );
        assert_eq!(s.next_chunk(100).unwrap().len(), 3);
        assert!(s.next_chunk(1).unwrap().is_empty());
    }

    #[test]
    fn fastq_stream_parses_incrementally() {
        let text = "@a\nACGT\n+\nIIII\n@b\nTT\n+\nII\n@c\nGG\n+\nII\n";
        let mut s = FastqStream::new(Cursor::new(text));
        let c1 = s.next_chunk(2).unwrap();
        assert_eq!(c1.len(), 2);
        assert_eq!(c1[0].id, "a");
        assert_eq!(c1[1].id, "b");
        let c2 = s.next_chunk(2).unwrap();
        assert_eq!(c2.len(), 1);
        assert_eq!(c2[0].id, "c");
        assert!(s.next_chunk(1).unwrap().is_empty());
    }

    #[test]
    fn fastq_stream_matches_batch_parser() {
        let reads = sample_reads(5);
        let mut buf = Vec::new();
        genome::fastq::write_fastq(&mut buf, &reads).unwrap();
        let batch = genome::fastq::read_fastq(Cursor::new(&buf)).unwrap();
        let mut s = FastqStream::new(Cursor::new(&buf));
        let streamed = s.next_chunk(usize::MAX).unwrap();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn fastq_stream_rejects_garbage() {
        let mut s = FastqStream::new(Cursor::new("not a header\n"));
        let err = s.next_chunk(1).unwrap_err();
        assert!(err.to_string().contains("'@' header"), "{err}");

        let mut s = FastqStream::new(Cursor::new("@r\nACGT\n+\n"));
        let err = s.next_chunk(1).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn fastq_skip_past_end_is_a_checkpoint_error() {
        let mut s = FastqStream::new(Cursor::new("@a\nAC\n+\nII\n"));
        assert!(matches!(s.skip(2), Err(ExecError::Checkpoint(_))));
    }

    #[test]
    fn sim_stream_is_chunking_invariant() {
        let genome = simulate::generate_genome(
            &simulate::GenomeConfig {
                length: 2_000,
                repeat_families: 0,
                ..Default::default()
            },
            &mut ChaCha8Rng::seed_from_u64(9),
        );
        let cfg = ReadSimConfig::default();

        let mut one_shot = SimReadStream::new(genome.clone(), cfg, 7, 60);
        let all = one_shot.next_chunk(usize::MAX).unwrap();
        assert_eq!(all.len(), 60);

        let mut chunked = SimReadStream::new(genome.clone(), cfg, 7, 60);
        let mut got = Vec::new();
        for chunk_size in [7usize, 13, 1, 100] {
            got.extend(chunked.next_chunk(chunk_size).unwrap());
        }
        assert_eq!(got, all, "chunk schedule must not change the reads");

        // skip(n) == generate-and-discard n.
        let mut resumed = SimReadStream::new(genome, cfg, 7, 60);
        resumed.skip(25).unwrap();
        let tail = resumed.next_chunk(usize::MAX).unwrap();
        assert_eq!(tail, all[25..].to_vec());
    }
}
