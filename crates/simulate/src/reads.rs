//! MetaSim-style Illumina read simulation.
//!
//! Reads are sampled uniformly over valid start positions of the source
//! genome (one haplotype chosen uniformly for diploid individuals), from
//! either strand with equal probability. Each cycle then suffers a
//! substitution error with the profile's per-cycle rate, and the emitted
//! Phred quality string reports those same rates — the generator is honest,
//! which is what lets the Pair-HMM's quality weighting help.

use crate::error_profile::ErrorProfile;
use crate::genome_gen::mutate_base;
use genome::diploid::DiploidGenome;
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use rand::Rng;

/// Configuration for [`simulate_reads`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadSimConfig {
    /// Read length in bases (the paper simulates 62 bp).
    pub read_length: usize,
    /// Mean coverage: expected number of reads overlapping each base.
    pub coverage: f64,
    /// Per-cycle substitution error model.
    pub profile: ErrorProfile,
    /// Per-cycle probability of inserting a spurious base (not consuming
    /// a template base). Illumina indel rates are tiny (~1e-4); default 0.
    pub insertion_rate: f64,
    /// Per-cycle probability of skipping a template base. Default 0.
    pub deletion_rate: f64,
}

impl Default for ReadSimConfig {
    fn default() -> Self {
        ReadSimConfig {
            read_length: 62,
            coverage: 12.0,
            profile: ErrorProfile::default(),
            insertion_rate: 0.0,
            deletion_rate: 0.0,
        }
    }
}

impl ReadSimConfig {
    /// Number of reads needed to reach the configured coverage over a
    /// genome of `genome_len` bases.
    pub fn read_count(&self, genome_len: usize) -> usize {
        ((self.coverage * genome_len as f64) / self.read_length as f64).round() as usize
    }
}

/// Ground truth about where a simulated read came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOrigin {
    /// 0-based start of the fragment on the reference coordinate system.
    pub start: usize,
    /// Whether the read was taken from the reverse strand.
    pub reverse: bool,
    /// Which haplotype it came from (0/1; always 0 for monoploid sources).
    pub haplotype: usize,
    /// Number of substitution errors injected.
    pub errors: usize,
    /// Number of spurious inserted bases.
    pub insertions: usize,
    /// Number of skipped template bases.
    pub deletions: usize,
}

/// A simulated read plus its origin.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedRead {
    pub read: SequencedRead,
    pub origin: ReadOrigin,
}

/// Source of fragments: one sequence or a diploid pair.
pub enum ReadSource<'a> {
    Monoploid(&'a DnaSeq),
    Diploid(&'a DiploidGenome),
}

impl ReadSource<'_> {
    fn len(&self) -> usize {
        match self {
            ReadSource::Monoploid(s) => s.len(),
            ReadSource::Diploid(d) => d.len(),
        }
    }

    fn haplotype(&self, which: usize) -> &DnaSeq {
        match self {
            ReadSource::Monoploid(s) => s,
            ReadSource::Diploid(d) => d.haplotype(which),
        }
    }

    fn n_haplotypes(&self) -> usize {
        match self {
            ReadSource::Monoploid(_) => 1,
            ReadSource::Diploid(_) => 2,
        }
    }
}

/// Simulate `count` reads from `source`.
pub fn simulate_reads<R: Rng>(
    source: &ReadSource<'_>,
    count: usize,
    config: &ReadSimConfig,
    rng: &mut R,
) -> Vec<SimulatedRead> {
    let len = source.len();
    assert!(
        len >= config.read_length,
        "genome ({len}) shorter than read length ({})",
        config.read_length
    );
    // With deletions the read consumes more template than its length;
    // fetch a fragment with slack so the template never runs dry.
    let has_indels = config.insertion_rate > 0.0 || config.deletion_rate > 0.0;
    let slack = if has_indels {
        (config.read_length / 4).max(8)
    } else {
        0
    };
    assert!(
        len >= config.read_length + slack,
        "genome too short for read length plus indel slack"
    );
    let max_start = len - config.read_length - slack;
    let mut out = Vec::with_capacity(count);
    for idx in 0..count {
        let start = rng.random_range(0..=max_start);
        let haplotype = if source.n_haplotypes() == 2 {
            rng.random_range(0..2)
        } else {
            0
        };
        let reverse = rng.random_bool(0.5);
        let fragment = source
            .haplotype(haplotype)
            .window(start, start + config.read_length + slack);
        let fragment = if reverse {
            fragment.reverse_complement()
        } else {
            fragment
        };

        // Walk the template applying per-cycle substitutions and indels,
        // emitting matching qualities.
        let mut seq = DnaSeq::with_capacity(config.read_length);
        let mut quals = Vec::with_capacity(config.read_length);
        let mut errors = 0usize;
        let mut insertions = 0usize;
        let mut deletions = 0usize;
        let mut template = 0usize; // next template position to consume
        while seq.len() < config.read_length {
            let i = seq.len();
            if has_indels && rng.random_bool(config.insertion_rate) {
                // Spurious base: emit without consuming template.
                insertions += 1;
                let random = genome::alphabet::Base::from_index(rng.random_range(0..4));
                seq.push(Some(random));
                quals.push(config.profile.quality_at(i, config.read_length));
                continue;
            }
            if has_indels && template < fragment.len() && rng.random_bool(config.deletion_rate) {
                deletions += 1;
                template += 1;
                continue;
            }
            let b = if template < fragment.len() {
                fragment.get(template)
            } else {
                None // ran past the slack: emit an N
            };
            template += 1;
            let e = config.profile.error_at(i, config.read_length);
            let b = match b {
                Some(b) if e > 0.0 && rng.random_bool(e) => {
                    errors += 1;
                    Some(mutate_base(b, rng))
                }
                other => other,
            };
            seq.push(b);
            quals.push(config.profile.quality_at(i, config.read_length));
        }

        let read = SequencedRead::new(format!("sim_{idx}"), seq, quals)
            .expect("generator emits matching lengths");
        out.push(SimulatedRead {
            read,
            origin: ReadOrigin {
                start,
                reverse,
                haplotype,
                errors,
                insertions,
                deletions,
            },
        });
    }
    out
}

/// Convenience: simulate to a target coverage instead of a count.
pub fn simulate_to_coverage<R: Rng>(
    source: &ReadSource<'_>,
    config: &ReadSimConfig,
    rng: &mut R,
) -> Vec<SimulatedRead> {
    let count = config.read_count(source.len());
    simulate_reads(source, count, config, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome_gen::{generate_genome, GenomeConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn test_genome(len: usize) -> DnaSeq {
        generate_genome(
            &GenomeConfig {
                length: len,
                repeat_families: 0,
                ..GenomeConfig::default()
            },
            &mut rng(42),
        )
    }

    #[test]
    fn read_count_matches_coverage() {
        let cfg = ReadSimConfig::default();
        // 12x over 62_000 bases at 62 bp → 12_000 reads.
        assert_eq!(cfg.read_count(62_000), 12_000);
    }

    #[test]
    fn error_free_reads_match_their_origin() {
        let g = test_genome(2_000);
        let cfg = ReadSimConfig {
            read_length: 50,
            coverage: 5.0,
            profile: ErrorProfile::perfect(),
            ..Default::default()
        };
        let reads = simulate_reads(&ReadSource::Monoploid(&g), 100, &cfg, &mut rng(1));
        assert_eq!(reads.len(), 100);
        for sr in &reads {
            assert_eq!(sr.origin.errors, 0);
            let frag = g.window(sr.origin.start, sr.origin.start + 50);
            let expect = if sr.origin.reverse {
                frag.reverse_complement()
            } else {
                frag
            };
            assert_eq!(sr.read.seq, expect, "read must equal its source fragment");
        }
    }

    #[test]
    fn error_rate_matches_profile() {
        let g = test_genome(5_000);
        let cfg = ReadSimConfig {
            read_length: 62,
            coverage: 1.0,
            profile: ErrorProfile::default(),
            ..Default::default()
        };
        let reads = simulate_reads(&ReadSource::Monoploid(&g), 2_000, &cfg, &mut rng(2));
        let total_errors: usize = reads.iter().map(|r| r.origin.errors).sum();
        let expected = 2_000.0 * cfg.profile.expected_errors(62);
        let ratio = total_errors as f64 / expected;
        assert!(
            (0.9..1.1).contains(&ratio),
            "observed/expected error ratio {ratio}"
        );
    }

    #[test]
    fn strands_and_starts_are_roughly_uniform() {
        let g = test_genome(1_000);
        let cfg = ReadSimConfig {
            read_length: 100,
            coverage: 1.0,
            profile: ErrorProfile::perfect(),
            ..Default::default()
        };
        let reads = simulate_reads(&ReadSource::Monoploid(&g), 4_000, &cfg, &mut rng(3));
        let reversed = reads.iter().filter(|r| r.origin.reverse).count();
        assert!((1800..2200).contains(&reversed), "reverse count {reversed}");
        let early = reads.iter().filter(|r| r.origin.start < 450).count();
        assert!((1700..2300).contains(&early), "early-start count {early}");
    }

    #[test]
    fn diploid_reads_sample_both_haplotypes() {
        let g = test_genome(3_000);
        let d = genome::diploid::DiploidGenome::homozygous(g);
        let cfg = ReadSimConfig {
            read_length: 62,
            coverage: 1.0,
            profile: ErrorProfile::perfect(),
            ..Default::default()
        };
        let reads = simulate_reads(&ReadSource::Diploid(&d), 1_000, &cfg, &mut rng(4));
        let hap1 = reads.iter().filter(|r| r.origin.haplotype == 1).count();
        assert!((400..600).contains(&hap1), "haplotype-1 count {hap1}");
    }

    #[test]
    fn qualities_are_the_profile_ramp() {
        let g = test_genome(500);
        let cfg = ReadSimConfig::default();
        let reads = simulate_reads(&ReadSource::Monoploid(&g), 3, &cfg, &mut rng(5));
        for sr in &reads {
            for (i, &q) in sr.read.quals.iter().enumerate() {
                assert_eq!(q, cfg.profile.quality_at(i, cfg.read_length));
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = test_genome(1_000);
        let cfg = ReadSimConfig::default();
        let a = simulate_reads(&ReadSource::Monoploid(&g), 50, &cfg, &mut rng(6));
        let b = simulate_reads(&ReadSource::Monoploid(&g), 50, &cfg, &mut rng(6));
        assert_eq!(a, b);
    }

    #[test]
    fn indel_rates_are_respected() {
        let g = test_genome(20_000);
        let cfg = ReadSimConfig {
            read_length: 62,
            coverage: 1.0,
            profile: ErrorProfile::perfect(),
            insertion_rate: 0.01,
            deletion_rate: 0.02,
        };
        let reads = simulate_reads(&ReadSource::Monoploid(&g), 3_000, &cfg, &mut rng(21));
        let total_ins: usize = reads.iter().map(|r| r.origin.insertions).sum();
        let total_del: usize = reads.iter().map(|r| r.origin.deletions).sum();
        let cycles = 3_000.0 * 62.0;
        let ins_rate = total_ins as f64 / cycles;
        let del_rate = total_del as f64 / cycles;
        assert!((ins_rate - 0.01).abs() < 0.003, "insertion rate {ins_rate}");
        assert!((del_rate - 0.02).abs() < 0.005, "deletion rate {del_rate}");
        // Read lengths stay fixed regardless of indels.
        assert!(reads.iter().all(|r| r.read.len() == 62));
    }

    #[test]
    fn zero_indel_rates_reproduce_the_old_generator() {
        let g = test_genome(2_000);
        let cfg = ReadSimConfig {
            read_length: 50,
            coverage: 5.0,
            profile: ErrorProfile::perfect(),
            ..Default::default()
        };
        let reads = simulate_reads(&ReadSource::Monoploid(&g), 200, &cfg, &mut rng(22));
        for sr in &reads {
            assert_eq!(sr.origin.insertions, 0);
            assert_eq!(sr.origin.deletions, 0);
            let frag = g.window(sr.origin.start, sr.origin.start + 50);
            let expect = if sr.origin.reverse {
                frag.reverse_complement()
            } else {
                frag
            };
            assert_eq!(sr.read.seq, expect);
        }
    }

    #[test]
    fn deletion_reads_match_template_with_skips() {
        let g = test_genome(5_000);
        let cfg = ReadSimConfig {
            read_length: 40,
            coverage: 1.0,
            profile: ErrorProfile::perfect(),
            insertion_rate: 0.0,
            deletion_rate: 0.05,
        };
        let reads = simulate_reads(&ReadSource::Monoploid(&g), 400, &cfg, &mut rng(23));
        // A read with d deletions consumes 40 + d template bases; verify a
        // deletion-bearing forward read aligns to its template with skips.
        let with_del = reads
            .iter()
            .find(|r| r.origin.deletions > 0 && !r.origin.reverse)
            .expect("some forward read should carry a deletion");
        let d = with_del.origin.deletions;
        let template = g.window(with_del.origin.start, with_del.origin.start + 40 + d);
        // Every read base must appear in the template in order (subsequence).
        let mut t = 0usize;
        for b in with_del.read.seq.iter() {
            while t < template.len() && template.get(t) != b {
                t += 1;
            }
            assert!(
                t < template.len(),
                "read is not a subsequence of its template"
            );
            t += 1;
        }
    }

    #[test]
    #[should_panic]
    fn genome_shorter_than_read_rejected() {
        let g = test_genome(30);
        let cfg = ReadSimConfig::default(); // 62 bp reads
        let _ = simulate_reads(&ReadSource::Monoploid(&g), 1, &cfg, &mut rng(7));
    }
}
