//! Synthetic data substrates for the evaluation pipeline.
//!
//! The paper's experiments run on the human X chromosome, a dbSNP-derived
//! list of 14,501 planted SNPs, and 31 M MetaSim-simulated Illumina 62-bp
//! reads. None of those inputs ship with this repository, so this crate
//! generates faithful synthetic equivalents (see DESIGN.md §2 for the
//! substitution argument):
//!
//! * [`genome_gen`] — reference genomes with tunable GC content and planted
//!   repeat families (repeats are what make probabilistic mapping
//!   interesting — multi-mapping reads);
//! * [`snp`] — SNP catalogues with a realistic transition:transversion
//!   ratio, applied to produce monoploid or diploid individuals;
//! * [`reads`] — a MetaSim-style Illumina read simulator: uniform sampling
//!   from either strand (and either haplotype), a position-dependent error
//!   profile that worsens toward the 3' end, and Phred quality strings
//!   consistent with the injected error rates.
//!
//! Everything is driven by a caller-supplied seeded RNG, so every
//! experiment in the bench harness is exactly reproducible.

pub mod error_profile;
pub mod genome_gen;
pub mod reads;
pub mod snp;

pub use error_profile::ErrorProfile;
pub use genome_gen::{generate_genome, GenomeConfig};
pub use reads::{simulate_reads, ReadSimConfig};
pub use snp::{
    apply_snps_diploid, apply_snps_monoploid, generate_snp_catalog, PlantedSnp, SnpCatalogConfig,
    Zygosity,
};
