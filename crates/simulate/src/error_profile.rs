//! Illumina-like sequencing error profiles.
//!
//! MetaSim's Illumina model (the paper's read generator, ref. \[16\]) has one
//! defining property: the substitution error rate grows along the read, so
//! 3'-end bases are markedly less reliable than 5'-end ones. We model the
//! per-cycle error rate as a linear ramp from `error_start` to `error_end`
//! and emit Phred qualities that *honestly* describe those rates — which is
//! exactly the property GNUMAP-SNP's PWM needs to exploit.

use genome::quality::error_prob_to_phred;

/// A per-cycle substitution error model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorProfile {
    /// Error probability at the first cycle (5' end).
    pub error_start: f64,
    /// Error probability at the last cycle (3' end).
    pub error_end: f64,
}

impl Default for ErrorProfile {
    /// Roughly a 2008-era Illumina/Solexa profile: 0.2% at the 5' end
    /// rising to 2% at the 3' end of the read (mean ≈ 1.1%).
    fn default() -> Self {
        ErrorProfile {
            error_start: 0.002,
            error_end: 0.02,
        }
    }
}

impl ErrorProfile {
    /// An idealised error-free profile (useful in tests).
    pub fn perfect() -> ErrorProfile {
        ErrorProfile {
            error_start: 0.0,
            error_end: 0.0,
        }
    }

    /// Error probability at 0-based cycle `i` of a read of length `len`.
    pub fn error_at(&self, i: usize, len: usize) -> f64 {
        assert!(i < len, "cycle {i} out of range for read length {len}");
        if len == 1 {
            return self.error_start;
        }
        let t = i as f64 / (len - 1) as f64;
        self.error_start + t * (self.error_end - self.error_start)
    }

    /// The Phred quality honestly describing the error rate at cycle `i`.
    pub fn quality_at(&self, i: usize, len: usize) -> u8 {
        error_prob_to_phred(self.error_at(i, len))
    }

    /// Expected number of errors in a read of length `len`.
    pub fn expected_errors(&self, len: usize) -> f64 {
        (0..len).map(|i| self.error_at(i, len)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_endpoints() {
        let p = ErrorProfile::default();
        assert!((p.error_at(0, 62) - 0.002).abs() < 1e-12);
        assert!((p.error_at(61, 62) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn ramp_is_monotone() {
        let p = ErrorProfile::default();
        let mut last = 0.0;
        for i in 0..62 {
            let e = p.error_at(i, 62);
            assert!(e >= last);
            last = e;
        }
    }

    #[test]
    fn qualities_track_error_rates() {
        let p = ErrorProfile::default();
        // 0.002 → Q27, 0.02 → Q17.
        assert_eq!(p.quality_at(0, 62), 27);
        assert_eq!(p.quality_at(61, 62), 17);
        assert!(p.quality_at(0, 62) > p.quality_at(61, 62));
    }

    #[test]
    fn perfect_profile_has_no_errors() {
        let p = ErrorProfile::perfect();
        assert_eq!(p.expected_errors(100), 0.0);
        assert_eq!(p.quality_at(50, 100), genome::quality::MAX_PHRED);
    }

    #[test]
    fn single_base_read() {
        let p = ErrorProfile::default();
        assert_eq!(p.error_at(0, 1), 0.002);
    }

    #[test]
    fn expected_errors_matches_mean() {
        let p = ErrorProfile::default();
        let e = p.expected_errors(62);
        // Mean of a linear ramp = (start + end)/2 per cycle.
        assert!((e - 62.0 * 0.011).abs() < 1e-9);
    }
}
