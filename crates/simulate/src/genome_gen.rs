//! Reference genome generation.
//!
//! A purely uniform random genome would be the *easiest possible* mapping
//! target — every 10-mer is essentially unique. Real chromosomes are not
//! like that: the paper stresses GNUMAP-SNP's behaviour "in repeat regions".
//! So the generator plants repeat families: a source segment is copied to
//! several locations (with a light mutation rate per copy, as real
//! paralogues diverge), creating the multi-mapping ambiguity that
//! probabilistic mapping exists to handle.

use genome::alphabet::Base;
use genome::seq::DnaSeq;
use rand::Rng;

/// Configuration for [`generate_genome`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenomeConfig {
    /// Total genome length in bases.
    pub length: usize,
    /// Target GC fraction of the random background (0..1).
    pub gc_content: f64,
    /// Number of repeat families to plant.
    pub repeat_families: usize,
    /// Length of each repeat unit.
    pub repeat_length: usize,
    /// Copies of each family (including the original).
    pub repeat_copies: usize,
    /// Per-base divergence applied independently to each extra copy.
    pub repeat_divergence: f64,
}

impl Default for GenomeConfig {
    fn default() -> Self {
        GenomeConfig {
            length: 100_000,
            gc_content: 0.41, // human-like
            repeat_families: 4,
            repeat_length: 300,
            repeat_copies: 3,
            repeat_divergence: 0.01,
        }
    }
}

/// Generate a reference genome.
pub fn generate_genome<R: Rng>(config: &GenomeConfig, rng: &mut R) -> DnaSeq {
    assert!(config.length > 0, "genome length must be positive");
    assert!(
        (0.0..=1.0).contains(&config.gc_content),
        "gc_content must be a fraction"
    );
    assert!(
        (0.0..=1.0).contains(&config.repeat_divergence),
        "repeat_divergence must be a fraction"
    );

    // Background: i.i.d. bases at the requested GC content.
    let mut seq = DnaSeq::with_capacity(config.length);
    for _ in 0..config.length {
        seq.push(Some(random_base(config.gc_content, rng)));
    }

    // Plant repeat families on top of the background.
    let rl = config.repeat_length.min(config.length);
    if rl > 0 && config.repeat_copies >= 2 && config.length > rl {
        for _ in 0..config.repeat_families {
            let src = rng.random_range(0..=config.length - rl);
            let unit: Vec<Option<Base>> = (src..src + rl).map(|p| seq.get(p)).collect();
            for _ in 1..config.repeat_copies {
                let dst = rng.random_range(0..=config.length - rl);
                for (off, &b) in unit.iter().enumerate() {
                    let b = match b {
                        Some(b) if rng.random_bool(config.repeat_divergence) => {
                            Some(mutate_base(b, rng))
                        }
                        other => other,
                    };
                    seq.set(dst + off, b);
                }
            }
        }
    }
    seq
}

/// Draw a base with the given GC fraction.
fn random_base<R: Rng>(gc: f64, rng: &mut R) -> Base {
    if rng.random_bool(gc) {
        if rng.random_bool(0.5) {
            Base::G
        } else {
            Base::C
        }
    } else if rng.random_bool(0.5) {
        Base::A
    } else {
        Base::T
    }
}

/// Replace `b` with one of the other three bases uniformly.
pub(crate) fn mutate_base<R: Rng>(b: Base, rng: &mut R) -> Base {
    let others: [Base; 3] = match b {
        Base::A => [Base::C, Base::G, Base::T],
        Base::C => [Base::A, Base::G, Base::T],
        Base::G => [Base::A, Base::C, Base::T],
        Base::T => [Base::A, Base::C, Base::G],
    };
    others[rng.random_range(0..3usize)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn length_and_no_ns() {
        let g = generate_genome(&GenomeConfig::default(), &mut rng(1));
        assert_eq!(g.len(), 100_000);
        assert_eq!(g.n_count(), 0);
    }

    #[test]
    fn gc_content_is_respected() {
        let cfg = GenomeConfig {
            length: 200_000,
            gc_content: 0.6,
            repeat_families: 0,
            ..GenomeConfig::default()
        };
        let g = generate_genome(&cfg, &mut rng(2));
        assert!(
            (g.gc_fraction() - 0.6).abs() < 0.01,
            "gc = {}",
            g.gc_fraction()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = GenomeConfig::default();
        let a = generate_genome(&cfg, &mut rng(7));
        let b = generate_genome(&cfg, &mut rng(7));
        let c = generate_genome(&cfg, &mut rng(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn repeats_create_duplicate_kmers() {
        // With aggressive repeats the genome must contain long k-mers that
        // occur more than once; without repeats, 16-mers in a 50 kb genome
        // are almost surely unique.
        use genome::index::{IndexConfig, KmerIndex};
        let with = GenomeConfig {
            length: 50_000,
            repeat_families: 5,
            repeat_length: 500,
            repeat_copies: 4,
            repeat_divergence: 0.0,
            ..GenomeConfig::default()
        };
        let without = GenomeConfig {
            repeat_families: 0,
            ..with
        };
        let icfg = IndexConfig {
            k: 16,
            max_occurrences: 1_000_000,
            stride: 1,
        };
        let g1 = generate_genome(&with, &mut rng(3));
        let g2 = generate_genome(&without, &mut rng(3));
        let dup = |g: &genome::seq::DnaSeq| -> usize {
            let idx = KmerIndex::build(g, icfg).unwrap();
            idx.total_positions() - idx.distinct_kmers()
        };
        let d1 = dup(&g1);
        let d2 = dup(&g2);
        assert!(
            d1 > d2 + 1000,
            "repeats should create many duplicate 16-mers: {d1} vs {d2}"
        );
    }

    #[test]
    fn mutate_base_never_returns_input() {
        let mut r = rng(4);
        for b in genome::alphabet::BASES {
            for _ in 0..20 {
                assert_ne!(mutate_base(b, &mut r), b);
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_length_rejected() {
        let cfg = GenomeConfig {
            length: 0,
            ..GenomeConfig::default()
        };
        let _ = generate_genome(&cfg, &mut rng(0));
    }
}
