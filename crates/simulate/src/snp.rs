//! SNP catalogues and mutated individuals.
//!
//! The paper's truth set is 14,501 dbSNP sites "randomly selected,
//! evenly-spaced" across the X chromosome, applied to the reference to
//! create the simulated individual. This module reproduces that recipe:
//! sites are drawn evenly spaced (with jitter), alternate alleles follow a
//! transition:transversion ratio of about 2:1 (as in real catalogues), and
//! the catalogue can be applied to produce a monoploid individual or a
//! diploid one with a chosen heterozygous fraction.

use genome::alphabet::Base;
use genome::diploid::DiploidGenome;
use genome::seq::DnaSeq;
use rand::Rng;

/// Zygosity of a planted diploid SNP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Zygosity {
    /// Both haplotypes carry the alternate allele.
    Homozygous,
    /// One haplotype carries the alternate allele, the other the reference.
    Heterozygous,
}

/// One planted SNP: the ground truth the callers are scored against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlantedSnp {
    /// 0-based position on the reference.
    pub pos: usize,
    /// Reference base at the site.
    pub reference: Base,
    /// Alternate allele.
    pub alt: Base,
    /// Zygosity when applied to a diploid individual (monoploid
    /// application ignores this and always plants the alternate).
    pub zygosity: Zygosity,
}

/// Configuration for [`generate_snp_catalog`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnpCatalogConfig {
    /// Number of SNPs to plant.
    pub count: usize,
    /// Probability that a substitution is a transition (dbSNP-like: ~2/3,
    /// i.e. a 2:1 transition:transversion ratio).
    pub transition_fraction: f64,
    /// Fraction of sites that are heterozygous in the diploid individual.
    pub heterozygous_fraction: f64,
}

impl Default for SnpCatalogConfig {
    fn default() -> Self {
        SnpCatalogConfig {
            count: 100,
            transition_fraction: 2.0 / 3.0,
            heterozygous_fraction: 0.5,
        }
    }
}

/// Draw an evenly spaced (with jitter) SNP catalogue over `reference`.
///
/// Sites fall one per stripe of width `len / count`, jittered uniformly
/// within the stripe, skipping `N` positions. Positions are strictly
/// increasing, so no two SNPs collide.
pub fn generate_snp_catalog<R: Rng>(
    reference: &DnaSeq,
    config: &SnpCatalogConfig,
    rng: &mut R,
) -> Vec<PlantedSnp> {
    assert!(config.count > 0, "catalogue must contain at least one SNP");
    assert!(
        reference.len() >= config.count,
        "genome shorter than requested SNP count"
    );
    let stripe = reference.len() as f64 / config.count as f64;
    let mut snps = Vec::with_capacity(config.count);
    for i in 0..config.count {
        let lo = (i as f64 * stripe) as usize;
        let hi = (((i + 1) as f64 * stripe) as usize).min(reference.len());
        if lo >= hi {
            continue;
        }
        // Jitter within the stripe; retry a few times to dodge N positions.
        let mut site = None;
        for _ in 0..16 {
            let pos = rng.random_range(lo..hi);
            if let Some(b) = reference.get(pos) {
                site = Some((pos, b));
                break;
            }
        }
        let Some((pos, reference_base)) = site else {
            continue;
        };
        let alt = if rng.random_bool(config.transition_fraction) {
            reference_base.transition()
        } else {
            let tv = reference_base.transversions();
            tv[rng.random_range(0..2usize)]
        };
        let zygosity = if rng.random_bool(config.heterozygous_fraction) {
            Zygosity::Heterozygous
        } else {
            Zygosity::Homozygous
        };
        snps.push(PlantedSnp {
            pos,
            reference: reference_base,
            alt,
            zygosity,
        });
    }
    snps
}

/// Apply a catalogue to produce a monoploid individual: every site carries
/// its alternate allele.
pub fn apply_snps_monoploid(reference: &DnaSeq, snps: &[PlantedSnp]) -> DnaSeq {
    let mut individual = reference.clone();
    for snp in snps {
        debug_assert_eq!(reference.get(snp.pos), Some(snp.reference));
        individual.set(snp.pos, Some(snp.alt));
    }
    individual
}

/// Apply a catalogue to produce a diploid individual. Homozygous sites
/// mutate both haplotypes; heterozygous sites mutate one chosen by the RNG.
pub fn apply_snps_diploid<R: Rng>(
    reference: &DnaSeq,
    snps: &[PlantedSnp],
    rng: &mut R,
) -> DiploidGenome {
    let mut maternal = reference.clone();
    let mut paternal = reference.clone();
    for snp in snps {
        debug_assert_eq!(reference.get(snp.pos), Some(snp.reference));
        match snp.zygosity {
            Zygosity::Homozygous => {
                maternal.set(snp.pos, Some(snp.alt));
                paternal.set(snp.pos, Some(snp.alt));
            }
            Zygosity::Heterozygous => {
                if rng.random_bool(0.5) {
                    maternal.set(snp.pos, Some(snp.alt));
                } else {
                    paternal.set(snp.pos, Some(snp.alt));
                }
            }
        }
    }
    DiploidGenome::new(maternal, paternal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome_gen::{generate_genome, GenomeConfig};
    use genome::alphabet::{classify_substitution, Substitution};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn test_genome(len: usize, seed: u64) -> DnaSeq {
        generate_genome(
            &GenomeConfig {
                length: len,
                repeat_families: 0,
                ..GenomeConfig::default()
            },
            &mut rng(seed),
        )
    }

    #[test]
    fn catalogue_counts_and_ordering() {
        let g = test_genome(10_000, 1);
        let snps = generate_snp_catalog(
            &g,
            &SnpCatalogConfig {
                count: 100,
                ..SnpCatalogConfig::default()
            },
            &mut rng(2),
        );
        assert_eq!(snps.len(), 100);
        for w in snps.windows(2) {
            assert!(w[0].pos < w[1].pos, "positions must be strictly increasing");
        }
        for s in &snps {
            assert_eq!(g.get(s.pos), Some(s.reference));
            assert_ne!(s.reference, s.alt);
        }
    }

    #[test]
    fn spacing_is_roughly_even() {
        let g = test_genome(50_000, 3);
        let snps = generate_snp_catalog(
            &g,
            &SnpCatalogConfig {
                count: 50,
                ..SnpCatalogConfig::default()
            },
            &mut rng(4),
        );
        // Every stripe of width 1000 holds exactly one SNP.
        for (i, s) in snps.iter().enumerate() {
            assert!(s.pos >= i * 1000 && s.pos < (i + 1) * 1000);
        }
    }

    #[test]
    fn transition_ratio_is_respected() {
        let g = test_genome(300_000, 5);
        let snps = generate_snp_catalog(
            &g,
            &SnpCatalogConfig {
                count: 3000,
                transition_fraction: 2.0 / 3.0,
                heterozygous_fraction: 0.5,
            },
            &mut rng(6),
        );
        let transitions = snps
            .iter()
            .filter(|s| classify_substitution(s.reference, s.alt) == Some(Substitution::Transition))
            .count();
        let frac = transitions as f64 / snps.len() as f64;
        assert!(
            (frac - 2.0 / 3.0).abs() < 0.03,
            "transition fraction {frac}"
        );
    }

    #[test]
    fn monoploid_application_differs_exactly_at_snps() {
        let g = test_genome(5_000, 7);
        let snps = generate_snp_catalog(
            &g,
            &SnpCatalogConfig {
                count: 25,
                ..SnpCatalogConfig::default()
            },
            &mut rng(8),
        );
        let ind = apply_snps_monoploid(&g, &snps);
        let diffs: Vec<usize> = (0..g.len()).filter(|&p| g.get(p) != ind.get(p)).collect();
        let expected: Vec<usize> = snps.iter().map(|s| s.pos).collect();
        assert_eq!(diffs, expected);
        for s in &snps {
            assert_eq!(ind.get(s.pos), Some(s.alt));
        }
    }

    #[test]
    fn diploid_application_respects_zygosity() {
        let g = test_genome(20_000, 9);
        let snps = generate_snp_catalog(
            &g,
            &SnpCatalogConfig {
                count: 200,
                heterozygous_fraction: 0.5,
                ..SnpCatalogConfig::default()
            },
            &mut rng(10),
        );
        let d = apply_snps_diploid(&g, &snps, &mut rng(11));
        let mut het_seen = 0;
        for s in &snps {
            let m = d.maternal.get(s.pos);
            let p = d.paternal.get(s.pos);
            match s.zygosity {
                Zygosity::Homozygous => {
                    assert_eq!(m, Some(s.alt));
                    assert_eq!(p, Some(s.alt));
                }
                Zygosity::Heterozygous => {
                    het_seen += 1;
                    let pair = (m, p);
                    assert!(
                        pair == (Some(s.alt), Some(s.reference))
                            || pair == (Some(s.reference), Some(s.alt)),
                        "het site {pair:?}"
                    );
                }
            }
        }
        assert!(het_seen > 50, "expected a het fraction near one half");
        // Outside SNP sites the haplotypes equal the reference.
        let snp_positions: std::collections::HashSet<usize> = snps.iter().map(|s| s.pos).collect();
        for p in (0..g.len()).step_by(97) {
            if !snp_positions.contains(&p) {
                assert_eq!(d.maternal.get(p), g.get(p));
                assert_eq!(d.paternal.get(p), g.get(p));
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = test_genome(10_000, 12);
        let cfg = SnpCatalogConfig::default();
        let a = generate_snp_catalog(&g, &cfg, &mut rng(13));
        let b = generate_snp_catalog(&g, &cfg, &mut rng(13));
        assert_eq!(a, b);
    }
}
