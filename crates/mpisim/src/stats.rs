//! Communication-traffic accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-world traffic counters, shared by all ranks through atomics.
#[derive(Debug, Default)]
pub(crate) struct SharedStats {
    pub messages: AtomicU64,
    pub payload_bytes: AtomicU64,
    pub barriers: AtomicU64,
    pub collectives: AtomicU64,
}

impl SharedStats {
    pub fn record_send(&self, bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.payload_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> TrafficStats {
        TrafficStats {
            messages: self.messages.load(Ordering::Relaxed),
            payload_bytes: self.payload_bytes.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            collectives: self.collectives.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of the messages exchanged during a [`crate::World`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficStats {
    /// Point-to-point messages sent (collectives count their constituent
    /// point-to-point sends here too).
    pub messages: u64,
    /// Total modelled payload bytes across all messages.
    pub payload_bytes: u64,
    /// Barrier operations executed (counted once per barrier, not per rank).
    pub barriers: u64,
    /// Collective operations executed (counted once per collective).
    pub collectives: u64,
}

impl std::fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} msgs, {} payload bytes, {} barriers, {} collectives",
            self.messages, self.payload_bytes, self.barriers, self.collectives
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = SharedStats::default();
        s.record_send(100);
        s.record_send(28);
        let snap = s.snapshot();
        assert_eq!(snap.messages, 2);
        assert_eq!(snap.payload_bytes, 128);
        assert_eq!(snap.barriers, 0);
    }

    #[test]
    fn display_is_readable() {
        let t = TrafficStats {
            messages: 3,
            payload_bytes: 12,
            barriers: 1,
            collectives: 2,
        };
        assert!(t.to_string().contains("3 msgs"));
    }
}
