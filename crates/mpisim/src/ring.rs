//! Ring allreduce for large vector payloads.
//!
//! The star-topology reduce in [`crate::collectives`] funnels every rank's
//! full payload through the root: fine for scalars, but the read-split
//! driver reduces genome-length accumulators (tens of MB at chromosome
//! scale), where the root's `(n−1) × payload` receive volume becomes the
//! bottleneck. The classic ring algorithm moves `2·(n−1)/n × payload` per
//! rank regardless of `n`: each rank owns one of `n` chunks, partial sums
//! circulate for `n−1` steps (reduce-scatter), then the finished chunks
//! circulate for another `n−1` steps (allgather).
//!
//! Elements must form a commutative monoid under `op` for the result to be
//! rank-order independent; for f32/f64 addition the usual floating-point
//! caveats apply, and the chunk-ordered traversal keeps results
//! deterministic for a fixed rank count.

use crate::wire::WireSize;
use crate::world::Rank;

impl Rank {
    /// Ring allreduce over an element vector. Every rank passes a vector
    /// of the same length and receives the elementwise reduction.
    pub fn ring_allreduce<T, F>(&mut self, mut data: Vec<T>, op: F) -> Vec<T>
    where
        T: WireSize + Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let n = self.size();
        if n == 1 {
            return data;
        }
        let len = data.len();
        // All ranks must agree on the length. The check must be symmetric:
        // every rank learns every length and every rank reaches the same
        // verdict, so a violation panics on *all* ranks simultaneously
        // instead of leaving the well-behaved ranks blocked in recv.
        let lens = self.allgather(len as u64);
        assert!(
            lens.iter().all(|&l| l == len as u64),
            "ring_allreduce requires equal-length vectors on every rank: {lens:?}"
        );
        if len == 0 {
            return data;
        }

        // Chunk boundaries: chunk c covers [bounds[c], bounds[c+1]).
        let bounds: Vec<usize> = (0..=n).map(|c| c * len / n).collect();
        let me = self.id();
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        let tag_base = self.ring_tag_base();

        // Phase 1: reduce-scatter. In step s, send chunk (me - s) and
        // fold the incoming chunk (me - s - 1) into our copy.
        for s in 0..n - 1 {
            let send_chunk = (me + n - s) % n;
            let recv_chunk = (me + n - s - 1) % n;
            let payload: Vec<T> = data[bounds[send_chunk]..bounds[send_chunk + 1]].to_vec();
            self.send_internal(next, tag_base + s as u64, payload);
            let incoming: Vec<T> = self.recv(prev, tag_base + s as u64);
            let range = bounds[recv_chunk]..bounds[recv_chunk + 1];
            for (slot, inc) in data[range].iter_mut().zip(&incoming) {
                *slot = op(inc, slot);
            }
        }
        // Phase 2: allgather. Chunk (me + 1) is now fully reduced on this
        // rank; circulate finished chunks.
        for s in 0..n - 1 {
            let send_chunk = (me + 1 + n - s) % n;
            let recv_chunk = (me + n - s) % n;
            let payload: Vec<T> = data[bounds[send_chunk]..bounds[send_chunk + 1]].to_vec();
            self.send_internal(next, tag_base + (n + s) as u64, payload);
            let incoming: Vec<T> = self.recv(prev, tag_base + (n + s) as u64);
            data[bounds[recv_chunk]..bounds[recv_chunk + 1]].clone_from_slice(&incoming);
        }
        data
    }

    /// Reserve a block of collective tags for one ring operation
    /// (2·(n−1) steps).
    fn ring_tag_base(&mut self) -> u64 {
        let steps = 2 * (self.size() as u64);
        let base = crate::world::COLLECTIVE_TAG_BASE + (1 << 40) + self.coll_seq * steps;
        self.coll_seq += 1;
        base
    }
}

#[cfg(test)]
mod tests {
    use crate::world::World;

    #[test]
    fn ring_sums_match_star_allreduce() {
        for n in [1usize, 2, 3, 4, 7] {
            let world = World::new(n);
            let got = world.run(|rank| {
                let data: Vec<f64> = (0..23).map(|i| (rank.id() * 100 + i) as f64).collect();
                let ring = rank.ring_allreduce(data.clone(), |a, b| a + b);
                let star = rank.allreduce(data, |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                });
                (ring, star)
            });
            for (ring, star) in got {
                assert_eq!(ring.len(), 23);
                for (r, s) in ring.iter().zip(&star) {
                    assert!((r - s).abs() < 1e-9, "n={n}: ring {r} vs star {s}");
                }
            }
        }
    }

    #[test]
    fn all_ranks_agree_on_the_result() {
        let world = World::new(5);
        let got = world.run(|rank| {
            let data: Vec<u64> = (0..17).map(|i| rank.id() as u64 + i).collect();
            rank.ring_allreduce(data, |a, b| a + b)
        });
        for v in &got[1..] {
            assert_eq!(v, &got[0]);
        }
    }

    #[test]
    fn short_vectors_and_empty_vectors() {
        let world = World::new(4);
        // Vector shorter than the rank count: some chunks are empty.
        let got = world.run(|rank| rank.ring_allreduce(vec![1.0f64, 2.0], |a, b| a + b));
        assert!(got.iter().all(|v| v == &[4.0, 8.0]));
        let got = world.run(|rank| rank.ring_allreduce(Vec::<f64>::new(), |a, b| a + b));
        assert!(got.iter().all(Vec::is_empty));
    }

    #[test]
    fn ring_moves_less_data_through_any_single_rank() {
        // Aggregate bytes: star gather+broadcast ≈ 2·(n−1)·payload, all
        // through the root; ring totals ≈ 2·(n−1)·payload spread evenly.
        // Aggregate message *count* differs: ring has 2·n·(n−1) chunk
        // messages. The win is the root bottleneck, which TrafficStats
        // cannot see directly — so here we just assert both complete and
        // agree; the bench crate measures the wall-clock difference.
        let world = World::new(4);
        let (results, stats) = world.run_with_stats(|rank| {
            let data = vec![rank.id() as f64; 10_000];
            rank.ring_allreduce(data, |a, b| a + b)
        });
        assert!(results.iter().all(|v| (v[0] - 6.0).abs() < 1e-12));
        assert!(stats.messages > 0);
    }

    #[test]
    fn repeated_rings_do_not_cross_talk() {
        let world = World::new(3);
        let got = world.run(|rank| {
            let mut acc = Vec::new();
            for round in 1..=4u64 {
                let v = vec![round * (rank.id() as u64 + 1); 5];
                acc.push(rank.ring_allreduce(v, |a, b| a + b)[0]);
            }
            acc
        });
        for v in got {
            assert_eq!(v, vec![6, 12, 18, 24]);
        }
    }

    #[test]
    #[should_panic]
    fn unequal_lengths_are_rejected() {
        let world = World::new(2);
        world.run(|rank| {
            let data = vec![0.0f64; 3 + rank.id()];
            rank.ring_allreduce(data, |a, b| a + b)
        });
    }
}
