//! Collective operations built on the point-to-point layer.
//!
//! Every collective is implemented the way a textbook MPI layer would build
//! it from sends and receives (star topology rooted at a designated rank),
//! and every rank must call the collective in the same program order — the
//! shared sequence counter turns each call site into a unique reserved tag,
//! so interleaved user traffic cannot be confused with collective traffic.
//!
//! Reductions fold in **rank order**, making them deterministic even for
//! non-associative floating-point operators.

use crate::wire::WireSize;
use crate::world::{Rank, COLLECTIVE_TAG_BASE};
use std::sync::atomic::Ordering;

impl Rank {
    /// Next reserved tag for a collective call site.
    fn next_coll_tag(&mut self) -> u64 {
        let tag = COLLECTIVE_TAG_BASE + self.coll_seq;
        self.coll_seq += 1;
        if self.id() == 0 {
            self.stats.collectives.fetch_add(1, Ordering::Relaxed);
        }
        tag
    }

    /// Broadcast `value` from `root` to every rank. Ranks other than the
    /// root pass `None`; every rank (including the root) returns the value.
    pub fn broadcast<T>(&mut self, root: usize, value: Option<T>) -> T
    where
        T: WireSize + Clone + Send + 'static,
    {
        assert!(root < self.size(), "root {root} out of range");
        let tag = self.next_coll_tag();
        if self.id() == root {
            let v = value.expect("root must supply the broadcast value");
            for dest in 0..self.size() {
                if dest != root {
                    self.send_internal(dest, tag, v.clone());
                }
            }
            v
        } else {
            assert!(value.is_none(), "non-root ranks must pass None");
            self.recv::<T>(root, tag)
        }
    }

    /// Gather one value from every rank at `root`. The root receives the
    /// values in rank order; other ranks receive `None`.
    pub fn gather<T>(&mut self, root: usize, value: T) -> Option<Vec<T>>
    where
        T: WireSize + Send + 'static,
    {
        assert!(root < self.size(), "root {root} out of range");
        let tag = self.next_coll_tag();
        if self.id() == root {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(value);
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = Some(self.recv::<T>(src, tag));
                }
            }
            Some(out.into_iter().map(Option::unwrap).collect())
        } else {
            self.send_internal(root, tag, value);
            None
        }
    }

    /// Reduce values from all ranks at `root` with `op`, folding in rank
    /// order. Non-root ranks receive `None`.
    pub fn reduce<T, F>(&mut self, root: usize, value: T, op: F) -> Option<T>
    where
        T: WireSize + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let gathered = self.gather(root, value)?;
        let mut it = gathered.into_iter();
        let first = it.next().expect("world has at least one rank");
        Some(it.fold(first, op))
    }

    /// Reduce at rank 0 then broadcast the result to every rank.
    pub fn allreduce<T, F>(&mut self, value: T, op: F) -> T
    where
        T: WireSize + Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let reduced = self.reduce(0, value, op);
        self.broadcast(0, reduced)
    }

    /// Scatter one value per rank from `root`: rank `i` receives
    /// `values[i]`. Non-root ranks pass `None`.
    pub fn scatter<T>(&mut self, root: usize, values: Option<Vec<T>>) -> T
    where
        T: WireSize + Send + 'static,
    {
        assert!(root < self.size(), "root {root} out of range");
        let tag = self.next_coll_tag();
        if self.id() == root {
            let mut values = values.expect("root must supply the scatter values");
            assert_eq!(values.len(), self.size(), "need one value per rank");
            // Send in reverse so we can pop without shifting.
            let mut own: Option<T> = None;
            for dest in (0..self.size()).rev() {
                let v = values.pop().expect("length checked above");
                if dest == root {
                    own = Some(v);
                } else {
                    self.send_internal(dest, tag, v);
                }
            }
            own.expect("root keeps its own slice")
        } else {
            assert!(values.is_none(), "non-root ranks must pass None");
            self.recv::<T>(root, tag)
        }
    }

    /// All-gather: every rank ends up with every rank's value, in rank
    /// order.
    pub fn allgather<T>(&mut self, value: T) -> Vec<T>
    where
        T: WireSize + Clone + Send + 'static,
    {
        let gathered = self.gather(0, value);
        self.broadcast(0, gathered)
    }
}

#[cfg(test)]
mod tests {
    use crate::world::World;

    #[test]
    fn broadcast_reaches_everyone() {
        let world = World::new(4);
        let got = world.run(|rank| {
            let v = if rank.id() == 2 {
                Some(vec![1u32, 2, 3])
            } else {
                None
            };
            rank.broadcast(2, v)
        });
        assert!(got.iter().all(|v| v == &[1, 2, 3]));
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let world = World::new(5);
        let got = world.run(|rank| rank.gather(0, rank.id() as u64 * 10));
        assert_eq!(got[0], Some(vec![0, 10, 20, 30, 40]));
        assert!(got[1..].iter().all(Option::is_none));
    }

    #[test]
    fn reduce_folds_in_rank_order() {
        let world = World::new(4);
        // Non-commutative op: string concatenation — detects ordering.
        let got = world.run(|rank| rank.reduce(0, format!("{}", rank.id()), |a, b| a + &b));
        assert_eq!(got[0], Some("0123".to_string()));
    }

    #[test]
    fn allreduce_sums_everywhere() {
        let world = World::new(6);
        let got = world.run(|rank| rank.allreduce(rank.id() as u64 + 1, |a, b| a + b));
        assert_eq!(got, vec![21; 6]);
    }

    #[test]
    fn allreduce_of_vectors_elementwise() {
        // The genome-reduction pattern used by the read-split driver.
        let world = World::new(3);
        let got = world.run(|rank| {
            let local = vec![rank.id() as f64; 4];
            rank.allreduce(local, |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            })
        });
        assert!(got.iter().all(|v| v == &[3.0, 3.0, 3.0, 3.0]));
    }

    #[test]
    fn scatter_distributes_slices() {
        let world = World::new(3);
        let got = world.run(|rank| {
            let v = if rank.id() == 1 {
                Some(vec![vec![0u8; 1], vec![1u8; 2], vec![2u8; 3]])
            } else {
                None
            };
            rank.scatter(1, v)
        });
        assert_eq!(got[0], vec![0u8; 1]);
        assert_eq!(got[1], vec![1u8; 2]);
        assert_eq!(got[2], vec![2u8; 3]);
    }

    #[test]
    fn allgather_everywhere() {
        let world = World::new(4);
        let got = world.run(|rank| rank.allgather(rank.id() as u32));
        assert!(got.iter().all(|v| v == &[0, 1, 2, 3]));
    }

    #[test]
    fn collectives_interleave_with_user_traffic() {
        // A collective between user sends must not steal user messages.
        let world = World::new(2);
        let got = world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 5, 42u64);
                let s = rank.allreduce(1u64, |a, b| a + b);
                rank.send(1, 6, 43u64);
                s
            } else {
                let s = rank.allreduce(1u64, |a, b| a + b);
                let a = rank.recv::<u64>(0, 5);
                let b = rank.recv::<u64>(0, 6);
                s + a + b
            }
        });
        assert_eq!(got, vec![2, 2 + 42 + 43]);
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let world = World::new(3);
        let got = world.run(|rank| {
            let mut acc = Vec::new();
            for round in 0..5u64 {
                acc.push(rank.allreduce(round + rank.id() as u64, |a, b| a.max(b)));
            }
            acc
        });
        for v in got {
            assert_eq!(v, vec![2, 3, 4, 5, 6]);
        }
    }

    #[test]
    fn single_rank_world_collectives() {
        let world = World::new(1);
        let got = world.run(|rank| {
            let b = rank.broadcast(0, Some(7u8));
            let g = rank.gather(0, 9u8).unwrap();
            let r = rank.allreduce(5u8, |a, b| a + b);
            (b, g, r)
        });
        assert_eq!(got[0], (7, vec![9], 5));
    }
}
