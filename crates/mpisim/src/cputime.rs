//! Per-thread CPU time measurement.
//!
//! The paper's scaling figures need the compute time *each rank would take
//! on its own processor*. When simulated ranks timeshare fewer physical
//! cores than there are ranks, wall-clock conflates them — but the kernel
//! still accounts CPU time per thread, so the calling thread's consumed
//! CPU time is the honest per-rank cost. Read from
//! `/proc/thread-self/schedstat` (nanoseconds, first field), falling back
//! to `/proc/thread-self/stat` (utime+stime jiffies at the conventional
//! 100 Hz), and finally to zero on non-Linux systems (callers then fall
//! back to wall-clock).

/// CPU seconds consumed by the calling thread so far, or `None` when the
/// kernel interface is unavailable.
pub fn thread_cpu_seconds() -> Option<f64> {
    if let Ok(text) = std::fs::read_to_string("/proc/thread-self/schedstat") {
        if let Some(ns) = text
            .split_whitespace()
            .next()
            .and_then(|f| f.parse::<u64>().ok())
        {
            return Some(ns as f64 / 1e9);
        }
    }
    if let Ok(text) = std::fs::read_to_string("/proc/thread-self/stat") {
        // Fields 14 and 15 (1-indexed) after the parenthesised comm field
        // are utime and stime in clock ticks.
        if let Some(rest) = text.rsplit(')').next() {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            // `rest` starts at field 3 ("state"), so utime/stime are at
            // indices 11 and 12.
            if fields.len() > 12 {
                if let (Ok(ut), Ok(st)) = (fields[11].parse::<u64>(), fields[12].parse::<u64>()) {
                    const TICKS_PER_SEC: f64 = 100.0; // Linux USER_HZ
                    return Some((ut + st) as f64 / TICKS_PER_SEC);
                }
            }
        }
    }
    None
}

/// A scope timer over the calling thread's CPU time, with wall-clock
/// fallback when thread accounting is unavailable.
#[derive(Debug)]
pub struct ThreadCpuTimer {
    cpu_start: Option<f64>,
    wall_start: std::time::Instant,
}

impl ThreadCpuTimer {
    /// Start timing the calling thread.
    pub fn start() -> ThreadCpuTimer {
        ThreadCpuTimer {
            cpu_start: thread_cpu_seconds(),
            wall_start: std::time::Instant::now(),
        }
    }

    /// CPU seconds since `start` (wall seconds when unsupported).
    pub fn elapsed(&self) -> f64 {
        match (self.cpu_start, thread_cpu_seconds()) {
            (Some(a), Some(b)) => (b - a).max(0.0),
            _ => self.wall_start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_grows_with_work() {
        let timer = ThreadCpuTimer::start();
        // Burn a measurable amount of CPU.
        let mut acc = 0u64;
        for i in 0..20_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let t = timer.elapsed();
        assert!(t > 0.0, "timer must advance, got {t}");
        assert!(t < 60.0, "implausibly large CPU time {t}");
    }

    #[test]
    fn sleeping_consumes_no_cpu() {
        // Only meaningful when thread CPU accounting is available.
        if thread_cpu_seconds().is_none() {
            return;
        }
        let timer = ThreadCpuTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(120));
        let t = timer.elapsed();
        assert!(t < 0.05, "sleep should not count as CPU time, got {t}");
    }

    #[test]
    fn cpu_time_is_monotone() {
        if let (Some(a), Some(b)) = (thread_cpu_seconds(), thread_cpu_seconds()) {
            assert!(b >= a);
        }
    }
}
