//! The world: rank spawning and point-to-point messaging.

use crate::stats::{SharedStats, TrafficStats};
use crate::wire::WireSize;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::sync::{Arc, Barrier};

/// A message in flight.
struct Envelope {
    src: usize,
    tag: u64,
    payload: Box<dyn Any + Send>,
}

/// A communicator world of `size` ranks.
///
/// Analogous to `MPI_COMM_WORLD`: construct one, then [`World::run`] a
/// closure on every rank.
pub struct World {
    size: usize,
}

impl World {
    /// Create a world with `size` ranks (≥ 1).
    pub fn new(size: usize) -> World {
        assert!(size >= 1, "world needs at least one rank");
        World { size }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `f` on every rank concurrently, returning the per-rank results
    /// in rank order.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Send + Sync,
    {
        self.run_with_stats(f).0
    }

    /// Like [`World::run`] but also returns aggregate traffic statistics.
    pub fn run_with_stats<T, F>(&self, f: F) -> (Vec<T>, TrafficStats)
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Send + Sync,
    {
        let (results, report) = self.run_with_report(f);
        (results, report.traffic)
    }

    /// Like [`World::run`] but also returns a full [`WorldReport`]:
    /// aggregate traffic plus the CPU seconds each rank consumed. The
    /// per-rank CPU times let callers compute an idealised parallel wall
    /// clock (`max` over ranks + a communication model) even when the
    /// simulated ranks timeshare fewer physical cores than there are
    /// ranks — the basis of the scaling figures on small machines.
    pub fn run_with_report<T, F>(&self, f: F) -> (Vec<T>, WorldReport)
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Send + Sync,
    {
        let n = self.size;
        let mut senders: Vec<Sender<Envelope>> = Vec::with_capacity(n);
        let mut receivers: Vec<Option<Receiver<Envelope>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let barrier = Arc::new(Barrier::new(n));
        let stats = Arc::new(SharedStats::default());

        let outcomes: Vec<(T, f64)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (rank_id, rx_slot) in receivers.iter_mut().enumerate() {
                let rx = rx_slot.take().expect("receiver taken once");
                let senders = senders.clone();
                let barrier = Arc::clone(&barrier);
                let stats = Arc::clone(&stats);
                let f = &f;
                handles.push(scope.spawn(move || {
                    let timer = crate::cputime::ThreadCpuTimer::start();
                    let mut rank = Rank {
                        id: rank_id,
                        size: n,
                        senders,
                        rx,
                        pending: Vec::new(),
                        barrier,
                        stats,
                        coll_seq: 0,
                    };
                    let out = f(&mut rank);
                    (out, timer.elapsed())
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        });

        let mut results = Vec::with_capacity(n);
        let mut rank_cpu_secs = Vec::with_capacity(n);
        for (out, cpu) in outcomes {
            results.push(out);
            rank_cpu_secs.push(cpu);
        }
        (
            results,
            WorldReport {
                traffic: stats.snapshot(),
                rank_cpu_secs,
            },
        )
    }
}

/// Everything a [`World::run_with_report`] execution observed beyond the
/// per-rank results.
#[derive(Debug, Clone)]
pub struct WorldReport {
    /// Aggregate message statistics.
    pub traffic: TrafficStats,
    /// CPU seconds consumed by each rank's thread, in rank order. On an
    /// unconstrained machine this approximates each rank's wall time; on
    /// an oversubscribed one it is the honest per-rank compute cost.
    pub rank_cpu_secs: Vec<f64>,
}

impl WorldReport {
    /// The idealised parallel compute time: the busiest rank's CPU time
    /// (every other rank would have finished earlier on its own
    /// processor).
    pub fn critical_path_secs(&self) -> f64 {
        self.rank_cpu_secs.iter().copied().fold(0.0, f64::max)
    }
}

/// Base of the tag space reserved for collectives; user tags must stay
/// below this.
pub(crate) const COLLECTIVE_TAG_BASE: u64 = 1 << 62;

/// One rank's handle on the world: its identity plus the messaging
/// endpoints. Passed to the per-rank closure by [`World::run`].
pub struct Rank {
    id: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    rx: Receiver<Envelope>,
    /// Messages received but not yet claimed by a matching `recv`.
    pending: Vec<Envelope>,
    barrier: Arc<Barrier>,
    pub(crate) stats: Arc<SharedStats>,
    /// Collective sequence number; advances identically on every rank
    /// because collectives are executed in program order.
    pub(crate) coll_seq: u64,
}

impl Rank {
    /// This rank's id in `[0, size)`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `value` to rank `dest` with a user `tag`.
    ///
    /// Sending to self is allowed (the message is delivered through the
    /// same queue). User tags must be below the reserved collective range.
    pub fn send<T: WireSize + Send + 'static>(&mut self, dest: usize, tag: u64, value: T) {
        assert!(tag < COLLECTIVE_TAG_BASE, "tag {tag} is reserved");
        self.send_internal(dest, tag, value);
    }

    pub(crate) fn send_internal<T: WireSize + Send + 'static>(
        &mut self,
        dest: usize,
        tag: u64,
        value: T,
    ) {
        assert!(dest < self.size, "destination {dest} out of range");
        self.stats.record_send(value.wire_bytes());
        self.senders[dest]
            .send(Envelope {
                src: self.id,
                tag,
                payload: Box::new(value),
            })
            .expect("receiving rank hung up");
    }

    /// Receive the next message from `src` with `tag`, blocking until it
    /// arrives. Panics if the payload type does not match `T` — that is a
    /// protocol bug, not a runtime condition.
    pub fn recv<T: Send + 'static>(&mut self, src: usize, tag: u64) -> T {
        // First check messages that arrived earlier but were not claimed.
        if let Some(idx) = self
            .pending
            .iter()
            .position(|e| e.src == src && e.tag == tag)
        {
            let env = self.pending.swap_remove(idx);
            return Self::downcast(env);
        }
        loop {
            let env = self.rx.recv().expect("all senders hung up");
            if env.src == src && env.tag == tag {
                return Self::downcast(env);
            }
            self.pending.push(env);
        }
    }

    fn downcast<T: 'static>(env: Envelope) -> T {
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!("type mismatch receiving (src {}, tag {})", env.src, env.tag)
        })
    }

    /// Block until every rank reaches the barrier.
    pub fn barrier(&mut self) {
        use std::sync::atomic::Ordering;
        // Count the barrier once: the thread whose wait() is the "leader".
        if self.barrier.wait().is_leader() {
            self.stats.barriers.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_know_their_identity() {
        let world = World::new(4);
        let ids = world.run(|rank| (rank.id(), rank.size()));
        assert_eq!(ids, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn point_to_point_ring() {
        // Each rank sends its id to the next rank around a ring.
        let world = World::new(5);
        let got = world.run(|rank| {
            let next = (rank.id() + 1) % rank.size();
            let prev = (rank.id() + rank.size() - 1) % rank.size();
            rank.send(next, 7, rank.id() as u64);
            rank.recv::<u64>(prev, 7)
        });
        assert_eq!(got, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let world = World::new(2);
        let got = world.run(|rank| {
            if rank.id() == 0 {
                rank.send(1, 1, 100u64);
                rank.send(1, 2, 200u64);
                0
            } else {
                // Receive in the opposite order they were sent.
                let b = rank.recv::<u64>(0, 2);
                let a = rank.recv::<u64>(0, 1);
                a * 1000 + b
            }
        });
        assert_eq!(got[1], 100_200);
    }

    #[test]
    fn self_send_works() {
        let world = World::new(1);
        let got = world.run(|rank| {
            rank.send(0, 3, vec![1.5f64, 2.5]);
            rank.recv::<Vec<f64>>(0, 3)
        });
        assert_eq!(got[0], vec![1.5, 2.5]);
    }

    #[test]
    fn traffic_is_accounted() {
        let world = World::new(2);
        let (_, stats) = world.run_with_stats(|rank| {
            if rank.id() == 0 {
                rank.send(1, 0, vec![0u8; 100]);
            } else {
                let _ = rank.recv::<Vec<u8>>(0, 0);
            }
        });
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.payload_bytes, 108); // 100 + length prefix
    }

    #[test]
    fn barriers_rendezvous() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let world = World::new(4);
        let (results, stats) = world.run_with_stats(|rank| {
            counter.fetch_add(1, Ordering::SeqCst);
            rank.barrier();
            // After the barrier every rank must observe all 4 increments.
            counter.load(Ordering::SeqCst)
        });
        assert_eq!(results, vec![4; 4]);
        assert_eq!(stats.barriers, 1);
    }

    #[test]
    fn world_report_carries_per_rank_cpu() {
        // Timing under scheduler noise is probabilistic: the busy rank
        // dominating an idle one is only *likely* per attempt, so retry a
        // few times before declaring the report wrong.
        let mut last = None;
        for _ in 0..5 {
            let world = World::new(3);
            let (_, report) = world.run_with_report(|rank| {
                // Rank 2 does noticeably more work than the others.
                let rounds = if rank.id() == 2 {
                    12_000_000u64
                } else {
                    50_000
                };
                let mut acc = 0u64;
                for i in 0..rounds {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                std::hint::black_box(acc);
            });
            assert_eq!(report.rank_cpu_secs.len(), 3);
            assert!(report.rank_cpu_secs.iter().all(|&t| t >= 0.0));
            if (report.critical_path_secs() - report.rank_cpu_secs[2]).abs() < 1e-9
                || report.rank_cpu_secs[2] >= report.rank_cpu_secs[0]
            {
                return;
            }
            last = Some(report.rank_cpu_secs.clone());
        }
        panic!("the busy rank never dominated in 5 attempts: {last:?}");
    }

    #[test]
    #[should_panic]
    fn reserved_tags_rejected() {
        let world = World::new(1);
        world.run(|rank| rank.send(0, COLLECTIVE_TAG_BASE, 0u8));
    }

    #[test]
    #[should_panic]
    fn type_mismatch_panics() {
        let world = World::new(1);
        world.run(|rank| {
            rank.send(0, 0, 1u64);
            let _ = rank.recv::<f32>(0, 0);
        });
    }
}
