//! A deterministic message-passing runtime standing in for MPI.
//!
//! The paper parallelises GNUMAP-SNP with MPI in two decompositions
//! (read-split and genome-split). This crate reproduces the programming
//! model on one machine: every *rank* is an OS thread, point-to-point messages
//! travel over unbounded channels, and the collectives (barrier, broadcast,
//! gather, reduce, allreduce) are built on top of the point-to-point layer
//! exactly as a simple MPI implementation would.
//!
//! Determinism: every receive is addressed by `(source, tag)`, collectives
//! reduce in rank order, and no wall-clock or randomness enters the
//! runtime — so a parallel run computes a bit-identical result on every
//! execution, which the drivers' decomposition-independence tests rely on.
//!
//! Traffic accounting: each send records its payload size (via the
//! [`WireSize`] trait) so benchmarks can report communication volume per
//! decomposition, the quantity that explains the paper's Figure 4 gap
//! between the two MPI modes.

pub mod collectives;
pub mod cputime;
pub mod ring;
pub mod stats;
pub mod wire;
pub mod world;

pub use cputime::{thread_cpu_seconds, ThreadCpuTimer};
pub use stats::TrafficStats;
pub use wire::WireSize;
pub use world::{Rank, World, WorldReport};
