//! Payload size accounting for traffic statistics.
//!
//! Real MPI serialises messages onto the network; here messages move as
//! in-process values, so the "wire size" is an explicit model: the number
//! of bytes the payload would occupy in a flat encoding. Every sendable
//! type reports its own size through [`WireSize`].

/// Number of bytes this value would occupy serialised on a wire.
pub trait WireSize {
    /// Approximate flat-encoded size in bytes.
    fn wire_bytes(&self) -> usize;
}

macro_rules! impl_wire_for_primitives {
    ($($t:ty),* $(,)?) => {
        $(impl WireSize for $t {
            fn wire_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_wire_for_primitives!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl WireSize for () {
    fn wire_bytes(&self) -> usize {
        0
    }
}

impl WireSize for String {
    fn wire_bytes(&self) -> usize {
        self.len() + std::mem::size_of::<usize>()
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_bytes(&self) -> usize {
        std::mem::size_of::<usize>() + self.iter().map(WireSize::wire_bytes).sum::<usize>()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_bytes)
    }
}

impl<T: WireSize, const N: usize> WireSize for [T; N] {
    fn wire_bytes(&self) -> usize {
        self.iter().map(WireSize::wire_bytes).sum()
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes() + self.1.wire_bytes() + self.2.wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(0u64.wire_bytes(), 8);
        assert_eq!(0.0f32.wire_bytes(), 4);
        assert_eq!(true.wire_bytes(), 1);
        assert_eq!(().wire_bytes(), 0);
    }

    #[test]
    fn container_sizes() {
        assert_eq!(vec![0.0f64; 10].wire_bytes(), 8 + 80);
        assert_eq!("abcd".to_string().wire_bytes(), 8 + 4);
        assert_eq!(Some(1u32).wire_bytes(), 5);
        assert_eq!(None::<u32>.wire_bytes(), 1);
        assert_eq!([1u8; 16].wire_bytes(), 16);
        assert_eq!((1u64, vec![0u8; 3]).wire_bytes(), 8 + 8 + 3);
    }

    #[test]
    fn nested_vectors() {
        let v: Vec<Vec<f32>> = vec![vec![0.0; 4]; 3];
        assert_eq!(v.wire_bytes(), 8 + 3 * (8 + 16));
    }
}
