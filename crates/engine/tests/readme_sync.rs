//! The README's driver matrix is generated from the registry (`gnumap
//! drivers`); this test keeps the two in lockstep so registering,
//! renaming, or re-capability-ing a driver cannot leave the docs stale.

use engine::DriverRegistry;

#[test]
fn readme_driver_table_matches_the_registry() {
    let readme_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    let readme = std::fs::read_to_string(readme_path).expect("README.md at the workspace root");

    let start = "<!-- registry-driver-table:start";
    let end = "<!-- registry-driver-table:end -->";
    let begin = readme
        .find(start)
        .expect("README is missing the registry-driver-table start marker");
    let begin = readme[begin..]
        .find('\n')
        .map(|i| begin + i + 1)
        .expect("start marker has no line end");
    let stop = readme[begin..]
        .find(end)
        .map(|i| begin + i)
        .expect("README is missing the registry-driver-table end marker");

    let in_readme = readme[begin..stop].trim();
    let generated = DriverRegistry::standard().driver_table();
    assert_eq!(
        in_readme,
        generated.trim(),
        "README driver table is stale — replace the block between the \
         registry-driver-table markers with the output of `gnumap drivers`"
    );
}
