//! Engine contract tests: every registry driver honours the run
//! contract on a small seeded workload, and the bit-exact ones match the
//! serial fixed-point digest.

use engine::{DriverRegistry, EngineError, ReadSource, RunContext, VecSink};
use exec::MemoryStream;
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use gnumap_core::accum::AccumulatorMode;
use gnumap_core::observe::MemorySink;
use gnumap_core::observe::Observer;
use gnumap_core::GnumapConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource as SimSource};
use simulate::{
    apply_snps_monoploid, generate_genome, generate_snp_catalog, GenomeConfig, SnpCatalogConfig,
};
use std::sync::Arc;

fn fixture(seed: u64) -> (DnaSeq, Vec<SequencedRead>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let reference = generate_genome(
        &GenomeConfig {
            length: 3_000,
            repeat_families: 1,
            ..GenomeConfig::default()
        },
        &mut rng,
    );
    let snps = generate_snp_catalog(
        &reference,
        &SnpCatalogConfig {
            count: 4,
            ..SnpCatalogConfig::default()
        },
        &mut rng,
    );
    let individual = apply_snps_monoploid(&reference, &snps);
    let cfg = ReadSimConfig {
        coverage: 8.0,
        ..ReadSimConfig::default()
    };
    let count = cfg.read_count(reference.len());
    let reads = simulate_reads(&SimSource::Monoploid(&individual), count, &cfg, &mut rng)
        .into_iter()
        .map(|r| r.read)
        .collect();
    (reference, reads)
}

#[test]
fn every_bit_exact_driver_matches_the_serial_fixed_digest() {
    let (reference, reads) = fixture(2024);
    let registry = DriverRegistry::standard();

    let mut ctx = RunContext::new(&reference);
    ctx.config = GnumapConfig {
        accumulator: AccumulatorMode::Fixed,
        ..GnumapConfig::default()
    };
    ctx.threads = 3;
    ctx.batch_size = 16;
    ctx.chunk_size = 32;

    let serial = registry
        .get("serial")
        .unwrap()
        .run(&ctx, ReadSource::Slice(&reads), &mut VecSink::default())
        .expect("serial run");
    let want = serial.accumulator_digest.expect("serial digest");

    for driver in registry.all() {
        if !driver.capabilities().supports(AccumulatorMode::Fixed) {
            continue;
        }
        let mut sink = VecSink::default();
        let report = driver
            .run(&ctx, ReadSource::Slice(&reads), &mut sink)
            .unwrap_or_else(|e| panic!("{} failed: {e}", driver.name()));
        assert_eq!(
            report.accumulator_digest,
            Some(want),
            "{} digest diverged from serial",
            driver.name()
        );
        assert_eq!(
            sink.calls.len(),
            serial.calls.len(),
            "{} delivered a different call count to the sink",
            driver.name()
        );
        assert_eq!(
            report.reads_mapped,
            serial.reads_mapped,
            "{}",
            driver.name()
        );
    }
}

#[test]
fn stream_source_and_slice_source_agree() {
    let (reference, reads) = fixture(77);
    let registry = DriverRegistry::standard();
    let driver = registry.get("stream").unwrap();

    let mut ctx = RunContext::new(&reference);
    ctx.config.accumulator = AccumulatorMode::Fixed;
    ctx.threads = 2;
    ctx.batch_size = 16;

    let from_slice = driver
        .run(&ctx, ReadSource::Slice(&reads), &mut VecSink::default())
        .expect("slice run");
    let mut stream = MemoryStream::new(reads.clone());
    let from_stream = driver
        .run(
            &ctx,
            ReadSource::Stream(&mut stream),
            &mut VecSink::default(),
        )
        .expect("stream run");
    assert_eq!(
        from_slice.accumulator_digest,
        from_stream.accumulator_digest
    );

    // Slice-based drivers drain a stream source the same way.
    let serial = registry.get("serial").unwrap();
    let mut stream = MemoryStream::new(reads.clone());
    let drained = serial
        .run(
            &ctx,
            ReadSource::Stream(&mut stream),
            &mut VecSink::default(),
        )
        .expect("serial over stream source");
    assert_eq!(drained.accumulator_digest, from_slice.accumulator_digest);
}

#[test]
fn unsupported_accumulators_are_typed_errors() {
    let (reference, reads) = fixture(5);
    let registry = DriverRegistry::standard();
    let mut ctx = RunContext::new(&reference);
    ctx.config.accumulator = AccumulatorMode::CharDisc;

    for name in ["rayon", "read-split-ring", "stream", "server"] {
        let driver = registry.get(name).unwrap();
        assert!(!driver.capabilities().supports(AccumulatorMode::CharDisc));
        let err = driver
            .run(&ctx, ReadSource::Slice(&reads), &mut VecSink::default())
            .expect_err(name);
        match err {
            EngineError::UnsupportedAccumulator { driver, mode, .. } => {
                assert_eq!(driver, name);
                assert_eq!(mode, AccumulatorMode::CharDisc);
            }
            other => panic!("{name}: unexpected error {other:?}"),
        }
    }
}

#[test]
fn every_driver_emits_run_events_through_the_context_observer() {
    let (reference, reads) = fixture(91);
    let registry = DriverRegistry::standard();

    for driver in registry.all() {
        let sink = Arc::new(MemorySink::default());
        let mut ctx = RunContext::new(&reference);
        ctx.config.accumulator = if driver.capabilities().supports(AccumulatorMode::Fixed) {
            AccumulatorMode::Fixed
        } else {
            AccumulatorMode::Norm
        };
        ctx.threads = 2;
        ctx.observer = Observer::new(sink.clone());
        driver
            .run(&ctx, ReadSource::Slice(&reads), &mut VecSink::default())
            .unwrap_or_else(|e| panic!("{} failed: {e}", driver.name()));
        let events = sink.events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds.first().copied(),
            Some("run_start"),
            "{}: events {kinds:?}",
            driver.name()
        );
        assert!(
            kinds.contains(&"stage_end"),
            "{}: no stage timings in {kinds:?}",
            driver.name()
        );
    }
}

#[test]
fn invalid_context_is_rejected_before_running() {
    let (reference, reads) = fixture(1);
    let registry = DriverRegistry::standard();
    let mut ctx = RunContext::new(&reference);
    ctx.threads = 0;
    let err = registry
        .get("rayon")
        .unwrap()
        .run(&ctx, ReadSource::Slice(&reads), &mut VecSink::default())
        .expect_err("zero threads");
    assert!(matches!(err, EngineError::InvalidContext(_)), "{err:?}");
}
