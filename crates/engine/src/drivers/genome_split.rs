//! The genome-split MPI driver (sharded genome, allreduced normalisers).

use crate::context::RunContext;
use crate::contract::{check_preconditions, Capabilities, Driver};
use crate::error::EngineError;
use crate::sink::{deliver, CallSink};
use crate::source::ReadSource;
use gnumap_core::accum::{
    AccumulatorMode, CentDiscAccumulator, CharDiscAccumulator, FixedAccumulator, NormAccumulator,
};
use gnumap_core::driver::genome_split::run_genome_split_observed;
use gnumap_core::report::RunReport;

/// The paper's second decomposition: the genome (index + accumulator) is
/// sharded across ranks, every read is scored on every shard, and
/// per-read normalising constants travel by allreduce. Lower memory per
/// rank, more communication — the Figure 4 trade-off.
pub struct GenomeSplitDriver;

impl Driver for GenomeSplitDriver {
    fn name(&self) -> &'static str {
        "genome-split"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["mpi-genome"]
    }

    fn description(&self) -> &'static str {
        "MPI genome sharding, per-read normalisers by allreduce"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            // Genome shards are disjoint, so every layout is safe: no two
            // ranks ever merge counts for the same position.
            accumulators: &[
                AccumulatorMode::Norm,
                AccumulatorMode::CharDisc,
                AccumulatorMode::CentDisc,
                AccumulatorMode::Fixed,
            ],
            parallel: true,
            streaming: false,
            checkpointing: false,
            bit_exact_parallel: true,
        }
    }

    fn run(
        &self,
        ctx: &RunContext<'_>,
        source: ReadSource<'_>,
        sink: &mut dyn CallSink,
    ) -> Result<RunReport, EngineError> {
        check_preconditions(self, ctx)?;
        let reads = source.collect()?;
        let report = match ctx.config.accumulator {
            AccumulatorMode::Norm => run_genome_split_observed::<NormAccumulator>(
                ctx.reference,
                &reads,
                &ctx.config,
                ctx.threads,
                &ctx.observer,
            )?,
            AccumulatorMode::CharDisc => run_genome_split_observed::<CharDiscAccumulator>(
                ctx.reference,
                &reads,
                &ctx.config,
                ctx.threads,
                &ctx.observer,
            )?,
            AccumulatorMode::CentDisc => run_genome_split_observed::<CentDiscAccumulator>(
                ctx.reference,
                &reads,
                &ctx.config,
                ctx.threads,
                &ctx.observer,
            )?,
            AccumulatorMode::Fixed => run_genome_split_observed::<FixedAccumulator>(
                ctx.reference,
                &reads,
                &ctx.config,
                ctx.threads,
                &ctx.observer,
            )?,
        };
        deliver(report, sink)
    }
}
