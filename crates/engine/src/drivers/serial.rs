//! The serial reference driver.

use crate::context::RunContext;
use crate::contract::{check_preconditions, Capabilities, Driver};
use crate::error::EngineError;
use crate::sink::{deliver, CallSink};
use crate::source::ReadSource;
use gnumap_core::accum::AccumulatorMode;
use gnumap_core::pipeline::run_pipeline_observed;
use gnumap_core::report::RunReport;

/// Single-threaded pipeline: the reference implementation every parallel
/// decomposition is measured against.
pub struct SerialDriver;

impl Driver for SerialDriver {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn description(&self) -> &'static str {
        "single-threaded reference pipeline (all accumulator layouts)"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            accumulators: &[
                AccumulatorMode::Norm,
                AccumulatorMode::CharDisc,
                AccumulatorMode::CentDisc,
                AccumulatorMode::Fixed,
            ],
            parallel: false,
            streaming: false,
            checkpointing: false,
            bit_exact_parallel: true,
        }
    }

    fn run(
        &self,
        ctx: &RunContext<'_>,
        source: ReadSource<'_>,
        sink: &mut dyn CallSink,
    ) -> Result<RunReport, EngineError> {
        check_preconditions(self, ctx)?;
        let reads = source.collect()?;
        let report = run_pipeline_observed(ctx.reference, &reads, &ctx.config, &ctx.observer);
        deliver(report, sink)
    }
}
