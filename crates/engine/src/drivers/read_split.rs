//! The read-split MPI driver (star gather at rank 0).

use crate::context::RunContext;
use crate::contract::{check_preconditions, Capabilities, Driver};
use crate::error::EngineError;
use crate::sink::{deliver, CallSink};
use crate::source::ReadSource;
use gnumap_core::accum::{
    AccumulatorMode, CentDiscAccumulator, CharDiscAccumulator, FixedAccumulator, NormAccumulator,
};
use gnumap_core::driver::read_split::run_read_split_observed;
use gnumap_core::report::RunReport;

/// The paper's first decomposition: every rank holds the full genome and
/// index, reads are partitioned across ranks, and accumulators gather at
/// rank 0.
pub struct ReadSplitDriver;

impl Driver for ReadSplitDriver {
    fn name(&self) -> &'static str {
        "read-split"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["mpi-read"]
    }

    fn description(&self) -> &'static str {
        "MPI read partitioning, full genome per rank, star gather at rank 0"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            // All four layouts: every rank deposits into its own partial
            // accumulator over identical read subsets regardless of mode,
            // and the Figure 5 reproduction sweeps the discretized pair.
            accumulators: &[
                AccumulatorMode::Norm,
                AccumulatorMode::CharDisc,
                AccumulatorMode::CentDisc,
                AccumulatorMode::Fixed,
            ],
            parallel: true,
            streaming: false,
            checkpointing: false,
            bit_exact_parallel: true,
        }
    }

    fn run(
        &self,
        ctx: &RunContext<'_>,
        source: ReadSource<'_>,
        sink: &mut dyn CallSink,
    ) -> Result<RunReport, EngineError> {
        check_preconditions(self, ctx)?;
        let reads = source.collect()?;
        let report = match ctx.config.accumulator {
            AccumulatorMode::Norm => run_read_split_observed::<NormAccumulator>(
                ctx.reference,
                &reads,
                &ctx.config,
                ctx.threads,
                &ctx.observer,
            )?,
            AccumulatorMode::CharDisc => run_read_split_observed::<CharDiscAccumulator>(
                ctx.reference,
                &reads,
                &ctx.config,
                ctx.threads,
                &ctx.observer,
            )?,
            AccumulatorMode::CentDisc => run_read_split_observed::<CentDiscAccumulator>(
                ctx.reference,
                &reads,
                &ctx.config,
                ctx.threads,
                &ctx.observer,
            )?,
            AccumulatorMode::Fixed => run_read_split_observed::<FixedAccumulator>(
                ctx.reference,
                &reads,
                &ctx.config,
                ctx.threads,
                &ctx.observer,
            )?,
        };
        deliver(report, sink)
    }
}
