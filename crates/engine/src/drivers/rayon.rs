//! The shared-memory (rayon) driver.

use crate::context::RunContext;
use crate::contract::{check_preconditions, Capabilities, Driver};
use crate::error::EngineError;
use crate::sink::{deliver, CallSink};
use crate::source::ReadSource;
use gnumap_core::accum::{AccumulatorMode, FixedAccumulator, NormAccumulator};
use gnumap_core::driver::rayon_driver::run_rayon_observed;
use gnumap_core::report::RunReport;

/// Chunk-per-worker threads with a deterministic chunk-ordered fold (the
/// paper's shared-memory platform). The discretized accumulators' merges
/// are order-sensitive, so only the norm and fixed-point layouts run
/// here.
pub struct RayonDriver;

impl Driver for RayonDriver {
    fn name(&self) -> &'static str {
        "rayon"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["threads", "shared"]
    }

    fn description(&self) -> &'static str {
        "shared-memory worker threads, deterministic chunk-ordered reduction"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            accumulators: &[AccumulatorMode::Norm, AccumulatorMode::Fixed],
            parallel: true,
            streaming: false,
            checkpointing: false,
            bit_exact_parallel: true,
        }
    }

    fn run(
        &self,
        ctx: &RunContext<'_>,
        source: ReadSource<'_>,
        sink: &mut dyn CallSink,
    ) -> Result<RunReport, EngineError> {
        check_preconditions(self, ctx)?;
        let reads = source.collect()?;
        // A one-thread budget still gets a pool of two: `--threads N`
        // selecting this driver has always meant "actually parallel".
        let threads = ctx.threads.max(2);
        let report = match ctx.config.accumulator {
            AccumulatorMode::Norm => run_rayon_observed::<NormAccumulator>(
                ctx.reference,
                &reads,
                &ctx.config,
                threads,
                &ctx.observer,
            ),
            AccumulatorMode::Fixed => run_rayon_observed::<FixedAccumulator>(
                ctx.reference,
                &reads,
                &ctx.config,
                threads,
                &ctx.observer,
            ),
            // check_preconditions already rejected everything else.
            _ => unreachable!("mode filtered by capabilities"),
        };
        deliver(report, sink)
    }
}
