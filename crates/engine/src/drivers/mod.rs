//! The seven driver adapters: one per execution mode.
//!
//! Each adapter is a unit struct implementing [`crate::Driver`] over the
//! corresponding run function; it validates the context, dispatches on
//! the accumulator mode, threads the observer through, and delivers the
//! calls to the sink. No pipeline logic lives here.

mod genome_split;
mod rayon;
mod read_split;
mod ring;
mod serial;
mod server;
mod stream;

pub use genome_split::GenomeSplitDriver;
pub use rayon::RayonDriver;
pub use read_split::ReadSplitDriver;
pub use ring::ReadSplitRingDriver;
pub use serial::SerialDriver;
pub use server::ServerDriver;
pub use stream::StreamDriver;
