//! The read-split ring-allreduce driver.

use crate::context::RunContext;
use crate::contract::{check_preconditions, Capabilities, Driver};
use crate::error::EngineError;
use crate::sink::{deliver, CallSink};
use crate::source::ReadSource;
use gnumap_core::accum::AccumulatorMode;
use gnumap_core::driver::read_split::run_read_split_ring_observed;
use gnumap_core::report::RunReport;

/// Read partitioning with a ring allreduce instead of a star gather.
/// Internally pinned to the float norm accumulator, whose summation
/// order varies with the rank count — this is the one driver whose
/// parallel runs are only semantically (not bit-) identical to serial.
pub struct ReadSplitRingDriver;

impl Driver for ReadSplitRingDriver {
    fn name(&self) -> &'static str {
        "read-split-ring"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["ring"]
    }

    fn description(&self) -> &'static str {
        "MPI read partitioning with ring allreduce (float norm accumulator only)"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            accumulators: &[AccumulatorMode::Norm],
            parallel: true,
            streaming: false,
            checkpointing: false,
            bit_exact_parallel: false,
        }
    }

    fn run(
        &self,
        ctx: &RunContext<'_>,
        source: ReadSource<'_>,
        sink: &mut dyn CallSink,
    ) -> Result<RunReport, EngineError> {
        check_preconditions(self, ctx)?;
        let reads = source.collect()?;
        let report = run_read_split_ring_observed(
            ctx.reference,
            &reads,
            &ctx.config,
            ctx.threads,
            &ctx.observer,
        )?;
        deliver(report, sink)
    }
}
