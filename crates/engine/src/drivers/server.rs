//! The loopback TCP server driver.

use crate::context::RunContext;
use crate::contract::{check_preconditions, Capabilities, Driver};
use crate::error::EngineError;
use crate::sink::{deliver, CallSink};
use crate::source::ReadSource;
use gnumap_core::accum::AccumulatorMode;
use gnumap_core::observe::{Event, Stage, StageTimer};
use gnumap_core::report::RunReport;
use std::time::Instant;

/// Finalize deadline for a loopback run (generous; the server drains
/// every submitted read before answering).
const FINALIZE_DEADLINE_MS: u32 = 120_000;

/// The batching SNP-calling daemon exercised end to end: each run starts
/// a real TCP server on a loopback port, streams the reads through a
/// session in `chunk_size` submits, finalizes, and tears the server
/// down. Sessions accumulate in fixed point, so the digest and calls are
/// bit-identical to serial regardless of worker count or batch mixing;
/// as with the stream driver, `NORM` selects the same fixed-point path.
pub struct ServerDriver;

impl Driver for ServerDriver {
    fn name(&self) -> &'static str {
        "server"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["loopback"]
    }

    fn description(&self) -> &'static str {
        "loopback TCP round trip through the batching SNP-calling daemon"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            accumulators: &[AccumulatorMode::Norm, AccumulatorMode::Fixed],
            parallel: true,
            streaming: true,
            checkpointing: false,
            bit_exact_parallel: true,
        }
    }

    fn run(
        &self,
        ctx: &RunContext<'_>,
        source: ReadSource<'_>,
        sink: &mut dyn CallSink,
    ) -> Result<RunReport, EngineError> {
        check_preconditions(self, ctx)?;
        let reads = source.collect()?;
        let observer = &ctx.observer;
        observer.emit(|| Event::RunStart {
            driver: "server".into(),
            accumulator: ctx.config.accumulator.name().into(),
        });
        let start = Instant::now();

        // Index stage: server startup builds the k-mer index.
        let timer = StageTimer::start(observer, Stage::Index);
        let cfg = server::ServerConfig {
            workers: ctx.threads.max(1),
            batch_size: ctx.batch_size,
            shards: ctx.shards,
            ..Default::default()
        };
        let handle = server::start(ctx.reference.clone(), ctx.config, cfg, "127.0.0.1:0")
            .map_err(|e| EngineError::Server(format!("start: {e}")))?;
        timer.finish(observer);

        let result = (|| -> Result<server::CallResult, String> {
            let mut client =
                server::Client::connect(handle.addr()).map_err(|e| format!("connect: {e}"))?;
            let session = client
                .open_session(ctx.config.calling.into())
                .map_err(|e| format!("open session: {e}"))?;

            // Map stage: every read travels through the wire and the
            // worker pool before finalize can answer.
            let timer = StageTimer::start(observer, Stage::Map);
            for chunk in reads.chunks(ctx.chunk_size) {
                submit_with_retry(&mut client, session, chunk)?;
            }
            timer.finish(observer);

            let timer = StageTimer::start(observer, Stage::Call);
            let result = client
                .finalize(session, FINALIZE_DEADLINE_MS)
                .map_err(|e| format!("finalize: {e}"))?;
            timer.finish(observer);
            Ok(result)
        })();
        handle.shutdown();
        handle.join();

        let r = result.map_err(EngineError::Server)?;
        let report = RunReport {
            calls: r.calls,
            reads_processed: r.reads_processed as usize,
            reads_mapped: r.reads_mapped as usize,
            elapsed_secs: start.elapsed().as_secs_f64(),
            accumulator_bytes: 0,
            traffic: None,
            rank_cpu_secs: Vec::new(),
            stream: None,
            accumulator_digest: Some(r.digest),
        };
        observer.emit(|| Event::RunEnd {
            reads_processed: report.reads_processed as u64,
            reads_mapped: report.reads_mapped as u64,
            calls: report.calls.len() as u64,
            wall_secs: report.elapsed_secs,
        });
        deliver(report, sink)
    }
}

/// Submit one chunk, backing off briefly on typed `Busy` rejections so a
/// small ingress queue cannot fail the run.
fn submit_with_retry(
    client: &mut server::Client,
    session: u64,
    chunk: &[genome::read::SequencedRead],
) -> Result<(), String> {
    loop {
        match client.submit_reads(session, chunk) {
            Ok(_) => return Ok(()),
            Err(err) if err.is_kind(server::ErrorKind::Busy) => {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(err) => return Err(format!("submit: {err}")),
        }
    }
}
