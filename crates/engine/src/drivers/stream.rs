//! The streaming batch-pipeline driver.

use crate::context::RunContext;
use crate::contract::{check_preconditions, Capabilities, Driver};
use crate::error::EngineError;
use crate::sink::{deliver, CallSink};
use crate::source::ReadSource;
use exec::{run_stream_observed, MemoryStream};
use gnumap_core::accum::{AccumulatorMode, FixedAccumulator};
use gnumap_core::report::RunReport;

/// Work-stealing micro-batch pipeline over an unbounded source, with
/// backpressure, a sharded shared accumulator, and checkpoint/resume.
/// Always accumulates in fixed point — integer deposits commute, so any
/// worker count, batch shape or checkpoint split is bit-identical to
/// serial. `NORM` is accepted as a selection (fixed point quantizes the
/// same normalized posteriors) and runs the identical fixed-point path.
pub struct StreamDriver;

impl Driver for StreamDriver {
    fn name(&self) -> &'static str {
        "stream"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["streaming"]
    }

    fn description(&self) -> &'static str {
        "work-stealing micro-batch pipeline with backpressure and checkpoint/resume"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            accumulators: &[AccumulatorMode::Norm, AccumulatorMode::Fixed],
            parallel: true,
            streaming: true,
            checkpointing: true,
            bit_exact_parallel: true,
        }
    }

    fn run(
        &self,
        ctx: &RunContext<'_>,
        source: ReadSource<'_>,
        sink: &mut dyn CallSink,
    ) -> Result<RunReport, EngineError> {
        check_preconditions(self, ctx)?;
        let sc = ctx.stream_config();
        let report = match source {
            ReadSource::Stream(stream) => run_stream_observed::<FixedAccumulator>(
                ctx.reference,
                stream,
                &ctx.config,
                &sc,
                &ctx.observer,
            )?,
            ReadSource::Slice(reads) => {
                let mut stream = MemoryStream::new(reads.to_vec());
                run_stream_observed::<FixedAccumulator>(
                    ctx.reference,
                    &mut stream,
                    &ctx.config,
                    &sc,
                    &ctx.observer,
                )?
            }
        };
        deliver(report, sink)
    }
}
