//! The driver registry: the single source of truth for driver names.
//!
//! Every consumer — the CLI, the conformance matrix, the benchmark
//! binaries — resolves drivers through [`DriverRegistry::get`], so a new
//! execution mode registered here is immediately selectable everywhere,
//! and an unknown name fails the same way everywhere (with a typo
//! suggestion when one is close enough).

use crate::contract::Driver;
use crate::drivers::{
    GenomeSplitDriver, RayonDriver, ReadSplitDriver, ReadSplitRingDriver, SerialDriver,
    ServerDriver, StreamDriver,
};
use crate::error::EngineError;

/// An ordered collection of drivers, resolvable by name or alias.
pub struct DriverRegistry {
    drivers: Vec<Box<dyn Driver>>,
}

impl DriverRegistry {
    /// An empty registry (tests compose their own).
    pub fn new() -> Self {
        DriverRegistry {
            drivers: Vec::new(),
        }
    }

    /// The standard seven execution modes, in documentation order.
    pub fn standard() -> Self {
        let mut r = DriverRegistry::new();
        r.register(Box::new(SerialDriver));
        r.register(Box::new(RayonDriver));
        r.register(Box::new(ReadSplitDriver));
        r.register(Box::new(ReadSplitRingDriver));
        r.register(Box::new(GenomeSplitDriver));
        r.register(Box::new(StreamDriver));
        r.register(Box::new(ServerDriver));
        r
    }

    /// Add a driver. Panics on a name or alias collision — a collision is
    /// a programming error, and the registry is built at startup.
    pub fn register(&mut self, driver: Box<dyn Driver>) {
        for existing in &self.drivers {
            let clash = existing.name() == driver.name()
                || existing.aliases().contains(&driver.name())
                || driver.aliases().contains(&existing.name())
                || driver
                    .aliases()
                    .iter()
                    .any(|a| existing.aliases().contains(a));
            assert!(
                !clash,
                "driver name/alias collision between {:?} and {:?}",
                existing.name(),
                driver.name()
            );
        }
        self.drivers.push(driver);
    }

    /// Every registered driver, in registration order.
    pub fn all(&self) -> impl Iterator<Item = &dyn Driver> {
        self.drivers.iter().map(|d| d.as_ref())
    }

    /// Primary names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.drivers.iter().map(|d| d.name()).collect()
    }

    /// Resolve `name` against primary names, then aliases. Unknown names
    /// return [`EngineError::UnknownDriver`] carrying the closest
    /// registered name when the edit distance suggests a typo.
    pub fn get(&self, name: &str) -> Result<&dyn Driver, EngineError> {
        if let Some(d) = self.drivers.iter().find(|d| d.name() == name) {
            return Ok(d.as_ref());
        }
        if let Some(d) = self.drivers.iter().find(|d| d.aliases().contains(&name)) {
            return Ok(d.as_ref());
        }
        Err(EngineError::UnknownDriver {
            name: name.to_string(),
            suggestion: self.suggest(name),
            known: self.names(),
        })
    }

    /// Closest primary name or alias within typo distance, mapped back to
    /// the primary name.
    fn suggest(&self, name: &str) -> Option<String> {
        let mut best: Option<(usize, &'static str)> = None;
        for d in &self.drivers {
            for candidate in std::iter::once(d.name()).chain(d.aliases().iter().copied()) {
                let dist = levenshtein(name, candidate);
                if best.is_none_or(|(b, _)| dist < b) {
                    best = Some((dist, d.name()));
                }
            }
        }
        // "sream" → "stream" should hit; "warp" → nothing should not.
        // Accept at most 2 edits, and never more than half the input.
        match best {
            Some((dist, primary)) if dist <= 2 && 2 * dist <= name.len() => {
                Some(primary.to_string())
            }
            _ => None,
        }
    }

    /// A GitHub-flavoured markdown table of every driver and its
    /// capabilities — the README's driver table is generated from (and
    /// tested against) this.
    pub fn driver_table(&self) -> String {
        let mut out = String::from(
            "| Driver | Aliases | Accumulators | Parallel | Streaming | \
             Checkpointing | Bit-exact parallel |\n\
             |---|---|---|---|---|---|---|\n",
        );
        let yn = |b: bool| if b { "yes" } else { "no" };
        for d in self.all() {
            let caps = d.capabilities();
            let aliases = if d.aliases().is_empty() {
                "—".to_string()
            } else {
                d.aliases()
                    .iter()
                    .map(|a| format!("`{a}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let accs = caps
                .accumulators
                .iter()
                .map(|m| m.name())
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "| `{}` | {} | {} | {} | {} | {} | {} |\n",
                d.name(),
                aliases,
                accs,
                yn(caps.parallel),
                yn(caps.streaming),
                yn(caps.checkpointing),
                yn(caps.bit_exact_parallel),
            ));
        }
        out
    }
}

impl Default for DriverRegistry {
    fn default() -> Self {
        DriverRegistry::standard()
    }
}

/// Classic two-row dynamic-programming edit distance.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_has_the_seven_modes() {
        let r = DriverRegistry::standard();
        assert_eq!(
            r.names(),
            vec![
                "serial",
                "rayon",
                "read-split",
                "read-split-ring",
                "genome-split",
                "stream",
                "server"
            ]
        );
    }

    #[test]
    fn aliases_resolve_to_the_primary_driver() {
        let r = DriverRegistry::standard();
        assert_eq!(r.get("threads").unwrap().name(), "rayon");
        assert_eq!(r.get("ring").unwrap().name(), "read-split-ring");
        assert_eq!(r.get("mpi-genome").unwrap().name(), "genome-split");
        assert_eq!(r.get("loopback").unwrap().name(), "server");
    }

    #[test]
    fn typos_get_a_suggestion_and_nonsense_does_not() {
        let r = DriverRegistry::standard();
        let err = r.get("sream").map(|d| d.name()).unwrap_err();
        match &err {
            EngineError::UnknownDriver {
                suggestion, known, ..
            } => {
                assert_eq!(suggestion.as_deref(), Some("stream"));
                assert_eq!(known.len(), 7);
            }
            other => panic!("unexpected error: {other:?}"),
        }
        assert!(err.to_string().contains("unknown value"), "{err}");
        assert!(
            err.to_string().contains("did you mean \"stream\"?"),
            "{err}"
        );

        match r.get("warp").map(|d| d.name()).unwrap_err() {
            EngineError::UnknownDriver { suggestion, .. } => assert_eq!(suggestion, None),
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("sream", "stream"), 1);
    }

    #[test]
    fn driver_table_is_well_formed_markdown() {
        let r = DriverRegistry::standard();
        let table = r.driver_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 2 + 7, "header + separator + one row each");
        for line in &lines {
            assert_eq!(line.matches('|').count(), 8, "8 pipes per row: {line}");
        }
        assert!(table.contains("| `serial` |"));
        assert!(table.contains("| `read-split-ring` | `ring` |"));
    }

    #[test]
    fn duplicate_registration_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut r = DriverRegistry::standard();
            r.register(Box::new(SerialDriver));
        });
        assert!(result.is_err());
    }
}
