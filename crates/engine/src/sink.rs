//! Call sinks: where a run's SNP calls are delivered.

use crate::error::EngineError;
use gnumap_core::SnpCall;

/// Receives the finished call set exactly once, at the end of a run.
///
/// The calls also remain in the returned
/// [`gnumap_core::report::RunReport`]; the sink exists so callers that
/// stream results elsewhere (a VCF writer, a wire encoder) plug into the
/// same run contract without post-processing the report.
pub trait CallSink {
    /// Accept the run's calls. Returning `Err` fails the run with
    /// [`EngineError::Sink`].
    fn accept(&mut self, calls: &[SnpCall]) -> Result<(), String>;
}

/// Discards the calls (callers that only want the report).
#[derive(Debug, Default)]
pub struct NullSink;

impl CallSink for NullSink {
    fn accept(&mut self, _calls: &[SnpCall]) -> Result<(), String> {
        Ok(())
    }
}

/// Collects the calls into an owned vector.
#[derive(Debug, Default)]
pub struct VecSink {
    /// Calls accepted so far.
    pub calls: Vec<SnpCall>,
}

impl CallSink for VecSink {
    fn accept(&mut self, calls: &[SnpCall]) -> Result<(), String> {
        self.calls.extend_from_slice(calls);
        Ok(())
    }
}

/// Deliver a finished report's calls to the sink, mapping sink failures
/// into [`EngineError::Sink`]. Every driver adapter funnels through this.
pub(crate) fn deliver(
    report: gnumap_core::report::RunReport,
    sink: &mut dyn CallSink,
) -> Result<gnumap_core::report::RunReport, EngineError> {
    sink.accept(&report.calls).map_err(EngineError::Sink)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::alphabet::Base;

    fn call(pos: usize) -> SnpCall {
        SnpCall {
            pos,
            reference: Base::A,
            allele: Base::G,
            second_allele: None,
            statistic: 10.0,
            p_adjusted: 1e-4,
            counts: [0.0; 5],
        }
    }

    #[test]
    fn vec_sink_collects_and_null_sink_discards() {
        let calls = vec![call(3), call(9)];
        let mut v = VecSink::default();
        v.accept(&calls).unwrap();
        assert_eq!(v.calls.len(), 2);
        NullSink.accept(&calls).unwrap();
    }
}
