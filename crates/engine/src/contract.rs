//! The run contract every execution mode implements.

use crate::context::RunContext;
use crate::error::EngineError;
use crate::sink::CallSink;
use crate::source::ReadSource;
use gnumap_core::accum::AccumulatorMode;
use gnumap_core::report::RunReport;

/// What a driver can and cannot do, declared statically so callers (the
/// CLI, the conformance matrix, the benchmarks) can plan runs without
/// trial and error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Accumulator layouts the driver accepts. Passing any other mode in
    /// the run context yields [`EngineError::UnsupportedAccumulator`].
    pub accumulators: &'static [AccumulatorMode],
    /// Whether the driver exploits parallel hardware at all.
    pub parallel: bool,
    /// Whether the driver consumes its source incrementally (bounded
    /// memory) rather than materialising every read first.
    pub streaming: bool,
    /// Whether the driver can write and resume from checkpoints.
    pub checkpointing: bool,
    /// Whether parallel runs are bit-identical to serial under the
    /// fixed-point accumulator. Only the ring allreduce — pinned to float
    /// summation whose order varies with the rank count — gives this up.
    pub bit_exact_parallel: bool,
}

impl Capabilities {
    /// Does the driver accept this accumulator layout?
    pub fn supports(&self, mode: AccumulatorMode) -> bool {
        self.accumulators.contains(&mode)
    }
}

/// One execution mode of the pipeline: the same map → accumulate → call
/// algorithm behind a uniform entry point.
///
/// Implementations are stateless adapters over the underlying run
/// functions; all run state lives in the [`RunContext`] and the source.
/// Every adapter threads `ctx.observer` through, so structured events
/// flow from any driver the same way.
pub trait Driver: Send + Sync {
    /// Canonical registry name (`serial`, `rayon`, `read-split`, ...).
    fn name(&self) -> &'static str;

    /// Alternate names the registry also resolves.
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// One-line description for tables and help text.
    fn description(&self) -> &'static str;

    /// Static capability declaration.
    fn capabilities(&self) -> Capabilities;

    /// Execute the pipeline over `source`, delivering calls to `sink`.
    fn run(
        &self,
        ctx: &RunContext<'_>,
        source: ReadSource<'_>,
        sink: &mut dyn CallSink,
    ) -> Result<RunReport, EngineError>;
}

/// Shared precondition check for driver adapters: a valid context whose
/// accumulator mode the driver supports.
pub(crate) fn check_preconditions(
    driver: &dyn Driver,
    ctx: &RunContext<'_>,
) -> Result<(), EngineError> {
    ctx.validate()?;
    let caps = driver.capabilities();
    if !caps.supports(ctx.config.accumulator) {
        return Err(EngineError::UnsupportedAccumulator {
            driver: driver.name(),
            mode: ctx.config.accumulator,
            supported: caps.accumulators,
        });
    }
    Ok(())
}
