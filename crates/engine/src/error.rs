//! Typed errors for driver resolution and execution.

use gnumap_core::accum::AccumulatorMode;
use gnumap_core::driver::CallWireError;

/// Anything that can go wrong resolving a driver from the registry or
/// running one against a read source.
#[derive(Debug)]
pub enum EngineError {
    /// The requested driver name matched neither a registered name nor an
    /// alias. Carries the closest known name (edit distance) when one is
    /// plausibly a typo, plus the full list of valid names.
    UnknownDriver {
        /// What the caller asked for.
        name: String,
        /// Closest registered name, if within typo distance.
        suggestion: Option<String>,
        /// Every registered (primary) driver name.
        known: Vec<&'static str>,
    },
    /// The driver cannot run the requested accumulator layout (for
    /// example, the ring allreduce is pinned to the float norm
    /// accumulator and the shared-memory merges need commuting deposits).
    UnsupportedAccumulator {
        /// The driver that rejected the mode.
        driver: &'static str,
        /// The rejected mode.
        mode: AccumulatorMode,
        /// Modes the driver accepts.
        supported: &'static [AccumulatorMode],
    },
    /// A [`crate::RunContext`] field is out of range for the driver.
    InvalidContext(String),
    /// A rank-to-rank call wire failed to decode (MPI drivers).
    Wire(CallWireError),
    /// The streaming engine failed (source I/O, checkpoint, abort hook).
    Exec(exec::ExecError),
    /// The loopback server round trip failed.
    Server(String),
    /// The call sink rejected the calls.
    Sink(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownDriver {
                name,
                suggestion,
                known,
            } => {
                write!(f, "unknown value {name:?}; expected {}", known.join(" | "))?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean {s:?}?)")?;
                }
                Ok(())
            }
            EngineError::UnsupportedAccumulator {
                driver,
                mode,
                supported,
            } => {
                let list: Vec<&str> = supported.iter().map(|m| m.name()).collect();
                write!(
                    f,
                    "driver {driver:?} cannot run accumulator {mode}; supported: {}",
                    list.join(" | ")
                )
            }
            EngineError::InvalidContext(msg) => write!(f, "invalid run context: {msg}"),
            EngineError::Wire(e) => write!(f, "{e}"),
            EngineError::Exec(e) => write!(f, "{e}"),
            EngineError::Server(msg) => write!(f, "server: {msg}"),
            EngineError::Sink(msg) => write!(f, "sink: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CallWireError> for EngineError {
    fn from(e: CallWireError) -> Self {
        EngineError::Wire(e)
    }
}

impl From<exec::ExecError> for EngineError {
    fn from(e: exec::ExecError) -> Self {
        EngineError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_driver_message_lists_names_and_suggestion() {
        let err = EngineError::UnknownDriver {
            name: "sreial".into(),
            suggestion: Some("serial".into()),
            known: vec!["serial", "rayon"],
        };
        let msg = err.to_string();
        assert!(msg.contains("unknown value \"sreial\""), "{msg}");
        assert!(msg.contains("serial | rayon"), "{msg}");
        assert!(msg.contains("did you mean \"serial\"?"), "{msg}");
    }

    #[test]
    fn unsupported_accumulator_names_the_alternatives() {
        let err = EngineError::UnsupportedAccumulator {
            driver: "read-split-ring",
            mode: AccumulatorMode::Fixed,
            supported: &[AccumulatorMode::Norm],
        };
        let msg = err.to_string();
        assert!(msg.contains("read-split-ring"), "{msg}");
        assert!(msg.contains("FIXED"), "{msg}");
        assert!(msg.contains("supported: NORM"), "{msg}");
    }
}
