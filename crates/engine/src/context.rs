//! The run context: everything a driver needs besides the reads.

use crate::error::EngineError;
use exec::{CheckpointPolicy, StreamConfig};
use genome::seq::DnaSeq;
use gnumap_core::observe::Observer;
use gnumap_core::GnumapConfig;

/// One run's complete configuration, shared by every driver.
///
/// A context borrows the reference genome and bundles the pipeline
/// configuration (including the accumulator layout), the deterministic
/// seed that produced the workload, the parallelism budget, the streaming
/// shape, and the [`Observer`] that receives structured events. Fields a
/// driver does not use are simply ignored: the serial driver reads only
/// `config` and `observer`, the MPI drivers interpret `threads` as their
/// rank count, and the streaming driver consumes the whole batch shape.
pub struct RunContext<'r> {
    /// The reference genome every driver maps against.
    pub reference: &'r DnaSeq,
    /// Mapping, calling and accumulator-layout parameters.
    pub config: GnumapConfig,
    /// Seed that generated the workload. Drivers are deterministic given
    /// their inputs; the seed travels here so traces and reports can
    /// identify the workload they came from.
    pub seed: u64,
    /// Parallelism budget: rayon threads, MPI ranks, or stream/server
    /// workers, depending on the driver.
    pub threads: usize,
    /// Reads per micro-batch (stream and server drivers).
    pub batch_size: usize,
    /// Reads per source chunk / client submit (stream and server drivers).
    pub chunk_size: usize,
    /// Bounded channel capacity in chunks (stream driver).
    pub channel_capacity: usize,
    /// Micro-batches per worker per scheduling window (stream driver).
    pub batches_per_worker: usize,
    /// Lock stripes in the shared accumulator (stream and server drivers).
    pub shards: usize,
    /// Periodic checkpointing (stream driver only).
    pub checkpoint: Option<CheckpointPolicy>,
    /// Kill hook for tests (stream driver only).
    pub abort_after_batches: Option<usize>,
    /// Structured-event receiver; `Observer::disabled()` costs nothing.
    pub observer: Observer,
}

impl<'r> RunContext<'r> {
    /// A context with the library defaults (mirrors
    /// [`StreamConfig::default`] for the streaming shape).
    pub fn new(reference: &'r DnaSeq) -> Self {
        let sc = StreamConfig::default();
        RunContext {
            reference,
            config: GnumapConfig::default(),
            seed: 0,
            threads: 1,
            batch_size: sc.batch_size,
            chunk_size: sc.chunk_size,
            channel_capacity: sc.channel_capacity,
            batches_per_worker: sc.batches_per_worker,
            shards: sc.shards,
            checkpoint: None,
            abort_after_batches: None,
            observer: Observer::disabled(),
        }
    }

    /// The streaming-engine shape this context describes.
    pub fn stream_config(&self) -> StreamConfig {
        StreamConfig {
            workers: self.threads.max(1),
            batch_size: self.batch_size,
            chunk_size: self.chunk_size,
            channel_capacity: self.channel_capacity,
            batches_per_worker: self.batches_per_worker,
            shards: self.shards,
            checkpoint: self.checkpoint.clone(),
            abort_after_batches: self.abort_after_batches,
        }
    }

    /// Reject out-of-range fields before handing them to a driver (the
    /// underlying run functions assert; the engine returns typed errors).
    pub fn validate(&self) -> Result<(), EngineError> {
        for (value, what) in [
            (self.threads, "threads"),
            (self.batch_size, "batch_size"),
            (self.chunk_size, "chunk_size"),
            (self.batches_per_worker, "batches_per_worker"),
            (self.shards, "shards"),
        ] {
            if value == 0 {
                return Err(EngineError::InvalidContext(format!(
                    "{what} must be at least 1"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_mirror_stream_config() {
        let reference: DnaSeq = "ACGTACGT".parse().unwrap();
        let ctx = RunContext::new(&reference);
        let sc = StreamConfig::default();
        assert_eq!(ctx.stream_config(), sc);
        assert_eq!(ctx.threads, 1);
        assert!(ctx.validate().is_ok());
    }

    #[test]
    fn zero_fields_are_rejected() {
        let reference: DnaSeq = "ACGT".parse().unwrap();
        let mut ctx = RunContext::new(&reference);
        ctx.shards = 0;
        let err = ctx.validate().unwrap_err();
        assert!(err.to_string().contains("shards"), "{err}");
    }
}
