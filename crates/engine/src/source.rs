//! Read sources: a slice already in memory, or a chunked stream.

use crate::error::EngineError;
use exec::stream::ReadStream;
use genome::read::SequencedRead;
use std::borrow::Cow;

/// Where a run's reads come from.
///
/// Slice-based drivers (serial, rayon, the MPI decompositions, the
/// loopback server) drain a stream source into memory before running;
/// the streaming driver consumes a slice source through an in-memory
/// adapter. Either way every driver accepts either variant, so the
/// caller picks the source that matches its input, not its driver.
pub enum ReadSource<'a> {
    /// Reads already resident in memory.
    Slice(&'a [SequencedRead]),
    /// A chunked, possibly unbounded source (FASTQ file, simulator).
    Stream(&'a mut dyn ReadStream),
}

/// Chunk size used when a slice-based driver drains a stream source.
const DRAIN_CHUNK: usize = 4096;

impl<'a> ReadSource<'a> {
    /// Materialise the source as a slice: borrowed when it already is
    /// one, drained to an owned vector otherwise.
    pub fn collect(self) -> Result<Cow<'a, [SequencedRead]>, EngineError> {
        match self {
            ReadSource::Slice(reads) => Ok(Cow::Borrowed(reads)),
            ReadSource::Stream(stream) => {
                let mut all = Vec::new();
                loop {
                    let chunk = stream.next_chunk(DRAIN_CHUNK)?;
                    if chunk.is_empty() {
                        break;
                    }
                    all.extend(chunk);
                }
                Ok(Cow::Owned(all))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec::MemoryStream;

    fn reads(n: usize) -> Vec<SequencedRead> {
        (0..n)
            .map(|i| {
                SequencedRead::with_uniform_quality(
                    format!("r{i}"),
                    "ACGTACGT".parse().unwrap(),
                    30,
                )
            })
            .collect()
    }

    #[test]
    fn slice_source_borrows() {
        let r = reads(3);
        let got = ReadSource::Slice(&r).collect().unwrap();
        assert!(matches!(got, Cow::Borrowed(_)));
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn stream_source_drains_in_order() {
        let r = reads(10);
        let mut stream = MemoryStream::new(r.clone());
        let got = ReadSource::Stream(&mut stream).collect().unwrap();
        assert_eq!(got.as_ref(), r.as_slice());
    }
}
