//! Unified driver engine: one registry, one run contract.
//!
//! The pipeline grew six ways to execute the same map → accumulate → call
//! algorithm — serial, shared-memory threads, two MPI decompositions, a
//! ring-allreduce variant, a streaming batch engine, and a TCP daemon —
//! each with its own entry-point signature and its own call sites in the
//! CLI, the conformance matrix and the benchmarks. This crate collapses
//! them onto a single contract:
//!
//! * [`Driver`] — `name()`, `capabilities()`, and
//!   `run(&RunContext, ReadSource, &mut dyn CallSink) -> RunReport`;
//! * [`RunContext`] — the reference genome, the [`gnumap_core::GnumapConfig`]
//!   (including the accumulator layout), the workload seed, the
//!   parallelism budget, the streaming shape, and an
//!   [`gnumap_core::observe::Observer`] for structured events;
//! * [`ReadSource`] / [`CallSink`] — reads in (slice or chunked stream),
//!   calls out;
//! * [`DriverRegistry`] — the single source of truth for driver names,
//!   with aliases, typo suggestions, and a generated capability table.
//!
//! The adapters are behaviour-preserving wrappers over the original run
//! functions: with the fixed-point accumulator, every driver resolved
//! from the registry produces the same accumulator digest and the same
//! bit-identical call wire as the serial reference (the ring variant,
//! pinned to float summation, agrees semantically instead — its
//! [`Capabilities::bit_exact_parallel`] says so).

pub mod context;
pub mod contract;
pub mod drivers;
pub mod error;
pub mod registry;
pub mod sink;
pub mod source;

pub use context::RunContext;
pub use contract::{Capabilities, Driver};
pub use error::EngineError;
pub use registry::DriverRegistry;
pub use sink::{CallSink, NullSink, VecSink};
pub use source::ReadSource;
