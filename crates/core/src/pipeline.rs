//! The serial end-to-end pipeline: index → map → accumulate → call.
//!
//! This is the reference implementation the parallel drivers must agree
//! with; it is also what the per-rank workers of the read-split driver run
//! internally.

use crate::accum::{
    AccumulatorMode, CentDiscAccumulator, CharDiscAccumulator, FixedAccumulator, GenomeAccumulator,
    NormAccumulator,
};
use crate::config::GnumapConfig;
use crate::mapping::{AlignScratch, MappingEngine};
use crate::observe::{Event, Observer, Stage, StageTimer};
use crate::report::RunReport;
use crate::snpcall::call_snps;
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use std::time::Instant;

/// Reads per [`Event::Batch`] when a driver without natural batching (the
/// serial pipeline, the per-rank MPI loops) runs under an enabled
/// observer.
pub const OBSERVED_BATCH_READS: usize = 256;

/// Map `reads` with `engine` and deposit their weighted evidence into
/// `acc`. Returns the number of reads that produced at least one
/// alignment.
pub fn accumulate_reads<A: GenomeAccumulator>(
    engine: &MappingEngine<'_>,
    reads: &[SequencedRead],
    acc: &mut A,
) -> usize {
    let mut scratch = AlignScratch::new();
    accumulate_reads_with(engine, reads, acc, &mut scratch)
}

/// [`accumulate_reads`] with a caller-provided [`AlignScratch`], so a
/// worker thread can reuse one arena across many batches. Alignments are
/// deposited straight out of the scratch — no per-read `Vec` of owned
/// alignments is ever materialised.
pub fn accumulate_reads_with<A: GenomeAccumulator>(
    engine: &MappingEngine<'_>,
    reads: &[SequencedRead],
    acc: &mut A,
    scratch: &mut AlignScratch,
) -> usize {
    let mut mapped = 0usize;
    for read in reads {
        engine.map_read_with(read, scratch);
        if !scratch.is_empty() {
            mapped += 1;
        }
        for aln in scratch.alignments() {
            deposit(acc, aln.window_start, aln.score, aln.columns);
        }
    }
    mapped
}

/// [`accumulate_reads_with`] plus per-batch [`Event::Batch`] emission.
///
/// When the observer is disabled this *is* the plain hot loop — same code
/// path, no counters, no events — so instrumentation costs nothing unless
/// a sink is attached. When enabled, reads are walked in
/// [`OBSERVED_BATCH_READS`] slices (same read order, so deposit order and
/// digests are unchanged) and each slice emits one event carrying read /
/// mapped / candidate / deposited-column counts for `worker`.
pub fn accumulate_reads_observed<A: GenomeAccumulator>(
    engine: &MappingEngine<'_>,
    reads: &[SequencedRead],
    acc: &mut A,
    scratch: &mut AlignScratch,
    observer: &Observer,
    worker: usize,
) -> usize {
    if !observer.is_enabled() {
        return accumulate_reads_with(engine, reads, acc, scratch);
    }
    let mut mapped_total = 0usize;
    for batch in reads.chunks(OBSERVED_BATCH_READS) {
        let (mut mapped, mut candidates, mut columns) = (0u64, 0u64, 0u64);
        for read in batch {
            engine.map_read_with(read, scratch);
            if !scratch.is_empty() {
                mapped += 1;
            }
            for aln in scratch.alignments() {
                candidates += 1;
                columns += aln.columns.len() as u64;
                deposit(acc, aln.window_start, aln.score, aln.columns);
            }
        }
        observer.emit(|| Event::Batch {
            worker: worker as u64,
            reads: batch.len() as u64,
            mapped,
            candidates,
            deposited_columns: columns,
        });
        mapped_total += mapped as usize;
    }
    mapped_total
}

/// Deposit one alignment's weighted columns into an accumulator, skipping
/// columns beyond the accumulator's end.
pub fn deposit<A: GenomeAccumulator>(
    acc: &mut A,
    window_start: usize,
    weight: f64,
    columns: &[pairhmm::marginal::ColumnPosterior],
) {
    // Clamp the column range once so the hot loop carries no per-column
    // bounds test.
    let len = acc.len();
    if window_start >= len {
        return;
    }
    let usable = columns.len().min(len - window_start);
    for (j, col) in columns[..usable].iter().enumerate() {
        let mut delta = [0.0; 5];
        for (d, p) in delta.iter_mut().zip(col.probs) {
            *d = p * weight;
        }
        acc.add(window_start + j, &delta);
    }
}

/// Run the whole pipeline serially with a specific accumulator type.
pub fn run_serial_with<A: GenomeAccumulator>(
    reference: &DnaSeq,
    reads: &[SequencedRead],
    config: &GnumapConfig,
) -> RunReport {
    run_serial_observed::<A>(reference, reads, config, &Observer::disabled())
}

/// [`run_serial_with`] with structured observability: per-stage wall/CPU
/// timings, per-batch counters, and run start/end events.
pub fn run_serial_observed<A: GenomeAccumulator>(
    reference: &DnaSeq,
    reads: &[SequencedRead],
    config: &GnumapConfig,
    observer: &Observer,
) -> RunReport {
    observer.emit(|| Event::RunStart {
        driver: "serial".into(),
        accumulator: config.accumulator.name().into(),
    });
    let start = Instant::now();
    let timer = StageTimer::start(observer, Stage::Index);
    let engine = MappingEngine::new(reference, config.mapping);
    timer.finish(observer);

    let mut acc = A::new(reference.len());
    let mut scratch = AlignScratch::new();
    let timer = StageTimer::start(observer, Stage::Map);
    let mapped = accumulate_reads_observed(&engine, reads, &mut acc, &mut scratch, observer, 0);
    timer.finish(observer);

    let timer = StageTimer::start(observer, Stage::Call);
    let calls = call_snps(&acc, reference, &config.calling);
    timer.finish(observer);

    let elapsed_secs = start.elapsed().as_secs_f64();
    observer.emit(|| Event::RunEnd {
        reads_processed: reads.len() as u64,
        reads_mapped: mapped as u64,
        calls: calls.len() as u64,
        wall_secs: elapsed_secs,
    });
    RunReport {
        calls,
        reads_processed: reads.len(),
        reads_mapped: mapped,
        elapsed_secs,
        accumulator_bytes: acc.heap_bytes(),
        traffic: None,
        rank_cpu_secs: Vec::new(),
        stream: None,
        accumulator_digest: Some(acc.digest()),
    }
}

/// Run the whole pipeline serially, dispatching on the configured
/// accumulator mode.
pub fn run_pipeline(
    reference: &DnaSeq,
    reads: &[SequencedRead],
    config: &GnumapConfig,
) -> RunReport {
    run_pipeline_observed(reference, reads, config, &Observer::disabled())
}

/// [`run_pipeline`] with an observer.
pub fn run_pipeline_observed(
    reference: &DnaSeq,
    reads: &[SequencedRead],
    config: &GnumapConfig,
    observer: &Observer,
) -> RunReport {
    match config.accumulator {
        AccumulatorMode::Norm => {
            run_serial_observed::<NormAccumulator>(reference, reads, config, observer)
        }
        AccumulatorMode::CharDisc => {
            run_serial_observed::<CharDiscAccumulator>(reference, reads, config, observer)
        }
        AccumulatorMode::CentDisc => {
            run_serial_observed::<CentDiscAccumulator>(reference, reads, config, observer)
        }
        AccumulatorMode::Fixed => {
            run_serial_observed::<FixedAccumulator>(reference, reads, config, observer)
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::accum::NormAccumulator;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};
    use simulate::{
        apply_snps_monoploid, generate_genome, generate_snp_catalog, ErrorProfile, GenomeConfig,
        SnpCatalogConfig,
    };

    /// Small but realistic end-to-end fixture shared by driver tests.
    pub(crate) fn fixture(
        genome_len: usize,
        snp_count: usize,
        coverage: f64,
        seed: u64,
    ) -> (
        DnaSeq,
        Vec<(usize, genome::alphabet::Base)>,
        Vec<SequencedRead>,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let reference = generate_genome(
            &GenomeConfig {
                length: genome_len,
                repeat_families: 1,
                repeat_length: 120,
                repeat_copies: 2,
                repeat_divergence: 0.02,
                ..GenomeConfig::default()
            },
            &mut rng,
        );
        let snps = generate_snp_catalog(
            &reference,
            &SnpCatalogConfig {
                count: snp_count,
                ..SnpCatalogConfig::default()
            },
            &mut rng,
        );
        let individual = apply_snps_monoploid(&reference, &snps);
        let sim = simulate_reads(
            &ReadSource::Monoploid(&individual),
            ReadSimConfig {
                coverage,
                ..ReadSimConfig::default()
            }
            .read_count(genome_len),
            &ReadSimConfig {
                coverage,
                profile: ErrorProfile::default(),
                ..ReadSimConfig::default()
            },
            &mut rng,
        );
        let truth: Vec<_> = snps.iter().map(|s| (s.pos, s.alt)).collect();
        let reads: Vec<_> = sim.into_iter().map(|r| r.read).collect();
        (reference, truth, reads)
    }

    #[test]
    fn end_to_end_finds_planted_snps() {
        let (reference, truth, reads) = fixture(6_000, 8, 14.0, 2024);
        let report = run_pipeline(&reference, &reads, &GnumapConfig::default());
        assert!(report.reads_mapped as f64 > reads.len() as f64 * 0.95);

        let accuracy = crate::report::score_snp_calls(&report.calls, &truth);
        assert!(
            accuracy.true_positives >= 7,
            "expected ≥7/8 planted SNPs, got {accuracy:?}"
        );
        assert!(
            accuracy.false_positives <= 1,
            "too many false positives: {accuracy:?}"
        );
        assert!(report.seqs_per_sec() > 0.0);
        assert_eq!(report.accumulator_bytes, 6_000 * 20);
    }

    #[test]
    fn no_snps_means_no_calls() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let reference = generate_genome(
            &GenomeConfig {
                length: 4_000,
                repeat_families: 0,
                ..GenomeConfig::default()
            },
            &mut rng,
        );
        let sim = simulate_reads(
            &ReadSource::Monoploid(&reference),
            800,
            &ReadSimConfig::default(),
            &mut rng,
        );
        let reads: Vec<_> = sim.into_iter().map(|r| r.read).collect();
        let report = run_pipeline(&reference, &reads, &GnumapConfig::default());
        assert!(
            report.calls.len() <= 2,
            "α=0.05 on a clean genome should produce almost nothing: {}",
            report.calls.len()
        );
    }

    #[test]
    fn observed_run_matches_unobserved_and_emits_events() {
        use crate::observe::MemorySink;
        use std::sync::Arc;
        let (reference, _, reads) = fixture(3_000, 4, 10.0, 42);
        let cfg = GnumapConfig::default();
        let plain = run_serial_with::<FixedAccumulator>(&reference, &reads, &cfg);
        let sink = Arc::new(MemorySink::new());
        let observed = run_serial_observed::<FixedAccumulator>(
            &reference,
            &reads,
            &cfg,
            &Observer::new(sink.clone()),
        );
        assert_eq!(observed.accumulator_digest, plain.accumulator_digest);
        assert_eq!(observed.reads_mapped, plain.reads_mapped);

        let events = sink.take();
        assert!(matches!(events.first(), Some(Event::RunStart { .. })));
        assert!(matches!(events.last(), Some(Event::RunEnd { .. })));
        for stage in [Stage::Index, Stage::Map, Stage::Call] {
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, Event::StageEnd { stage: s, .. } if *s == stage)),
                "missing StageEnd for {stage:?}"
            );
        }
        let batch_reads: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::Batch { reads, .. } => Some(*reads),
                _ => None,
            })
            .sum();
        assert_eq!(batch_reads, reads.len() as u64);
    }

    #[test]
    fn fixed_mode_runs_through_run_pipeline() {
        let (reference, truth, reads) = fixture(3_000, 4, 12.0, 9);
        let report = run_pipeline(
            &reference,
            &reads,
            &GnumapConfig {
                accumulator: AccumulatorMode::Fixed,
                ..GnumapConfig::default()
            },
        );
        let acc = crate::report::score_snp_calls(&report.calls, &truth);
        assert!(acc.true_positives >= 3, "{acc:?}");
        assert_eq!(report.accumulator_bytes, 3_000 * 40);
    }

    #[test]
    fn deposit_clips_at_accumulator_end() {
        let mut acc = NormAccumulator::new(3);
        let cols = vec![
            pairhmm::marginal::ColumnPosterior {
                probs: [1.0, 0.0, 0.0, 0.0, 0.0]
            };
            5
        ];
        deposit(&mut acc, 1, 1.0, &cols);
        assert_eq!(acc.counts(1)[0], 1.0);
        assert_eq!(acc.counts(2)[0], 1.0);
        // Columns 3 and 4 fell off the end without panicking.
    }

    #[test]
    fn chardisc_mode_is_close_to_norm_at_moderate_coverage() {
        let (reference, truth, reads) = fixture(5_000, 6, 12.0, 11);
        let norm = run_pipeline(&reference, &reads, &GnumapConfig::default());
        let chard = run_pipeline(
            &reference,
            &reads,
            &GnumapConfig {
                accumulator: crate::accum::AccumulatorMode::CharDisc,
                ..GnumapConfig::default()
            },
        );
        let a_norm = crate::report::score_snp_calls(&norm.calls, &truth);
        let a_chard = crate::report::score_snp_calls(&chard.calls, &truth);
        // Paper Table III: CHARDISC keeps precision but may lose some TPs.
        assert!(a_chard.true_positives >= a_norm.true_positives.saturating_sub(2));
        assert!(a_chard.false_positives <= a_norm.false_positives + 1);
        assert!(chard.accumulator_bytes < norm.accumulator_bytes);
    }
}
