//! The probabilistic mapping engine (paper Figure 1, steps A–B).
//!
//! For each read: seed candidate placements through the k-mer index (both
//! strands), run the quality-extended Pair-HMM against a padded genome
//! window at each placement, and convert the per-window total likelihoods
//! into **posterior weights** across all of the read's candidate locations
//! (the normalised posterior probability scoring of GNUMAP \[7\]). A read
//! that maps equally well to two repeat copies contributes half its
//! evidence to each — exactly the multi-mapping behaviour the paper argues
//! makes SNP calls unbiased in repeat regions.

use genome::alphabet::Base;
use genome::index::{IndexConfig, KmerIndex};
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use pairhmm::marginal::ColumnPosterior;
use pairhmm::params::PhmmParams;
use pairhmm::pwm::Pwm;
use pairhmm::scratch::PhmmScratch;

/// Configuration of the mapping engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingConfig {
    /// k-mer index parameters (paper default k = 10).
    pub index: IndexConfig,
    /// Pair-HMM transition/emission parameters.
    pub phmm: PhmmParams,
    /// Banded-DP half width; `None` runs the full quadratic DP.
    pub band: Option<usize>,
    /// Genome bases added on each side of a candidate placement window,
    /// giving the alignment room for small indels. The model's boundary
    /// conditions force alignments to *begin* with `x_1 : y_1` matched
    /// (paper initialisation), so a left pad shifts the read into the pad
    /// — windows are therefore padded on the right only when `window_pad
    /// > 0`, and candidates too close to the genome start for a full
    /// > window are dropped so every candidate is scored over the same
    /// > window length (posterior weights must be comparable across
    /// > locations). The default of 0 matches the substitution-dominated
    /// > short-read regime; raise it to give indels room.
    pub window_pad: usize,
    /// Candidate locations with posterior weight below this are dropped
    /// (and the rest renormalised).
    pub min_weight: f64,
    /// Hard cap on candidate placements evaluated per read.
    pub max_candidates: usize,
}

impl Default for MappingConfig {
    fn default() -> Self {
        MappingConfig {
            index: IndexConfig::default(),
            phmm: PhmmParams::default(),
            band: Some(4),
            window_pad: 0,
            min_weight: 1e-4,
            max_candidates: 64,
        }
    }
}

/// Reusable per-thread scratch for the whole mapping hot path.
///
/// One instance is meant to live as long as a worker thread's read batch:
/// the Pair-HMM planes, the window buffer, the candidate list and the
/// column arena are all grow-only, so after the first few reads the
/// engine performs **zero heap allocations per read×window pair**
/// (per-read allocations — the reverse complement and the PWM — remain,
/// but are independent of the candidate count). Results of
/// [`MappingEngine::map_read_with`] / [`MappingEngine::map_read_raw_with`]
/// are left inside the scratch and read back through
/// [`AlignScratch::alignments`].
#[derive(Default)]
pub struct AlignScratch {
    /// Pair-HMM emission/DP/rolling-row arena (see [`PhmmScratch`]).
    phmm: PhmmScratch,
    /// Genome window buffer, refilled per candidate.
    window: Vec<Option<Base>>,
    /// Sorted, deduplicated candidate starts for one oriented read.
    starts: Vec<usize>,
    /// Column arena: every scored candidate appends its posteriors here.
    cols: Vec<ColumnPosterior>,
    /// Candidate metadata indexing into `cols`.
    cands: Vec<CandMeta>,
}

/// One scored candidate inside an [`AlignScratch`].
struct CandMeta {
    window_start: usize,
    placement_start: usize,
    /// Raw likelihood after `map_read_raw_with`; posterior weight after
    /// `map_read_with`.
    score: f64,
    reverse: bool,
    col_off: usize,
    col_len: usize,
}

/// Borrowed view of one alignment stored in an [`AlignScratch`].
#[derive(Debug, Clone, Copy)]
pub struct AlignmentView<'a> {
    /// Genome position of the window's first column.
    pub window_start: usize,
    /// Genome position the seeds proposed for read base 1.
    pub placement_start: usize,
    /// Raw Pair-HMM likelihood (after
    /// [`MappingEngine::map_read_raw_with`]) or normalised posterior
    /// weight (after [`MappingEngine::map_read_with`]).
    pub score: f64,
    /// Reverse-strand flag.
    pub reverse: bool,
    /// Per-column evidence vectors, unweighted.
    pub columns: &'a [ColumnPosterior],
}

impl AlignScratch {
    /// Fresh, empty scratch. Buffers grow to the working-set size over the
    /// first few reads and are then reused.
    pub fn new() -> AlignScratch {
        AlignScratch::default()
    }

    /// Iterate the alignments produced by the most recent
    /// `map_read_with` / `map_read_raw_with` call.
    pub fn alignments(&self) -> impl Iterator<Item = AlignmentView<'_>> + '_ {
        self.cands.iter().map(move |c| AlignmentView {
            window_start: c.window_start,
            placement_start: c.placement_start,
            score: c.score,
            reverse: c.reverse,
            columns: &self.cols[c.col_off..c.col_off + c.col_len],
        })
    }

    /// Number of alignments currently held.
    pub fn len(&self) -> usize {
        self.cands.len()
    }

    /// Whether the most recent mapping produced no alignments.
    pub fn is_empty(&self) -> bool {
        self.cands.is_empty()
    }

    fn clear(&mut self) {
        self.cols.clear();
        self.cands.clear();
    }
}

/// One weighted alignment of a read to a genome window.
#[derive(Debug, Clone)]
pub struct ReadAlignment {
    /// Genome position of the window's first column.
    pub window_start: usize,
    /// Posterior weight of this location among the read's candidates
    /// (weights over a read's alignments sum to 1).
    pub weight: f64,
    /// Whether the read aligned on the reverse strand.
    pub reverse: bool,
    /// Per-column evidence vectors (each summing to 1), *unweighted*;
    /// multiply by `weight` when depositing into an accumulator.
    pub columns: Vec<ColumnPosterior>,
}

/// The engine: genome + index + config.
pub struct MappingEngine<'g> {
    genome: &'g DnaSeq,
    index: KmerIndex,
    config: MappingConfig,
}

impl<'g> MappingEngine<'g> {
    /// Build the index over `genome` and wrap it with the configuration.
    pub fn new(genome: &'g DnaSeq, config: MappingConfig) -> MappingEngine<'g> {
        let index = KmerIndex::build(genome, config.index).expect("valid index config");
        MappingEngine {
            genome,
            index,
            config,
        }
    }

    /// Construct around an existing index (used by the genome-split driver
    /// to index a shard slice only).
    pub fn with_index(
        genome: &'g DnaSeq,
        index: KmerIndex,
        config: MappingConfig,
    ) -> MappingEngine<'g> {
        MappingEngine {
            genome,
            index,
            config,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MappingConfig {
        &self.config
    }

    /// Borrow the seed index.
    pub fn index(&self) -> &KmerIndex {
        &self.index
    }

    /// Genome length.
    pub fn genome_len(&self) -> usize {
        self.genome.len()
    }

    /// Candidate placement starts for one oriented read: deduplicated
    /// diagonals from the seed hits, collected into `starts` in increasing
    /// genome order. A sorted-insert vector replaces the obvious
    /// `BTreeSet` so the buffer can be reused across reads; the insert
    /// sequence, the dedup behaviour, the `max_candidates` cut-off and the
    /// ascending output order are all identical.
    fn candidates_into(&self, oriented: &SequencedRead, starts: &mut Vec<usize>) {
        starts.clear();
        for (qoff, gpos) in self.index.seed_hits(&oriented.seq) {
            let gpos = gpos as usize;
            if gpos < qoff {
                continue;
            }
            let start = gpos - qoff;
            if start + oriented.len() <= self.genome.len() {
                if let Err(pos) = starts.binary_search(&start) {
                    starts.insert(pos, start);
                }
            }
            if starts.len() >= self.config.max_candidates {
                break;
            }
        }
    }

    /// Score one oriented read against the window at placement `start`,
    /// using the caller's scratch buffers. On success the columns are left
    /// in `phmm` (read them via [`PhmmScratch::columns`]) and the total
    /// likelihood is returned.
    ///
    /// Every candidate is scored over the same window length
    /// `N + window_pad` (genome positions past the end become virtual `N`
    /// bases), so likelihoods are directly comparable across a read's
    /// candidate locations — a requirement for unbiased posterior weights.
    fn score_candidate_with(
        &self,
        oriented: &SequencedRead,
        pwm: &Pwm,
        start: usize,
        phmm: &mut PhmmScratch,
        window: &mut Vec<Option<Base>>,
    ) -> Option<f64> {
        let pad = self.config.window_pad;
        window.clear();
        window.extend((0..oriented.len() + pad).map(|j| self.genome.try_get(start + j).flatten()));
        let band = self.config.band.map(|w| w + pad);
        let total = phmm.posterior_columns(pwm, window, &self.config.phmm, band);
        (total > 0.0).then_some(total)
    }

    /// Map one read into `scratch`, leaving **unnormalised** candidate
    /// alignments (each carries its raw Pair-HMM total likelihood in
    /// [`AlignmentView::score`]). The genome-split driver needs this form,
    /// because the normalising constant must be computed *across shards*
    /// (paper: "Communication between machines via message passing
    /// determines \[the\] additional locations and calculates the final
    /// score").
    pub fn map_read_raw_with(&self, read: &SequencedRead, scratch: &mut AlignScratch) {
        scratch.clear();
        let rc = read.reverse_complement();
        for (reverse, oriented) in [(false, read), (true, &rc)] {
            let pwm = Pwm::from_read(oriented);
            self.candidates_into(oriented, &mut scratch.starts);
            for idx in 0..scratch.starts.len() {
                let start = scratch.starts[idx];
                let AlignScratch {
                    phmm,
                    window,
                    cols,
                    cands,
                    ..
                } = scratch;
                if let Some(total) = self.score_candidate_with(oriented, &pwm, start, phmm, window)
                {
                    let col_off = cols.len();
                    cols.extend_from_slice(phmm.columns());
                    cands.push(CandMeta {
                        window_start: start,
                        placement_start: start,
                        score: total,
                        reverse,
                        col_off,
                        col_len: cols.len() - col_off,
                    });
                }
            }
        }
    }

    /// Map one read into `scratch`: all candidate placements on both
    /// strands, scored and posterior-normalised
    /// ([`AlignmentView::score`] holds the weight). The scratch is left
    /// empty for unmappable reads.
    pub fn map_read_with(&self, read: &SequencedRead, scratch: &mut AlignScratch) {
        self.map_read_raw_with(read, scratch);
        let grand_total: f64 = scratch.cands.iter().map(|c| c.score).sum();
        if grand_total <= 0.0 {
            scratch.cands.clear();
            return;
        }
        // Posterior weights; drop negligible locations, renormalise.
        // `retain_mut` preserves order, so the kept set and both sums are
        // evaluated in exactly the order the Vec-returning path used.
        scratch.cands.retain_mut(|c| {
            c.score /= grand_total;
            c.score >= self.config.min_weight
        });
        let kept_sum: f64 = scratch.cands.iter().map(|c| c.score).sum();
        if kept_sum > 0.0 {
            for c in &mut scratch.cands {
                c.score /= kept_sum;
            }
        }
    }

    /// Convenience wrapper around [`MappingEngine::map_read_raw_with`]
    /// that allocates owned `RawAlignment`s with a throwaway scratch.
    pub fn map_read_raw(&self, read: &SequencedRead) -> Vec<RawAlignment> {
        let mut scratch = AlignScratch::new();
        self.map_read_raw_with(read, &mut scratch);
        scratch
            .alignments()
            .map(|v| RawAlignment {
                window_start: v.window_start,
                placement_start: v.placement_start,
                likelihood: v.score,
                reverse: v.reverse,
                columns: v.columns.to_vec(),
            })
            .collect()
    }

    /// Convenience wrapper around [`MappingEngine::map_read_with`] that
    /// allocates owned `ReadAlignment`s with a throwaway scratch. Returns
    /// an empty vector for unmappable reads.
    pub fn map_read(&self, read: &SequencedRead) -> Vec<ReadAlignment> {
        let mut scratch = AlignScratch::new();
        self.map_read_with(read, &mut scratch);
        scratch
            .alignments()
            .map(|v| ReadAlignment {
                window_start: v.window_start,
                weight: v.score,
                reverse: v.reverse,
                columns: v.columns.to_vec(),
            })
            .collect()
    }
}

/// An unnormalised candidate alignment (see
/// [`MappingEngine::map_read_raw`]).
#[derive(Debug, Clone)]
pub struct RawAlignment {
    /// Genome position of the window's first column (placement minus pad).
    pub window_start: usize,
    /// Genome position the seeds proposed for read base 1.
    pub placement_start: usize,
    /// Raw Pair-HMM total likelihood of the window.
    pub likelihood: f64,
    /// Reverse-strand flag.
    pub reverse: bool,
    /// Per-column evidence vectors, unweighted.
    pub columns: Vec<ColumnPosterior>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genome(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    fn cfg(k: usize) -> MappingConfig {
        MappingConfig {
            index: IndexConfig {
                k,
                ..IndexConfig::default()
            },
            ..MappingConfig::default()
        }
    }

    fn read_from(g: &DnaSeq, start: usize, end: usize, q: u8) -> SequencedRead {
        SequencedRead::with_uniform_quality("r", g.window(start, end), q)
    }

    #[test]
    fn unique_read_gets_weight_one() {
        let g = genome("TTGACCAGTTCAGGCATTGCAAGCTTGGCATCCATGGACC");
        let engine = MappingEngine::new(&g, cfg(8));
        let read = read_from(&g, 10, 34, 35);
        let alns = engine.map_read(&read);
        assert_eq!(alns.len(), 1);
        let a = &alns[0];
        assert!((a.weight - 1.0).abs() < 1e-9);
        assert!(!a.reverse);
        // With no left pad the window starts at the placement itself.
        assert_eq!(a.window_start, 10);
        // Columns over the placement report the genome bases.
        for (j, col) in a.columns.iter().enumerate() {
            let gpos = a.window_start + j;
            if (10..34).contains(&gpos) {
                let expect = g.get(gpos).unwrap().index();
                let argmax = (0..5)
                    .max_by(|&x, &y| col.probs[x].total_cmp(&col.probs[y]))
                    .unwrap();
                assert_eq!(argmax, expect, "column {j}");
            }
        }
    }

    #[test]
    fn reverse_strand_read_maps() {
        let g = genome("TTGACCAGTTCAGGCATTGCAAGCTTGGCATCCATGGACC");
        let engine = MappingEngine::new(&g, cfg(8));
        let read =
            SequencedRead::with_uniform_quality("r", g.window(5, 30).reverse_complement(), 35);
        let alns = engine.map_read(&read);
        assert_eq!(alns.len(), 1);
        assert!(alns[0].reverse);
        assert_eq!(alns[0].window_start, 5);
    }

    #[test]
    fn repeat_read_splits_weight_evenly() {
        // Two identical copies: posterior weight ≈ ½ each — the defining
        // behaviour of probabilistic mapping (paper Section V-B).
        let unit = "ACGGTTCAGGCATTGCAAGCTTGGC";
        let g = genome(&format!("{unit}TTATTATTAT{unit}"));
        let engine = MappingEngine::new(&g, cfg(8));
        let read = SequencedRead::with_uniform_quality("r", genome(unit), 35);
        let alns = engine.map_read(&read);
        assert_eq!(alns.len(), 2, "both copies found");
        for a in &alns {
            assert!(
                (a.weight - 0.5).abs() < 1e-6,
                "even split expected, got {}",
                a.weight
            );
        }
    }

    #[test]
    fn mismatched_copy_gets_less_weight() {
        // Copy 2 differs from the read at one high-quality base: its
        // posterior weight must be much smaller but non-zero.
        let unit1 = "ACGGTTCAGGCATTGCAAGCTTGGC";
        let unit2 = "ACGGTTCAGGCTTTGCAAGCTTGGC"; // A→T at offset 11
        let g = genome(&format!("{unit1}TTATTATTAT{unit2}"));
        let engine = MappingEngine::new(&g, cfg(8));
        let read = SequencedRead::with_uniform_quality("r", genome(unit1), 30);
        let mut alns = engine.map_read(&read);
        alns.sort_by(|a, b| b.weight.total_cmp(&a.weight));
        assert_eq!(alns.len(), 2);
        assert!(
            alns[0].weight > 0.9,
            "exact copy dominates: {}",
            alns[0].weight
        );
        assert!(alns[1].weight > 0.0 && alns[1].weight < 0.1);
        assert_eq!(alns[0].window_start, 0);
    }

    #[test]
    fn unmappable_read_returns_empty() {
        let g = genome("TTGACCAGTTCAGGCATTGCAAGCTTGGCATCCA");
        let engine = MappingEngine::new(&g, cfg(8));
        let read = SequencedRead::with_uniform_quality("r", genome("GGGGGGGGGGGGGGGGGGGG"), 35);
        assert!(engine.map_read(&read).is_empty());
    }

    #[test]
    fn weights_always_sum_to_one() {
        let unit = "ACGGTTCAGGCATTGCAAGCTTGGC";
        let g = genome(&format!("{unit}TT{unit}AATT{unit}GG"));
        let engine = MappingEngine::new(&g, cfg(6));
        let read = SequencedRead::with_uniform_quality("r", genome(unit), 25);
        let alns = engine.map_read(&read);
        assert!(alns.len() >= 3);
        let sum: f64 = alns.iter().map(|a| a.weight).sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights sum to {sum}");
    }

    #[test]
    fn banded_and_full_agree_on_clean_reads() {
        let g = genome("TTGACCAGTTCAGGCATTGCAAGCTTGGCATCCATGGACC");
        let full = MappingEngine::new(
            &g,
            MappingConfig {
                band: None,
                ..cfg(8)
            },
        );
        let banded = MappingEngine::new(&g, cfg(8));
        let read = read_from(&g, 4, 36, 35);
        let a = full.map_read(&read);
        let b = banded.map_read(&read);
        assert_eq!(a.len(), b.len());
        assert!((a[0].weight - b[0].weight).abs() < 1e-9);
        for (ca, cb) in a[0].columns.iter().zip(&b[0].columns) {
            for k in 0..5 {
                assert!(
                    (ca.probs[k] - cb.probs[k]).abs() < 1e-6,
                    "banded column posterior diverged"
                );
            }
        }
    }

    #[test]
    fn column_mass_is_one_per_covered_position() {
        let g = genome("TTGACCAGTTCAGGCATTGCAAGCTTGGCATCCA");
        let engine = MappingEngine::new(&g, cfg(8));
        let read = read_from(&g, 6, 30, 30);
        let alns = engine.map_read(&read);
        for col in &alns[0].columns {
            assert!((col.mass() - 1.0).abs() < 1e-9);
        }
    }
}
