//! Parallel drivers for the pipeline.
//!
//! Four execution strategies over the same algorithm:
//!
//! * [`rayon_driver`] — shared-memory threads with deterministic
//!   chunk-ordered reduction (the "shared memory platform" of the
//!   abstract);
//! * [`read_split`] — the paper's first MPI decomposition: every rank
//!   holds the full genome + index + accumulator, reads are partitioned,
//!   accumulators are reduced at the end ("each machine will process the
//!   entire genome, then map a different portion of the reads");
//! * [`genome_split`] — the paper's second MPI decomposition: the genome
//!   (index + accumulator) is sharded, every read is scored on every
//!   shard, and per-read normalising constants travel by allreduce ("the
//!   genome is split into equal segments ... communication between
//!   machines determines \[the\] additional locations and calculates the
//!   final score"). Lower memory per rank, more communication — the
//!   Figure 4 trade-off.
//!
//! The serial pipeline lives in [`crate::pipeline`]. A fourth parallel
//! driver — the streaming batch pipeline with backpressure, sharded
//! accumulators and checkpoint/resume — lives in the `exec` crate, which
//! builds on the call-wire helpers and [`crate::report::StreamStats`]
//! defined here.

pub mod genome_split;
pub mod rayon_driver;
pub mod read_split;

use crate::snpcall::SnpCall;
use genome::alphabet::Base;

/// Flat encoding of SNP calls for rank-to-rank shipping: each call is
/// `CALL_STRIDE` f64 values.
const CALL_STRIDE: usize = 11;

/// A call wire whose length is not a multiple of [`CALL_STRIDE`] —
/// truncated or corrupted in transit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallWireError {
    /// Length of the rejected wire.
    pub len: usize,
}

impl std::fmt::Display for CallWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corrupt call wire: length {} is not a multiple of {CALL_STRIDE}",
            self.len
        )
    }
}

impl std::error::Error for CallWireError {}

/// Encode calls into a flat `Vec<f64>` wire form.
pub fn encode_calls(calls: &[SnpCall]) -> Vec<f64> {
    let mut out = Vec::with_capacity(calls.len() * CALL_STRIDE);
    for c in calls {
        out.push(c.pos as f64);
        out.push(c.reference.index() as f64);
        out.push(c.allele.index() as f64);
        out.push(c.second_allele.map_or(-1.0, |b| b.index() as f64));
        out.push(c.statistic);
        out.push(c.p_adjusted);
        out.extend_from_slice(&c.counts);
    }
    out
}

/// Decode the wire form produced by [`encode_calls`]. Rejects wires
/// whose length is not a whole number of calls rather than silently
/// dropping a tail or panicking inside a driver.
pub fn decode_calls(wire: &[f64]) -> Result<Vec<SnpCall>, CallWireError> {
    if !wire.len().is_multiple_of(CALL_STRIDE) {
        return Err(CallWireError { len: wire.len() });
    }
    Ok(wire
        .chunks_exact(CALL_STRIDE)
        .map(|c| {
            let mut counts = [0.0; 5];
            counts.copy_from_slice(&c[6..11]);
            SnpCall {
                pos: c[0] as usize,
                reference: Base::from_index(c[1] as usize),
                allele: Base::from_index(c[2] as usize),
                second_allele: (c[3] >= 0.0).then(|| Base::from_index(c[3] as usize)),
                statistic: c[4],
                p_adjusted: c[5],
                counts,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_wire_round_trip() {
        let calls = vec![
            SnpCall {
                pos: 1234,
                reference: Base::A,
                allele: Base::G,
                second_allele: None,
                statistic: 42.5,
                p_adjusted: 1e-9,
                counts: [0.5, 0.0, 11.0, 0.25, 0.0],
            },
            SnpCall {
                pos: 99,
                reference: Base::T,
                allele: Base::C,
                second_allele: Some(Base::T),
                statistic: 8.0,
                p_adjusted: 0.02,
                counts: [0.0, 6.0, 0.0, 5.5, 0.1],
            },
        ];
        let wire = encode_calls(&calls);
        assert_eq!(wire.len(), 2 * CALL_STRIDE);
        assert_eq!(decode_calls(&wire).unwrap(), calls);
    }

    #[test]
    fn empty_wire() {
        assert!(decode_calls(&encode_calls(&[])).unwrap().is_empty());
    }

    #[test]
    fn corrupt_wire_is_an_error() {
        let err = decode_calls(&[1.0, 2.0]).unwrap_err();
        assert_eq!(err, CallWireError { len: 2 });
        assert!(err.to_string().contains("length 2"));
    }
}
