//! Genome-split (spread-memory) MPI decomposition (paper Section VI
//! Step 1, second mode).
//!
//! "The genome is split into equal segments and distributed across the
//! participating machines ... In order to find the normalized posterior
//! probability score for each read at a given location, GNUMAP must find
//! all locations throughout the entire genome to which a given read
//! aligns. Communication between machines via message passing determines
//! \[these\] additional locations and calculates the final score."
//!
//! Concretely:
//!
//! 1. Rank `r` owns the contiguous shard `[s_r, e_r)` and indexes only its
//!    own slice (plus a margin of one window so boundary-crossing
//!    placements are still seen by their owner). Memory per rank shrinks
//!    by ~`1/ranks` — the entire point of this mode.
//! 2. Every rank scans **all** reads, scoring only placements whose window
//!    starts inside its shard. Each read's candidate summaries
//!    `(strand, placement, likelihood)` are then combined across ranks
//!    with an allreduce per read batch — this is the communication that
//!    makes the mode slower than read-split (Figure 4). Sorting the merged
//!    candidates into the serial engine's evaluation order makes the
//!    posterior weights (and, with the FIXED layout, the accumulator)
//!    bit-identical to a serial run.
//! 3. Evidence deposited into the margin beyond `e_r` is shipped to the
//!    next rank and folded in.
//! 4. Each rank calls SNPs on its own shard; calls are gathered at rank 0.
//!
//! FDR note: with `Cutoff::Fdr` each shard applies Benjamini–Hochberg over
//! its own positions (a per-shard approximation); use `Cutoff::PValue` when
//! bit-identical agreement with the serial pipeline is required.

use crate::accum::GenomeAccumulator;
use crate::config::GnumapConfig;
use crate::driver::{decode_calls, encode_calls, CallWireError};
use crate::mapping::MappingEngine;
use crate::observe::{Event, Observer, Stage, StageTimer};
use crate::report::RunReport;
use crate::snpcall::call_snps_with_offset;
use genome::read::SequencedRead;
use genome::region::Region;
use genome::seq::DnaSeq;
use mpisim::World;
use std::time::Instant;

/// Reads per normalisation round-trip. The paper's description implies the
/// cross-rank score combination happens per read; batching 16 reads per
/// allreduce keeps the simulation tractable while leaving the
/// communication latency visible — it is exactly this per-batch traffic
/// that makes the spread-memory mode trail the shared-memory mode in
/// Figure 4.
const BATCH: usize = 16;

/// Message tag for margin hand-off.
const MARGIN_TAG: u64 = 11;

/// Run the genome-split decomposition on `ranks` simulated MPI ranks.
pub fn run_genome_split<A: GenomeAccumulator>(
    reference: &DnaSeq,
    reads: &[SequencedRead],
    config: &GnumapConfig,
    ranks: usize,
) -> Result<RunReport, CallWireError> {
    run_genome_split_observed::<A>(reference, reads, config, ranks, &Observer::disabled())
}

/// [`run_genome_split`] with structured observability: one
/// [`Event::Batch`] per rank (every rank scans all reads; owned
/// candidates and deposited columns are counted per shard, and the exact
/// global mapped count is carried by rank 0's event), stage timings taken
/// on rank 0.
pub fn run_genome_split_observed<A: GenomeAccumulator>(
    reference: &DnaSeq,
    reads: &[SequencedRead],
    config: &GnumapConfig,
    ranks: usize,
    observer: &Observer,
) -> Result<RunReport, CallWireError> {
    assert!(ranks >= 1, "need at least one rank");
    observer.emit(|| Event::RunStart {
        driver: "genome-split".into(),
        accumulator: config.accumulator.name().into(),
    });
    let start = Instant::now();
    let world = World::new(ranks);
    let shards = Region::shards(reference.len(), ranks);
    let max_read_len = reads.iter().map(SequencedRead::len).max().unwrap_or(0);
    // A window can start pad bases before its placement and extend pad
    // beyond the read; one full window of margin covers every overhang.
    let margin = max_read_len + 2 * config.mapping.window_pad;

    let (mut results, world_report) = world.run_with_report(|rank| {
        let root = rank.id() == 0;
        let stage = |s: Stage| root.then(|| StageTimer::start(observer, s));
        let finish = |t: Option<StageTimer>| {
            if let Some(t) = t {
                t.finish(observer);
            }
        };
        let shard = shards[rank.id()];
        let slice_start = shard.start;
        let slice_end = (shard.end + margin).min(reference.len());
        let slice = reference.window(slice_start, slice_end);

        // Index only the local slice — the per-rank memory saving.
        let timer = stage(Stage::Index);
        let engine = MappingEngine::new(&slice, config.mapping);
        finish(timer);
        let mut acc = A::new(slice.len());
        let mut mapped_here = 0u64;
        let (mut candidates_here, mut columns_here) = (0u64, 0u64);
        let map_timer = stage(Stage::Map);
        // One scratch arena per rank, reused across every batch. Owned
        // alignments are only materialised for placements this shard keeps
        // (they must outlive the allreduce below), so out-of-shard
        // candidates never touch the heap.
        let mut scratch = crate::mapping::AlignScratch::new();

        for batch in reads.chunks(BATCH) {
            // Score each read locally; keep only placements owned by this
            // shard (placement start within [shard.start, shard.end)).
            // Each alignment is summarised for the wire as a
            // `(strand, global placement, likelihood)` triple.
            let mut owned: Vec<Vec<crate::mapping::RawAlignment>> = Vec::with_capacity(batch.len());
            let mut triples: Vec<Vec<(u64, u64, f64)>> = Vec::with_capacity(batch.len());
            for read in batch.iter() {
                engine.map_read_raw_with(read, &mut scratch);
                let raw: Vec<crate::mapping::RawAlignment> = scratch
                    .alignments()
                    .filter(|a| {
                        let global_placement = slice_start + a.placement_start;
                        shard.contains(global_placement)
                    })
                    .map(|a| crate::mapping::RawAlignment {
                        window_start: a.window_start,
                        placement_start: a.placement_start,
                        likelihood: a.score,
                        reverse: a.reverse,
                        columns: a.columns.to_vec(),
                    })
                    .collect();
                triples.push(
                    raw.iter()
                        .map(|a| {
                            (
                                a.reverse as u64,
                                (slice_start + a.placement_start) as u64,
                                a.likelihood,
                            )
                        })
                        .collect(),
                );
                owned.push(raw);
            }

            // Normalisation needs every shard's candidates — the per-batch
            // communication of this mode. Concatenating per rank and then
            // sorting strand-major/position-minor reconstructs the exact
            // candidate order the serial engine's `map_read` sees (forward
            // placements ascending, then reverse), so the grand total, the
            // min-weight filter and the kept-sum renormalisation below are
            // all evaluated in the serial operation order: the resulting
            // deposits are bit-identical to a serial run.
            let all_triples = rank.allreduce(triples, |mut a, b| {
                for (mine, theirs) in a.iter_mut().zip(b) {
                    mine.extend(theirs);
                }
                a
            });

            for (i, alignments) in owned.into_iter().enumerate() {
                let mut merged = all_triples[i].clone();
                merged.sort_by_key(|x| (x.0, x.1));
                let grand_total: f64 = merged.iter().map(|t| t.2).sum();
                if grand_total <= 0.0 {
                    continue;
                }
                // Mirror `MappingEngine::map_read`: posterior weights,
                // min-weight filter, renormalise over the kept set.
                let mut kept: Vec<(u64, u64, f64)> = merged
                    .into_iter()
                    .filter_map(|(rev, place, likelihood)| {
                        let weight = likelihood / grand_total;
                        (weight >= config.mapping.min_weight).then_some((rev, place, weight))
                    })
                    .collect();
                let kept_sum: f64 = kept.iter().map(|t| t.2).sum();
                if kept_sum > 0.0 {
                    for t in &mut kept {
                        t.2 /= kept_sum;
                    }
                }
                // Every rank derives the same kept set, so counting reads
                // on rank 0 alone gives the exact global mapped count (a
                // cross-shard read is still one read).
                if rank.id() == 0 && !kept.is_empty() {
                    mapped_here += 1;
                }
                for aln in alignments {
                    candidates_here += 1;
                    let key = (
                        aln.reverse as u64,
                        (slice_start + aln.placement_start) as u64,
                    );
                    if let Ok(idx) = kept.binary_search_by(|t| (t.0, t.1).cmp(&key)) {
                        columns_here += aln.columns.len() as u64;
                        crate::pipeline::deposit(
                            &mut acc,
                            aln.window_start,
                            kept[idx].2,
                            &aln.columns,
                        );
                    }
                }
            }
        }
        finish(map_timer);
        observer.emit(|| Event::Batch {
            worker: rank.id() as u64,
            reads: reads.len() as u64,
            mapped: mapped_here,
            candidates: candidates_here,
            deposited_columns: columns_here,
        });

        // Hand the margin's evidence to the rank that owns it.
        let reduce_timer = stage(Stage::Reduce);
        if rank.id() + 1 < rank.size() {
            let own_len = shard.len();
            let mut margin_wire: Vec<f64> = Vec::new();
            for idx in own_len..acc.len() {
                let c = acc.counts(idx);
                margin_wire.extend_from_slice(&c);
            }
            rank.send(rank.id() + 1, MARGIN_TAG, margin_wire);
        }
        if rank.id() > 0 {
            let margin_wire: Vec<f64> = rank.recv(rank.id() - 1, MARGIN_TAG);
            for (offset, chunk) in margin_wire.chunks_exact(5).enumerate() {
                let mut delta = [0.0; 5];
                delta.copy_from_slice(chunk);
                if delta.iter().sum::<f64>() > 0.0 && offset < acc.len() {
                    acc.add(offset, &delta);
                }
            }
        }

        // Call SNPs over the owned region only (margin belongs to the
        // neighbour) and gather everything at rank 0.
        // A shard-length view: reuse the accumulator but stop the scan
        // at the shard boundary by zero-extending a shard-only copy.
        let mut shard_acc = A::new(shard.len());
        for idx in 0..shard.len() {
            let c = acc.counts(idx);
            if c.iter().sum::<f64>() > 0.0 {
                shard_acc.add(idx, &c);
            }
        }
        finish(reduce_timer);
        let call_timer = stage(Stage::Call);
        let calls = call_snps_with_offset(&shard_acc, reference, slice_start, &config.calling);
        finish(call_timer);
        // Shards cover disjoint global ranges exactly once, so XORing the
        // per-shard digests (each keyed by global position) reproduces the
        // digest a serial full-genome accumulator would report.
        let shard_digest = shard_acc.digest_with_offset(slice_start);
        let call_wires = rank.gather(0, encode_calls(&calls));
        let mapped_counts = rank.gather(0, mapped_here);
        let digest = rank.reduce(0, shard_digest, |a, b| a ^ b);
        let acc_bytes = rank.reduce(0, acc.heap_bytes() as u64, |a, b| a + b);

        if rank.id() == 0 {
            let decode_all = || -> Result<Vec<crate::snpcall::SnpCall>, CallWireError> {
                let mut all_calls = Vec::new();
                for wire in call_wires.expect("root gathers") {
                    all_calls.extend(decode_calls(&wire)?);
                }
                all_calls.sort_by_key(|c| c.pos);
                Ok(all_calls)
            };
            let mapped_total: u64 = mapped_counts.expect("root gathers").iter().sum();
            Some(decode_all().map(|all_calls| {
                (
                    encode_calls(&all_calls),
                    mapped_total,
                    acc_bytes.expect("root reduces") as usize,
                    digest.expect("root reduces"),
                )
            }))
        } else {
            None
        }
    });

    let (call_wire, mapped_total, acc_bytes, digest) =
        results.swap_remove(0).expect("rank 0 returns the result")?;
    let calls = decode_calls(&call_wire)?;
    let elapsed_secs = start.elapsed().as_secs_f64();
    observer.emit(|| Event::RunEnd {
        reads_processed: reads.len() as u64,
        reads_mapped: mapped_total,
        calls: calls.len() as u64,
        wall_secs: elapsed_secs,
    });
    Ok(RunReport {
        calls,
        reads_processed: reads.len(),
        reads_mapped: mapped_total as usize,
        elapsed_secs,
        accumulator_bytes: acc_bytes,
        traffic: Some(world_report.traffic),
        rank_cpu_secs: world_report.rank_cpu_secs,
        stream: None,
        accumulator_digest: Some(digest),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::NormAccumulator;
    use crate::pipeline::run_serial_with;

    fn fixture() -> (
        DnaSeq,
        Vec<(usize, genome::alphabet::Base)>,
        Vec<SequencedRead>,
    ) {
        crate::pipeline::tests::fixture(4_000, 5, 12.0, 555)
    }

    #[test]
    fn genome_split_matches_serial_calls() {
        let (reference, _, reads) = fixture();
        let cfg = GnumapConfig::default();
        let serial = run_serial_with::<NormAccumulator>(&reference, &reads, &cfg);
        for ranks in [1usize, 2, 4] {
            let parallel =
                run_genome_split::<NormAccumulator>(&reference, &reads, &cfg, ranks).unwrap();
            let serial_pos: Vec<(usize, genome::alphabet::Base)> =
                serial.calls.iter().map(|c| (c.pos, c.allele)).collect();
            let parallel_pos: Vec<(usize, genome::alphabet::Base)> =
                parallel.calls.iter().map(|c| (c.pos, c.allele)).collect();
            assert_eq!(
                parallel_pos, serial_pos,
                "ranks={ranks}: genome-split must agree with serial"
            );
        }
    }

    #[test]
    fn per_rank_memory_shrinks_with_ranks() {
        let (reference, _, reads) = fixture();
        let cfg = GnumapConfig::default();
        let one = run_genome_split::<NormAccumulator>(&reference, &reads, &cfg, 1).unwrap();
        let four = run_genome_split::<NormAccumulator>(&reference, &reads, &cfg, 4).unwrap();
        // Total accumulator bytes are similar (sum over ranks), but each of
        // the 4 ranks holds ~1/4 + margin.
        let per_rank_four = four.accumulator_bytes / 4;
        assert!(
            per_rank_four < one.accumulator_bytes / 2,
            "per-rank accumulator should shrink: {} vs {}",
            per_rank_four,
            one.accumulator_bytes
        );
    }

    #[test]
    fn genome_split_communicates_more_than_read_split() {
        // The Figure 4 mechanism: per-batch allreduces beat read-split's
        // single end-of-run reduction in message count.
        let (reference, _, reads) = fixture();
        let cfg = GnumapConfig::default();
        let gs = run_genome_split::<NormAccumulator>(&reference, &reads, &cfg, 4).unwrap();
        let rs = crate::driver::read_split::run_read_split::<NormAccumulator>(
            &reference, &reads, &cfg, 4,
        )
        .unwrap();
        let gs_msgs = gs.traffic.unwrap().messages;
        let rs_msgs = rs.traffic.unwrap().messages;
        assert!(
            gs_msgs > rs_msgs,
            "genome-split should send more messages: {gs_msgs} vs {rs_msgs}"
        );
    }

    #[test]
    fn per_shard_fdr_still_recovers_strong_snps() {
        // Under Cutoff::Fdr each shard runs Benjamini–Hochberg over its own
        // positions (documented approximation). Strongly supported planted
        // SNPs must survive regardless of how the shards cut the genome.
        use crate::snpcall::{Cutoff, SnpCallConfig};
        let (reference, truth, reads) = crate::pipeline::tests::fixture(4_000, 5, 14.0, 808);
        let cfg = GnumapConfig {
            calling: SnpCallConfig {
                cutoff: Cutoff::Fdr(0.05),
                ..SnpCallConfig::default()
            },
            ..GnumapConfig::default()
        };
        let report = run_genome_split::<NormAccumulator>(&reference, &reads, &cfg, 5).unwrap();
        let acc = crate::report::score_snp_calls(&report.calls, &truth);
        assert!(acc.true_positives >= 4, "{acc:?}");
        assert!(acc.false_positives <= 1, "{acc:?}");
    }

    #[test]
    fn boundary_snps_are_not_lost() {
        // Place the shard boundary near a planted SNP by using many ranks
        // on a small genome; every planted SNP must still be recovered.
        let (reference, truth, reads) = crate::pipeline::tests::fixture(3_000, 6, 14.0, 999);
        let report =
            run_genome_split::<NormAccumulator>(&reference, &reads, &GnumapConfig::default(), 6)
                .unwrap();
        let acc = crate::report::score_snp_calls(&report.calls, &truth);
        assert!(
            acc.true_positives >= 5,
            "boundary handling lost SNPs: {acc:?}"
        );
    }
}
