//! Read-split MPI decomposition (paper Section VI Step 1, first mode).
//!
//! "If the genome is small enough to fit on a single computer, each machine
//! will process the entire genome, then map a different portion of the
//! reads. At the end of the run, each of the machines will communicate the
//! state of their genome and SNPs will be called accordingly."
//!
//! Every rank builds the full index (duplicated work, like the real
//! system), maps its strided share of the reads into a full-genome
//! accumulator, and rank 0 folds all accumulators in rank order before
//! calling SNPs once. Communication is one genome-sized accumulator per
//! rank — large but happening exactly once, which is why this mode scales
//! almost linearly in Figure 4.

use crate::accum::GenomeAccumulator;
use crate::config::GnumapConfig;
use crate::driver::{decode_calls, encode_calls, CallWireError};
use crate::mapping::MappingEngine;
use crate::observe::{Event, Observer, Stage, StageTimer};
use crate::report::RunReport;
use crate::snpcall::call_snps;
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use mpisim::World;
use std::time::Instant;

/// Map one rank's strided read share into `acc`, counting candidates and
/// deposited columns, and emit one [`Event::Batch`] for the rank.
fn map_rank_share<A: GenomeAccumulator>(
    engine: &MappingEngine<'_>,
    reads: &[SequencedRead],
    acc: &mut A,
    rank_id: usize,
    rank_count: usize,
    observer: &Observer,
) -> usize {
    let mut mapped = 0u64;
    let (mut share, mut candidates, mut columns) = (0u64, 0u64, 0u64);
    // One scratch arena per rank, reused across its whole read share.
    let mut scratch = crate::mapping::AlignScratch::new();
    for read in reads.iter().skip(rank_id).step_by(rank_count) {
        share += 1;
        engine.map_read_with(read, &mut scratch);
        if !scratch.is_empty() {
            mapped += 1;
        }
        for aln in scratch.alignments() {
            candidates += 1;
            columns += aln.columns.len() as u64;
            crate::pipeline::deposit(acc, aln.window_start, aln.score, aln.columns);
        }
    }
    observer.emit(|| Event::Batch {
        worker: rank_id as u64,
        reads: share,
        mapped,
        candidates,
        deposited_columns: columns,
    });
    mapped as usize
}

/// Run the read-split decomposition on `ranks` simulated MPI ranks.
pub fn run_read_split<A: GenomeAccumulator>(
    reference: &DnaSeq,
    reads: &[SequencedRead],
    config: &GnumapConfig,
    ranks: usize,
) -> Result<RunReport, CallWireError> {
    run_read_split_observed::<A>(reference, reads, config, ranks, &Observer::disabled())
}

/// [`run_read_split`] with structured observability: one
/// [`Event::Batch`] per rank, with stage timings taken on rank 0 (every
/// rank does the same index/map work, so rank 0 is representative).
pub fn run_read_split_observed<A: GenomeAccumulator>(
    reference: &DnaSeq,
    reads: &[SequencedRead],
    config: &GnumapConfig,
    ranks: usize,
    observer: &Observer,
) -> Result<RunReport, CallWireError> {
    assert!(ranks >= 1, "need at least one rank");
    observer.emit(|| Event::RunStart {
        driver: "read-split".into(),
        accumulator: config.accumulator.name().into(),
    });
    let start = Instant::now();
    let world = World::new(ranks);

    let (mut results, world_report) = world.run_with_report(|rank| {
        let root = rank.id() == 0;
        let stage = |s: Stage| root.then(|| StageTimer::start(observer, s));
        let finish = |t: Option<StageTimer>| {
            if let Some(t) = t {
                t.finish(observer);
            }
        };
        // Every rank indexes the whole genome (the duplicated preprocessing
        // of the shared-genome mode).
        let timer = stage(Stage::Index);
        let engine = MappingEngine::new(reference, config.mapping);
        finish(timer);
        let mut acc = A::new(reference.len());

        // Strided read partition: rank r maps reads r, r+n, r+2n, ...
        let timer = stage(Stage::Map);
        let mapped = map_rank_share(&engine, reads, &mut acc, rank.id(), rank.size(), observer);
        finish(timer);
        // "Communicate the state of their genome": gather accumulator
        // wires at rank 0, which folds them in rank order.
        let timer = stage(Stage::Reduce);
        let wires = rank.gather(0, acc.to_wire());
        let mapped_counts = rank.gather(0, mapped as u64);
        if rank.id() == 0 {
            let mut total_acc = A::new(reference.len());
            for wire in wires.expect("root gathers") {
                total_acc.merge_wire(&wire);
            }
            finish(timer);
            let timer = stage(Stage::Call);
            let calls = call_snps(&total_acc, reference, &config.calling);
            finish(timer);
            let mapped_total: u64 = mapped_counts.expect("root gathers").iter().sum();
            Some((
                encode_calls(&calls),
                mapped_total,
                total_acc.heap_bytes(),
                total_acc.digest(),
            ))
        } else {
            finish(timer);
            None
        }
    });

    let (call_wire, mapped_total, acc_bytes, digest) =
        results.swap_remove(0).expect("rank 0 returns the result");
    let calls = decode_calls(&call_wire)?;
    let elapsed_secs = start.elapsed().as_secs_f64();
    observer.emit(|| Event::RunEnd {
        reads_processed: reads.len() as u64,
        reads_mapped: mapped_total,
        calls: calls.len() as u64,
        wall_secs: elapsed_secs,
    });
    Ok(RunReport {
        calls,
        reads_processed: reads.len(),
        reads_mapped: mapped_total as usize,
        elapsed_secs,
        accumulator_bytes: acc_bytes,
        traffic: Some(world_report.traffic),
        rank_cpu_secs: world_report.rank_cpu_secs,
        stream: None,
        accumulator_digest: Some(digest),
    })
}

/// Read-split with a **ring allreduce** for the accumulator reduction
/// (NORM layout only — the ring needs a flat elementwise-summable wire).
///
/// The plain read-split funnels every rank's genome-length accumulator
/// through rank 0, so the root receives `(ranks−1) × 20 B/base`; the ring
/// moves `≈ 2 × 20 B/base` through *every* rank regardless of rank count —
/// the standard bandwidth-optimal alternative, included as an ablation of
/// the reduction strategy.
pub fn run_read_split_ring(
    reference: &DnaSeq,
    reads: &[SequencedRead],
    config: &GnumapConfig,
    ranks: usize,
) -> Result<RunReport, CallWireError> {
    run_read_split_ring_observed(reference, reads, config, ranks, &Observer::disabled())
}

/// [`run_read_split_ring`] with structured observability (same event
/// shape as [`run_read_split_observed`]).
pub fn run_read_split_ring_observed(
    reference: &DnaSeq,
    reads: &[SequencedRead],
    config: &GnumapConfig,
    ranks: usize,
    observer: &Observer,
) -> Result<RunReport, CallWireError> {
    use crate::accum::NormAccumulator;
    assert!(ranks >= 1, "need at least one rank");
    observer.emit(|| Event::RunStart {
        driver: "read-split-ring".into(),
        accumulator: crate::accum::AccumulatorMode::Norm.name().into(),
    });
    let start = Instant::now();
    let world = World::new(ranks);

    let (mut results, world_report) = world.run_with_report(|rank| {
        let root = rank.id() == 0;
        let stage = |s: Stage| root.then(|| StageTimer::start(observer, s));
        let finish = |t: Option<StageTimer>| {
            if let Some(t) = t {
                t.finish(observer);
            }
        };
        let timer = stage(Stage::Index);
        let engine = MappingEngine::new(reference, config.mapping);
        finish(timer);
        let mut acc = NormAccumulator::new(reference.len());
        let timer = stage(Stage::Map);
        let mapped = map_rank_share(&engine, reads, &mut acc, rank.id(), rank.size(), observer);
        finish(timer);
        // Every rank ends up with the fully reduced accumulator.
        let timer = stage(Stage::Reduce);
        let reduced = rank.ring_allreduce(acc.to_wire(), |a, b| a + b);
        let mapped_total = rank.allreduce(mapped as u64, |a, b| a + b);
        finish(timer);
        if rank.id() == 0 {
            let mut total_acc = NormAccumulator::new(reference.len());
            total_acc.merge_wire(&reduced);
            let timer = stage(Stage::Call);
            let calls = call_snps(&total_acc, reference, &config.calling);
            finish(timer);
            Some((
                encode_calls(&calls),
                mapped_total,
                total_acc.heap_bytes(),
                total_acc.digest(),
            ))
        } else {
            None
        }
    });

    let (call_wire, mapped_total, acc_bytes, digest) =
        results.swap_remove(0).expect("rank 0 returns the result");
    let calls = decode_calls(&call_wire)?;
    let elapsed_secs = start.elapsed().as_secs_f64();
    observer.emit(|| Event::RunEnd {
        reads_processed: reads.len() as u64,
        reads_mapped: mapped_total,
        calls: calls.len() as u64,
        wall_secs: elapsed_secs,
    });
    Ok(RunReport {
        calls,
        reads_processed: reads.len(),
        reads_mapped: mapped_total as usize,
        elapsed_secs,
        accumulator_bytes: acc_bytes,
        traffic: Some(world_report.traffic),
        rank_cpu_secs: world_report.rank_cpu_secs,
        stream: None,
        accumulator_digest: Some(digest),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::{CharDiscAccumulator, NormAccumulator};
    use crate::pipeline::run_serial_with;

    fn fixture() -> (
        DnaSeq,
        Vec<(usize, genome::alphabet::Base)>,
        Vec<SequencedRead>,
    ) {
        crate::pipeline::tests::fixture(4_000, 5, 12.0, 321)
    }

    #[test]
    fn read_split_matches_serial_for_norm() {
        let (reference, _, reads) = fixture();
        let cfg = GnumapConfig::default();
        let serial = run_serial_with::<NormAccumulator>(&reference, &reads, &cfg);
        for ranks in [1usize, 2, 3, 5] {
            let parallel =
                run_read_split::<NormAccumulator>(&reference, &reads, &cfg, ranks).unwrap();
            assert_eq!(
                parallel.calls.len(),
                serial.calls.len(),
                "ranks={ranks}: call count must match serial"
            );
            for (p, s) in parallel.calls.iter().zip(&serial.calls) {
                assert_eq!(p.pos, s.pos);
                assert_eq!(p.allele, s.allele);
                // f32 accumulation order differs; statistics agree closely.
                assert!((p.statistic - s.statistic).abs() < 1e-3);
            }
            assert_eq!(parallel.reads_mapped, serial.reads_mapped);
        }
    }

    #[test]
    fn traffic_is_reported_and_scales_with_ranks() {
        let (reference, _, reads) = fixture();
        let cfg = GnumapConfig::default();
        let two = run_read_split::<NormAccumulator>(&reference, &reads, &cfg, 2).unwrap();
        let four = run_read_split::<NormAccumulator>(&reference, &reads, &cfg, 4).unwrap();
        let t2 = two.traffic.unwrap();
        let t4 = four.traffic.unwrap();
        assert!(t4.payload_bytes > t2.payload_bytes, "{t2} vs {t4}");
        // Each non-root rank ships one genome-sized accumulator (~20 B/base).
        assert!(t2.payload_bytes as usize >= reference.len() * 20);
    }

    #[test]
    fn ring_reduction_matches_star_reduction() {
        let (reference, _, reads) = fixture();
        let cfg = GnumapConfig::default();
        for ranks in [1usize, 2, 4] {
            let star = run_read_split::<NormAccumulator>(&reference, &reads, &cfg, ranks).unwrap();
            let ring = run_read_split_ring(&reference, &reads, &cfg, ranks).unwrap();
            let star_keys: Vec<_> = star.calls.iter().map(|c| (c.pos, c.allele)).collect();
            let ring_keys: Vec<_> = ring.calls.iter().map(|c| (c.pos, c.allele)).collect();
            assert_eq!(ring_keys, star_keys, "ranks={ranks}");
            assert_eq!(ring.reads_mapped, star.reads_mapped);
        }
    }

    #[test]
    fn chardisc_read_split_still_finds_snps() {
        let (reference, truth, reads) = fixture();
        let report =
            run_read_split::<CharDiscAccumulator>(&reference, &reads, &GnumapConfig::default(), 3)
                .unwrap();
        let acc = crate::report::score_snp_calls(&report.calls, &truth);
        assert!(acc.true_positives >= 3, "{acc:?}");
    }
}
