//! Shared-memory parallel driver (rayon).
//!
//! Reads are split into one chunk per worker; each worker maps its chunk
//! into a private accumulator against the shared genome + index (built
//! once — this is the "all the genome in shared memory for every process"
//! mode of paper Figure 4, minus the per-process index duplication that
//! real processes would pay). Private accumulators are then folded in
//! chunk order, so the result is deterministic regardless of scheduling.

use crate::accum::GenomeAccumulator;
use crate::config::GnumapConfig;
use crate::mapping::{AlignScratch, MappingEngine};
use crate::observe::{Event, Observer, Stage, StageTimer};
use crate::pipeline::accumulate_reads_observed;
use crate::report::RunReport;
use crate::snpcall::call_snps;
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use rayon::prelude::*;
use std::time::Instant;

/// Run the pipeline on `threads` rayon workers with accumulator type `A`.
pub fn run_rayon<A: GenomeAccumulator>(
    reference: &DnaSeq,
    reads: &[SequencedRead],
    config: &GnumapConfig,
    threads: usize,
) -> RunReport {
    run_rayon_observed::<A>(reference, reads, config, threads, &Observer::disabled())
}

/// [`run_rayon`] with structured observability: stage timings plus one
/// [`Event::Batch`] stream per worker chunk.
pub fn run_rayon_observed<A: GenomeAccumulator>(
    reference: &DnaSeq,
    reads: &[SequencedRead],
    config: &GnumapConfig,
    threads: usize,
    observer: &Observer,
) -> RunReport {
    assert!(threads >= 1, "need at least one thread");
    observer.emit(|| Event::RunStart {
        driver: "rayon".into(),
        accumulator: config.accumulator.name().into(),
    });
    let start = Instant::now();
    let timer = StageTimer::start(observer, Stage::Index);
    let engine = MappingEngine::new(reference, config.mapping);
    timer.finish(observer);

    // One contiguous chunk per worker keeps the reduction order defined.
    let chunk_size = reads.len().div_ceil(threads).max(1);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");

    let timer = StageTimer::start(observer, Stage::Map);
    let partials: Vec<(A, usize)> = pool.install(|| {
        reads
            .par_chunks(chunk_size)
            .enumerate()
            .map(|(worker, chunk)| {
                let mut acc = A::new(reference.len());
                // Per-chunk scratch: the Pair-HMM planes and column arena
                // are allocated once here and reused for every read in the
                // worker's chunk.
                let mut scratch = AlignScratch::new();
                let mapped = accumulate_reads_observed(
                    &engine,
                    chunk,
                    &mut acc,
                    &mut scratch,
                    observer,
                    worker,
                );
                (acc, mapped)
            })
            .collect()
    });
    timer.finish(observer);

    // Deterministic fold in chunk order.
    let timer = StageTimer::start(observer, Stage::Reduce);
    let mut iter = partials.into_iter();
    let (mut acc, mut mapped) = iter.next().unwrap_or_else(|| (A::new(reference.len()), 0));
    for (partial, m) in iter {
        acc.merge_from(&partial);
        mapped += m;
    }
    timer.finish(observer);

    let timer = StageTimer::start(observer, Stage::Call);
    let calls = call_snps(&acc, reference, &config.calling);
    timer.finish(observer);
    observer.emit(|| Event::RunEnd {
        reads_processed: reads.len() as u64,
        reads_mapped: mapped as u64,
        calls: calls.len() as u64,
        wall_secs: start.elapsed().as_secs_f64(),
    });
    RunReport {
        calls,
        reads_processed: reads.len(),
        reads_mapped: mapped,
        elapsed_secs: start.elapsed().as_secs_f64(),
        accumulator_bytes: acc.heap_bytes(),
        traffic: None,
        rank_cpu_secs: Vec::new(),
        stream: None,
        accumulator_digest: Some(acc.digest()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::NormAccumulator;
    use crate::pipeline::run_serial_with;

    fn fixture() -> (
        DnaSeq,
        Vec<(usize, genome::alphabet::Base)>,
        Vec<SequencedRead>,
    ) {
        crate::pipeline::tests::fixture(4_000, 5, 12.0, 77)
    }

    #[test]
    fn rayon_matches_serial_for_norm() {
        let (reference, _, reads) = fixture();
        let cfg = GnumapConfig::default();
        let serial = run_serial_with::<NormAccumulator>(&reference, &reads, &cfg);
        for threads in [1usize, 2, 4] {
            let parallel = run_rayon::<NormAccumulator>(&reference, &reads, &cfg, threads);
            assert_eq!(
                parallel.calls.len(),
                serial.calls.len(),
                "threads={threads}: call count must match serial"
            );
            for (p, s) in parallel.calls.iter().zip(&serial.calls) {
                assert_eq!(p.pos, s.pos, "threads={threads}");
                assert_eq!(p.allele, s.allele);
                // f32 accumulation order differs between chunkings; the
                // statistics agree to float tolerance.
                assert!((p.statistic - s.statistic).abs() < 1e-3);
            }
            assert_eq!(parallel.reads_mapped, serial.reads_mapped);
        }
    }

    #[test]
    fn rayon_finds_the_planted_snps() {
        let (reference, truth, reads) = fixture();
        let report = run_rayon::<NormAccumulator>(&reference, &reads, &GnumapConfig::default(), 3);
        let acc = crate::report::score_snp_calls(&report.calls, &truth);
        assert!(acc.true_positives >= 4, "{acc:?}");
    }

    #[test]
    fn empty_reads_are_fine() {
        let (reference, _, _) = fixture();
        let report = run_rayon::<NormAccumulator>(&reference, &[], &GnumapConfig::default(), 2);
        assert!(report.calls.is_empty());
        assert_eq!(report.reads_processed, 0);
    }
}
