//! Run reports and accuracy scoring (the quantities in paper Tables I/III),
//! plus the cluster communication model used for simulated scaling.

use crate::snpcall::SnpCall;
use genome::alphabet::Base;
use mpisim::TrafficStats;

/// A simple linear communication-cost model (`latency · messages +
/// bytes / bandwidth`), standing in for the cluster interconnect the
/// paper ran on. Defaults approximate gigabit Ethernet with a commodity
/// MPI stack — the class of hardware behind the paper's Figure 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommModel {
    /// Seconds of latency per message.
    pub latency_secs: f64,
    /// Payload bandwidth in bytes/second.
    pub bytes_per_sec: f64,
}

impl Default for CommModel {
    fn default() -> Self {
        CommModel {
            latency_secs: 50e-6,  // ~50 µs per MPI message
            bytes_per_sec: 125e6, // ~1 Gbit/s payload bandwidth
        }
    }
}

impl CommModel {
    /// Modelled seconds to move this traffic.
    pub fn seconds(&self, traffic: &TrafficStats) -> f64 {
        traffic.messages as f64 * self.latency_secs
            + traffic.payload_bytes as f64 / self.bytes_per_sec
    }
}

/// Execution statistics from the streaming driver: how full the batch
/// pipeline ran, how deep its queues got, and where time was lost to
/// waiting rather than work.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamStats {
    /// Worker threads the scheduler ran.
    pub workers: usize,
    /// Configured reads per micro-batch.
    pub batch_size: usize,
    /// Micro-batches dispatched over the whole run.
    pub batches_dispatched: usize,
    /// Mean fill fraction of dispatched batches (1.0 = every batch full;
    /// the tail batch of each window drags this below 1).
    pub mean_batch_occupancy: f64,
    /// Deepest the source→scheduler channel ever got, in chunks.
    pub max_queue_depth: usize,
    /// Mean source→scheduler channel depth sampled at each chunk arrival.
    pub mean_queue_depth: f64,
    /// Seconds the source thread spent blocked on a full channel
    /// (backpressure engaged).
    pub source_stall_secs: f64,
    /// Total seconds workers spent idle between batches, summed over
    /// workers.
    pub worker_stall_secs: f64,
    /// Checkpoints written during the run.
    pub checkpoints_written: usize,
    /// Whether this run started from a checkpoint instead of the stream
    /// head.
    pub resumed_from_checkpoint: bool,
}

impl StreamStats {
    /// Reads mapped per second of summed worker CPU time: the honest
    /// throughput figure on a timeshared host, analogous to
    /// [`RunReport::simulated_seqs_per_sec`] for the MPI drivers.
    pub fn reads_per_cpu_sec(reads: usize, rank_cpu_secs: &[f64]) -> f64 {
        let cpu: f64 = rank_cpu_secs.iter().sum();
        if cpu <= 0.0 {
            return 0.0;
        }
        reads as f64 / cpu
    }
}

/// What one pipeline run produced and cost.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// SNPs called.
    pub calls: Vec<SnpCall>,
    /// Reads processed (all reads, mapped or not).
    pub reads_processed: usize,
    /// Reads that produced at least one alignment.
    pub reads_mapped: usize,
    /// Wall-clock seconds for mapping + accumulation + calling.
    pub elapsed_secs: f64,
    /// Accumulator heap bytes (the Table II/III "MEM" column contribution).
    pub accumulator_bytes: usize,
    /// Communication statistics when a message-passing driver ran.
    pub traffic: Option<TrafficStats>,
    /// CPU seconds each simulated rank consumed (message-passing drivers
    /// only), in rank order. The streaming driver reports per-worker CPU
    /// seconds here.
    pub rank_cpu_secs: Vec<f64>,
    /// Pipeline statistics when the streaming driver ran.
    pub stream: Option<StreamStats>,
    /// Order-independent fingerprint of the final accumulator state (see
    /// [`crate::accum::GenomeAccumulator::digest`]); `None` when a driver
    /// cannot expose one. Two runs with equal digests ended with
    /// bit-identical decoded accumulators — the conformance harness's
    /// cross-driver equality check.
    pub accumulator_digest: Option<u64>,
}

impl RunReport {
    /// Sequences processed per second by wall clock — the y-axis of paper
    /// Figures 4/5 when each rank has its own processor.
    pub fn seqs_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            return 0.0;
        }
        self.reads_processed as f64 / self.elapsed_secs
    }

    /// Idealised parallel seconds: the busiest rank's CPU time plus the
    /// modelled communication cost. This is what the run *would* take
    /// with one processor per rank — the honest scaling number when the
    /// simulated ranks timeshare fewer physical cores.
    pub fn simulated_parallel_secs(&self, model: &CommModel) -> Option<f64> {
        if self.rank_cpu_secs.is_empty() {
            return None;
        }
        let critical = self.rank_cpu_secs.iter().copied().fold(0.0, f64::max);
        let comm = self.traffic.as_ref().map_or(0.0, |t| model.seconds(t));
        Some(critical + comm)
    }

    /// Sequences/second under [`RunReport::simulated_parallel_secs`];
    /// falls back to the wall-clock rate for non-MPI drivers.
    pub fn simulated_seqs_per_sec(&self, model: &CommModel) -> f64 {
        match self.simulated_parallel_secs(model) {
            Some(secs) if secs > 0.0 => self.reads_processed as f64 / secs,
            _ => self.seqs_per_sec(),
        }
    }
}

/// TP/FP/FN accuracy against a planted truth set (paper Table I columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccuracyReport {
    /// Called SNPs present in the truth set (position + allele match).
    pub true_positives: usize,
    /// Called SNPs absent from the truth set.
    pub false_positives: usize,
    /// Truth SNPs that were not called.
    pub false_negatives: usize,
}

impl AccuracyReport {
    /// `TP / (TP + FP)` — Table I's precision column.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// `TP / (TP + FN)` — sensitivity / recall.
    pub fn sensitivity(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }
}

/// Score called SNPs against a truth set of `(position, alternate allele)`
/// pairs. A call is a true positive when a truth entry exists at its
/// position **and** the truth allele is among the called alleles.
pub fn score_snp_calls(calls: &[SnpCall], truth: &[(usize, Base)]) -> AccuracyReport {
    use std::collections::HashMap;
    let truth_map: HashMap<usize, Base> = truth.iter().copied().collect();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut hit_positions = std::collections::HashSet::new();
    for call in calls {
        match truth_map.get(&call.pos) {
            Some(&alt) if call.carries(alt) => {
                tp += 1;
                hit_positions.insert(call.pos);
            }
            _ => fp += 1,
        }
    }
    let fn_ = truth
        .iter()
        .filter(|(pos, _)| !hit_positions.contains(pos))
        .count();
    AccuracyReport {
        true_positives: tp,
        false_positives: fp,
        false_negatives: fn_,
    }
}

/// Score positions only (allele-agnostic), for baseline callers that
/// report different call types. Generic over any `(position)` iterator.
pub fn score_positions(
    called: impl IntoIterator<Item = usize>,
    truth_positions: &std::collections::HashSet<usize>,
) -> AccuracyReport {
    let called: std::collections::HashSet<usize> = called.into_iter().collect();
    let tp = called.intersection(truth_positions).count();
    AccuracyReport {
        true_positives: tp,
        false_positives: called.len() - tp,
        false_negatives: truth_positions.len() - tp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(pos: usize, allele: Base) -> SnpCall {
        SnpCall {
            pos,
            reference: Base::A,
            allele,
            second_allele: None,
            statistic: 50.0,
            p_adjusted: 1e-9,
            counts: [0.0; 5],
        }
    }

    #[test]
    fn scoring_matches_position_and_allele() {
        let truth = vec![(5, Base::G), (9, Base::C), (20, Base::T)];
        let calls = vec![
            call(5, Base::G),  // TP
            call(9, Base::T),  // wrong allele → FP
            call(13, Base::G), // no truth → FP
        ];
        let acc = score_snp_calls(&calls, &truth);
        assert_eq!(acc.true_positives, 1);
        assert_eq!(acc.false_positives, 2);
        assert_eq!(acc.false_negatives, 2);
        assert!((acc.precision() - 1.0 / 3.0).abs() < 1e-12);
        assert!((acc.sensitivity() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn het_second_allele_counts() {
        let mut c = call(5, Base::A);
        c.second_allele = Some(Base::G);
        let acc = score_snp_calls(&[c], &[(5, Base::G)]);
        assert_eq!(acc.true_positives, 1);
    }

    #[test]
    fn empty_cases() {
        let acc = score_snp_calls(&[], &[]);
        assert_eq!(acc.precision(), 0.0);
        assert_eq!(acc.sensitivity(), 0.0);
        let acc = score_snp_calls(&[], &[(1, Base::C)]);
        assert_eq!(acc.false_negatives, 1);
    }

    #[test]
    fn position_only_scoring() {
        let truth: std::collections::HashSet<usize> = [3, 7].into();
        let acc = score_positions([3usize, 9], &truth);
        assert_eq!(acc.true_positives, 1);
        assert_eq!(acc.false_positives, 1);
        assert_eq!(acc.false_negatives, 1);
    }

    #[test]
    fn seqs_per_sec() {
        let r = RunReport {
            calls: vec![],
            reads_processed: 500,
            reads_mapped: 480,
            elapsed_secs: 2.0,
            accumulator_bytes: 0,
            traffic: None,
            rank_cpu_secs: Vec::new(),
            stream: None,
            accumulator_digest: None,
        };
        assert_eq!(r.seqs_per_sec(), 250.0);
    }

    #[test]
    fn reads_per_cpu_sec_sums_workers() {
        assert_eq!(StreamStats::reads_per_cpu_sec(1_000, &[1.0, 1.0]), 500.0);
        assert_eq!(StreamStats::reads_per_cpu_sec(1_000, &[]), 0.0);
        assert_eq!(StreamStats::reads_per_cpu_sec(1_000, &[0.0]), 0.0);
    }
}
