//! Structured run observability: a lightweight event layer every driver
//! threads through mapping, PHMM scoring, accumulation, and calling.
//!
//! The design goal is *zero cost when disabled*: an [`Observer`] is a
//! single `Option<Arc<dyn EventSink>>`, [`Observer::emit`] takes a closure
//! so no event is ever constructed (and nothing allocates) unless a sink
//! is attached, and the hot read loop keeps its plain un-instrumented
//! path when the observer is disabled. With a sink attached, drivers emit
//! a small vocabulary of [`Event`]s — per-stage wall/CPU timings,
//! reads-per-batch, candidate counts, deposit volumes — which the CLI can
//! spool to a JSON-lines trace file (`--trace-json`), the server folds
//! into its `Stats` frame, and the streaming engine stamps onto
//! checkpoint records.
//!
//! Events serialize to flat one-line JSON objects via [`Event::to_json_line`]
//! and parse back via [`Event::parse_json_line`]; the codec is hand-rolled
//! (std-only) and round-trips every event bit-exactly (f64 fields use
//! Rust's shortest round-trip formatting; non-finite values are sanitised
//! to `0.0` so the output is always valid JSON).

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Pipeline stages, in execution order (paper Figure 1 plus the parallel
/// reduction step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Building the k-mer index over the reference.
    Index,
    /// Mapping reads and depositing Pair-HMM evidence (the hot loop).
    Map,
    /// Merging partial accumulators (parallel drivers only).
    Reduce,
    /// The per-position likelihood-ratio test.
    Call,
}

impl Stage {
    /// Stable lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Index => "index",
            Stage::Map => "map",
            Stage::Reduce => "reduce",
            Stage::Call => "call",
        }
    }

    fn from_name(s: &str) -> Option<Stage> {
        Some(match s {
            "index" => Stage::Index,
            "map" => Stage::Map,
            "reduce" => Stage::Reduce,
            "call" => Stage::Call,
            _ => return None,
        })
    }
}

/// One structured observation from a run.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A driver began a run.
    RunStart {
        /// Registry name of the driver.
        driver: String,
        /// Accumulator mode name (`NORM`, `FIXED`, ...).
        accumulator: String,
    },
    /// A stage began.
    StageStart {
        /// Which stage.
        stage: Stage,
    },
    /// A stage finished.
    StageEnd {
        /// Which stage.
        stage: Stage,
        /// Wall-clock seconds spent in the stage.
        wall_secs: f64,
        /// Thread CPU seconds spent in the stage (0 when the platform
        /// clock is unavailable).
        cpu_secs: f64,
    },
    /// A worker finished one batch of reads.
    Batch {
        /// Worker (thread / rank) index.
        worker: u64,
        /// Reads in the batch.
        reads: u64,
        /// Reads that produced at least one alignment.
        mapped: u64,
        /// Candidate alignments scored by the Pair-HMM.
        candidates: u64,
        /// Posterior columns deposited into the accumulator.
        deposited_columns: u64,
    },
    /// The streaming engine wrote a checkpoint.
    Checkpoint {
        /// Read cursor (number of reads consumed from the source).
        cursor: u64,
        /// Reads mapped so far.
        reads_mapped: u64,
    },
    /// The run finished.
    RunEnd {
        /// Total reads processed.
        reads_processed: u64,
        /// Total reads mapped.
        reads_mapped: u64,
        /// SNP calls produced.
        calls: u64,
        /// End-to-end wall seconds.
        wall_secs: f64,
    },
}

/// Write a JSON string literal (with escaping) into `out`.
fn put_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write an f64 as a JSON number: shortest round-trip form, with
/// non-finite values sanitised to `0` (JSON has no NaN/Inf).
fn put_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push('0');
    }
}

impl Event {
    /// The event's discriminant as it appears in the `event` JSON field.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::StageStart { .. } => "stage_start",
            Event::StageEnd { .. } => "stage_end",
            Event::Batch { .. } => "batch",
            Event::Checkpoint { .. } => "checkpoint",
            Event::RunEnd { .. } => "run_end",
        }
    }

    /// Serialize to one flat JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"event\":\"");
        s.push_str(self.kind());
        s.push('"');
        match self {
            Event::RunStart {
                driver,
                accumulator,
            } => {
                s.push_str(",\"driver\":");
                put_str(&mut s, driver);
                s.push_str(",\"accumulator\":");
                put_str(&mut s, accumulator);
            }
            Event::StageStart { stage } => {
                let _ = write!(s, ",\"stage\":\"{}\"", stage.name());
            }
            Event::StageEnd {
                stage,
                wall_secs,
                cpu_secs,
            } => {
                let _ = write!(s, ",\"stage\":\"{}\"", stage.name());
                s.push_str(",\"wall_secs\":");
                put_f64(&mut s, *wall_secs);
                s.push_str(",\"cpu_secs\":");
                put_f64(&mut s, *cpu_secs);
            }
            Event::Batch {
                worker,
                reads,
                mapped,
                candidates,
                deposited_columns,
            } => {
                let _ = write!(
                    s,
                    ",\"worker\":{worker},\"reads\":{reads},\"mapped\":{mapped},\
                     \"candidates\":{candidates},\"deposited_columns\":{deposited_columns}"
                );
            }
            Event::Checkpoint {
                cursor,
                reads_mapped,
            } => {
                let _ = write!(s, ",\"cursor\":{cursor},\"reads_mapped\":{reads_mapped}");
            }
            Event::RunEnd {
                reads_processed,
                reads_mapped,
                calls,
                wall_secs,
            } => {
                let _ = write!(
                    s,
                    ",\"reads_processed\":{reads_processed},\"reads_mapped\":{reads_mapped},\
                     \"calls\":{calls}"
                );
                s.push_str(",\"wall_secs\":");
                put_f64(&mut s, *wall_secs);
            }
        }
        s.push('}');
        s
    }

    /// Parse one line produced by [`Event::to_json_line`].
    pub fn parse_json_line(line: &str) -> Result<Event, TraceParseError> {
        let fields = parse_flat_object(line)?;
        let get = |key: &str| -> Result<&JsonValue, TraceParseError> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| TraceParseError::new(format!("missing field `{key}`")))
        };
        let get_str = |key: &str| -> Result<String, TraceParseError> {
            match get(key)? {
                JsonValue::Str(s) => Ok(s.clone()),
                _ => Err(TraceParseError::new(format!("field `{key}` not a string"))),
            }
        };
        let get_num = |key: &str| -> Result<f64, TraceParseError> {
            match get(key)? {
                JsonValue::Num(v) => Ok(*v),
                _ => Err(TraceParseError::new(format!("field `{key}` not a number"))),
            }
        };
        let get_u64 = |key: &str| -> Result<u64, TraceParseError> {
            let v = get_num(key)?;
            if v < 0.0 || v.fract() != 0.0 || v > u64::MAX as f64 {
                return Err(TraceParseError::new(format!(
                    "field `{key}` not a non-negative integer: {v}"
                )));
            }
            Ok(v as u64)
        };
        let get_stage = |key: &str| -> Result<Stage, TraceParseError> {
            let name = get_str(key)?;
            Stage::from_name(&name)
                .ok_or_else(|| TraceParseError::new(format!("unknown stage `{name}`")))
        };

        let kind = get_str("event")?;
        Ok(match kind.as_str() {
            "run_start" => Event::RunStart {
                driver: get_str("driver")?,
                accumulator: get_str("accumulator")?,
            },
            "stage_start" => Event::StageStart {
                stage: get_stage("stage")?,
            },
            "stage_end" => Event::StageEnd {
                stage: get_stage("stage")?,
                wall_secs: get_num("wall_secs")?,
                cpu_secs: get_num("cpu_secs")?,
            },
            "batch" => Event::Batch {
                worker: get_u64("worker")?,
                reads: get_u64("reads")?,
                mapped: get_u64("mapped")?,
                candidates: get_u64("candidates")?,
                deposited_columns: get_u64("deposited_columns")?,
            },
            "checkpoint" => Event::Checkpoint {
                cursor: get_u64("cursor")?,
                reads_mapped: get_u64("reads_mapped")?,
            },
            "run_end" => Event::RunEnd {
                reads_processed: get_u64("reads_processed")?,
                reads_mapped: get_u64("reads_mapped")?,
                calls: get_u64("calls")?,
                wall_secs: get_num("wall_secs")?,
            },
            other => {
                return Err(TraceParseError::new(format!("unknown event `{other}`")));
            }
        })
    }
}

/// Error from [`Event::parse_json_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    message: String,
}

impl TraceParseError {
    fn new(message: impl Into<String>) -> TraceParseError {
        TraceParseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// A parsed flat-JSON value: only strings and numbers appear in traces.
enum JsonValue {
    Str(String),
    Num(f64),
}

/// Parse a single-level JSON object of string/number fields. This is not
/// a general JSON parser — it accepts exactly the flat shape
/// [`Event::to_json_line`] produces (plus arbitrary whitespace).
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, TraceParseError> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = Vec::new();
    let expect = |chars: &mut std::iter::Peekable<std::str::Chars>,
                  want: char|
     -> Result<(), TraceParseError> {
        match chars.next() {
            Some(c) if c == want => Ok(()),
            got => Err(TraceParseError::new(format!(
                "expected `{want}`, got {got:?}"
            ))),
        }
    };
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
    };
    let parse_string =
        |chars: &mut std::iter::Peekable<std::str::Chars>| -> Result<String, TraceParseError> {
            expect(chars, '"')?;
            let mut s = String::new();
            loop {
                match chars.next() {
                    None => return Err(TraceParseError::new("unterminated string")),
                    Some('"') => return Ok(s),
                    Some('\\') => match chars.next() {
                        Some('"') => s.push('"'),
                        Some('\\') => s.push('\\'),
                        Some('n') => s.push('\n'),
                        Some('r') => s.push('\r'),
                        Some('t') => s.push('\t'),
                        Some('u') => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let d = chars
                                    .next()
                                    .and_then(|c| c.to_digit(16))
                                    .ok_or_else(|| TraceParseError::new("bad \\u escape"))?;
                                code = code * 16 + d;
                            }
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| TraceParseError::new("bad \\u codepoint"))?,
                            );
                        }
                        other => {
                            return Err(TraceParseError::new(format!("bad escape {other:?}")));
                        }
                    },
                    Some(c) => s.push(c),
                }
            }
        };

    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            expect(&mut chars, ':')?;
            skip_ws(&mut chars);
            let value = if chars.peek() == Some(&'"') {
                JsonValue::Str(parse_string(&mut chars)?)
            } else {
                let mut num = String::new();
                while matches!(
                    chars.peek(),
                    Some(c) if c.is_ascii_digit()
                        || matches!(c, '-' | '+' | '.' | 'e' | 'E')
                ) {
                    num.push(chars.next().unwrap());
                }
                JsonValue::Num(
                    num.parse::<f64>()
                        .map_err(|e| TraceParseError::new(format!("bad number `{num}`: {e}")))?,
                )
            };
            fields.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some(',') => continue,
                Some('}') => break,
                got => {
                    return Err(TraceParseError::new(format!(
                        "expected `,` or `}}`, got {got:?}"
                    )));
                }
            }
        }
    }
    skip_ws(&mut chars);
    if let Some(c) = chars.next() {
        return Err(TraceParseError::new(format!("trailing input at `{c}`")));
    }
    Ok(fields)
}

/// Where events go when observation is enabled.
pub trait EventSink: Send + Sync {
    /// Record one event. Called from multiple threads; implementations
    /// must be internally synchronised.
    fn record(&self, event: Event);
}

/// Handle every driver threads through its pipeline. Cloning is cheap
/// (one `Option<Arc>`); the default is disabled.
#[derive(Clone, Default)]
pub struct Observer {
    sink: Option<Arc<dyn EventSink>>,
}

impl Observer {
    /// An observer that drops everything at zero cost.
    pub fn disabled() -> Observer {
        Observer { sink: None }
    }

    /// An observer recording into `sink`.
    pub fn new(sink: Arc<dyn EventSink>) -> Observer {
        Observer { sink: Some(sink) }
    }

    /// Whether a sink is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emit an event. The closure only runs when a sink is attached, so
    /// the disabled path constructs nothing and allocates nothing.
    #[inline]
    pub fn emit(&self, build: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            sink.record(build());
        }
    }
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// In-memory sink for tests and for folding counters into other frames.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Snapshot of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Drain all recorded events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("memory sink poisoned"))
    }
}

impl EventSink for MemorySink {
    fn record(&self, event: Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event);
    }
}

/// Sink that spools events as JSON lines to any writer (the `--trace-json`
/// backend).
pub struct JsonLinesSink<W: std::io::Write + Send> {
    writer: Mutex<W>,
}

impl<W: std::io::Write + Send> JsonLinesSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> JsonLinesSink<W> {
        JsonLinesSink {
            writer: Mutex::new(writer),
        }
    }

    /// Flush the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer.lock().expect("trace sink poisoned").flush()
    }

    /// Unwrap the sink and hand back the underlying writer.
    pub fn into_writer(self) -> W {
        self.writer.into_inner().expect("trace sink poisoned")
    }
}

impl<W: std::io::Write + Send> EventSink for JsonLinesSink<W> {
    fn record(&self, event: Event) {
        let mut line = event.to_json_line();
        line.push('\n');
        let mut w = self.writer.lock().expect("trace sink poisoned");
        // A full disk mid-trace must not take the run down with it.
        let _ = w.write_all(line.as_bytes());
    }
}

/// Scope timer emitting paired [`Event::StageStart`]/[`Event::StageEnd`].
pub struct StageTimer {
    stage: Stage,
    wall: Instant,
    cpu_start: Option<f64>,
}

impl StageTimer {
    /// Emit `StageStart` and start the clocks. The CPU clock lives in
    /// procfs and reading it allocates, so it is only consulted when a
    /// sink is attached — a disabled observer's timer touches nothing
    /// but the (allocation-free) monotonic clock.
    pub fn start(observer: &Observer, stage: Stage) -> StageTimer {
        observer.emit(|| Event::StageStart { stage });
        StageTimer {
            stage,
            wall: Instant::now(),
            cpu_start: if observer.is_enabled() {
                mpisim::thread_cpu_seconds()
            } else {
                None
            },
        }
    }

    /// Emit the matching `StageEnd` with elapsed wall/CPU seconds.
    pub fn finish(self, observer: &Observer) {
        observer.emit(|| Event::StageEnd {
            stage: self.stage,
            wall_secs: self.wall.elapsed().as_secs_f64(),
            cpu_secs: match (self.cpu_start, mpisim::thread_cpu_seconds()) {
                (Some(a), Some(b)) => (b - a).max(0.0),
                _ => 0.0,
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RunStart {
                driver: "serial".into(),
                accumulator: "FIXED".into(),
            },
            Event::StageStart { stage: Stage::Map },
            Event::StageEnd {
                stage: Stage::Map,
                wall_secs: 0.125,
                cpu_secs: 0.0625,
            },
            Event::Batch {
                worker: 3,
                reads: 256,
                mapped: 250,
                candidates: 612,
                deposited_columns: 15_000,
            },
            Event::Checkpoint {
                cursor: 1024,
                reads_mapped: 1000,
            },
            Event::RunEnd {
                reads_processed: 2048,
                reads_mapped: 2000,
                calls: 7,
                wall_secs: 1.5,
            },
        ]
    }

    #[test]
    fn events_round_trip_through_json_lines() {
        for event in sample_events() {
            let line = event.to_json_line();
            let back = Event::parse_json_line(&line).expect(&line);
            assert_eq!(back, event, "line: {line}");
        }
    }

    #[test]
    fn json_escaping_round_trips() {
        let event = Event::RunStart {
            driver: "we\"ird\\name\nwith\tcontrol\u{1}".into(),
            accumulator: "NORM".into(),
        };
        let line = event.to_json_line();
        assert_eq!(Event::parse_json_line(&line).unwrap(), event);
    }

    #[test]
    fn non_finite_floats_serialize_as_valid_json() {
        let event = Event::StageEnd {
            stage: Stage::Call,
            wall_secs: f64::NAN,
            cpu_secs: f64::INFINITY,
        };
        let line = event.to_json_line();
        let back = Event::parse_json_line(&line).unwrap();
        assert_eq!(
            back,
            Event::StageEnd {
                stage: Stage::Call,
                wall_secs: 0.0,
                cpu_secs: 0.0,
            }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "{",
            "{}",
            "not json",
            r#"{"event":"mystery"}"#,
            r#"{"event":"batch","worker":-1,"reads":0,"mapped":0,"candidates":0,"deposited_columns":0}"#,
            r#"{"event":"run_start","driver":"x"}"#,
            r#"{"event":"stage_start","stage":"warp"}"#,
            r#"{"event":"run_end","reads_processed":1,"reads_mapped":1,"calls":0,"wall_secs":0.1} trailing"#,
        ] {
            assert!(Event::parse_json_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn disabled_observer_never_runs_the_closure() {
        let obs = Observer::disabled();
        assert!(!obs.is_enabled());
        obs.emit(|| panic!("closure must not run when disabled"));
    }

    #[test]
    fn memory_sink_records_in_order() {
        let sink = Arc::new(MemorySink::new());
        let obs = Observer::new(sink.clone());
        assert!(obs.is_enabled());
        for e in sample_events() {
            obs.emit(|| e.clone());
        }
        assert_eq!(sink.events(), sample_events());
        assert_eq!(sink.take().len(), 6);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn json_lines_sink_writes_parseable_lines() {
        let sink = JsonLinesSink::new(Vec::new());
        for e in sample_events() {
            sink.record(e);
        }
        let bytes = sink.into_writer();
        let text = String::from_utf8(bytes).unwrap();
        let parsed: Vec<Event> = text
            .lines()
            .map(|l| Event::parse_json_line(l).unwrap())
            .collect();
        assert_eq!(parsed, sample_events());
    }

    #[test]
    fn stage_timer_emits_paired_events() {
        let sink = Arc::new(MemorySink::new());
        let obs = Observer::new(sink.clone());
        let t = StageTimer::start(&obs, Stage::Index);
        t.finish(&obs);
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            Event::StageStart {
                stage: Stage::Index
            }
        );
        match &events[1] {
            Event::StageEnd {
                stage: Stage::Index,
                wall_secs,
                cpu_secs,
            } => {
                assert!(*wall_secs >= 0.0 && *cpu_secs >= 0.0);
            }
            other => panic!("expected StageEnd, got {other:?}"),
        }
    }
}
