//! GNUMAP-SNP: the paper's pipeline, assembled.
//!
//! This crate wires the substrates together into the three-step system of
//! paper Figure 1:
//!
//! 1. **Seed** — the genomic k-mer hash table proposes candidate mapping
//!    regions for each read ([`mapping`]).
//! 2. **Align** — the quality-extended Pair-HMM computes each candidate's
//!    likelihood and marginal per-column base probabilities; the read's
//!    evidence is split across its candidate locations in proportion to
//!    their posterior weights and summed into a genome-length
//!    **accumulator** ([`accum`] — with the paper's three memory layouts:
//!    full floats, nucleotide-byte discretization, centroid
//!    discretization).
//! 3. **Test** — a likelihood ratio test per genome position calls bases
//!    above background and reports SNPs against the reference, with
//!    p-value or FDR cutoffs ([`snpcall`]).
//!
//! Four drivers run the pipeline ([`driver`]): serial, shared-memory
//! (rayon), and the paper's two MPI decompositions (read-split and
//! genome-split) on the `mpisim` runtime. All four produce identical calls
//! for the NORM accumulator on the same input.

pub mod accum;
pub mod config;
pub mod driver;
pub mod footprint;
pub mod mapping;
pub mod observe;
pub mod pipeline;
pub mod report;
pub mod snpcall;

pub use accum::{AccumulatorMode, GenomeAccumulator};
pub use config::GnumapConfig;
pub use mapping::{MappingConfig, MappingEngine, ReadAlignment};
pub use observe::{Event, EventSink, Observer, Stage};
pub use pipeline::run_pipeline;
pub use report::{score_snp_calls, AccuracyReport, RunReport};
pub use snpcall::{call_snps, SnpCall, SnpCallConfig};
