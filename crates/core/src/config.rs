//! Top-level pipeline configuration.

use crate::accum::AccumulatorMode;
use crate::mapping::MappingConfig;
use crate::snpcall::SnpCallConfig;

/// Everything a GNUMAP-SNP run needs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GnumapConfig {
    /// Seeding + Pair-HMM alignment parameters.
    pub mapping: MappingConfig,
    /// LRT / cutoff parameters.
    pub calling: SnpCallConfig,
    /// Which accumulator layout to use (paper Section VI-B).
    pub accumulator: AccumulatorMode,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_configuration() {
        let cfg = GnumapConfig::default();
        assert_eq!(cfg.mapping.index.k, 10, "paper's default mer size");
        assert_eq!(cfg.accumulator, AccumulatorMode::Norm);
        assert_eq!(cfg.calling.ploidy, gnumap_stats::lrt::Ploidy::Monoploid);
    }
}
