//! SNP calling from an accumulator (paper Figure 1, steps C–D).
//!
//! Each genome position's accumulated evidence vector is tested with the
//! likelihood ratio test of Section V-C. Significant positions whose called
//! allele(s) differ from the reference are reported as SNPs; the decision
//! rule is either a raw SNP-wise α on the multiplicity-adjusted p-value or
//! a Benjamini–Hochberg FDR level over all testable positions — "a p-value
//! cutoff or a false discovery control", as the abstract puts it.

use crate::accum::GenomeAccumulator;
use genome::alphabet::{Base, GAP_INDEX};
use genome::seq::DnaSeq;
use gnumap_stats::fdr::benjamini_hochberg;
use gnumap_stats::lrt::{lrt, Alternative, BaseCounts, Ploidy};

/// The SNP-calling decision rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cutoff {
    /// Call positions with adjusted p-value ≤ α.
    PValue(f64),
    /// Benjamini–Hochberg FDR control at level q over all testable sites.
    Fdr(f64),
}

/// SNP caller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnpCallConfig {
    /// Monoploid (Equation 1) or diploid (Equation 2) hypotheses.
    pub ploidy: Ploidy,
    /// Significance rule.
    pub cutoff: Cutoff,
    /// Minimum accumulated mass (≈ read coverage) to test a position.
    pub min_total: f64,
}

impl Default for SnpCallConfig {
    fn default() -> Self {
        SnpCallConfig {
            ploidy: Ploidy::Monoploid,
            cutoff: Cutoff::PValue(0.05),
            min_total: 3.0,
        }
    }
}

/// One called SNP.
#[derive(Debug, Clone, PartialEq)]
pub struct SnpCall {
    /// 0-based genome position.
    pub pos: usize,
    /// Reference base at the position.
    pub reference: Base,
    /// Primary called allele (the symbol with the highest evidence).
    pub allele: Base,
    /// Second allele for heterozygous diploid calls.
    pub second_allele: Option<Base>,
    /// LRT statistic `-2 log λ`.
    pub statistic: f64,
    /// Multiplicity-adjusted p-value.
    pub p_adjusted: f64,
    /// The accumulated evidence vector at the position.
    pub counts: [f64; 5],
}

impl SnpCall {
    /// Whether `base` is among the called alleles.
    pub fn carries(&self, base: Base) -> bool {
        self.allele == base || self.second_allele == Some(base)
    }

    /// Convert to a VCF record on contig `chrom` (see [`genome::vcf`]).
    pub fn to_vcf_record(&self, chrom: &str) -> genome::vcf::VcfRecord {
        // ALT lists only non-reference alleles; the genotype indexes into
        // [REF, ALT...] per the VCF convention.
        let mut alts = Vec::new();
        let mut gt_index = |b: Base| -> usize {
            if b == self.reference {
                0
            } else if let Some(i) = alts.iter().position(|&a| a == b) {
                i + 1
            } else {
                alts.push(b);
                alts.len()
            }
        };
        let g1 = gt_index(self.allele);
        let g2 = self.second_allele.map(&mut gt_index).unwrap_or(g1);
        let (lo, hi) = (g1.min(g2), g1.max(g2));
        genome::vcf::VcfRecord {
            chrom: chrom.to_string(),
            pos: self.pos,
            reference: self.reference,
            alts,
            qual: genome::vcf::phred_scaled(self.p_adjusted),
            lrt: self.statistic,
            p_adjusted: self.p_adjusted,
            genotype: format!("{lo}/{hi}"),
        }
    }
}

/// Internal: a testable position that passed significance pre-screening.
struct Candidate {
    pos: usize,
    reference: Base,
    best: usize,
    second: usize,
    alternative: Alternative,
    statistic: f64,
    p_adjusted: f64,
    p_het_adjusted: Option<f64>,
    counts: [f64; 5],
}

/// Run the LRT across the accumulator and call SNPs against `reference`.
///
/// `offset` maps accumulator indices to genome coordinates (non-zero for
/// genome-split shards).
pub fn call_snps_with_offset<A: GenomeAccumulator>(
    acc: &A,
    reference: &DnaSeq,
    offset: usize,
    config: &SnpCallConfig,
) -> Vec<SnpCall> {
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut all_pvalues: Vec<f64> = Vec::new();

    for idx in 0..acc.len() {
        let pos = offset + idx;
        let Some(reference_base) = reference.get(pos) else {
            continue; // no call against an N reference
        };
        let counts = acc.counts(idx);
        let total: f64 = counts.iter().sum();
        if total < config.min_total {
            continue;
        }
        let Some(outcome) = lrt(&BaseCounts::new(counts), config.ploidy) else {
            continue;
        };
        all_pvalues.push(outcome.p_adjusted);
        candidates.push(Candidate {
            pos,
            reference: reference_base,
            best: outcome.best,
            second: outcome.second,
            alternative: outcome.alternative,
            statistic: outcome.statistic,
            p_adjusted: outcome.p_adjusted,
            p_het_adjusted: outcome.p_het_adjusted,
            counts,
        });
    }

    // Decide the significance threshold.
    let keep = |p: f64| -> bool {
        match config.cutoff {
            Cutoff::PValue(alpha) => p <= alpha,
            Cutoff::Fdr(_) => true, // resolved below
        }
    };
    let fdr_threshold = match config.cutoff {
        Cutoff::Fdr(q) => {
            let rejected = benjamini_hochberg(&all_pvalues, q);
            rejected
                .iter()
                .map(|&i| all_pvalues[i])
                .fold(None, |acc: Option<f64>, p| {
                    Some(acc.map_or(p, |m: f64| m.max(p)))
                })
        }
        Cutoff::PValue(_) => None,
    };

    let mut calls = Vec::new();
    for c in candidates {
        // The called base(s): gaps are indel evidence, not SNPs.
        if c.best == GAP_INDEX {
            continue;
        }
        let allele = Base::from_index(c.best);
        let second_allele = match (config.ploidy, c.alternative) {
            (Ploidy::Diploid, Alternative::TwoBases) if c.second != GAP_INDEX => {
                Some(Base::from_index(c.second))
            }
            _ => None,
        };
        // A SNP exists when the called genotype contains a non-reference
        // base.
        let differs = allele != c.reference || second_allele.is_some_and(|b| b != c.reference);
        if !differs {
            continue;
        }
        // The decision p-value. When the top allele *is* the reference,
        // the variant claim rests entirely on the second allele, whose
        // evidence is the heterozygous-vs-homozygous LRT — the test
        // against the uniform background is trivially significant at any
        // well-covered site and says nothing about the second allele.
        let hinges_on_second = allele == c.reference;
        let p_decision = if hinges_on_second {
            c.p_het_adjusted.unwrap_or(1.0).max(c.p_adjusted)
        } else {
            c.p_adjusted
        };
        let significant = match config.cutoff {
            Cutoff::PValue(_) => keep(p_decision),
            Cutoff::Fdr(_) => fdr_threshold.is_some_and(|t| p_decision <= t),
        };
        if !significant {
            continue;
        }
        calls.push(SnpCall {
            pos: c.pos,
            reference: c.reference,
            allele,
            second_allele,
            statistic: c.statistic,
            p_adjusted: c.p_adjusted,
            counts: c.counts,
        });
    }
    calls
}

/// [`call_snps_with_offset`] with offset 0 (whole-genome accumulators).
pub fn call_snps<A: GenomeAccumulator>(
    acc: &A,
    reference: &DnaSeq,
    config: &SnpCallConfig,
) -> Vec<SnpCall> {
    call_snps_with_offset(acc, reference, 0, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::NormAccumulator;

    fn reference(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    /// Accumulate `n` units of pure evidence for symbol `k` at `pos`.
    fn pour(acc: &mut NormAccumulator, pos: usize, k: usize, n: usize) {
        let mut delta = [0.0; 5];
        delta[k] = 1.0;
        for _ in 0..n {
            acc.add(pos, &delta);
        }
    }

    #[test]
    fn clean_snp_is_called() {
        let r = reference("AAAAA");
        let mut acc = NormAccumulator::new(5);
        for pos in 0..5 {
            pour(&mut acc, pos, 0, 12); // matches reference
        }
        // Position 2 actually shows G.
        let mut acc2 = NormAccumulator::new(5);
        for pos in 0..5 {
            pour(&mut acc2, pos, if pos == 2 { 2 } else { 0 }, 12);
        }
        let calls = call_snps(&acc2, &r, &SnpCallConfig::default());
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].pos, 2);
        assert_eq!(calls[0].allele, Base::G);
        assert!(calls[0].p_adjusted < 1e-6);
        // And the matching accumulator calls nothing.
        assert!(call_snps(&acc, &r, &SnpCallConfig::default()).is_empty());
    }

    #[test]
    fn thin_coverage_is_not_tested() {
        let r = reference("AAA");
        let mut acc = NormAccumulator::new(3);
        pour(&mut acc, 1, 2, 2); // only 2 units < min_total 3
        assert!(call_snps(&acc, &r, &SnpCallConfig::default()).is_empty());
    }

    #[test]
    fn uniform_noise_is_not_significant() {
        let r = reference("AAAA");
        let mut acc = NormAccumulator::new(4);
        for k in 0..5 {
            pour(&mut acc, 1, k, 4); // 4 units of every symbol: background
        }
        assert!(call_snps(&acc, &r, &SnpCallConfig::default()).is_empty());
    }

    #[test]
    fn gap_dominated_positions_are_skipped() {
        let r = reference("AAA");
        let mut acc = NormAccumulator::new(3);
        pour(&mut acc, 1, GAP_INDEX, 15);
        assert!(call_snps(&acc, &r, &SnpCallConfig::default()).is_empty());
    }

    #[test]
    fn diploid_het_site_reports_both_alleles() {
        let r = reference("AAA");
        let mut acc = NormAccumulator::new(3);
        pour(&mut acc, 1, 0, 10); // reference A
        pour(&mut acc, 1, 2, 10); // alternate G
        let cfg = SnpCallConfig {
            ploidy: Ploidy::Diploid,
            ..SnpCallConfig::default()
        };
        let calls = call_snps(&acc, &r, &cfg);
        assert_eq!(calls.len(), 1);
        let call = &calls[0];
        assert!(call.carries(Base::A) && call.carries(Base::G), "{call:?}");
        assert!(call.second_allele.is_some());
    }

    #[test]
    fn monoploid_het_pattern_still_differs_from_reference() {
        // Under the monoploid model a 50/50 site picks the best single
        // base; if that is non-reference it is still a SNP call.
        let r = reference("AAA");
        let mut acc = NormAccumulator::new(3);
        pour(&mut acc, 1, 2, 11);
        pour(&mut acc, 1, 0, 9);
        let calls = call_snps(&acc, &r, &SnpCallConfig::default());
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].allele, Base::G);
        assert_eq!(calls[0].second_allele, None);
    }

    #[test]
    fn fdr_cutoff_is_more_conservative_than_loose_alpha() {
        let r = reference(&"A".repeat(100));
        let mut acc = NormAccumulator::new(100);
        // One strong SNP...
        pour(&mut acc, 10, 2, 20);
        // ...and many borderline positions (significance ~ 0.02 each).
        for pos in 20..90 {
            pour(&mut acc, pos, 0, 3);
            pour(&mut acc, pos, 3, 1);
        }
        let loose = call_snps(
            &acc,
            &r,
            &SnpCallConfig {
                cutoff: Cutoff::PValue(0.5),
                ..SnpCallConfig::default()
            },
        );
        let fdr = call_snps(
            &acc,
            &r,
            &SnpCallConfig {
                cutoff: Cutoff::Fdr(0.01),
                ..SnpCallConfig::default()
            },
        );
        assert!(fdr.len() <= loose.len());
        assert!(
            fdr.iter().any(|c| c.pos == 10),
            "the strong SNP must survive FDR control"
        );
    }

    #[test]
    fn offset_shifts_coordinates() {
        let r = reference("AAAAAAAAAA");
        let mut acc = NormAccumulator::new(3); // a shard covering 7..10
        pour(&mut acc, 1, 1, 12);
        let calls = call_snps_with_offset(&acc, &r, 7, &SnpCallConfig::default());
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].pos, 8);
        assert_eq!(calls[0].allele, Base::C);
    }

    #[test]
    fn reference_n_positions_are_never_called() {
        let r = reference("ANA");
        let mut acc = NormAccumulator::new(3);
        pour(&mut acc, 1, 2, 15);
        assert!(call_snps(&acc, &r, &SnpCallConfig::default()).is_empty());
    }
}
