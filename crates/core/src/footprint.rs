//! Analytic memory model — the machinery behind paper Table II.
//!
//! The paper reports virtual memory for the three accumulator layouts on
//! the 155 Mbp X chromosome and the 3.1 Gbp human genome. Absolute numbers
//! depend on their malloc behaviour, but the *structure* is a per-base cost
//! (accumulator + packed genome + index) times genome length plus fixed
//! overheads. This module prices each component so the Table II
//! reproduction can print both measured bytes (on the simulated genome) and
//! model projections at the paper's genome sizes.

use crate::accum::AccumulatorMode;

/// Paper genome sizes used in Table II.
pub const CHR_X_BASES: usize = 155_000_000;
pub const HUMAN_GENOME_BASES: usize = 3_100_000_000;

/// Byte costs per genome base for a full pipeline in a given accumulator
/// mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FootprintModel {
    /// Accumulator bytes per base.
    pub accumulator_per_base: f64,
    /// Packed genome storage per base (2 bits + N mask bit = 0.375 B).
    pub genome_per_base: f64,
    /// k-mer index bytes per base: one `u32` position entry per indexed
    /// base plus amortised hash-table overhead.
    pub index_per_base: f64,
    /// Fixed overhead independent of genome size (codebooks, tables).
    pub fixed_bytes: usize,
}

impl FootprintModel {
    /// The model for an accumulator mode with default index settings
    /// (stride 1, ~6 bytes/base of index: 4-byte position + ~2 bytes of
    /// amortised table entry at typical k-mer dispersion).
    pub fn for_mode(mode: AccumulatorMode) -> FootprintModel {
        let fixed = match mode {
            // Centroid codebook + 256×256 sum table.
            AccumulatorMode::CentDisc => 256 * 40 + 256 * 256,
            _ => 0,
        };
        FootprintModel {
            accumulator_per_base: mode.bytes_per_base() as f64,
            genome_per_base: 0.375,
            index_per_base: 6.0,
            fixed_bytes: fixed,
        }
    }

    /// Projected total bytes for a genome of `bases` positions.
    pub fn project(&self, bases: usize) -> u64 {
        let per_base = self.accumulator_per_base + self.genome_per_base + self.index_per_base;
        (per_base * bases as f64) as u64 + self.fixed_bytes as u64
    }
}

/// Render a byte count the way the paper's tables do ("4.76g", "58g").
pub fn human_bytes(bytes: u64) -> String {
    const G: f64 = 1024.0 * 1024.0 * 1024.0;
    const M: f64 = 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= G {
        format!("{:.2}g", b / G)
    } else if b >= M {
        format!("{:.1}m", b / M)
    } else {
        format!("{bytes}b")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_table_ii() {
        // Table II's key shape: NORM > CHARDISC > CENTDISC per-base.
        let norm = FootprintModel::for_mode(AccumulatorMode::Norm).project(HUMAN_GENOME_BASES);
        let chard = FootprintModel::for_mode(AccumulatorMode::CharDisc).project(HUMAN_GENOME_BASES);
        let cent = FootprintModel::for_mode(AccumulatorMode::CentDisc).project(HUMAN_GENOME_BASES);
        assert!(norm > chard && chard > cent, "{norm} > {chard} > {cent}");
    }

    #[test]
    fn reduction_ratio_is_in_the_papers_ballpark() {
        // Paper: chrX 4.76g → 2.58g under CHARDISC, a ratio of 0.54.
        let norm = FootprintModel::for_mode(AccumulatorMode::Norm).project(CHR_X_BASES);
        let chard = FootprintModel::for_mode(AccumulatorMode::CharDisc).project(CHR_X_BASES);
        let ratio = chard as f64 / norm as f64;
        assert!(
            (0.4..0.7).contains(&ratio),
            "CHARDISC/NORM ratio {ratio} out of the paper's ballpark"
        );
    }

    #[test]
    fn fixed_overhead_only_for_centdisc() {
        assert_eq!(
            FootprintModel::for_mode(AccumulatorMode::Norm).fixed_bytes,
            0
        );
        assert!(FootprintModel::for_mode(AccumulatorMode::CentDisc).fixed_bytes > 0);
    }

    #[test]
    fn human_bytes_formatting() {
        assert_eq!(human_bytes(512), "512b");
        assert_eq!(human_bytes(5 * 1024 * 1024 / 2), "2.5m");
        assert!(human_bytes(5_000_000_000).ends_with('g'));
    }

    #[test]
    fn projection_scales_linearly() {
        let m = FootprintModel::for_mode(AccumulatorMode::Norm);
        let one = m.project(1_000_000);
        let ten = m.project(10_000_000);
        assert!((ten as f64 / one as f64 - 10.0).abs() < 0.01);
    }
}
