//! Centroid discretization (paper Section VI-B.2, following Lloyd & Snell).
//!
//! Per genome position: one `f32` total plus a single byte indexing into a
//! 256-entry codebook of probability vectors over (A, C, G, T, gap). The
//! codebook is biased toward *biologically relevant* states — peaked
//! single-base states (the paper's example for a single `a` is
//! `γ = [0.84, 0.04, 0.04, 0.04, 0.04]`), transition-SNP mixtures sampled
//! more densely than transversion mixtures (`γ = [0.28, 0.08, 0.48, 0.08,
//! 0.08]` for an a→g SNP), plus base+gap mixtures and a sparse filler over
//! the rest of the simplex.
//!
//! **The fast path, and why accuracy collapses.** The paper: "Since there
//! are only 256 discrete possibilities for γ, the sum can be a pre-computed
//! table lookup, reducing the number of steps significantly." We implement
//! exactly that: combining two codewords looks up the nearest centroid of
//! their *equal-weight* average — the relative totals of the two operands
//! are not consulted (they cannot be: the table has only 256×256 entries).
//! Applied per-read, this gives the newest read the same weight as the
//! entire accumulated history, i.e. exponential forgetting with factor ½ —
//! after a dozen reads the stored distribution mostly reflects the last
//! couple of reads, so a single late sequencing error can dominate a
//! position. That is the mechanism behind Table III's CENTDISC row (166
//! TP, 9058 FP): enormous memory savings, unusable accuracy, matching the
//! paper's conclusion that the method "is not recommended for practical
//! use".

use super::{GenomeAccumulator, NUM_SYMBOLS};
use std::sync::OnceLock;

/// Number of codewords (fits one byte, as in the paper).
pub const CODEBOOK_SIZE: usize = 256;

/// The centroid codebook plus its precomputed pairwise-sum table.
pub struct Codebook {
    centroids: Vec<[f64; NUM_SYMBOLS]>,
    /// `sum_table[a * 256 + b]` = nearest codeword to the equal-weight
    /// average of codewords `a` and `b`.
    sum_table: Vec<u8>,
}

impl Codebook {
    /// The process-wide shared codebook (built once, deterministically).
    pub fn shared() -> &'static Codebook {
        static SHARED: OnceLock<Codebook> = OnceLock::new();
        SHARED.get_or_init(Codebook::build)
    }

    /// Build the deterministic biologically-weighted codebook.
    fn build() -> Codebook {
        let mut centroids: Vec<[f64; NUM_SYMBOLS]> = Vec::with_capacity(CODEBOOK_SIZE);

        // Uniform background state.
        centroids.push([0.2; NUM_SYMBOLS]);

        // Peaked single-symbol states, eight confidence levels each, capped
        // at 0.84 as in the paper's single-`a` example.
        for s in 0..NUM_SYMBOLS {
            for level in 0..8 {
                let peak = 0.84 - 0.08 * level as f64; // 0.84 .. 0.28
                let rest = (1.0 - peak) / (NUM_SYMBOLS - 1) as f64;
                let mut c = [rest; NUM_SYMBOLS];
                c[s] = peak;
                centroids.push(c);
            }
        }

        // Two-symbol mixtures. Transitions (A↔G, C↔T) are sampled at seven
        // mixing ratios, transversions at three — "sampling biologically-
        // relevant states at a higher rate".
        let transition_pairs = [(0usize, 2usize), (1, 3)]; // {A,G}, {C,T}
        let transversion_pairs = [(0usize, 1usize), (0, 3), (2, 1), (2, 3)];
        let fine_mixes: &[(f64, f64)] = &[
            (0.44, 0.44),
            (0.56, 0.32),
            (0.32, 0.56),
            (0.64, 0.24),
            (0.24, 0.64),
            (0.48, 0.28), // the paper's a→g SNP example shape
            (0.28, 0.48),
        ];
        let coarse_mixes: &[(f64, f64)] = &[(0.44, 0.44), (0.6, 0.28), (0.28, 0.6)];
        let push_pair =
            |a: usize, b: usize, wa: f64, wb: f64, centroids: &mut Vec<[f64; NUM_SYMBOLS]>| {
                let rest = (1.0 - wa - wb) / (NUM_SYMBOLS - 2) as f64;
                let mut c = [rest; NUM_SYMBOLS];
                c[a] = wa;
                c[b] = wb;
                centroids.push(c);
            };
        for &(a, b) in &transition_pairs {
            for &(wa, wb) in fine_mixes {
                push_pair(a, b, wa, wb, &mut centroids);
            }
        }
        for &(a, b) in &transversion_pairs {
            for &(wa, wb) in coarse_mixes {
                push_pair(a, b, wa, wb, &mut centroids);
            }
        }
        // Base + gap mixtures (deletion evidence).
        for base in 0..4 {
            for &(wb, wg) in coarse_mixes {
                push_pair(base, 4, wb, wg, &mut centroids);
            }
        }

        // Fill the remaining slots with a deterministic low-discrepancy
        // sweep of the simplex, sharpened toward peaked states (squaring
        // the coordinates biases mass toward the corners). The multipliers
        // must be irrational — a Kronecker sequence with rational weights
        // is periodic and would run out of fresh candidates.
        const ALPHAS: [f64; NUM_SYMBOLS] = [
            0.414_213_562_373_095, // √2 − 1
            0.732_050_807_568_877, // √3 − 1
            0.236_067_977_499_79,  // √5 − 2
            0.645_751_311_064_59,  // √7 − 2
            0.316_624_790_355_4,   // √11 − 3
        ];
        let mut t = 0u64;
        while centroids.len() < CODEBOOK_SIZE {
            t += 1;
            let mut c = [0.0f64; NUM_SYMBOLS];
            let mut sum = 0.0;
            for (k, ck) in c.iter_mut().enumerate() {
                let x = ((t as f64) * ALPHAS[k]).fract() + 0.02;
                *ck = x * x;
                sum += *ck;
            }
            for ck in &mut c {
                *ck /= sum;
            }
            // Skip near-duplicates of existing codewords.
            let dup = centroids.iter().any(|e| dist2(e, &c) < 1e-4);
            if !dup {
                centroids.push(c);
            }
        }

        // Precompute the equal-weight pairwise sum table.
        let mut sum_table = vec![0u8; CODEBOOK_SIZE * CODEBOOK_SIZE];
        for a in 0..CODEBOOK_SIZE {
            for b in a..CODEBOOK_SIZE {
                let mut avg = [0.0; NUM_SYMBOLS];
                for k in 0..NUM_SYMBOLS {
                    avg[k] = 0.5 * (centroids[a][k] + centroids[b][k]);
                }
                let code = nearest(&centroids, &avg);
                sum_table[a * CODEBOOK_SIZE + b] = code;
                sum_table[b * CODEBOOK_SIZE + a] = code;
            }
        }
        Codebook {
            centroids,
            sum_table,
        }
    }

    /// The centroid distribution for a codeword.
    pub fn centroid(&self, code: u8) -> &[f64; NUM_SYMBOLS] {
        &self.centroids[code as usize]
    }

    /// Nearest codeword to a (not necessarily normalised) count vector —
    /// the "somewhat exhaustive search" the paper mentions.
    pub fn encode(&self, counts: &[f64; NUM_SYMBOLS]) -> u8 {
        let total: f64 = counts.iter().sum();
        if total <= 0.0 {
            // Zero evidence encodes as the uniform state; the accumulator
            // never reads it back because total stays 0.
            return 0;
        }
        let mut norm = [0.0; NUM_SYMBOLS];
        for k in 0..NUM_SYMBOLS {
            norm[k] = counts[k] / total;
        }
        nearest(&self.centroids, &norm)
    }

    /// Table-lookup combination of two codewords (equal weights).
    pub fn combine(&self, a: u8, b: u8) -> u8 {
        self.sum_table[a as usize * CODEBOOK_SIZE + b as usize]
    }

    /// Bytes of the codebook's own tables (shared across all accumulators).
    pub fn table_bytes(&self) -> usize {
        self.centroids.len() * std::mem::size_of::<[f64; NUM_SYMBOLS]>() + self.sum_table.len()
    }
}

fn dist2(a: &[f64; NUM_SYMBOLS], b: &[f64; NUM_SYMBOLS]) -> f64 {
    let mut acc = 0.0;
    for k in 0..NUM_SYMBOLS {
        let d = a[k] - b[k];
        acc += d * d;
    }
    acc
}

fn nearest(centroids: &[[f64; NUM_SYMBOLS]], target: &[f64; NUM_SYMBOLS]) -> u8 {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = dist2(c, target);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best as u8
}

/// One `f32` total + one codeword byte per position.
#[derive(Debug, Clone, PartialEq)]
pub struct CentDiscAccumulator {
    totals: Vec<f32>,
    codes: Vec<u8>,
}

impl GenomeAccumulator for CentDiscAccumulator {
    type Wire = (Vec<f32>, Vec<u8>);

    fn new(len: usize) -> Self {
        CentDiscAccumulator {
            totals: vec![0.0; len],
            codes: vec![0; len],
        }
    }

    fn len(&self) -> usize {
        self.totals.len()
    }

    fn add(&mut self, pos: usize, delta: &[f64; NUM_SYMBOLS]) {
        debug_assert!(delta.iter().all(|&d| d >= 0.0));
        let delta_total: f64 = delta.iter().sum();
        if delta_total <= 0.0 {
            return;
        }
        let book = Codebook::shared();
        let delta_code = book.encode(delta);
        if self.totals[pos] <= 0.0 {
            self.codes[pos] = delta_code;
        } else {
            // The paper's fast path: combine through the precomputed
            // equal-weight sum table. This is where the accuracy goes.
            self.codes[pos] = book.combine(self.codes[pos], delta_code);
        }
        self.totals[pos] += delta_total as f32;
    }

    fn counts(&self, pos: usize) -> [f64; NUM_SYMBOLS] {
        let total = self.totals[pos] as f64;
        if total <= 0.0 {
            return [0.0; NUM_SYMBOLS];
        }
        let c = Codebook::shared().centroid(self.codes[pos]);
        let mut out = [0.0; NUM_SYMBOLS];
        for k in 0..NUM_SYMBOLS {
            out[k] = c[k] * total;
        }
        out
    }

    fn total(&self, pos: usize) -> f64 {
        self.totals[pos] as f64
    }

    fn to_wire(&self) -> Self::Wire {
        (self.totals.clone(), self.codes.clone())
    }

    fn merge_wire(&mut self, wire: &Self::Wire) {
        let (totals, codes) = wire;
        assert_eq!(totals.len(), self.len());
        assert_eq!(codes.len(), self.len());
        let book = Codebook::shared();
        for pos in 0..self.len() {
            if totals[pos] <= 0.0 {
                continue;
            }
            if self.totals[pos] <= 0.0 {
                self.codes[pos] = codes[pos];
            } else {
                self.codes[pos] = book.combine(self.codes[pos], codes[pos]);
            }
            self.totals[pos] += totals[pos];
        }
    }

    fn heap_bytes(&self) -> usize {
        self.totals.capacity() * std::mem::size_of::<f32>() + self.codes.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::test_support::conformance;

    #[test]
    fn conforms() {
        // The codebook caps peaks at 0.84 and quantises coarsely; the
        // conformance suite's dominant-component checks still pass at this
        // generous tolerance.
        conformance::<CentDiscAccumulator>(0.2, 0.8);
    }

    #[test]
    fn codebook_is_full_and_normalised() {
        let book = Codebook::shared();
        assert_eq!(book.centroids.len(), CODEBOOK_SIZE);
        for (i, c) in book.centroids.iter().enumerate() {
            let s: f64 = c.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "centroid {i} sums to {s}");
            assert!(c.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn codebook_has_no_duplicates() {
        let book = Codebook::shared();
        for i in 0..CODEBOOK_SIZE {
            for j in (i + 1)..CODEBOOK_SIZE {
                assert!(
                    dist2(&book.centroids[i], &book.centroids[j]) > 1e-6,
                    "centroids {i} and {j} coincide"
                );
            }
        }
    }

    #[test]
    fn sum_table_is_closed_and_symmetric() {
        let book = Codebook::shared();
        for a in (0..CODEBOOK_SIZE).step_by(17) {
            for b in (0..CODEBOOK_SIZE).step_by(13) {
                let ab = book.combine(a as u8, b as u8);
                let ba = book.combine(b as u8, a as u8);
                assert_eq!(ab, ba);
            }
            // Combining a codeword with itself must be itself (the average
            // of c and c is c, and c is its own nearest centroid).
            assert_eq!(book.combine(a as u8, a as u8), a as u8);
        }
    }

    #[test]
    fn encode_decode_identity_on_centroids() {
        let book = Codebook::shared();
        for code in (0..CODEBOOK_SIZE).step_by(7) {
            let c = *book.centroid(code as u8);
            assert_eq!(book.encode(&c), code as u8);
        }
    }

    #[test]
    fn paper_example_states_are_representable() {
        let book = Codebook::shared();
        // Single 'a': γ = [0.84, 0.04, 0.04, 0.04, 0.04].
        let code = book.encode(&[0.84, 0.04, 0.04, 0.04, 0.04]);
        let c = book.centroid(code);
        assert!((c[0] - 0.84).abs() < 1e-9, "exact single-a state: {c:?}");
        // a→g SNP: γ = [0.28, 0.08, 0.48, 0.08, 0.08].
        let code = book.encode(&[0.28, 0.08, 0.48, 0.08, 0.08]);
        let c = book.centroid(code);
        assert!(c[2] > c[0] && c[0] > c[1], "transition mix shape: {c:?}");
    }

    #[test]
    fn exponential_forgetting_is_reproduced() {
        // 19 clean 'A' reads followed by one erroneous 'G' read: with
        // equal-weight table addition the final distribution weights the
        // last read at ~50%, wildly over-representing G. This is the
        // Table III accuracy pathology, asserted explicitly.
        let mut a = CentDiscAccumulator::new(1);
        for _ in 0..19 {
            a.add(0, &[0.97, 0.01, 0.01, 0.01, 0.0]);
        }
        a.add(0, &[0.01, 0.01, 0.97, 0.01, 0.0]);
        let c = a.counts(0);
        let g_fraction = c[2] / a.total(0);
        assert!(
            g_fraction > 0.25,
            "one late G read should dominate ~half the mass: {c:?}"
        );
        // A faithful accumulator would put G at ~1/20 = 5%.
    }

    #[test]
    fn totals_are_exact_even_though_distributions_are_not() {
        let mut a = CentDiscAccumulator::new(1);
        for _ in 0..50 {
            a.add(0, &[0.5, 0.5, 0.0, 0.0, 0.0]);
        }
        assert!((a.total(0) - 50.0).abs() < 1e-3);
    }

    #[test]
    fn merge_uses_the_table() {
        let mut a = CentDiscAccumulator::new(2);
        let mut b = CentDiscAccumulator::new(2);
        a.add(0, &[1.0, 0.0, 0.0, 0.0, 0.0]);
        b.add(0, &[0.0, 0.0, 1.0, 0.0, 0.0]);
        b.add(1, &[0.0, 1.0, 0.0, 0.0, 0.0]);
        a.merge_from(&b);
        assert!((a.total(0) - 2.0).abs() < 1e-6);
        let c = a.counts(0);
        // Equal-weight A+G average → a transition-mix codeword.
        assert!(c[0] > 0.2 && c[2] > 0.2, "A/G mixture expected: {c:?}");
        // Position empty on one side copies the other side's codeword.
        let c1 = a.counts(1);
        assert!(c1[1] / a.total(1) > 0.8, "{c1:?}");
    }

    #[test]
    fn heap_bytes_is_five_per_base() {
        let a = CentDiscAccumulator::new(1000);
        assert_eq!(a.heap_bytes(), 5_000);
        assert!(Codebook::shared().table_bytes() > 65_000);
    }
}
