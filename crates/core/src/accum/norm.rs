//! The reference accumulator: five `f32` per genome position.
//!
//! This is the layout the paper's footnote prices at ~100 GB for the whole
//! human genome — exact (up to `f32` rounding) but memory-hungry, which is
//! what motivates the two discretized variants.

use super::{GenomeAccumulator, NUM_SYMBOLS};

/// Five packed `f32` counts per position.
#[derive(Debug, Clone, PartialEq)]
pub struct NormAccumulator {
    counts: Vec<[f32; NUM_SYMBOLS]>,
}

impl GenomeAccumulator for NormAccumulator {
    type Wire = Vec<f32>;

    fn new(len: usize) -> Self {
        NormAccumulator {
            counts: vec![[0.0; NUM_SYMBOLS]; len],
        }
    }

    fn len(&self) -> usize {
        self.counts.len()
    }

    fn add(&mut self, pos: usize, delta: &[f64; NUM_SYMBOLS]) {
        debug_assert!(delta.iter().all(|&d| d >= 0.0));
        let slot = &mut self.counts[pos];
        for k in 0..NUM_SYMBOLS {
            slot[k] += delta[k] as f32;
        }
    }

    fn counts(&self, pos: usize) -> [f64; NUM_SYMBOLS] {
        let c = &self.counts[pos];
        [
            c[0] as f64,
            c[1] as f64,
            c[2] as f64,
            c[3] as f64,
            c[4] as f64,
        ]
    }

    fn to_wire(&self) -> Vec<f32> {
        let mut wire = Vec::with_capacity(self.counts.len() * NUM_SYMBOLS);
        for c in &self.counts {
            wire.extend_from_slice(c);
        }
        wire
    }

    fn merge_wire(&mut self, wire: &Vec<f32>) {
        assert_eq!(wire.len(), self.counts.len() * NUM_SYMBOLS);
        for (pos, chunk) in wire.chunks_exact(NUM_SYMBOLS).enumerate() {
            let slot = &mut self.counts[pos];
            for k in 0..NUM_SYMBOLS {
                slot[k] += chunk[k];
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        self.counts.capacity() * std::mem::size_of::<[f32; NUM_SYMBOLS]>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::test_support::conformance;

    #[test]
    fn conforms() {
        conformance::<NormAccumulator>(1e-6, 0.95);
    }

    #[test]
    fn add_is_exact_up_to_f32() {
        let mut a = NormAccumulator::new(3);
        a.add(0, &[0.1, 0.2, 0.3, 0.4, 0.0]);
        a.add(0, &[0.1, 0.2, 0.3, 0.4, 0.0]);
        let c = a.counts(0);
        for (k, expect) in [0.2, 0.4, 0.6, 0.8, 0.0].iter().enumerate() {
            assert!((c[k] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn wire_round_trip_merges_exactly() {
        let mut a = NormAccumulator::new(5);
        a.add(4, &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut b = NormAccumulator::new(5);
        b.merge_wire(&a.to_wire());
        assert_eq!(a, b);
    }

    #[test]
    fn merge_is_addition() {
        let mut a = NormAccumulator::new(2);
        let mut b = NormAccumulator::new(2);
        a.add(0, &[1.0, 0.0, 0.0, 0.0, 0.0]);
        b.add(0, &[0.0, 2.0, 0.0, 0.0, 0.0]);
        a.merge_from(&b);
        assert_eq!(a.counts(0), [1.0, 2.0, 0.0, 0.0, 0.0]);
        assert_eq!(a.total(0), 3.0);
    }

    #[test]
    fn heap_bytes_is_twenty_per_base() {
        let a = NormAccumulator::new(1000);
        assert_eq!(a.heap_bytes(), 20_000);
    }

    #[test]
    #[should_panic]
    fn merge_length_mismatch_panics() {
        let mut a = NormAccumulator::new(2);
        a.merge_wire(&vec![0.0; 5]);
    }
}
