//! Nucleotide-byte discretization (paper Section VI-B.1).
//!
//! Per genome position: one `f32` running total plus five bytes holding the
//! *proportion* of each symbol. The paper's worked examples
//! (`[255,0,0,0,0]` for one `a`; `[128,0,0,127,0]` for one `a` and one `t`)
//! show the byte vector summing to 255, so proportions are stored as
//! `round(fraction × 255)` — we follow the examples rather than the prose's
//! "divide by 128" (see DESIGN.md §2).
//!
//! Updating decodes the bytes to real counts (`byte/255 × total`), adds the
//! new evidence, then re-encodes against the new total with
//! largest-remainder rounding so the bytes always sum to exactly 255. The
//! paper's saturation pathology falls out naturally: once the total is
//! large, a single read's contribution is below the quantum `total/255`
//! and rounds away.

use super::{GenomeAccumulator, NUM_SYMBOLS};

/// One `f32` total + five proportion bytes per position.
#[derive(Debug, Clone, PartialEq)]
pub struct CharDiscAccumulator {
    totals: Vec<f32>,
    bytes: Vec<[u8; NUM_SYMBOLS]>,
}

/// Encode real counts (summing to `total`) as proportion bytes summing to
/// exactly 255, by largest-remainder apportionment.
pub(crate) fn encode_bytes(counts: &[f64; NUM_SYMBOLS], total: f64) -> [u8; NUM_SYMBOLS] {
    if total <= 0.0 {
        return [0; NUM_SYMBOLS];
    }
    let mut floors = [0u16; NUM_SYMBOLS];
    let mut remainders = [0.0f64; NUM_SYMBOLS];
    let mut assigned = 0u16;
    for k in 0..NUM_SYMBOLS {
        let exact = counts[k].max(0.0) / total * 255.0;
        let fl = exact.floor().min(255.0);
        floors[k] = fl as u16;
        remainders[k] = exact - fl;
        assigned += floors[k];
    }
    // Distribute the leftover units to the largest remainders.
    let mut order = [0usize, 1, 2, 3, 4];
    order.sort_by(|&a, &b| remainders[b].total_cmp(&remainders[a]).then(a.cmp(&b)));
    let mut leftover = 255u16.saturating_sub(assigned);
    for &k in &order {
        if leftover == 0 {
            break;
        }
        floors[k] += 1;
        leftover -= 1;
    }
    let mut out = [0u8; NUM_SYMBOLS];
    for k in 0..NUM_SYMBOLS {
        out[k] = floors[k].min(255) as u8;
    }
    out
}

fn decode(bytes: &[u8; NUM_SYMBOLS], total: f32) -> [f64; NUM_SYMBOLS] {
    let total = total as f64;
    let mut out = [0.0; NUM_SYMBOLS];
    if total <= 0.0 {
        return out;
    }
    for k in 0..NUM_SYMBOLS {
        out[k] = bytes[k] as f64 / 255.0 * total;
    }
    out
}

impl GenomeAccumulator for CharDiscAccumulator {
    /// Wire form: per-position total followed by its five bytes, flattened
    /// as `(totals, bytes)`.
    type Wire = (Vec<f32>, Vec<u8>);

    fn new(len: usize) -> Self {
        CharDiscAccumulator {
            totals: vec![0.0; len],
            bytes: vec![[0; NUM_SYMBOLS]; len],
        }
    }

    fn len(&self) -> usize {
        self.totals.len()
    }

    fn add(&mut self, pos: usize, delta: &[f64; NUM_SYMBOLS]) {
        debug_assert!(delta.iter().all(|&d| d >= 0.0));
        let delta_total: f64 = delta.iter().sum();
        if delta_total <= 0.0 {
            return;
        }
        let mut real = decode(&self.bytes[pos], self.totals[pos]);
        for k in 0..NUM_SYMBOLS {
            real[k] += delta[k];
        }
        let new_total = self.totals[pos] as f64 + delta_total;
        self.bytes[pos] = encode_bytes(&real, new_total);
        self.totals[pos] = new_total as f32;
    }

    fn counts(&self, pos: usize) -> [f64; NUM_SYMBOLS] {
        decode(&self.bytes[pos], self.totals[pos])
    }

    fn total(&self, pos: usize) -> f64 {
        self.totals[pos] as f64
    }

    fn to_wire(&self) -> Self::Wire {
        let mut bytes = Vec::with_capacity(self.bytes.len() * NUM_SYMBOLS);
        for b in &self.bytes {
            bytes.extend_from_slice(b);
        }
        (self.totals.clone(), bytes)
    }

    fn merge_wire(&mut self, wire: &Self::Wire) {
        let (totals, bytes) = wire;
        assert_eq!(totals.len(), self.len());
        assert_eq!(bytes.len(), self.len() * NUM_SYMBOLS);
        for pos in 0..self.len() {
            let other_total = totals[pos];
            if other_total <= 0.0 {
                continue;
            }
            let mut other_bytes = [0u8; NUM_SYMBOLS];
            other_bytes.copy_from_slice(&bytes[pos * NUM_SYMBOLS..(pos + 1) * NUM_SYMBOLS]);
            // The reduction phase: decode both sides to real space, add,
            // re-encode (paper Section VI-B.2's description of the CHARDISC
            // MPI sum).
            let mut real = decode(&self.bytes[pos], self.totals[pos]);
            let other = decode(&other_bytes, other_total);
            for k in 0..NUM_SYMBOLS {
                real[k] += other[k];
            }
            let new_total = self.totals[pos] as f64 + other_total as f64;
            self.bytes[pos] = encode_bytes(&real, new_total);
            self.totals[pos] = new_total as f32;
        }
    }

    fn heap_bytes(&self) -> usize {
        self.totals.capacity() * std::mem::size_of::<f32>() + self.bytes.capacity() * NUM_SYMBOLS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::test_support::conformance;

    #[test]
    fn conforms() {
        // Quantum is 1/255 of the total; tolerance reflects that.
        conformance::<CharDiscAccumulator>(2.0 / 255.0, 0.95);
    }

    #[test]
    fn paper_worked_examples() {
        // One 'a': φ = [255, 0, 0, 0, 0].
        let mut a = CharDiscAccumulator::new(1);
        a.add(0, &[1.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(a.bytes[0], [255, 0, 0, 0, 0]);
        // One 'a' and one 't': φ = {128, 127} split.
        a.add(0, &[0.0, 0.0, 0.0, 1.0, 0.0]);
        let b = a.bytes[0];
        assert_eq!(b[0] as u16 + b[3] as u16, 255);
        assert!(b[0] == 128 || b[0] == 127, "near-even split: {b:?}");
        // 254 a's and one t: φ = [254, 0, 0, 1, 0].
        let mut a = CharDiscAccumulator::new(1);
        a.add(0, &[254.0, 0.0, 0.0, 0.0, 0.0]);
        a.add(0, &[0.0, 0.0, 0.0, 1.0, 0.0]);
        assert_eq!(a.bytes[0], [254, 0, 0, 1, 0]);
    }

    #[test]
    fn bytes_always_sum_to_255_when_nonzero() {
        let mut a = CharDiscAccumulator::new(1);
        let deltas = [
            [0.3, 0.3, 0.2, 0.1, 0.1],
            [0.01, 0.0, 0.9, 0.0, 0.09],
            [1.0, 1.0, 1.0, 1.0, 1.0],
            [0.2, 0.0, 0.0, 0.0, 0.0],
        ];
        for d in &deltas {
            a.add(0, d);
            let sum: u16 = a.bytes[0].iter().map(|&b| b as u16).sum();
            assert_eq!(sum, 255, "bytes {:?}", a.bytes[0]);
        }
    }

    #[test]
    fn saturation_drowns_sub_quantum_signals() {
        // The documented pathology: once the total is large, the byte
        // quantum is `total/255`, and a contribution below half a quantum
        // rounds away entirely (a full unit survives — rounded up to one
        // quantum — but a weak partial-probability contribution does not).
        let mut a = CharDiscAccumulator::new(1);
        for _ in 0..1000 {
            a.add(0, &[1.0, 0.0, 0.0, 0.0, 0.0]);
        }
        // Quantum ≈ 1000/255 ≈ 3.9; 0.2 units of T is far below half of it.
        a.add(0, &[0.0, 0.0, 0.0, 0.2, 0.0]);
        let c = a.counts(0);
        assert_eq!(c[3], 0.0, "sub-quantum signal should vanish: {c:?}");

        // Contrast: at low totals the same 0.2-unit signal survives.
        let mut b = CharDiscAccumulator::new(1);
        for _ in 0..10 {
            b.add(0, &[1.0, 0.0, 0.0, 0.0, 0.0]);
        }
        b.add(0, &[0.0, 0.0, 0.0, 0.2, 0.0]);
        assert!(b.counts(0)[3] > 0.1, "{:?}", b.counts(0));
    }

    #[test]
    fn moderate_coverage_keeps_minor_alleles() {
        // At the paper's recommended 10–40x coverage the quantum is small
        // enough that a heterozygous 50/50 site survives intact.
        let mut a = CharDiscAccumulator::new(1);
        for i in 0..20 {
            if i % 2 == 0 {
                a.add(0, &[1.0, 0.0, 0.0, 0.0, 0.0]);
            } else {
                a.add(0, &[0.0, 0.0, 1.0, 0.0, 0.0]);
            }
        }
        let c = a.counts(0);
        assert!((c[0] - 10.0).abs() < 0.2, "{c:?}");
        assert!((c[2] - 10.0).abs() < 0.2, "{c:?}");
    }

    #[test]
    fn merge_pools_proportions() {
        let mut a = CharDiscAccumulator::new(1);
        let mut b = CharDiscAccumulator::new(1);
        for _ in 0..6 {
            a.add(0, &[1.0, 0.0, 0.0, 0.0, 0.0]);
            b.add(0, &[0.0, 1.0, 0.0, 0.0, 0.0]);
        }
        a.merge_from(&b);
        assert!((a.total(0) - 12.0).abs() < 1e-4);
        let c = a.counts(0);
        assert!(
            (c[0] - 6.0).abs() < 0.1 && (c[1] - 6.0).abs() < 0.1,
            "{c:?}"
        );
    }

    #[test]
    fn heap_bytes_is_nine_per_base() {
        let a = CharDiscAccumulator::new(1000);
        assert_eq!(a.heap_bytes(), 9_000);
    }

    #[test]
    fn encode_handles_degenerate_inputs() {
        assert_eq!(encode_bytes(&[0.0; 5], 0.0), [0; 5]);
        let b = encode_bytes(&[1.0, 0.0, 0.0, 0.0, 0.0], 1.0);
        assert_eq!(b, [255, 0, 0, 0, 0]);
        let b = encode_bytes(&[0.2; 5], 1.0);
        assert_eq!(b.iter().map(|&x| x as u16).sum::<u16>(), 255);
    }
}
