//! Fixed-point accumulator: order-independent, bit-exact parallel sums.
//!
//! `NORM` stores f32 components, so the result of a parallel run depends
//! on the order partial accumulators are folded — fine for the MPI drivers
//! (which fix a rank order) but wrong for a work-stealing streaming engine
//! where deposit order is scheduling-dependent. `FIXED` stores each
//! component as a `u64` count of 2⁻³² quanta; integer addition commutes
//! and associates exactly, so any interleaving of deposits (and any
//! checkpoint/resume split) produces bit-identical counts, and therefore
//! bit-identical SNP calls. The cost is 40 B/base, double `NORM`.

use super::{GenomeAccumulator, NUM_SYMBOLS};

/// One fixed-point quantum is 2⁻³²; a unit of evidence is `SCALE` quanta.
const SCALE: f64 = 4_294_967_296.0; // 2^32

/// Order-independent fixed-point accumulator (`u64` per symbol).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedAccumulator {
    /// `len * NUM_SYMBOLS` quanta counts, position-major.
    cells: Vec<u64>,
}

impl GenomeAccumulator for FixedAccumulator {
    type Wire = Vec<u64>;

    fn new(len: usize) -> Self {
        FixedAccumulator {
            cells: vec![0; len * NUM_SYMBOLS],
        }
    }

    fn len(&self) -> usize {
        self.cells.len() / NUM_SYMBOLS
    }

    fn add(&mut self, pos: usize, delta: &[f64; NUM_SYMBOLS]) {
        let base = pos * NUM_SYMBOLS;
        for (k, &d) in delta.iter().enumerate() {
            debug_assert!(d >= 0.0, "negative evidence component");
            self.cells[base + k] += (d * SCALE).round() as u64;
        }
    }

    fn counts(&self, pos: usize) -> [f64; NUM_SYMBOLS] {
        let base = pos * NUM_SYMBOLS;
        let mut out = [0.0; NUM_SYMBOLS];
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.cells[base + k] as f64 / SCALE;
        }
        out
    }

    fn to_wire(&self) -> Self::Wire {
        self.cells.clone()
    }

    fn merge_wire(&mut self, wire: &Self::Wire) {
        assert_eq!(wire.len(), self.cells.len(), "accumulator length mismatch");
        for (c, w) in self.cells.iter_mut().zip(wire) {
            *c += w;
        }
    }

    fn heap_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance() {
        // Quantisation error per add is ≤ 2⁻³³ per component.
        crate::accum::test_support::conformance::<FixedAccumulator>(1e-9, 0.999);
    }

    #[test]
    fn merges_commute_bit_exactly() {
        // The property NORM lacks: any fold order gives identical cells.
        let deltas = [
            [0.1, 0.2, 0.3, 0.05, 0.35],
            [0.7, 0.1, 0.1, 0.1, 0.0],
            [1e-9, 0.5, 0.25, 0.125, 0.0625],
        ];
        let mut parts: Vec<FixedAccumulator> = deltas
            .iter()
            .map(|d| {
                let mut a = FixedAccumulator::new(4);
                a.add(1, d);
                a.add(3, d);
                a
            })
            .collect();

        let mut forward = FixedAccumulator::new(4);
        for p in &parts {
            forward.merge_from(p);
        }
        let mut backward = FixedAccumulator::new(4);
        parts.reverse();
        for p in &parts {
            backward.merge_from(p);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.cells, backward.cells);
    }

    #[test]
    fn heap_accounting() {
        assert_eq!(FixedAccumulator::new(100).heap_bytes(), 100 * 5 * 8);
    }
}
