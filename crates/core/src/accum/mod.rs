//! Genome-length probability accumulators (paper Section VI-B).
//!
//! Every genome position accumulates a five-component evidence vector
//! `(z_A, z_C, z_G, z_T, z_gap)` summed over all reads. The paper ships
//! three storage layouts trading memory for fidelity:
//!
//! | mode       | per-base storage              | behaviour |
//! |------------|-------------------------------|-----------|
//! | `NORM`     | five `f32` (20 B)             | exact (up to f32) |
//! | `CHARDISC` | one `f32` total + five bytes (9 B) | proportions quantised to 1/255; increments below the quantum vanish once totals grow |
//! | `CENTDISC` | one `f32` total + one codeword byte (5 B) | distribution snapped to the nearest of 256 biologically-weighted centroids after every update; merges via a precomputed codeword-sum table |
//!
//! The trait's `Wire` associated type is the flat representation the
//! message-passing drivers ship between ranks; `merge_wire` implements the
//! paper's MPI reduction phase for each layout (including CENTDISC's
//! table-lookup merge, whose equal-weight approximation is part of why its
//! accuracy collapses in Table III).

mod centdisc;
mod chardisc;
mod fixed;
mod norm;

pub use centdisc::{CentDiscAccumulator, Codebook};
pub use chardisc::CharDiscAccumulator;
pub use fixed::FixedAccumulator;
pub use norm::NormAccumulator;

use mpisim::WireSize;

/// Number of tracked symbols per genome position (A, C, G, T, gap).
pub const NUM_SYMBOLS: usize = 5;

/// A 64-bit avalanche mix (the SplitMix64 finalizer): every input bit
/// flips each output bit with probability ≈ ½, so XOR-combining hashes of
/// distinct positions cannot systematically cancel.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash of one genome position's decoded evidence vector. The f64 *bit
/// patterns* feed the hash, so two equal digests mean bit-identical
/// decoded state, not merely approximately equal state.
#[inline]
pub fn position_hash(pos: u64, counts: &[f64; NUM_SYMBOLS]) -> u64 {
    let mut h = mix64(pos ^ 0x243F_6A88_85A3_08D3);
    for v in counts {
        h = mix64(h ^ v.to_bits());
    }
    h
}

/// A genome-length accumulator of per-position evidence vectors.
pub trait GenomeAccumulator: Send + Sized {
    /// Flat representation shipped between ranks by the MPI drivers.
    type Wire: WireSize + Clone + Send + 'static;

    /// Create an all-zero accumulator over `len` positions.
    fn new(len: usize) -> Self;

    /// Number of genome positions covered.
    fn len(&self) -> usize;

    /// True for a zero-length accumulator.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Add an evidence vector at one position. Components must be
    /// non-negative.
    fn add(&mut self, pos: usize, delta: &[f64; NUM_SYMBOLS]);

    /// The accumulated (decoded) counts at a position.
    fn counts(&self, pos: usize) -> [f64; NUM_SYMBOLS];

    /// Total accumulated mass at a position.
    fn total(&self, pos: usize) -> f64 {
        self.counts(pos).iter().sum()
    }

    /// Export to the wire representation.
    fn to_wire(&self) -> Self::Wire;

    /// Fold another accumulator's wire export into this one (the MPI
    /// reduction step). Implementations may be lossy where the paper's are
    /// (CHARDISC re-quantises; CENTDISC uses the codeword-sum table).
    fn merge_wire(&mut self, wire: &Self::Wire);

    /// Heap bytes used by this accumulator (for Table II / III reporting).
    fn heap_bytes(&self) -> usize;

    /// Order-independent fingerprint of the decoded state: the XOR over
    /// every position of [`position_hash`] at global position
    /// `offset + pos`. Equal digests mean bit-identical decoded counts at
    /// every position. Because XOR commutes, digests of disjoint shards
    /// (each passed its global start as `offset`) XOR together into the
    /// digest of the full-genome accumulator — which is how the
    /// genome-split driver reports a digest comparable to the serial one.
    fn digest_with_offset(&self, offset: usize) -> u64 {
        let mut h = 0u64;
        for pos in 0..self.len() {
            h ^= position_hash((offset + pos) as u64, &self.counts(pos));
        }
        h
    }

    /// [`GenomeAccumulator::digest_with_offset`] at offset 0.
    fn digest(&self) -> u64 {
        self.digest_with_offset(0)
    }

    /// Convenience: merge a sibling accumulator via its wire form.
    fn merge_from(&mut self, other: &Self) {
        self.merge_wire(&other.to_wire());
    }
}

/// Which accumulator layout to run (paper Table II/III row names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccumulatorMode {
    /// Five `f32` per base — the reference layout.
    #[default]
    Norm,
    /// Nucleotide-byte discretization.
    CharDisc,
    /// Centroid discretization.
    CentDisc,
    /// Fixed-point `u64` quanta — integer adds commute, so every parallel
    /// decomposition is bit-identical to serial (the conformance domain).
    Fixed,
}

impl AccumulatorMode {
    /// Paper row name.
    pub fn name(self) -> &'static str {
        match self {
            AccumulatorMode::Norm => "NORM",
            AccumulatorMode::CharDisc => "CHARDISC",
            AccumulatorMode::CentDisc => "CENTDISC",
            AccumulatorMode::Fixed => "FIXED",
        }
    }

    /// Accumulator bytes per genome base of this layout (the Table II
    /// model; excludes genome and index storage).
    pub fn bytes_per_base(self) -> usize {
        match self {
            AccumulatorMode::Norm => NUM_SYMBOLS * std::mem::size_of::<f32>(),
            AccumulatorMode::CharDisc => std::mem::size_of::<f32>() + NUM_SYMBOLS,
            AccumulatorMode::CentDisc => std::mem::size_of::<f32>() + 1,
            AccumulatorMode::Fixed => NUM_SYMBOLS * std::mem::size_of::<u64>(),
        }
    }
}

impl std::fmt::Display for AccumulatorMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// Shared conformance suite run against every accumulator type.
    /// `purity` is the minimum fraction a pure input signal must retain
    /// after decoding (CENTDISC's codebook caps peaks at 0.84 by design).
    pub fn conformance<A: GenomeAccumulator>(tolerance: f64, purity: f64) {
        // Empty accumulator.
        let a = A::new(10);
        assert_eq!(a.len(), 10);
        assert!(!a.is_empty());
        for pos in 0..10 {
            assert_eq!(a.counts(pos), [0.0; 5]);
        }

        // Single add is recovered within tolerance.
        let mut a = A::new(4);
        a.add(2, &[0.9, 0.05, 0.03, 0.02, 0.0]);
        let c = a.counts(2);
        assert!((c.iter().sum::<f64>() - 1.0).abs() <= tolerance);
        assert!(c[0] > 0.8, "dominant component survives: {c:?}");
        assert_eq!(a.counts(1), [0.0; 5], "other positions untouched");

        // Repeated adds accumulate mass.
        let mut a = A::new(2);
        for _ in 0..10 {
            a.add(0, &[1.0, 0.0, 0.0, 0.0, 0.0]);
        }
        let c = a.counts(0);
        assert!((a.total(0) - 10.0).abs() <= 10.0 * tolerance + 1e-6);
        assert!(c[0] / a.total(0) >= purity, "pure signal stays pure: {c:?}");

        // Wire merge ≈ pooled adds for identical inputs.
        let mut x = A::new(3);
        let mut y = A::new(3);
        x.add(1, &[0.5, 0.5, 0.0, 0.0, 0.0]);
        y.add(1, &[0.5, 0.5, 0.0, 0.0, 0.0]);
        let mut merged = A::new(3);
        merged.merge_wire(&x.to_wire());
        merged.merge_wire(&y.to_wire());
        assert!((merged.total(1) - 2.0).abs() <= 2.0 * tolerance + 1e-6);
        let c = merged.counts(1);
        assert!(
            (c[0] - c[1]).abs() <= 2.0 * tolerance + 1e-6,
            "symmetric mix preserved: {c:?}"
        );

        // Heap accounting is non-trivial.
        assert!(A::new(1000).heap_bytes() > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_and_sizes() {
        assert_eq!(AccumulatorMode::Norm.name(), "NORM");
        assert_eq!(AccumulatorMode::Norm.bytes_per_base(), 20);
        assert_eq!(AccumulatorMode::CharDisc.bytes_per_base(), 9);
        assert_eq!(AccumulatorMode::CentDisc.bytes_per_base(), 5);
        assert_eq!(AccumulatorMode::Fixed.bytes_per_base(), 40);
        assert_eq!(AccumulatorMode::Fixed.name(), "FIXED");
        assert_eq!(AccumulatorMode::CentDisc.to_string(), "CENTDISC");
    }
}
