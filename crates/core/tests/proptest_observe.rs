//! Property tests for the observability event codec: every event the
//! generator can produce serializes to exactly one valid flat-JSON line,
//! and the line parses back to the same event (with non-finite floats
//! sanitised to `0.0`, the documented behaviour of `to_json_line`).

use gnumap_core::observe::{Event, EventSink, JsonLinesSink, Stage};
use proptest::prelude::*;

/// Arbitrary short strings over the full scalar-value range, biased to
/// include the characters the escaper must handle (quotes, backslashes,
/// controls, non-ASCII).
fn text() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..0x11_0000, 0..12)
        .prop_map(|codes| codes.into_iter().filter_map(char::from_u32).collect())
}

/// Seconds fields: mostly finite (any sign and magnitude), occasionally
/// non-finite so the sanitisation path is exercised.
fn secs() -> impl Strategy<Value = f64> {
    (0u8..8, -1.0e12f64..1.0e12).prop_map(|(tag, v)| match tag {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => v,
    })
}

/// Counter fields. The codec parses numbers through f64, so integers are
/// exact only up to 2^53 — far beyond any real read count, and the bound
/// this generator (and the codec's contract) honours.
fn counter() -> impl Strategy<Value = u64> {
    0u64..(1u64 << 53)
}

fn stage() -> impl Strategy<Value = Stage> {
    (0u8..4).prop_map(|i| [Stage::Index, Stage::Map, Stage::Reduce, Stage::Call][i as usize])
}

fn event() -> impl Strategy<Value = Event> {
    (
        (0u8..6, text(), text(), stage()),
        (counter(), counter(), counter(), counter(), counter()),
        (secs(), secs()),
    )
        .prop_map(
            |((tag, a, b, stage), (n1, n2, n3, n4, n5), (f1, f2))| match tag {
                0 => Event::RunStart {
                    driver: a,
                    accumulator: b,
                },
                1 => Event::StageStart { stage },
                2 => Event::StageEnd {
                    stage,
                    wall_secs: f1,
                    cpu_secs: f2,
                },
                3 => Event::Batch {
                    worker: n1,
                    reads: n2,
                    mapped: n3,
                    candidates: n4,
                    deposited_columns: n5,
                },
                4 => Event::Checkpoint {
                    cursor: n1,
                    reads_mapped: n2,
                },
                _ => Event::RunEnd {
                    reads_processed: n1,
                    reads_mapped: n2,
                    calls: n3,
                    wall_secs: f1,
                },
            },
        )
}

/// What `to_json_line` promises to preserve: the event itself, except
/// that non-finite floats become `0.0` (JSON has no NaN/Inf).
fn sanitised(event: &Event) -> Event {
    let fix = |v: f64| if v.is_finite() { v } else { 0.0 };
    match event.clone() {
        Event::StageEnd {
            stage,
            wall_secs,
            cpu_secs,
        } => Event::StageEnd {
            stage,
            wall_secs: fix(wall_secs),
            cpu_secs: fix(cpu_secs),
        },
        Event::RunEnd {
            reads_processed,
            reads_mapped,
            calls,
            wall_secs,
        } => Event::RunEnd {
            reads_processed,
            reads_mapped,
            calls,
            wall_secs: fix(wall_secs),
        },
        other => other,
    }
}

proptest! {
    #[test]
    fn every_event_serializes_to_one_parseable_line(e in event()) {
        let line = e.to_json_line();
        prop_assert!(!line.contains('\n'), "line breaks corrupt JSON-lines: {line:?}");
        prop_assert!(line.starts_with("{\"event\":\""), "bad prefix: {line}");
        prop_assert!(line.ends_with('}'), "bad suffix: {line}");
        let back = Event::parse_json_line(&line)
            .map_err(|err| TestCaseError::fail(format!("{err} on {line}")))?;
        prop_assert_eq!(back, sanitised(&e));
    }

    #[test]
    fn event_sequences_round_trip_through_the_json_lines_sink(
        events in proptest::collection::vec(event(), 0..24)
    ) {
        let sink = JsonLinesSink::new(Vec::new());
        for e in &events {
            sink.record(e.clone());
        }
        let text = String::from_utf8(sink.into_writer()).expect("traces are UTF-8");
        let parsed: Vec<Event> = text
            .lines()
            .map(|l| Event::parse_json_line(l).expect(l))
            .collect();
        let expected: Vec<Event> = events.iter().map(sanitised).collect();
        prop_assert_eq!(parsed, expected);
    }

    #[test]
    fn kind_matches_the_wire_discriminant(e in event()) {
        let line = e.to_json_line();
        prop_assert!(
            line.starts_with(&format!("{{\"event\":\"{}\"", e.kind())),
            "kind {} missing from {line}",
            e.kind()
        );
    }
}
