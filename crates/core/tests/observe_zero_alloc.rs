//! Allocation audit for the disabled observer — the "zero cost when
//! disabled" promise, enforced. A counting `#[global_allocator]` wraps
//! the system allocator; emitting through `Observer::disabled()` must
//! perform **zero** heap allocations, because `emit` takes a closure and
//! never runs it without a sink. This lives in its own integration-test
//! binary so the global allocator hook and the single-threaded counter
//! discipline (one `#[test]` only) cannot interfere with other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// Only the measuring thread's allocations are counted: libtest spawns
// helper threads (output capture, timers) that may allocate mid-window,
// and a `Cell<bool>` TLS slot is const-initialized and destructor-free,
// so reading it inside the allocator cannot recurse.
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn on_measuring_thread() -> bool {
    COUNTING.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if on_measuring_thread() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if on_measuring_thread() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if on_measuring_thread() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Read the counter, arming counting for the calling thread — the first
/// call opens the measurement window, the second closes it.
fn allocation_count() -> u64 {
    COUNTING.with(|c| c.set(true));
    ALLOC_CALLS.load(Ordering::Relaxed)
}

#[test]
fn disabled_observer_emits_without_allocating() {
    use gnumap_core::observe::{Event, Observer, Stage, StageTimer};

    let observer = Observer::disabled();
    assert!(!observer.is_enabled());

    // Warmup outside the counted window (first-use runtime allocations,
    // e.g. clock setup, must not be charged to the observer).
    observer.emit(|| Event::StageStart { stage: Stage::Map });
    let t = StageTimer::start(&observer, Stage::Map);
    t.finish(&observer);

    let before = allocation_count();
    for i in 0..10_000u64 {
        // Each closure would allocate two Strings — if it ever ran.
        observer.emit(|| Event::RunStart {
            driver: format!("driver-{i}"),
            accumulator: "NORM".to_string(),
        });
        observer.emit(|| Event::Batch {
            worker: i,
            reads: 256,
            mapped: 250,
            candidates: 612,
            deposited_columns: 15_000,
        });
        // Cloning the handle (the per-worker pattern in the drivers) is
        // an Option<Arc> copy, not an allocation.
        let per_worker = observer.clone();
        per_worker.emit(|| Event::Checkpoint {
            cursor: i,
            reads_mapped: i,
        });
        // The stage timer reads clocks but must not touch the heap.
        let timer = StageTimer::start(&observer, Stage::Call);
        timer.finish(&observer);
    }
    let after = allocation_count();

    assert_eq!(
        after - before,
        0,
        "disabled observer must be allocation-free \
         ({} allocations over 40,000 emit sites)",
        after - before
    );
}
