//! Criterion microbenches for the k-mer index (build + query) and the LRT
//! SNP-statistic throughput.

use bench::WorkloadSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genome::index::{IndexConfig, KmerIndex};
use gnumap_stats::lrt::{diploid_lrt, monoploid_lrt, BaseCounts};
use std::hint::black_box;

fn bench_index_build(c: &mut Criterion) {
    let w = WorkloadSpec {
        genome_len: 200_000,
        snp_count: 1,
        coverage: 0.1,
        seed: 5,
    }
    .build();
    let mut group = c.benchmark_group("kmer_index_build_200kb");
    group.sample_size(20);
    for k in [8usize, 10, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    KmerIndex::build(
                        &w.reference,
                        IndexConfig {
                            k,
                            ..IndexConfig::default()
                        },
                    )
                    .unwrap()
                    .distinct_kmers(),
                )
            })
        });
    }
    group.finish();
}

fn bench_index_query(c: &mut Criterion) {
    let w = WorkloadSpec {
        genome_len: 200_000,
        snp_count: 1,
        coverage: 1.0,
        seed: 6,
    }
    .build();
    let index = KmerIndex::build(&w.reference, IndexConfig::default()).unwrap();
    let reads = &w.reads[..500.min(w.reads.len())];
    c.bench_function("kmer_index_seed_hits_500_reads", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for read in reads {
                hits += index.seed_hits(&read.seq).count();
            }
            black_box(hits)
        })
    });
}

fn bench_lrt(c: &mut Criterion) {
    // A realistic spread of per-position evidence vectors.
    let vectors: Vec<BaseCounts> = (0..1000)
        .map(|i| {
            let n = 5.0 + (i % 30) as f64;
            let major = n * 0.8;
            let rest = (n - major) / 4.0;
            let mut z = [rest; 5];
            z[i % 4] = major;
            BaseCounts::new(z)
        })
        .collect();
    c.bench_function("lrt_monoploid_1000_sites", |b| {
        b.iter(|| {
            let sig = vectors
                .iter()
                .filter(|z| monoploid_lrt(z).is_some_and(|o| o.significant(0.05)))
                .count();
            black_box(sig)
        })
    });
    c.bench_function("lrt_diploid_1000_sites", |b| {
        b.iter(|| {
            let sig = vectors
                .iter()
                .filter(|z| diploid_lrt(z).is_some_and(|o| o.significant(0.05)))
                .count();
            black_box(sig)
        })
    });
}

criterion_group!(index_lrt, bench_index_build, bench_index_query, bench_lrt);
criterion_main!(index_lrt);
