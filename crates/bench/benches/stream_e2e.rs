//! Criterion bench for the streaming execution engine: end-to-end
//! reads/sec through the registry's `stream` driver at 1, 2 and 4
//! workers, plus the cost of a checkpointed run. On a single-core host
//! wall-clock times won't scale with workers; the printed elements/sec
//! throughput is still the honest per-configuration figure, and
//! `RunReport.rank_cpu_secs` (not measured here) carries the per-worker
//! CPU-time breakdown.

use bench::WorkloadSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use engine::{DriverRegistry, NullSink, ReadSource, RunContext};
use exec::{CheckpointPolicy, MemoryStream};
use gnumap_core::accum::AccumulatorMode;
use std::hint::black_box;

fn bench_stream_workers(c: &mut Criterion) {
    let w = WorkloadSpec {
        genome_len: 30_000,
        snp_count: 6,
        coverage: 3.0,
        seed: 11,
    }
    .build();
    let registry = DriverRegistry::standard();
    let driver = registry.get("stream").expect("stream driver registered");
    let mut group = c.benchmark_group("stream_e2e");
    group.sample_size(10);
    group.throughput(Throughput::Elements(w.reads.len() as u64));
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                let mut ctx = RunContext::new(&w.reference);
                ctx.config.accumulator = AccumulatorMode::Fixed;
                ctx.threads = workers;
                b.iter(|| {
                    let mut stream = MemoryStream::new(w.reads.clone());
                    let report = driver
                        .run(&ctx, ReadSource::Stream(&mut stream), &mut NullSink)
                        .expect("streaming run");
                    black_box(report.calls.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_stream_checkpointing(c: &mut Criterion) {
    let w = WorkloadSpec {
        genome_len: 30_000,
        snp_count: 6,
        coverage: 3.0,
        seed: 11,
    }
    .build();
    let registry = DriverRegistry::standard();
    let driver = registry.get("stream").expect("stream driver registered");
    let dir = std::env::temp_dir().join(format!("bench-stream-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut group = c.benchmark_group("stream_e2e");
    group.sample_size(10);
    group.throughput(Throughput::Elements(w.reads.len() as u64));
    group.bench_function("checkpoint_every_8_batches", |b| {
        let mut ctx = RunContext::new(&w.reference);
        ctx.config.accumulator = AccumulatorMode::Fixed;
        ctx.threads = 2;
        ctx.checkpoint = Some(CheckpointPolicy {
            path: dir.join("bench.ckpt"),
            every_batches: 8,
            resume: false,
        });
        b.iter(|| {
            let mut stream = MemoryStream::new(w.reads.clone());
            let report = driver
                .run(&ctx, ReadSource::Stream(&mut stream), &mut NullSink)
                .expect("checkpointed run");
            black_box(report.stream.map(|s| s.checkpoints_written))
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(stream, bench_stream_workers, bench_stream_checkpointing);
criterion_main!(stream);
