//! Criterion microbenches for the Pair-HMM kernels: forward, backward,
//! full vs banded, scaled, and Viterbi — the ablation for the banded-DP
//! design choice called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use pairhmm::backward::backward;
use pairhmm::banded::{banded_backward, banded_forward};
use pairhmm::forward::forward;
use pairhmm::params::PhmmParams;
use pairhmm::pwm::Pwm;
use pairhmm::scaling::scaled_forward;
use pairhmm::viterbi::viterbi;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn random_pair(len: usize, seed: u64) -> (Vec<Vec<f64>>, PhmmParams) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let params = PhmmParams::default();
    let bases: Vec<genome::alphabet::Base> = (0..len)
        .map(|_| genome::alphabet::Base::from_index(rng.random_range(0..4)))
        .collect();
    let genome_seq = DnaSeq::from_bases(bases.iter().copied());
    // Read = the window with ~1% mutations, realistic qualities.
    let read_seq: DnaSeq = bases
        .iter()
        .map(|&b| {
            if rng.random_bool(0.01) {
                Some(b.transition())
            } else {
                Some(b)
            }
        })
        .collect();
    let quals: Vec<u8> = (0..len).map(|i| 40 - (i * 20 / len.max(1)) as u8).collect();
    let read = SequencedRead::new("bench", read_seq, quals).unwrap();
    let window: Vec<_> = genome_seq.iter().collect();
    let emit = Pwm::from_read(&read).emission_table(&window, &params);
    (emit, params)
}

fn bench_forward_by_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("phmm_forward");
    for len in [36usize, 62, 100, 150] {
        let (emit, params) = random_pair(len, 1);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| black_box(forward(black_box(&emit), &params).total))
        });
    }
    group.finish();
}

fn bench_forward_backward_pair(c: &mut Criterion) {
    let (emit, params) = random_pair(62, 2);
    c.bench_function("phmm_forward_backward_62bp", |b| {
        b.iter(|| {
            let f = forward(black_box(&emit), &params);
            let bwd = backward(black_box(&emit), &params);
            black_box(f.total + bwd.total)
        })
    });
}

fn bench_banded_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("phmm_banded_vs_full_62bp");
    let (emit, params) = random_pair(62, 3);
    group.bench_function("full", |b| {
        b.iter(|| black_box(forward(black_box(&emit), &params).total))
    });
    for w in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("banded", w), &w, |b, &w| {
            b.iter(|| black_box(banded_forward(black_box(&emit), &params, w).total))
        });
    }
    group.bench_function("banded_backward_w4", |b| {
        b.iter(|| black_box(banded_backward(black_box(&emit), &params, 4).total))
    });
    group.finish();
}

fn bench_scaled_and_viterbi(c: &mut Criterion) {
    let (emit, params) = random_pair(62, 4);
    c.bench_function("phmm_scaled_forward_62bp", |b| {
        b.iter(|| black_box(scaled_forward(black_box(&emit), &params).log_total))
    });
    c.bench_function("phmm_viterbi_62bp", |b| {
        b.iter(|| black_box(viterbi(black_box(&emit), &params).probability))
    });
}

criterion_group!(
    benches,
    bench_forward_by_length,
    bench_forward_backward_pair,
    bench_banded_vs_full,
    bench_scaled_and_viterbi
);
criterion_main!(benches);
