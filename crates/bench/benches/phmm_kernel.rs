//! Criterion microbenches for the Pair-HMM kernels: forward, backward,
//! full vs banded, scaled, Viterbi, and the fused zero-allocation scratch
//! path — the ablations for the banded-DP and scratch-arena design
//! choices called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genome::alphabet::Base;
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use pairhmm::backward::backward;
use pairhmm::banded::{banded_backward, banded_forward};
use pairhmm::forward::forward;
use pairhmm::marginal::PosteriorAlignment;
use pairhmm::params::PhmmParams;
use pairhmm::pwm::Pwm;
use pairhmm::scaling::scaled_forward;
use pairhmm::viterbi::viterbi;
use pairhmm::{EmissionTable, PhmmScratch};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

struct Fixture {
    pwm: Pwm,
    window: Vec<Option<Base>>,
    emit: EmissionTable,
    params: PhmmParams,
}

fn random_pair(len: usize, seed: u64) -> Fixture {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let params = PhmmParams::default();
    let bases: Vec<Base> = (0..len)
        .map(|_| Base::from_index(rng.random_range(0..4)))
        .collect();
    let genome_seq = DnaSeq::from_bases(bases.iter().copied());
    // Read = the window with ~1% mutations, realistic qualities.
    let read_seq: DnaSeq = bases
        .iter()
        .map(|&b| {
            if rng.random_bool(0.01) {
                Some(b.transition())
            } else {
                Some(b)
            }
        })
        .collect();
    let quals: Vec<u8> = (0..len).map(|i| 40 - (i * 20 / len.max(1)) as u8).collect();
    let read = SequencedRead::new("bench", read_seq, quals).unwrap();
    let window: Vec<Option<Base>> = genome_seq.iter().collect();
    let pwm = Pwm::from_read(&read);
    let emit = pwm.emission_table(&window, &params);
    Fixture {
        pwm,
        window,
        emit,
        params,
    }
}

fn bench_forward_by_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("phmm_forward");
    for len in [36usize, 62, 100, 150] {
        let fx = random_pair(len, 1);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| black_box(forward(black_box(fx.emit.view()), &fx.params).total))
        });
    }
    group.finish();
}

fn bench_forward_backward_pair(c: &mut Criterion) {
    let fx = random_pair(62, 2);
    c.bench_function("phmm_forward_backward_62bp", |b| {
        b.iter(|| {
            let f = forward(black_box(fx.emit.view()), &fx.params);
            let bwd = backward(black_box(fx.emit.view()), &fx.params);
            black_box(f.total + bwd.total)
        })
    });
}

fn bench_banded_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("phmm_banded_vs_full_62bp");
    let fx = random_pair(62, 3);
    group.bench_function("full", |b| {
        b.iter(|| black_box(forward(black_box(fx.emit.view()), &fx.params).total))
    });
    for w in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("banded", w), &w, |b, &w| {
            b.iter(|| black_box(banded_forward(black_box(fx.emit.view()), &fx.params, w).total))
        });
    }
    group.bench_function("banded_backward_w4", |b| {
        b.iter(|| black_box(banded_backward(black_box(fx.emit.view()), &fx.params, 4).total))
    });
    group.finish();
}

fn bench_scaled_and_viterbi(c: &mut Criterion) {
    let fx = random_pair(62, 4);
    c.bench_function("phmm_scaled_forward_62bp", |b| {
        b.iter(|| black_box(scaled_forward(black_box(fx.emit.view()), &fx.params).log_total))
    });
    c.bench_function("phmm_viterbi_62bp", |b| {
        b.iter(|| black_box(viterbi(black_box(fx.emit.view()), &fx.params).probability))
    });
}

/// The materialized-tables marginal pass vs the fused streaming scratch
/// path — the headline ablation for the scratch-arena refactor.
fn bench_marginal_fused_vs_materialized(c: &mut Criterion) {
    let mut group = c.benchmark_group("phmm_marginal_62bp");
    let fx = random_pair(62, 5);
    group.bench_function("materialized", |b| {
        b.iter(|| {
            let post = PosteriorAlignment::from_emissions(black_box(fx.emit.view()), &fx.params);
            black_box(post.column_posteriors(&fx.pwm))
        })
    });
    let mut scratch = PhmmScratch::new();
    group.bench_function("fused_scratch", |b| {
        b.iter(|| {
            black_box(scratch.posterior_columns(
                black_box(&fx.pwm),
                black_box(&fx.window),
                &fx.params,
                None,
            ))
        })
    });
    let mut banded_scratch = PhmmScratch::new();
    group.bench_function("fused_scratch_banded_w4", |b| {
        b.iter(|| {
            black_box(banded_scratch.posterior_columns(
                black_box(&fx.pwm),
                black_box(&fx.window),
                &fx.params,
                Some(4),
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_forward_by_length,
    bench_forward_backward_pair,
    bench_banded_vs_full,
    bench_scaled_and_viterbi,
    bench_marginal_fused_vs_materialized
);
criterion_main!(benches);
