//! Criterion microbenches for the three accumulator layouts: per-update
//! cost and merge (reduction) cost — the ablation behind paper Figure 5's
//! "speeds are nearly the same" claim and the CENTDISC slowdown.

use criterion::{criterion_group, criterion_main, Criterion};
use gnumap_core::accum::{
    CentDiscAccumulator, CharDiscAccumulator, GenomeAccumulator, NormAccumulator,
};
use std::hint::black_box;

const LEN: usize = 100_000;

fn deltas() -> Vec<(usize, [f64; 5])> {
    // A deterministic stream of realistic per-column updates.
    (0..10_000)
        .map(|i| {
            let pos = (i * 7919) % LEN;
            let main = i % 4;
            let mut d = [0.01; 5];
            d[main] = 0.95;
            d[4] = 0.01;
            (pos, d)
        })
        .collect()
}

fn bench_add<A: GenomeAccumulator>(c: &mut Criterion, name: &str) {
    let updates = deltas();
    c.bench_function(format!("accum_add_10k/{name}"), |b| {
        b.iter(|| {
            let mut acc = A::new(LEN);
            for (pos, d) in &updates {
                acc.add(*pos, black_box(d));
            }
            black_box(acc.total(0))
        })
    });
}

fn bench_merge<A: GenomeAccumulator + Clone>(c: &mut Criterion, name: &str) {
    let updates = deltas();
    let mut a = A::new(LEN);
    let mut b_acc = A::new(LEN);
    for (pos, d) in &updates {
        a.add(*pos, d);
        b_acc.add((*pos + 13) % LEN, d);
    }
    let wire = b_acc.to_wire();
    c.bench_function(format!("accum_merge_100kb/{name}"), |b| {
        b.iter(|| {
            let mut target = a.clone();
            target.merge_wire(black_box(&wire));
            black_box(target.total(0))
        })
    });
}

fn benches(c: &mut Criterion) {
    bench_add::<NormAccumulator>(c, "NORM");
    bench_add::<CharDiscAccumulator>(c, "CHARDISC");
    bench_add::<CentDiscAccumulator>(c, "CENTDISC");
    bench_merge::<NormAccumulator>(c, "NORM");
    bench_merge::<CharDiscAccumulator>(c, "CHARDISC");
    bench_merge::<CentDiscAccumulator>(c, "CENTDISC");
}

criterion_group!(accum, benches);
criterion_main!(accum);
