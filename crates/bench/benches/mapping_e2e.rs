//! Criterion benches for end-to-end mapping throughput: the serial
//! pipeline per accumulator mode and the per-read mapping engine cost —
//! the numbers behind the rows of Figures 4/5 at one processor.

use bench::WorkloadSpec;
use criterion::{criterion_group, criterion_main, Criterion};
use gnumap_core::accum::{CharDiscAccumulator, GenomeAccumulator, NormAccumulator};
use gnumap_core::mapping::MappingEngine;
use gnumap_core::pipeline::accumulate_reads;
use gnumap_core::GnumapConfig;
use std::hint::black_box;

fn bench_map_read(c: &mut Criterion) {
    let w = WorkloadSpec {
        genome_len: 50_000,
        snp_count: 10,
        coverage: 2.0,
        seed: 9,
    }
    .build();
    let cfg = GnumapConfig::default();
    let engine = MappingEngine::new(&w.reference, cfg.mapping);
    let reads = &w.reads[..200.min(w.reads.len())];
    let mut group = c.benchmark_group("mapping");
    group.sample_size(10);
    group.bench_function("map_200_reads", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for read in reads {
                n += engine.map_read(black_box(read)).len();
            }
            black_box(n)
        })
    });
    group.finish();
}

fn bench_pipeline_modes(c: &mut Criterion) {
    let w = WorkloadSpec {
        genome_len: 30_000,
        snp_count: 6,
        coverage: 3.0,
        seed: 10,
    }
    .build();
    let cfg = GnumapConfig::default();
    let engine = MappingEngine::new(&w.reference, cfg.mapping);
    let mut group = c.benchmark_group("pipeline_accumulate");
    group.sample_size(10);
    group.bench_function("norm", |b| {
        b.iter(|| {
            let mut acc = NormAccumulator::new(w.reference.len());
            black_box(accumulate_reads(&engine, &w.reads, &mut acc))
        })
    });
    group.bench_function("chardisc", |b| {
        b.iter(|| {
            let mut acc = CharDiscAccumulator::new(w.reference.len());
            black_box(accumulate_reads(&engine, &w.reads, &mut acc))
        })
    });
    group.finish();
}

criterion_group!(mapping, bench_map_read, bench_pipeline_modes);
criterion_main!(mapping);
