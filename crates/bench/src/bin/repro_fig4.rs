//! Reproduce paper **Figure 4** — "Sequence processing rate for memory
//! allocation": sequences/second vs processor count for the two MPI
//! decompositions, against the perfect-linear reference.
//!
//! Paper shape: the shared-genome read-split mode (black) tracks the
//! linear line (red) closely; the spread-memory genome-split mode (blue)
//! processes markedly fewer sequences per second because every read's
//! normalising constant crosses ranks. "The spread memory mode does not
//! process as many sequences, so the shared memory mode should be used
//! when possible."
//!
//! Rates are *simulated-parallel*: the busiest rank's measured CPU time
//! plus a gigabit-class communication model (see
//! `gnumap_core::report::CommModel`), so the sweep is meaningful even when
//! the simulated ranks timeshare fewer physical cores than there are
//! ranks. The substitution is documented in DESIGN.md §2.

use bench::{proc_sweep, render_table, repetitions, run_registry_driver, WorkloadSpec};
use engine::DriverRegistry;
use gnumap_core::accum::AccumulatorMode;
use gnumap_core::report::CommModel;
use gnumap_core::GnumapConfig;

fn main() {
    let spec = WorkloadSpec::from_env(120_000, 24);
    eprintln!(
        "[fig4] genome {} bp, {:.0}x coverage (set REPRO_* to rescale)",
        spec.genome_len, spec.coverage
    );
    let w = spec.build();
    let cfg = GnumapConfig::default();
    let model = CommModel::default();
    let procs = proc_sweep();

    // Warm-up run: populate caches so the p = 1 baseline isn't penalised
    // for going first.
    let registry = DriverRegistry::standard();
    let norm = AccumulatorMode::Norm;
    let _ = run_registry_driver(&registry, "read-split", &w, &cfg, norm, 1);

    let mut rows = Vec::new();
    let mut base_rate = None;
    let reps = repetitions();
    for &p in &procs {
        let mut shared_rate = 0.0f64;
        let mut spread_rate = 0.0f64;
        let mut shared = run_registry_driver(&registry, "read-split", &w, &cfg, norm, p);
        let mut spread = run_registry_driver(&registry, "genome-split", &w, &cfg, norm, p);
        for _ in 0..reps {
            let s = run_registry_driver(&registry, "read-split", &w, &cfg, norm, p);
            if s.simulated_seqs_per_sec(&model) > shared_rate {
                shared_rate = s.simulated_seqs_per_sec(&model);
                shared = s;
            }
            let g = run_registry_driver(&registry, "genome-split", &w, &cfg, norm, p);
            if g.simulated_seqs_per_sec(&model) > spread_rate {
                spread_rate = g.simulated_seqs_per_sec(&model);
                spread = g;
            }
        }
        let linear = *base_rate.get_or_insert(shared_rate) * p as f64;
        rows.push(vec![
            p.to_string(),
            format!("{linear:.0}"),
            format!("{shared_rate:.0}"),
            format!("{spread_rate:.0}"),
            format!(
                "{}/{}",
                shared.traffic.unwrap().messages,
                spread.traffic.unwrap().messages
            ),
        ]);
    }

    println!("Figure 4 — simulated sequences/second vs processors (higher is better)");
    println!(
        "{}",
        render_table(
            &[
                "procs",
                "linear",
                "shared-mem (read-split)",
                "spread-mem (genome-split)",
                "msgs shared/spread",
            ],
            &rows,
        )
    );
    println!(
        "paper shape: read-split ≈ linear; genome-split lags it at every\n\
         processor count (every rank re-seeds all reads and the per-batch\n\
         normalisation allreduce adds latency)."
    );
}
