//! Reproduce paper **Figure 4** — "Sequence processing rate for memory
//! allocation": sequences/second vs processor count for the two MPI
//! decompositions, against the perfect-linear reference.
//!
//! Paper shape: the shared-genome read-split mode (black) tracks the
//! linear line (red) closely; the spread-memory genome-split mode (blue)
//! processes markedly fewer sequences per second because every read's
//! normalising constant crosses ranks. "The spread memory mode does not
//! process as many sequences, so the shared memory mode should be used
//! when possible."
//!
//! Rates are *simulated-parallel*: the busiest rank's measured CPU time
//! plus a gigabit-class communication model (see
//! `gnumap_core::report::CommModel`), so the sweep is meaningful even when
//! the simulated ranks timeshare fewer physical cores than there are
//! ranks. The substitution is documented in DESIGN.md §2.

use bench::{proc_sweep, render_table, repetitions, WorkloadSpec};
use gnumap_core::accum::NormAccumulator;
use gnumap_core::driver::genome_split::run_genome_split;
use gnumap_core::driver::read_split::run_read_split;
use gnumap_core::report::CommModel;
use gnumap_core::GnumapConfig;

fn main() {
    let spec = WorkloadSpec::from_env(120_000, 24);
    eprintln!(
        "[fig4] genome {} bp, {:.0}x coverage (set REPRO_* to rescale)",
        spec.genome_len, spec.coverage
    );
    let w = spec.build();
    let cfg = GnumapConfig::default();
    let model = CommModel::default();
    let procs = proc_sweep();

    // Warm-up run: populate caches so the p = 1 baseline isn't penalised
    // for going first.
    let _ = run_read_split::<NormAccumulator>(&w.reference, &w.reads, &cfg, 1);

    let mut rows = Vec::new();
    let mut base_rate = None;
    let reps = repetitions();
    for &p in &procs {
        let mut shared_rate = 0.0f64;
        let mut spread_rate = 0.0f64;
        let mut shared = run_read_split::<NormAccumulator>(&w.reference, &w.reads, &cfg, p)
            .expect("call wire intact");
        let mut spread = run_genome_split::<NormAccumulator>(&w.reference, &w.reads, &cfg, p)
            .expect("call wire intact");
        for _ in 0..reps {
            let s = run_read_split::<NormAccumulator>(&w.reference, &w.reads, &cfg, p)
                .expect("call wire intact");
            if s.simulated_seqs_per_sec(&model) > shared_rate {
                shared_rate = s.simulated_seqs_per_sec(&model);
                shared = s;
            }
            let g = run_genome_split::<NormAccumulator>(&w.reference, &w.reads, &cfg, p)
                .expect("call wire intact");
            if g.simulated_seqs_per_sec(&model) > spread_rate {
                spread_rate = g.simulated_seqs_per_sec(&model);
                spread = g;
            }
        }
        let linear = *base_rate.get_or_insert(shared_rate) * p as f64;
        rows.push(vec![
            p.to_string(),
            format!("{linear:.0}"),
            format!("{shared_rate:.0}"),
            format!("{spread_rate:.0}"),
            format!(
                "{}/{}",
                shared.traffic.unwrap().messages,
                spread.traffic.unwrap().messages
            ),
        ]);
    }

    println!("Figure 4 — simulated sequences/second vs processors (higher is better)");
    println!(
        "{}",
        render_table(
            &[
                "procs",
                "linear",
                "shared-mem (read-split)",
                "spread-mem (genome-split)",
                "msgs shared/spread",
            ],
            &rows,
        )
    );
    println!(
        "paper shape: read-split ≈ linear; genome-split lags it at every\n\
         processor count (every rank re-seeds all reads and the per-batch\n\
         normalisation allreduce adds latency)."
    );
}
