//! Serving-layer throughput tracker.
//!
//! Drives the loopback batching daemon with four concurrent client
//! sessions at worker-pool sizes 1 and 4, and writes `BENCH_server.json`
//! recording aggregate throughput and batching behaviour.
//!
//! Two throughput bases are reported, following the repo's convention
//! for timeshared cores (`RunReport::simulated_parallel_secs`, the
//! repro_fig4 harness):
//!
//! * `wall_reads_per_sec` — reads / wall-clock seconds. On a machine
//!   with fewer physical cores than workers this cannot scale.
//! * `sim_reads_per_sec` — reads / busiest-worker CPU seconds: the
//!   critical-path rate the pool would sustain with one core per worker.
//!   Scaling claims (`sim_speedup_4v1`) are made on this basis.
//!
//! Usage: `bench_server [--quick] [--out PATH]`

use bench::WorkloadSpec;
use genome::read::SequencedRead;
use gnumap_core::GnumapConfig;
use server::{start, Client, ServerConfig, SessionConfig, StatsSnapshot};
use std::thread;
use std::time::{Duration, Instant};

const SESSIONS: usize = 4;

struct PhaseResult {
    workers: usize,
    reads: u64,
    wall_secs: f64,
    wall_reads_per_sec: f64,
    sim_reads_per_sec: f64,
    stats: StatsSnapshot,
}

/// Run `SESSIONS` concurrent client sessions against a fresh server with
/// `workers` workers and measure the submit→finalize span.
fn run_phase(
    workload: &bench::Workload,
    config: GnumapConfig,
    workers: usize,
    chunk: usize,
) -> PhaseResult {
    let handle = start(
        workload.reference.clone(),
        config,
        ServerConfig {
            workers,
            batch_size: 32,
            ingress_capacity: 256,
            dispatch_capacity: workers * 4,
            submit_timeout: Duration::from_secs(120),
            default_deadline: Duration::from_secs(600),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("server starts");
    let addr = handle.addr();

    let partitions: Vec<Vec<SequencedRead>> = (0..SESSIONS)
        .map(|c| {
            workload
                .reads
                .iter()
                .enumerate()
                .filter(|(i, _)| i % SESSIONS == c)
                .map(|(_, r)| r.clone())
                .collect()
        })
        .collect();
    let total_reads: u64 = partitions.iter().map(|p| p.len() as u64).sum();

    let started = Instant::now();
    let threads: Vec<_> = partitions
        .into_iter()
        .map(|part| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let session = client
                    .open_session(SessionConfig::default())
                    .expect("open session");
                for piece in part.chunks(chunk) {
                    // submit_timeout is generous, so Busy should not
                    // surface; retry defensively anyway.
                    loop {
                        match client.submit_reads(session, piece) {
                            Ok(_) => break,
                            Err(err) if err.is_kind(server::ErrorKind::Busy) => {
                                thread::sleep(Duration::from_millis(20));
                            }
                            Err(err) => panic!("submit failed: {err}"),
                        }
                    }
                }
                let result = client.finalize(session, 600_000).expect("finalize");
                assert_eq!(result.reads_processed, part.len() as u64);
                result.digest
            })
        })
        .collect();
    let digests: Vec<u64> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let wall_secs = started.elapsed().as_secs_f64();
    assert_eq!(digests.len(), SESSIONS);

    let stats = handle.stats();
    handle.shutdown();
    handle.join();

    let sim_secs = stats.max_worker_cpu_secs.max(1e-9);
    PhaseResult {
        workers,
        reads: total_reads,
        wall_secs,
        wall_reads_per_sec: total_reads as f64 / wall_secs.max(1e-9),
        sim_reads_per_sec: total_reads as f64 / sim_secs,
        stats,
    }
}

fn phase_json(p: &PhaseResult) -> String {
    format!(
        "{{\n    \"workers\": {},\n    \"reads\": {},\n    \"wall_secs\": {:.4},\n    \
         \"wall_reads_per_sec\": {:.2},\n    \"max_worker_cpu_secs\": {:.4},\n    \
         \"sim_reads_per_sec\": {:.2},\n    \"batches\": {},\n    \
         \"mean_batch_occupancy\": {:.2},\n    \"mean_sessions_per_batch\": {:.3},\n    \
         \"cross_session_batches\": {},\n    \"p50_service_micros\": {},\n    \
         \"p99_service_micros\": {}\n  }}",
        p.workers,
        p.reads,
        p.wall_secs,
        p.wall_reads_per_sec,
        p.stats.max_worker_cpu_secs,
        p.sim_reads_per_sec,
        p.stats.batches_dispatched,
        p.stats.mean_batch_occupancy,
        p.stats.mean_sessions_per_batch,
        p.stats.cross_session_batches,
        p.stats.p50_service_micros,
        p.stats.p99_service_micros,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_server.json".to_string());

    let spec = WorkloadSpec {
        genome_len: if quick { 4_000 } else { 30_000 },
        snp_count: if quick { 4 } else { 15 },
        coverage: if quick { 4.0 } else { 10.0 },
        seed: 0x5e7e,
    };
    let workload = spec.build();
    let config = GnumapConfig::default();
    let chunk = if quick { 16 } else { 64 };

    let one = run_phase(&workload, config, 1, chunk);
    eprintln!(
        "[bench_server] workers 1: {:.0} reads/s wall, {:.0} reads/s sim ({} reads, {} batches)",
        one.wall_reads_per_sec, one.sim_reads_per_sec, one.reads, one.stats.batches_dispatched
    );
    let four = run_phase(&workload, config, 4, chunk);
    eprintln!(
        "[bench_server] workers 4: {:.0} reads/s wall, {:.0} reads/s sim ({} reads, {} batches)",
        four.wall_reads_per_sec, four.sim_reads_per_sec, four.reads, four.stats.batches_dispatched
    );

    let sim_speedup = four.sim_reads_per_sec / one.sim_reads_per_sec.max(1e-9);
    let wall_speedup = four.wall_reads_per_sec / one.wall_reads_per_sec.max(1e-9);
    eprintln!(
        "[bench_server] 4v1 speedup: {sim_speedup:.2}x sim (critical path), {wall_speedup:.2}x wall"
    );

    let json = format!(
        "{{\n  \"quick\": {quick},\n  \"sessions\": {SESSIONS},\n  \
         \"workers1\": {},\n  \"workers4\": {},\n  \
         \"sim_speedup_4v1\": {sim_speedup:.3},\n  \"wall_speedup_4v1\": {wall_speedup:.3}\n}}\n",
        phase_json(&one),
        phase_json(&four),
    );
    std::fs::write(&out_path, &json).expect("write benchmark report");
    eprintln!("[bench_server] wrote {out_path}");

    // Acceptance gates: cross-request coalescing must actually happen,
    // and the worker pool must scale on the critical-path basis.
    assert!(
        one.stats.mean_batch_occupancy > 1.0 && four.stats.mean_batch_occupancy > 1.0,
        "batches did not coalesce reads"
    );
    assert!(
        four.stats.mean_sessions_per_batch > 1.0,
        "concurrent sessions never shared a batch: {:.3} sessions/batch",
        four.stats.mean_sessions_per_batch
    );
    assert!(
        sim_speedup >= 2.0,
        "4-worker critical-path throughput only {sim_speedup:.2}x of 1-worker"
    );
}
