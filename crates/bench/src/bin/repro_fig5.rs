//! Reproduce paper **Figure 5** — sequences/second vs processors for the
//! three memory layouts (NORM / CHARDISC / CENTDISC) plus the linear
//! reference.
//!
//! Paper shape: "Speeds are nearly the same across all optimizations, with
//! centroid discretization performing slightly worse" — the discretized
//! accumulators trade extra per-update arithmetic (decode/re-encode, or a
//! nearest-centroid search) for memory, and the cost stays within a small
//! factor at every processor count.

use bench::{proc_sweep, render_table, repetitions, run_registry_driver, WorkloadSpec};
use engine::DriverRegistry;
use gnumap_core::accum::AccumulatorMode;
use gnumap_core::report::CommModel;
use gnumap_core::GnumapConfig;

fn main() {
    let spec = WorkloadSpec::from_env(120_000, 24);
    eprintln!(
        "[fig5] genome {} bp, {:.0}x coverage (set REPRO_* to rescale)",
        spec.genome_len, spec.coverage
    );
    let w = spec.build();
    let cfg = GnumapConfig::default();
    let procs = proc_sweep();

    let model = CommModel::default();
    // Warm-up run: populate caches so the p = 1 baseline isn't penalised
    // for going first.
    let registry = DriverRegistry::standard();
    let _ = run_registry_driver(&registry, "read-split", &w, &cfg, AccumulatorMode::Norm, 1);

    let mut rows = Vec::new();
    let mut base_rate = None;
    let reps = repetitions();
    for &p in &procs {
        let best = |mode: AccumulatorMode| {
            (0..reps)
                .map(|_| {
                    run_registry_driver(&registry, "read-split", &w, &cfg, mode, p)
                        .simulated_seqs_per_sec(&model)
                })
                .fold(0.0f64, f64::max)
        };
        let norm = best(AccumulatorMode::Norm);
        let chard = best(AccumulatorMode::CharDisc);
        let cent = best(AccumulatorMode::CentDisc);
        let linear = *base_rate.get_or_insert(norm) * p as f64;
        rows.push(vec![
            p.to_string(),
            format!("{linear:.0}"),
            format!("{norm:.0}"),
            format!("{chard:.0}"),
            format!("{cent:.0}"),
        ]);
    }

    println!(
        "Figure 5 — simulated sequences/second vs processors per accumulator (higher is better)"
    );
    println!(
        "{}",
        render_table(
            &[
                "procs",
                "linear",
                AccumulatorMode::Norm.name(),
                AccumulatorMode::CharDisc.name(),
                AccumulatorMode::CentDisc.name(),
            ],
            &rows,
        )
    );
    println!(
        "paper shape: all three accumulators run at nearly the same rate and\n\
         scale with processors; CENTDISC trails slightly (its adds pay a\n\
         nearest-centroid search)."
    );
}
