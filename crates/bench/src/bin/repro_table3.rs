//! Reproduce paper **Table III** — memory, wall clock, and accuracy for
//! GNUMAP with and without the memory optimizations, single run.
//!
//! Paper numbers (chrX subset): NORM 4.76 GB / 1309 TP / 127 FP (91%);
//! CHARDISC 2.58 GB / 677 TP / 0 FP (100%); CENTDISC 2.01 GB / 166 TP /
//! 9058 FP (0.08% — "the accuracy of the centroid discretized method is
//! unacceptable"). The shape to check: the three runs take comparable
//! time; CHARDISC trades some sensitivity for precision at a smaller
//! footprint; CENTDISC's footprint is smallest but its accuracy collapses
//! (precision near zero, far fewer usable true positives).

use bench::{render_table, run_registry_driver, WorkloadSpec};
use engine::DriverRegistry;
use gnumap_core::accum::AccumulatorMode;
use gnumap_core::report::{score_snp_calls, AccuracyReport};
use gnumap_core::GnumapConfig;

fn main() {
    let spec = WorkloadSpec::from_env(150_000, 30);
    eprintln!(
        "[table3] genome {} bp, {} SNPs, {:.0}x coverage (set REPRO_* to rescale)",
        spec.genome_len, spec.snp_count, spec.coverage
    );
    let w = spec.build();
    let cfg = GnumapConfig::default();

    let registry = DriverRegistry::standard();
    let mut rows = Vec::new();
    for mode in [
        AccumulatorMode::Norm,
        AccumulatorMode::CharDisc,
        AccumulatorMode::CentDisc,
    ] {
        let report = run_registry_driver(&registry, "serial", &w, &cfg, mode, 1);
        let acc: AccuracyReport = score_snp_calls(&report.calls, &w.truth);
        rows.push(vec![
            mode.name().to_string(),
            gnumap_core::footprint::human_bytes(report.accumulator_bytes as u64),
            format!("{:.1}s", report.elapsed_secs),
            acc.true_positives.to_string(),
            acc.false_positives.to_string(),
            if acc.true_positives + acc.false_positives == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * acc.precision())
            },
        ]);
    }

    println!(
        "Table III — memory, wall clock and accuracy per optimization ({} planted SNPs)",
        w.truth.len()
    );
    println!(
        "{}",
        render_table(
            &[
                "Optimization",
                "MEM (accumulator)",
                "WT",
                "TP",
                "FP",
                "Precision"
            ],
            &rows,
        )
    );
    println!(
        "paper shape: comparable wall times; CHARDISC ≤ NORM in memory with\n\
         precision preserved (possibly fewer TP); CENTDISC smallest but its\n\
         equal-weight table additions destroy accuracy."
    );
}
