//! Reproduce paper **Table I** — "Experimental results for simulated data".
//!
//! GNUMAP-SNP vs the MAQ-style baseline on a simulated chromosome with
//! planted dbSNP-recipe SNPs: wall time, TP, FP, FN, precision. The paper's
//! numbers (14,501 SNPs on chrX, 31 M reads): MAQ 990.1 m / 11322 TP /
//! 830 FP / 93.2%; GNUMAP 218.6 m / 11070 TP / 676 FP / 94.2% — i.e. the
//! two callers are nearly tied on accuracy while GNUMAP parallelises. The
//! shape to check here: both callers find the large majority of planted
//! SNPs, precisions are comparable and high, and GNUMAP's wall time
//! shrinks with processors while the baseline is serial.

use bench::{render_table, run_registry_driver, WorkloadSpec};
use engine::DriverRegistry;
use gnumap_core::accum::AccumulatorMode;
use gnumap_core::report::score_positions;
use gnumap_core::GnumapConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

fn main() {
    let spec = WorkloadSpec::from_env(150_000, 30);
    eprintln!(
        "[table1] genome {} bp, {} SNPs, {:.0}x coverage (set REPRO_* to rescale)",
        spec.genome_len, spec.snp_count, spec.coverage
    );
    let w = spec.build();
    let truth_positions: HashSet<usize> = w.truth.iter().map(|&(p, _)| p).collect();
    let procs: usize = std::env::var("REPRO_MAX_PROCS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);

    // GNUMAP-SNP on the read-split driver (the paper ran a 30-node cluster;
    // times are "not normalized by the number of processors").
    let registry = DriverRegistry::standard();
    let gnumap = run_registry_driver(
        &registry,
        "read-split",
        &w,
        &GnumapConfig::default(),
        AccumulatorMode::Norm,
        procs,
    );
    let g_acc = gnumap_core::report::score_snp_calls(&gnumap.calls, &w.truth);
    // Simulated parallel wall clock: busiest rank's CPU + comm model (the
    // paper's GNUMAP time was measured on a 30-machine cluster).
    let g_time = gnumap
        .simulated_parallel_secs(&gnumap_core::report::CommModel::default())
        .unwrap_or(gnumap.elapsed_secs);

    // MAQ-style baseline, single processor as in the paper.
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0x4d41_5153); // "MAQS"
    let maq = baseline::run_baseline(
        &w.reference,
        &w.reads,
        &baseline::BaselineConfig::default(),
        &mut rng,
    );
    let m_acc = score_positions(maq.snps.iter().map(|s| s.pos), &truth_positions);

    let rows = vec![
        vec![
            "MAQ-style (1 proc)".to_string(),
            format!("{:.1}", maq.elapsed_secs),
            m_acc.true_positives.to_string(),
            m_acc.false_positives.to_string(),
            m_acc.false_negatives.to_string(),
            format!("{:.1}%", 100.0 * m_acc.precision()),
        ],
        vec![
            format!("GNUMAP-SNP ({procs} procs)"),
            format!("{g_time:.1}"),
            g_acc.true_positives.to_string(),
            g_acc.false_positives.to_string(),
            g_acc.false_negatives.to_string(),
            format!("{:.1}%", 100.0 * g_acc.precision()),
        ],
    ];
    println!(
        "Table I — simulated-data accuracy ({} planted SNPs)",
        w.truth.len()
    );
    println!(
        "{}",
        render_table(
            &["Program", "Time (s)", "TP", "FP", "FN", "Precision"],
            &rows
        )
    );
    println!(
        "paper shape: both callers catch ~75-80% of planted SNPs at >90% precision;\n\
         GNUMAP-SNP parallelises while MAQ runs serially."
    );
}
