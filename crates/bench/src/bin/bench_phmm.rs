//! Pair-HMM kernel and pipeline throughput tracker.
//!
//! Measures the layers of the alignment hot path — emission-table build,
//! forward, forward+backward+marginal, and the end-to-end single-thread
//! mapping pipeline — and writes the numbers to `BENCH_phmm.json` so the
//! perf trajectory is recorded in-repo across kernel changes.
//!
//! Usage: `bench_phmm [--quick] [--out PATH]`
//!
//! `--quick` shrinks the workload and measurement windows to a smoke test
//! (used by CI to assert the harness compiles and reports non-zero
//! throughput); the default settings give stable numbers for comparison.

use bench::WorkloadSpec;
use genome::alphabet::Base;
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use gnumap_core::accum::{GenomeAccumulator, NormAccumulator};
use gnumap_core::pipeline::accumulate_reads;
use gnumap_core::GnumapConfig;
use gnumap_core::MappingEngine;
use pairhmm::forward::forward;
use pairhmm::marginal::PosteriorAlignment;
use pairhmm::params::PhmmParams;
use pairhmm::pwm::Pwm;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::time::Instant;

/// One measured quantity: name, unit, and items/second.
struct Measurement {
    name: &'static str,
    per_sec: f64,
    iters: u64,
}

/// Run `f` repeatedly for at least `window` seconds (after one warmup
/// call) and return items/second, where each call to `f` processes
/// `items_per_iter` items.
fn measure<F: FnMut()>(window: f64, items_per_iter: u64, mut f: F) -> (f64, u64) {
    f(); // warmup: touch caches, grow scratch buffers
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= window && iters >= 3 {
            return ((iters * items_per_iter) as f64 / elapsed, iters);
        }
    }
}

/// A deterministic 62-bp read/window pair in the mapping sweet spot.
fn kernel_fixture(len: usize, seed: u64) -> (SequencedRead, Vec<Option<Base>>, PhmmParams) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let params = PhmmParams::default();
    let bases: Vec<Base> = (0..len)
        .map(|_| Base::from_index(rng.random_range(0..4)))
        .collect();
    let genome_seq = DnaSeq::from_bases(bases.iter().copied());
    let read_seq: DnaSeq = bases
        .iter()
        .map(|&b| {
            if rng.random_bool(0.01) {
                Some(b.transition())
            } else {
                Some(b)
            }
        })
        .collect();
    let quals: Vec<u8> = (0..len).map(|i| 40 - (i * 20 / len.max(1)) as u8).collect();
    let read = SequencedRead::new("bench", read_seq, quals).unwrap();
    let window: Vec<Option<Base>> = genome_seq.iter().collect();
    (read, window, params)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_phmm.json".to_string());

    let window = if quick { 0.05 } else { 1.0 };
    let mut results: Vec<Measurement> = Vec::new();

    // --- Kernel-level layers on a 62-bp pair (paper read length). ---
    let (read, win, params) = kernel_fixture(62, 1);
    let pwm = Pwm::from_read(&read);

    let (per_sec, iters) = measure(window, 1, || {
        black_box(pwm.emission_table(black_box(&win), &params));
    });
    results.push(Measurement {
        name: "emission_build_62bp_per_sec",
        per_sec,
        iters,
    });

    let emit = pwm.emission_table(&win, &params);
    let (per_sec, iters) = measure(window, 1, || {
        black_box(forward(black_box(emit.view()), &params).total);
    });
    results.push(Measurement {
        name: "forward_62bp_per_sec",
        per_sec,
        iters,
    });

    let (per_sec, iters) = measure(window, 1, || {
        let post = PosteriorAlignment::compute(black_box(&pwm), black_box(&win), &params);
        black_box(post.column_posteriors(&pwm));
    });
    results.push(Measurement {
        name: "fwd_bwd_marginal_62bp_per_sec",
        per_sec,
        iters,
    });

    // Fused zero-allocation path: emission + forward + streaming
    // backward/marginal inside one reused scratch arena.
    let mut phmm_scratch = pairhmm::PhmmScratch::new();
    let (per_sec, iters) = measure(window, 1, || {
        black_box(phmm_scratch.posterior_columns(black_box(&pwm), black_box(&win), &params, None));
    });
    results.push(Measurement {
        name: "fused_scratch_62bp_per_sec",
        per_sec,
        iters,
    });

    // --- End-to-end single-thread pipeline: index once, map the batch. ---
    let spec = WorkloadSpec {
        genome_len: if quick { 4_000 } else { 40_000 },
        snp_count: if quick { 4 } else { 20 },
        coverage: if quick { 4.0 } else { 10.0 },
        seed: 0xbe9c,
    };
    let wl = spec.build();
    let config = GnumapConfig::default();
    let engine = MappingEngine::new(&wl.reference, config.mapping);
    let n_reads = wl.reads.len() as u64;
    let (per_sec, iters) = measure(window.max(0.1), n_reads, || {
        let mut acc = NormAccumulator::new(wl.reference.len());
        black_box(accumulate_reads(&engine, &wl.reads, &mut acc));
    });
    results.push(Measurement {
        name: "pipeline_e2e_reads_per_sec",
        per_sec,
        iters,
    });

    // --- Report. ---
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"e2e_reads\": {n_reads},\n"));
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!("  \"{}\": {:.2}{}\n", m.name, m.per_sec, comma));
        eprintln!(
            "[bench_phmm] {:<34} {:>14.1} /s  ({} iters)",
            m.name, m.per_sec, m.iters
        );
    }
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark report");
    eprintln!("[bench_phmm] wrote {out_path}");

    // CI smoke: all throughputs must be non-zero finite numbers.
    for m in &results {
        assert!(
            m.per_sec.is_finite() && m.per_sec > 0.0,
            "{} reported non-positive throughput",
            m.name
        );
    }
}
