//! Reproduce paper **Table II** — "Memory usage for optimizations":
//! virtual memory for NORM / CHARDISC / CENTDISC on the 155 Mbp human X
//! chromosome and the 3.1 Gbp human genome.
//!
//! Two views are printed: *measured* heap bytes of the real data
//! structures on the simulated workload (accumulator + packed genome +
//! k-mer index), and the analytic per-base model *projected* to the
//! paper's genome sizes. The paper's shape: NORM ≫ CHARDISC > CENTDISC at
//! human-genome scale (100g / 58g / 40g).

use bench::{render_table, WorkloadSpec};
use genome::index::{IndexConfig, KmerIndex};
use genome::packed::PackedSeq;
use gnumap_core::accum::{
    AccumulatorMode, CentDiscAccumulator, CharDiscAccumulator, FixedAccumulator, GenomeAccumulator,
    NormAccumulator,
};
use gnumap_core::footprint::{human_bytes, FootprintModel, CHR_X_BASES, HUMAN_GENOME_BASES};

fn measured_bytes(mode: AccumulatorMode, genome_len: usize, shared: usize) -> usize {
    let acc_bytes = match mode {
        AccumulatorMode::Norm => NormAccumulator::new(genome_len).heap_bytes(),
        AccumulatorMode::CharDisc => CharDiscAccumulator::new(genome_len).heap_bytes(),
        AccumulatorMode::CentDisc => CentDiscAccumulator::new(genome_len).heap_bytes(),
        AccumulatorMode::Fixed => FixedAccumulator::new(genome_len).heap_bytes(),
    };
    acc_bytes + shared
}

fn main() {
    let spec = WorkloadSpec::from_env(200_000, 10);
    eprintln!(
        "[table2] measuring on a {} bp simulated genome",
        spec.genome_len
    );
    let w = spec.build();

    // Shared (mode-independent) structures: packed genome + k-mer index.
    let packed = PackedSeq::from_dna(&w.reference);
    let index = KmerIndex::build(&w.reference, IndexConfig::default()).expect("index");
    let shared = packed.heap_bytes() + index.heap_bytes();

    let modes = [
        AccumulatorMode::Norm,
        AccumulatorMode::CharDisc,
        AccumulatorMode::CentDisc,
    ];
    let rows: Vec<Vec<String>> = modes
        .iter()
        .map(|&mode| {
            let model = FootprintModel::for_mode(mode);
            vec![
                mode.name().to_string(),
                human_bytes(measured_bytes(mode, w.reference.len(), shared) as u64),
                human_bytes(model.project(CHR_X_BASES)),
                human_bytes(model.project(HUMAN_GENOME_BASES)),
            ]
        })
        .collect();

    println!("Table II — memory usage per accumulator layout");
    println!(
        "{}",
        render_table(
            &[
                "optimization",
                &format!("measured ({} bp)", w.reference.len()),
                "model: chrX (155Mbp)",
                "model: human (3.1Gbp)",
            ],
            &rows,
        )
    );
    println!(
        "paper shape: NORM needs the most memory at every scale, the\n\
         discretized layouts cut it roughly in half or better (paper human\n\
         genome: 100g / 58g / 40g). The paper's chrX anomaly (CHARDISC <\n\
         CENTDISC at small scale) stemmed from allocator overheads our\n\
         model does not reproduce — see EXPERIMENTS.md."
    );
}
