//! Shared workload construction and table rendering for the reproduction
//! binaries (one per paper table/figure — see DESIGN.md §4).
//!
//! The paper's workload is the 155 Mbp human X chromosome with 14,501
//! planted dbSNP sites and ~31 M simulated 62-bp reads at 12× coverage.
//! The binaries here default to a laptop-scale version of the same recipe
//! (hundreds of kbp, thousands of reads) and scale via environment
//! variables:
//!
//! * `REPRO_GENOME_LEN` — reference length in bases;
//! * `REPRO_SNPS`       — planted SNP count;
//! * `REPRO_COVERAGE`   — mean read coverage;
//! * `REPRO_SEED`       — RNG seed;
//! * `REPRO_MAX_PROCS`  — top of the processor sweep (figures 4/5).

use genome::alphabet::Base;
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};
use simulate::{
    apply_snps_monoploid, generate_genome, generate_snp_catalog, GenomeConfig, SnpCatalogConfig,
};

/// A fully materialised experiment workload.
pub struct Workload {
    /// The reference genome the callers align against.
    pub reference: DnaSeq,
    /// Planted truth: (position, alternate allele).
    pub truth: Vec<(usize, Base)>,
    /// Simulated reads from the mutated individual.
    pub reads: Vec<SequencedRead>,
}

/// Workload dimensions.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    pub genome_len: usize,
    pub snp_count: usize,
    pub coverage: f64,
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            genome_len: 200_000,
            snp_count: 40,
            coverage: 12.0,
            seed: 20120521, // IPPS 2012 week, for flavour
        }
    }
}

impl WorkloadSpec {
    /// Read the spec from the `REPRO_*` environment variables, falling back
    /// to `default_len`/`default_snps`/cov 12 when unset.
    pub fn from_env(default_len: usize, default_snps: usize) -> WorkloadSpec {
        fn env<T: std::str::FromStr>(key: &str, default: T) -> T {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        WorkloadSpec {
            genome_len: env("REPRO_GENOME_LEN", default_len),
            snp_count: env("REPRO_SNPS", default_snps),
            coverage: env("REPRO_COVERAGE", 12.0),
            seed: env("REPRO_SEED", WorkloadSpec::default().seed),
        }
    }

    /// Materialise the workload: chrX-recipe reference (with repeat
    /// families), evenly spaced SNP catalogue, 62-bp Illumina-profile
    /// reads at the configured coverage.
    pub fn build(&self) -> Workload {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let reference = generate_genome(
            &GenomeConfig {
                length: self.genome_len,
                // Scale repeat content with the genome so repeat regions
                // remain a constant fraction, as on a real chromosome.
                repeat_families: (self.genome_len / 25_000).max(1),
                repeat_length: 300,
                repeat_copies: 3,
                repeat_divergence: 0.01,
                ..GenomeConfig::default()
            },
            &mut rng,
        );
        let snps = generate_snp_catalog(
            &reference,
            &SnpCatalogConfig {
                count: self.snp_count,
                ..SnpCatalogConfig::default()
            },
            &mut rng,
        );
        let individual = apply_snps_monoploid(&reference, &snps);
        let cfg = ReadSimConfig {
            coverage: self.coverage,
            ..ReadSimConfig::default()
        };
        let sim = simulate_reads(
            &ReadSource::Monoploid(&individual),
            cfg.read_count(self.genome_len),
            &cfg,
            &mut rng,
        );
        Workload {
            reference,
            truth: snps.iter().map(|s| (s.pos, s.alt)).collect(),
            reads: sim.into_iter().map(|r| r.read).collect(),
        }
    }
}

/// Run one registry driver over a workload and return its report.
///
/// Every reproduction binary resolves its execution mode through
/// [`engine::DriverRegistry`] — the same path the CLI and the conformance
/// matrix use — so a benchmarked configuration is always a configuration
/// the rest of the workspace can reach. Panics on failure: a bench wants
/// the number or a loud crash, never a silently skipped row.
pub fn run_registry_driver(
    registry: &engine::DriverRegistry,
    driver: &str,
    w: &Workload,
    cfg: &gnumap_core::GnumapConfig,
    mode: gnumap_core::accum::AccumulatorMode,
    threads: usize,
) -> gnumap_core::report::RunReport {
    let mut ctx = engine::RunContext::new(&w.reference);
    ctx.config = *cfg;
    ctx.config.accumulator = mode;
    ctx.threads = threads;
    registry
        .get(driver)
        .unwrap_or_else(|e| panic!("{e}"))
        .run(
            &ctx,
            engine::ReadSource::Slice(&w.reads),
            &mut engine::NullSink,
        )
        .unwrap_or_else(|e| panic!("{driver} × {mode:?} failed: {e}"))
}

/// The processor counts swept by the figure binaries: 1, 2, 4, ... up to
/// `REPRO_MAX_PROCS` (default 8). The sweep does not depend on the host's
/// core count: scaling rates come from per-rank CPU time plus the
/// communication model (`RunReport::simulated_seqs_per_sec`), so ranks may
/// timeshare the physical cores without corrupting the measurement.
pub fn proc_sweep() -> Vec<usize> {
    let max: usize = std::env::var("REPRO_MAX_PROCS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let mut procs = vec![];
    let mut p = 1;
    while p <= max {
        procs.push(p);
        p *= 2;
    }
    if *procs.last().unwrap() != max {
        procs.push(max);
    }
    procs
}

/// Repetitions for timing-sensitive sweeps (`REPRO_REPS`, default 3).
/// Oversubscribed simulated ranks suffer scheduler interference; taking
/// the best repetition (smallest critical path) filters the spikes.
pub fn repetitions() -> usize {
    std::env::var("REPRO_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1)
}

/// Render an aligned text table: a header row plus data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_consistent() {
        let spec = WorkloadSpec {
            genome_len: 10_000,
            snp_count: 5,
            coverage: 4.0,
            seed: 1,
        };
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.reference, b.reference);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.reads.len(), b.reads.len());
        assert_eq!(a.truth.len(), 5);
        // ~4x coverage of 10 kb at 62 bp.
        assert_eq!(a.reads.len(), (4.0 * 10_000.0 / 62.0_f64).round() as usize);
    }

    #[test]
    fn proc_sweep_is_increasing_powers() {
        unsafe { std::env::set_var("REPRO_MAX_PROCS", "6") };
        let p = proc_sweep();
        unsafe { std::env::remove_var("REPRO_MAX_PROCS") };
        assert_eq!(p, vec![1, 2, 4, 6]);
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "1234".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // Right-aligned: "1234" is padded to the 5-wide "value" column.
        assert!(lines[3].contains("long-name"));
        assert!(lines[3].ends_with(" 1234"));
        assert_eq!(lines[2].len(), lines[3].len(), "rows align");
    }
}
