//! MAQ-style consensus base and SNP calling from a pileup.
//!
//! At each covered position the four alleles are scored with a simple
//! error-model likelihood over the aggregated weighted counts
//! (`log L(a) = n_a·ln(1−ε) + (n − n_a)·ln(ε/3)`), the consensus is the
//! maximum-likelihood allele, and its Phred-scaled quality is the posterior
//! odds against the runner-up. A site is reported as a SNP when the
//! consensus differs from the reference and clears fixed depth/quality
//! cutoffs — deliberately *ad hoc* thresholds with no background test, as
//! in the programs the paper compares against.

use crate::pileup::Pileup;
use genome::alphabet::Base;
use genome::seq::DnaSeq;

/// Fixed cutoffs for consensus SNP calling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsensusConfig {
    /// Assumed per-base error rate of the pileup evidence.
    pub error_rate: f64,
    /// Minimum read depth to attempt a call.
    pub min_depth: u32,
    /// Minimum Phred-scaled consensus quality to report a SNP.
    pub min_quality: f64,
}

impl Default for ConsensusConfig {
    fn default() -> Self {
        ConsensusConfig {
            error_rate: 0.02,
            min_depth: 3,
            min_quality: 30.0,
        }
    }
}

/// A SNP reported by the baseline caller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineSnp {
    /// 0-based genome position.
    pub pos: usize,
    /// Reference base.
    pub reference: Base,
    /// Called consensus allele.
    pub alt: Base,
    /// Phred-scaled consensus quality.
    pub quality: f64,
    /// Read depth at the site.
    pub depth: u32,
}

/// Log-likelihood of allele `a` given weighted counts.
fn allele_log_lik(counts: &[f64; 4], a: usize, eps: f64) -> f64 {
    let n: f64 = counts.iter().sum();
    let na = counts[a];
    na * (1.0 - eps).ln() + (n - na) * (eps / 3.0).ln()
}

/// Call SNPs across the genome.
pub fn call_consensus_snps(
    pileup: &Pileup,
    reference: &DnaSeq,
    config: &ConsensusConfig,
) -> Vec<BaselineSnp> {
    assert_eq!(pileup.len(), reference.len());
    assert!((0.0..1.0).contains(&config.error_rate) && config.error_rate > 0.0);
    let mut out = Vec::new();
    for pos in 0..pileup.len() {
        if pileup.depth(pos) < config.min_depth {
            continue;
        }
        let Some(reference_base) = reference.get(pos) else {
            continue;
        };
        let counts = pileup.counts(pos);
        if counts.iter().sum::<f64>() <= 0.0 {
            continue;
        }
        // Rank alleles by log-likelihood.
        let mut order = [0usize, 1, 2, 3];
        order.sort_by(|&x, &y| {
            allele_log_lik(counts, y, config.error_rate).total_cmp(&allele_log_lik(
                counts,
                x,
                config.error_rate,
            ))
        });
        let best = order[0];
        let runner = order[1];
        if best == reference_base.index() {
            continue;
        }
        // Phred-scaled odds of the consensus against the runner-up.
        let ll_gap = allele_log_lik(counts, best, config.error_rate)
            - allele_log_lik(counts, runner, config.error_rate);
        let quality = 10.0 * ll_gap / std::f64::consts::LN_10;
        if quality >= config.min_quality {
            out.push(BaselineSnp {
                pos,
                reference: reference_base,
                alt: Base::from_index(best),
                quality,
                depth: pileup.depth(pos),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::MaqHit;
    use genome::read::SequencedRead;

    fn hit(pos: usize) -> MaqHit {
        MaqHit {
            pos,
            reverse: false,
            mismatch_quality: 0,
            mapping_quality: 60,
        }
    }

    fn deposit(p: &mut Pileup, seq: &str, q: u8, pos: usize, times: usize) {
        let r = SequencedRead::with_uniform_quality("r", seq.parse().unwrap(), q);
        for _ in 0..times {
            p.add_read(&r, &hit(pos));
        }
    }

    #[test]
    fn clean_snp_is_called() {
        let reference: DnaSeq = "AAAAA".parse().unwrap();
        let mut p = Pileup::new(5);
        deposit(&mut p, "AGAAA", 30, 0, 10); // 10 reads say G at pos 1
        let snps = call_consensus_snps(&p, &reference, &ConsensusConfig::default());
        assert_eq!(snps.len(), 1);
        assert_eq!(snps[0].pos, 1);
        assert_eq!(snps[0].alt, Base::G);
        assert_eq!(snps[0].depth, 10);
        assert!(snps[0].quality > 100.0);
    }

    #[test]
    fn reference_consensus_is_not_a_snp() {
        let reference: DnaSeq = "ACGT".parse().unwrap();
        let mut p = Pileup::new(4);
        deposit(&mut p, "ACGT", 30, 0, 8);
        assert!(call_consensus_snps(&p, &reference, &ConsensusConfig::default()).is_empty());
    }

    #[test]
    fn thin_coverage_is_skipped() {
        let reference: DnaSeq = "AAA".parse().unwrap();
        let mut p = Pileup::new(3);
        deposit(&mut p, "AGA", 30, 0, 2); // depth 2 < min_depth 3
        assert!(call_consensus_snps(&p, &reference, &ConsensusConfig::default()).is_empty());
    }

    #[test]
    fn contested_site_fails_the_quality_cutoff() {
        let reference: DnaSeq = "AAA".parse().unwrap();
        let mut p = Pileup::new(3);
        // 5 reads say G, 5 say C at position 1: best vs runner-up gap ~ 0.
        deposit(&mut p, "AGA", 30, 0, 5);
        deposit(&mut p, "ACA", 30, 0, 5);
        let snps = call_consensus_snps(&p, &reference, &ConsensusConfig::default());
        assert!(
            snps.is_empty(),
            "tied evidence should not be called: {snps:?}"
        );
    }

    #[test]
    fn reference_n_sites_are_skipped() {
        let reference: DnaSeq = "ANA".parse().unwrap();
        let mut p = Pileup::new(3);
        deposit(&mut p, "AGA", 30, 0, 10);
        let snps = call_consensus_snps(&p, &reference, &ConsensusConfig::default());
        assert!(snps.is_empty());
    }

    #[test]
    fn quality_grows_with_depth() {
        let reference: DnaSeq = "AAA".parse().unwrap();
        let cfg = ConsensusConfig {
            min_quality: 0.0,
            ..ConsensusConfig::default()
        };
        let mut q_last = 0.0;
        for depth in [3usize, 6, 12] {
            let mut p = Pileup::new(3);
            deposit(&mut p, "AGA", 30, 0, depth);
            let snps = call_consensus_snps(&p, &reference, &cfg);
            assert!(snps[0].quality > q_last);
            q_last = snps[0].quality;
        }
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let reference: DnaSeq = "AAAA".parse().unwrap();
        let p = Pileup::new(3);
        let _ = call_consensus_snps(&p, &reference, &ConsensusConfig::default());
    }
}
