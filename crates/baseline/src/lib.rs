//! MAQ-style baseline mapper and SNP caller.
//!
//! The paper compares GNUMAP-SNP against MAQ (Li, Ruan & Durbin 2008), the
//! then-leading single-best-alignment caller. This crate reimplements the
//! behaviours the paper contrasts against:
//!
//! * each read is committed to **one** mapping location — the placement
//!   minimising the sum of Phred qualities at mismatching bases (MAQ's
//!   scoring rule), with ties broken randomly ("randomly assign reads that
//!   map to multiple locations", as the paper describes);
//! * a mapping quality derived from the gap between the best and
//!   second-best placements, below which reads are discarded;
//! * a quality-weighted pileup and a consensus caller whose SNP decision is
//!   a fixed quality cutoff — the "ad hoc cutoffs \[without\] comparisons
//!   with background noise" the paper criticises.
//!
//! Kept deliberately faithful to that design: no marginal evidence, no
//! background test — so the accuracy comparison in the Table I
//! reproduction measures exactly the methodological difference the paper
//! claims matters.

pub mod caller;
pub mod consensus;
pub mod mapper;
pub mod nw;
pub mod pileup;

pub use caller::{run_baseline, BaselineConfig, BaselineReport};
pub use consensus::{call_consensus_snps, BaselineSnp, ConsensusConfig};
pub use mapper::{MaqConfig, MaqHit, MaqMapper};
pub use nw::{align as nw_align, NwAlignment, NwParams};
pub use pileup::Pileup;
