//! Quality-weighted pileup over committed alignments.
//!
//! Each mapped read deposits, at every genome position it covers, a weight
//! of `1 − p_error` on its called base (and nothing elsewhere). Contrast
//! with GNUMAP-SNP's accumulator, which deposits a *distribution* over the
//! five symbols marginalised over all alignments — the pileup is the
//! single-alignment, hard-call simplification the paper argues against.

use crate::mapper::{oriented_read, MaqHit};
use genome::quality::phred_to_error_prob;
use genome::read::SequencedRead;

/// Per-position weighted base counts plus integer depth.
#[derive(Debug, Clone)]
pub struct Pileup {
    counts: Vec<[f64; 4]>,
    depth: Vec<u32>,
}

impl Pileup {
    /// An empty pileup over a genome of `len` bases.
    pub fn new(len: usize) -> Pileup {
        Pileup {
            counts: vec![[0.0; 4]; len],
            depth: vec![0; len],
        }
    }

    /// Genome length covered.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when covering nothing.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Deposit one mapped read.
    pub fn add_read(&mut self, read: &SequencedRead, hit: &MaqHit) {
        let oriented = oriented_read(read, hit);
        for i in 0..oriented.len() {
            let pos = hit.pos + i;
            if pos >= self.counts.len() {
                break;
            }
            if let Some(b) = oriented.base(i) {
                let w = 1.0 - phred_to_error_prob(oriented.quals[i]);
                self.counts[pos][b.index()] += w;
                self.depth[pos] += 1;
            }
        }
    }

    /// The weighted counts at a position.
    pub fn counts(&self, pos: usize) -> &[f64; 4] {
        &self.counts[pos]
    }

    /// Number of reads covering a position (with a non-N call).
    pub fn depth(&self, pos: usize) -> u32 {
        self.depth[pos]
    }

    /// Merge another pileup (for parallel baseline runs).
    pub fn merge(&mut self, other: &Pileup) {
        assert_eq!(self.len(), other.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            for k in 0..4 {
                a[k] += b[k];
            }
        }
        for (a, b) in self.depth.iter_mut().zip(&other.depth) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::alphabet::Base;
    use genome::seq::DnaSeq;

    fn read(seq: &str, q: u8) -> SequencedRead {
        SequencedRead::with_uniform_quality("r", seq.parse().unwrap(), q)
    }

    fn hit(pos: usize, reverse: bool) -> MaqHit {
        MaqHit {
            pos,
            reverse,
            mismatch_quality: 0,
            mapping_quality: 60,
        }
    }

    #[test]
    fn deposits_weight_on_called_bases() {
        let mut p = Pileup::new(10);
        p.add_read(&read("ACGT", 20), &hit(3, false));
        assert!((p.counts(3)[Base::A.index()] - 0.99).abs() < 1e-12);
        assert!((p.counts(6)[Base::T.index()] - 0.99).abs() < 1e-12);
        assert_eq!(p.depth(3), 1);
        assert_eq!(p.depth(2), 0);
        assert_eq!(p.counts(3)[Base::C.index()], 0.0);
    }

    #[test]
    fn reverse_hits_deposit_the_complement() {
        let mut p = Pileup::new(10);
        // Read "ACGT" on the reverse strand covers genome with "ACGT"
        // reverse-complemented = "ACGT". Use asymmetric read to see it:
        p.add_read(&read("AACC", 20), &hit(0, true)); // rc = GGTT
        assert!(p.counts(0)[Base::G.index()] > 0.9);
        assert!(p.counts(2)[Base::T.index()] > 0.9);
    }

    #[test]
    fn n_calls_are_skipped() {
        let mut p = Pileup::new(10);
        p.add_read(&read("ANGT", 20), &hit(0, false));
        assert_eq!(p.depth(1), 0);
        assert_eq!(p.counts(1).iter().sum::<f64>(), 0.0);
        assert_eq!(p.depth(0), 1);
    }

    #[test]
    fn reads_overhanging_the_end_are_clipped() {
        let mut p = Pileup::new(5);
        p.add_read(&read("ACGT", 20), &hit(3, false));
        assert_eq!(p.depth(3), 1);
        assert_eq!(p.depth(4), 1);
        // Positions 5, 6 don't exist; nothing panicked.
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Pileup::new(6);
        let mut b = Pileup::new(6);
        a.add_read(&read("AC", 20), &hit(0, false));
        b.add_read(&read("AC", 20), &hit(0, false));
        b.add_read(&read("GT", 20), &hit(4, false));
        a.merge(&b);
        assert!((a.counts(0)[Base::A.index()] - 2.0 * 0.99).abs() < 1e-9);
        assert_eq!(a.depth(0), 2);
        assert_eq!(a.depth(4), 1);
    }

    #[test]
    fn higher_quality_deposits_more_weight() {
        let mut p = Pileup::new(4);
        p.add_read(&read("A", 40), &hit(0, false));
        p.add_read(&read("A", 5), &hit(1, false));
        assert!(p.counts(0)[0] > p.counts(1)[0]);
    }

    #[test]
    fn roundtrip_with_dnaseq_window() {
        // Sanity: depositing a fragment of a genome recovers its bases.
        let g: DnaSeq = "ACGTACGTAC".parse().unwrap();
        let mut p = Pileup::new(g.len());
        let r = SequencedRead::with_uniform_quality("r", g.window(2, 8), 30);
        p.add_read(&r, &hit(2, false));
        for pos in 2..8 {
            let expect = g.get(pos).unwrap().index();
            let counts = p.counts(pos);
            let argmax = (0..4)
                .max_by(|&a, &b| counts[a].total_cmp(&counts[b]))
                .unwrap();
            assert_eq!(argmax, expect);
        }
    }
}
