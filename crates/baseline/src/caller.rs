//! End-to-end baseline pipeline: map → pileup → consensus SNPs.

use crate::consensus::{call_consensus_snps, BaselineSnp, ConsensusConfig};
use crate::mapper::{MaqConfig, MaqMapper};
use crate::pileup::Pileup;
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use rand::Rng;
use std::time::Instant;

/// Combined configuration of the baseline caller.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BaselineConfig {
    pub mapper: MaqConfig,
    pub consensus: ConsensusConfig,
}

/// What a baseline run produced.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// SNPs called.
    pub snps: Vec<BaselineSnp>,
    /// Reads that were committed to a location.
    pub reads_mapped: usize,
    /// Reads discarded (no acceptable or unique-enough placement).
    pub reads_unmapped: usize,
    /// Wall-clock seconds for the whole pipeline.
    pub elapsed_secs: f64,
}

/// Run the MAQ-style pipeline over `reads` against `reference`.
pub fn run_baseline<R: Rng>(
    reference: &DnaSeq,
    reads: &[SequencedRead],
    config: &BaselineConfig,
    rng: &mut R,
) -> BaselineReport {
    let start = Instant::now();
    let mapper = MaqMapper::new(reference, config.mapper);
    let mut pileup = Pileup::new(reference.len());
    let mut mapped = 0usize;
    for read in reads {
        if let Some(hit) = mapper.map_read(read, rng) {
            pileup.add_read(read, &hit);
            mapped += 1;
        }
    }
    let snps = call_consensus_snps(&pileup, reference, &config.consensus);
    BaselineReport {
        snps,
        reads_mapped: mapped,
        reads_unmapped: reads.len() - mapped,
        elapsed_secs: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};
    use simulate::ErrorProfile;
    use simulate::{
        apply_snps_monoploid, generate_genome, generate_snp_catalog, GenomeConfig, SnpCatalogConfig,
    };

    #[test]
    fn finds_planted_snps_end_to_end() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let genome = generate_genome(
            &GenomeConfig {
                length: 8_000,
                repeat_families: 0,
                ..GenomeConfig::default()
            },
            &mut rng,
        );
        let snps = generate_snp_catalog(
            &genome,
            &SnpCatalogConfig {
                count: 10,
                ..SnpCatalogConfig::default()
            },
            &mut rng,
        );
        let individual = apply_snps_monoploid(&genome, &snps);
        let reads = simulate_reads(
            &ReadSource::Monoploid(&individual),
            2_000, // ~15x of 8 kb at 62 bp
            &ReadSimConfig {
                profile: ErrorProfile::perfect(),
                ..ReadSimConfig::default()
            },
            &mut rng,
        );
        let read_vec: Vec<_> = reads.into_iter().map(|r| r.read).collect();
        let report = run_baseline(&genome, &read_vec, &BaselineConfig::default(), &mut rng);

        assert!(
            report.reads_mapped > 1_800,
            "mapped {}",
            report.reads_mapped
        );
        let truth: std::collections::HashSet<usize> = snps.iter().map(|s| s.pos).collect();
        let called: std::collections::HashSet<usize> = report.snps.iter().map(|s| s.pos).collect();
        let tp = called.intersection(&truth).count();
        assert!(tp >= 8, "expected most planted SNPs, found {tp}/10");
        let fp = called.difference(&truth).count();
        assert!(fp <= 1, "unexpected false positives: {fp}");
    }

    #[test]
    fn empty_read_set_reports_nothing() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let genome = generate_genome(
            &GenomeConfig {
                length: 2_000,
                ..GenomeConfig::default()
            },
            &mut rng,
        );
        let report = run_baseline(&genome, &[], &BaselineConfig::default(), &mut rng);
        assert!(report.snps.is_empty());
        assert_eq!(report.reads_mapped, 0);
        assert_eq!(report.reads_unmapped, 0);
    }
}
