//! Single-best-location read mapping, MAQ style.
//!
//! Candidate placements come from the same k-mer index GNUMAP uses; each
//! placement is scored *ungapped* by the sum of Phred qualities at
//! mismatching positions (lower is better — MAQ's objective). The read is
//! committed to the single best placement; ties are broken uniformly at
//! random, and a mapping quality is derived from the best/second-best gap.

use genome::index::{IndexConfig, KmerIndex};
use genome::read::SequencedRead;
use genome::seq::DnaSeq;
use rand::Rng;
use std::collections::HashSet;

/// Configuration for the MAQ-style mapper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaqConfig {
    /// Seed k-mer length.
    pub k: usize,
    /// Repeat cutoff for the k-mer index.
    pub max_kmer_occurrences: usize,
    /// Placements whose mismatch-quality sum exceeds this are rejected
    /// (MAQ's default roughly corresponds to ~70 at three Q23+ mismatches).
    pub max_mismatch_quality: u32,
    /// Reads with mapping quality below this are discarded before pileup.
    pub min_mapping_quality: u8,
}

impl Default for MaqConfig {
    fn default() -> Self {
        MaqConfig {
            k: 10,
            max_kmer_occurrences: 1024,
            max_mismatch_quality: 120,
            min_mapping_quality: 1,
        }
    }
}

/// A committed mapping of one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaqHit {
    /// 0-based genome start of the placement.
    pub pos: usize,
    /// Whether the read mapped on the reverse strand.
    pub reverse: bool,
    /// Sum of qualities at mismatching bases (the score; lower = better).
    pub mismatch_quality: u32,
    /// Phred-scaled mapping confidence from the best/second-best gap,
    /// capped at 60; 60 when the placement is unique.
    pub mapping_quality: u8,
}

/// The mapper: a reference genome plus its seed index.
pub struct MaqMapper<'g> {
    genome: &'g DnaSeq,
    index: KmerIndex,
    config: MaqConfig,
}

impl<'g> MaqMapper<'g> {
    /// Build the index over `genome`.
    pub fn new(genome: &'g DnaSeq, config: MaqConfig) -> MaqMapper<'g> {
        let index = KmerIndex::build(
            genome,
            IndexConfig {
                k: config.k,
                max_occurrences: config.max_kmer_occurrences,
                stride: 1,
            },
        )
        .expect("valid k");
        MaqMapper {
            genome,
            index,
            config,
        }
    }

    /// The mapper's configuration.
    pub fn config(&self) -> MaqConfig {
        self.config
    }

    /// Map one read to its single best location, or `None` when no
    /// acceptable placement exists. `rng` breaks exact ties uniformly.
    pub fn map_read<R: Rng>(&self, read: &SequencedRead, rng: &mut R) -> Option<MaqHit> {
        let rc = read.reverse_complement();
        let mut best: Vec<(usize, bool, u32)> = Vec::new(); // ties
        let mut best_score = u32::MAX;
        let mut second_score = u32::MAX;

        for (reverse, oriented) in [(false, read), (true, &rc)] {
            let mut seen: HashSet<usize> = HashSet::new();
            for (qoff, gpos) in self.index.seed_hits(&oriented.seq) {
                let gpos = gpos as usize;
                if gpos < qoff {
                    continue; // placement would start before the genome
                }
                let start = gpos - qoff;
                if start + oriented.len() > self.genome.len() {
                    continue;
                }
                if !seen.insert(start) {
                    continue; // already scored this diagonal
                }
                let score = self.mismatch_quality(oriented, start);
                if score < best_score {
                    second_score = best_score;
                    best_score = score;
                    best.clear();
                    best.push((start, reverse, score));
                } else if score == best_score {
                    second_score = best_score; // a tie makes the hit repetitive
                    best.push((start, reverse, score));
                } else if score < second_score {
                    second_score = score;
                }
            }
        }

        if best.is_empty() || best_score > self.config.max_mismatch_quality {
            return None;
        }
        // Random assignment among exact ties (the behaviour the paper calls
        // out as a bias source in repeat regions).
        let &(pos, reverse, mismatch_quality) = if best.len() == 1 {
            &best[0]
        } else {
            &best[rng.random_range(0..best.len())]
        };
        let mapping_quality = if second_score == u32::MAX {
            60
        } else {
            (second_score - best_score).min(60) as u8
        };
        if mapping_quality < self.config.min_mapping_quality {
            return None;
        }
        Some(MaqHit {
            pos,
            reverse,
            mismatch_quality,
            mapping_quality,
        })
    }

    /// Sum of qualities at mismatching positions for an ungapped placement
    /// of `read` at genome `start`. `N` on either side contributes nothing.
    fn mismatch_quality(&self, read: &SequencedRead, start: usize) -> u32 {
        let mut acc = 0u32;
        for i in 0..read.len() {
            match (read.base(i), self.genome.get(start + i)) {
                (Some(rb), Some(gb)) if rb != gb => acc += read.quals[i] as u32,
                _ => {}
            }
        }
        acc
    }

    /// Borrow the underlying index (for statistics).
    pub fn index(&self) -> &KmerIndex {
        &self.index
    }
}

/// The oriented sequence/qualities a hit implies: what the genome actually
/// saw at the placement, i.e. the read reverse-complemented when the hit is
/// on the reverse strand.
pub fn oriented_read(read: &SequencedRead, hit: &MaqHit) -> SequencedRead {
    if hit.reverse {
        read.reverse_complement()
    } else {
        read.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn genome(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    fn cfg(k: usize) -> MaqConfig {
        MaqConfig {
            k,
            ..MaqConfig::default()
        }
    }

    #[test]
    fn exact_read_maps_to_origin() {
        let g = genome("ACGTACGGTTCAGGCATTGCAAGCTTGGCAT");
        let mapper = MaqMapper::new(&g, cfg(6));
        let read = SequencedRead::with_uniform_quality("r", g.window(8, 24), 30);
        let hit = mapper.map_read(&read, &mut rng(1)).unwrap();
        assert_eq!(hit.pos, 8);
        assert!(!hit.reverse);
        assert_eq!(hit.mismatch_quality, 0);
        assert_eq!(hit.mapping_quality, 60);
    }

    #[test]
    fn reverse_strand_read_maps_back() {
        let g = genome("ACGTACGGTTCAGGCATTGCAAGCTTGGCAT");
        let mapper = MaqMapper::new(&g, cfg(6));
        let fragment = g.window(5, 25).reverse_complement();
        let read = SequencedRead::with_uniform_quality("r", fragment, 30);
        let hit = mapper.map_read(&read, &mut rng(2)).unwrap();
        assert_eq!(hit.pos, 5);
        assert!(hit.reverse);
        assert_eq!(hit.mismatch_quality, 0);
    }

    #[test]
    fn mismatch_quality_is_summed() {
        let g = genome("TTGACCAGTTCAGGCATTGCAAGCTTGGCATCCA");
        let mapper = MaqMapper::new(&g, cfg(6));
        let mut frag = g.window(6, 30);
        frag.set(12, Some(frag.get(12).unwrap().transition()));
        let read = SequencedRead::with_uniform_quality("r", frag, 25);
        let hit = mapper.map_read(&read, &mut rng(3)).unwrap();
        assert_eq!(hit.pos, 6);
        assert_eq!(hit.mismatch_quality, 25);
    }

    #[test]
    fn hopeless_read_is_unmapped() {
        let g = genome("ACGTACGGTTCAGGCATTGCAAGCTTGGCAT");
        let mapper = MaqMapper::new(&g, cfg(6));
        // A read sharing no 6-mer with the genome at all.
        let read = SequencedRead::with_uniform_quality("r", genome("GGGGGGGGGGGGGGGG"), 30);
        assert!(mapper.map_read(&read, &mut rng(4)).is_none());
    }

    #[test]
    fn repeat_reads_get_zero_mapping_quality_and_random_side() {
        // Two identical 20-bp copies separated by unique sequence.
        let unit = "ACGGTTCAGGCATTGCAAGC";
        let g = genome(&format!("{unit}TTTTTTTTTT{unit}"));
        let mapper = MaqMapper::new(
            &g,
            MaqConfig {
                k: 6,
                min_mapping_quality: 0,
                ..MaqConfig::default()
            },
        );
        let read = SequencedRead::with_uniform_quality("r", genome(unit), 30);
        let mut seen = HashSet::new();
        for s in 0..32 {
            let hit = mapper.map_read(&read, &mut rng(s)).unwrap();
            assert_eq!(hit.mapping_quality, 0, "tied placements");
            seen.insert(hit.pos);
        }
        assert_eq!(
            seen,
            HashSet::from([0usize, 30]),
            "random tie-breaking should visit both copies"
        );
    }

    #[test]
    fn min_mapping_quality_filters_repeats() {
        let unit = "ACGGTTCAGGCATTGCAAGC";
        let g = genome(&format!("{unit}TTTTTTTTTT{unit}"));
        let mapper = MaqMapper::new(&g, cfg(6)); // min_mapping_quality = 1
        let read = SequencedRead::with_uniform_quality("r", genome(unit), 30);
        assert!(mapper.map_read(&read, &mut rng(5)).is_none());
    }

    #[test]
    fn max_mismatch_quality_rejects_bad_placements() {
        let g = genome("ACGTACGGTTCAGGCATTGCAAGCTTGGCATACGT");
        let mut frag = g.window(4, 28);
        // Corrupt 5 bases at high quality: 5 × 30 = 150 > 120 default cap.
        for p in [8, 10, 12, 14, 16] {
            frag.set(p, Some(frag.get(p).unwrap().transition()));
        }
        let mapper = MaqMapper::new(&g, cfg(6));
        let read = SequencedRead::with_uniform_quality("r", frag, 30);
        assert!(mapper.map_read(&read, &mut rng(6)).is_none());
    }

    #[test]
    fn oriented_read_matches_strand() {
        let r = SequencedRead::with_uniform_quality("r", genome("ACGT"), 30);
        let fwd = MaqHit {
            pos: 0,
            reverse: false,
            mismatch_quality: 0,
            mapping_quality: 60,
        };
        let rev = MaqHit {
            reverse: true,
            ..fwd
        };
        assert_eq!(oriented_read(&r, &fwd).seq.to_string(), "ACGT");
        assert_eq!(
            oriented_read(&r, &rev).seq.to_string(),
            "ACGT"
                .parse::<DnaSeq>()
                .unwrap()
                .reverse_complement()
                .to_string()
        );
    }
}
