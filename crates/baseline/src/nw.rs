//! Needleman–Wunsch global alignment — the "standard" aligner the paper
//! contrasts Pair-HMMs with (Section V-A: "PHMMs are a common alternative
//! for sequence alignment to the standard Needleman-Wunsch Algorithm").
//!
//! Classic affine-free (linear gap) global DP with a quality-aware
//! substitution score: matches reward the base's quality-derived
//! confidence, mismatches penalise it — so a low-quality mismatch costs
//! little, the discrete analogue of what the Pair-HMM's PWM emission does
//! probabilistically. Includes a banded variant mirroring
//! `pairhmm::banded`.

use genome::alphabet::Base;
use genome::quality::phred_to_error_prob;
use genome::read::SequencedRead;

/// Scoring parameters (units: arbitrary score points).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NwParams {
    /// Score for a confident match (scaled by base confidence).
    pub match_score: f64,
    /// Penalty for a confident mismatch (scaled by base confidence).
    pub mismatch_penalty: f64,
    /// Penalty per gap position.
    pub gap_penalty: f64,
}

impl Default for NwParams {
    fn default() -> Self {
        NwParams {
            match_score: 1.0,
            mismatch_penalty: 3.0,
            gap_penalty: 4.0,
        }
    }
}

/// One step of the decoded alignment path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NwOp {
    /// Read base aligned to genome base (match or mismatch).
    Diagonal,
    /// Read base against a genome gap.
    Up,
    /// Genome base against a read gap.
    Left,
}

/// A global alignment result.
#[derive(Debug, Clone, PartialEq)]
pub struct NwAlignment {
    /// Total alignment score.
    pub score: f64,
    /// Operations from start to end.
    pub ops: Vec<NwOp>,
    /// Number of diagonal steps where the bases matched.
    pub matches: usize,
    /// Number of diagonal steps where they mismatched.
    pub mismatches: usize,
}

/// Quality-aware substitution score for read position `i` against a
/// genome base.
#[inline]
fn substitution(read: &SequencedRead, i: usize, g: Option<Base>, p: &NwParams) -> f64 {
    match (read.base(i), g) {
        (Some(r), Some(g)) if r == g => p.match_score,
        (Some(_), Some(_)) => {
            // Only the mismatch penalty scales with confidence (as in
            // MAQ's quality-sum objective): a mismatch at a dubious base
            // is weak evidence against the placement.
            let confidence = 1.0 - phred_to_error_prob(read.quals[i]);
            -p.mismatch_penalty * confidence
        }
        // An N on either side is uninformative.
        _ => 0.0,
    }
}

/// Global alignment of `read` against `window`, optionally banded to a
/// diagonal half-width `band` (`None` = full DP).
pub fn align(
    read: &SequencedRead,
    window: &[Option<Base>],
    params: &NwParams,
    band: Option<usize>,
) -> NwAlignment {
    let n = read.len();
    let m = window.len();
    assert!(n >= 1 && m >= 1, "both sequences must be non-empty");

    let (lo, hi) = match band {
        Some(w) => {
            let delta = m as isize - n as isize;
            (delta.min(0) - w as isize, delta.max(0) + w as isize)
        }
        None => (-(n as isize), m as isize),
    };
    let in_band = |i: usize, j: usize| {
        let d = j as isize - i as isize;
        d >= lo && d <= hi
    };

    const NEG: f64 = f64::NEG_INFINITY;
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    let mut score = vec![NEG; (n + 1) * (m + 1)];
    let mut from = vec![0u8; (n + 1) * (m + 1)];
    score[0] = 0.0;
    for j in 1..=m {
        if in_band(0, j) {
            score[idx(0, j)] = -params.gap_penalty * j as f64;
            from[idx(0, j)] = NwOp::Left as u8;
        }
    }
    for i in 1..=n {
        if in_band(i, 0) {
            score[idx(i, 0)] = -params.gap_penalty * i as f64;
            from[idx(i, 0)] = NwOp::Up as u8;
        }
        for j in 1..=m {
            if !in_band(i, j) {
                continue;
            }
            let diag = score[idx(i - 1, j - 1)] + substitution(read, i - 1, window[j - 1], params);
            let up = score[idx(i - 1, j)] - params.gap_penalty;
            let left = score[idx(i, j - 1)] - params.gap_penalty;
            let (best, op) = if diag >= up && diag >= left {
                (diag, NwOp::Diagonal)
            } else if up >= left {
                (up, NwOp::Up)
            } else {
                (left, NwOp::Left)
            };
            score[idx(i, j)] = best;
            from[idx(i, j)] = op as u8;
        }
    }

    // Traceback from (n, m).
    let mut ops = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, m);
    let mut matches = 0usize;
    let mut mismatches = 0usize;
    while i > 0 || j > 0 {
        let op = match from[idx(i, j)] {
            x if x == NwOp::Diagonal as u8 && i > 0 && j > 0 => NwOp::Diagonal,
            x if x == NwOp::Up as u8 && i > 0 => NwOp::Up,
            _ => NwOp::Left,
        };
        match op {
            NwOp::Diagonal => {
                match (read.base(i - 1), window[j - 1]) {
                    (Some(r), Some(g)) if r == g => matches += 1,
                    (Some(_), Some(_)) => mismatches += 1,
                    _ => {}
                }
                i -= 1;
                j -= 1;
            }
            NwOp::Up => i -= 1,
            NwOp::Left => j -= 1,
        }
        ops.push(op);
    }
    ops.reverse();
    NwAlignment {
        score: score[idx(n, m)],
        ops,
        matches,
        mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genome::seq::DnaSeq;

    fn window(s: &str) -> Vec<Option<Base>> {
        s.parse::<DnaSeq>().unwrap().iter().collect()
    }

    fn read(s: &str, q: u8) -> SequencedRead {
        SequencedRead::with_uniform_quality("r", s.parse().unwrap(), q)
    }

    #[test]
    fn identical_sequences_align_diagonally() {
        let a = align(
            &read("ACGTACGT", 30),
            &window("ACGTACGT"),
            &NwParams::default(),
            None,
        );
        assert_eq!(a.ops, vec![NwOp::Diagonal; 8]);
        assert_eq!(a.matches, 8);
        assert_eq!(a.mismatches, 0);
        assert!(a.score > 7.9);
    }

    #[test]
    fn single_mismatch_scores_between() {
        let exact = align(
            &read("ACGT", 30),
            &window("ACGT"),
            &NwParams::default(),
            None,
        );
        let one_mm = align(
            &read("ACTT", 30),
            &window("ACGT"),
            &NwParams::default(),
            None,
        );
        assert!(one_mm.score < exact.score);
        assert_eq!(one_mm.mismatches, 1);
        assert_eq!(one_mm.matches, 3);
    }

    #[test]
    fn gaps_are_decoded() {
        let p = NwParams::default();
        let a = align(&read("ACGTA", 30), &window("ACGGTA"), &p, None);
        assert_eq!(a.ops.iter().filter(|&&o| o == NwOp::Left).count(), 1);
        assert_eq!(a.matches, 5);
        let b = align(&read("ACGGTA", 30), &window("ACGTA"), &p, None);
        assert_eq!(b.ops.iter().filter(|&&o| o == NwOp::Up).count(), 1);
    }

    #[test]
    fn ops_consume_both_sequences() {
        for (r, g) in [("ACGT", "ACGT"), ("AACC", "AACCGG"), ("TTTTT", "TT")] {
            let a = align(&read(r, 25), &window(g), &NwParams::default(), None);
            let read_steps = a.ops.iter().filter(|&&o| o != NwOp::Left).count();
            let genome_steps = a.ops.iter().filter(|&&o| o != NwOp::Up).count();
            assert_eq!(read_steps, r.len());
            assert_eq!(genome_steps, g.len());
        }
    }

    #[test]
    fn low_quality_mismatches_cost_less() {
        let p = NwParams::default();
        let high = align(&read("ACTT", 40), &window("ACGT"), &p, None);
        let low = align(&read("ACTT", 3), &window("ACGT"), &p, None);
        assert!(low.score > high.score, "{} vs {}", low.score, high.score);
    }

    #[test]
    fn n_bases_are_neutral() {
        let p = NwParams::default();
        let with_n = align(&read("ACNT", 30), &window("ACGT"), &p, None);
        assert_eq!(with_n.matches, 3);
        assert_eq!(with_n.mismatches, 0);
    }

    #[test]
    fn banded_matches_full_for_near_diagonal() {
        let p = NwParams::default();
        let r = read("ACGTACGTAC", 30);
        let w = window("ACGTACGGAC");
        let full = align(&r, &w, &p, None);
        let banded = align(&r, &w, &p, Some(3));
        assert_eq!(full.score, banded.score);
        assert_eq!(full.ops, banded.ops);
    }

    #[test]
    fn pure_gap_alignment_when_band_missing() {
        // Degenerate: band 0 with equal lengths is just the diagonal.
        let p = NwParams::default();
        let a = align(&read("ACGT", 30), &window("ACGT"), &p, Some(0));
        assert_eq!(a.ops, vec![NwOp::Diagonal; 4]);
    }
}
