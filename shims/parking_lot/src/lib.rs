//! Offline stand-in for `parking_lot` (see `shims/README.md`).
//!
//! Non-poisoning [`Mutex`], [`RwLock`] and [`Condvar`] with the
//! `parking_lot` calling convention (`lock()` returns the guard
//! directly), implemented over `std::sync`. A poisoned inner lock —
//! a panic while holding the guard — is transparently recovered, which
//! matches `parking_lot`'s behaviour of not poisoning at all.

use std::sync::{self, PoisonError};
use std::time::Duration;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return its value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Access the value without locking (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return its value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Access the value without locking (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait for a notification;
    /// reacquires before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY-free dance: std's wait consumes and returns the guard.
        take_mut(guard, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// [`Condvar::wait`] with a timeout; returns `true` if it timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let mut timed_out = false;
        take_mut(guard, |g| {
            let (g, result) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = result.timed_out();
            g
        });
        timed_out
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Replace `*slot` through a consuming closure. Aborts the process if the
/// closure panics (the value would otherwise be left logically absent).
fn take_mut<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    struct AbortOnPanic;
    impl Drop for AbortOnPanic {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let guard = AbortOnPanic;
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
        std::mem::forget(guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn mutex_survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(1usize));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // parking_lot semantics: no poisoning, the next lock succeeds.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }
}
